package exact

import (
	"math"
	"testing"

	"adhocradio/internal/core"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

// kpSchedule adapts core.KnownRadiusSchedule to the oracle's Schedule.
func kpSchedule(t *testing.T, labelBound, knownRadius int) Schedule {
	t.Helper()
	view, err := core.KnownRadiusSchedule(labelBound, knownRadius)
	if err != nil {
		t.Fatal(err)
	}
	return Schedule{
		ProbAt:      view.ProbAt,
		StageLen:    view.StageLen,
		StageEndsAt: view.StageEndsAt,
		SourceOnly:  view.SourceOnly,
	}
}

// TestKPSimulationMatchesOracle validates the paper's own procedure
// Randomized-Broadcasting(D) against the exact distribution oracle: the
// empirical mean broadcast time of the full per-node implementation
// (internal/core) must converge to the analytically computed expectation on
// small topologies. This cross-checks the Stage ladder, the universal-step
// probabilities, the source-only opening step, and the stage-boundary
// participation rule, coin for coin.
func TestKPSimulationMatchesOracle(t *testing.T) {
	topos := map[string]*graph.Graph{
		"path5":   graph.Path(5),
		"star6":   graph.Star(6),
		"clique5": graph.Clique(5),
		"chain":   graph.StarChain(1, 3), // one wide hop: n=5
	}
	const knownRadius = 4
	const seeds = 3000
	for name, g := range topos {
		sched := kpSchedule(t, g.N()-1, knownRadius)
		exactRes, err := ExpectedBroadcastTime(g, sched, 3000, 1e-9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0.0
		for seed := 1; seed <= seeds; seed++ {
			p := core.NewWithParams(core.Params{KnownRadius: knownRadius})
			res, err := radio.Run(g, p, radio.Config{Seed: uint64(seed)}, radio.Options{})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			total += float64(res.BroadcastTime)
		}
		mean := total / seeds
		tol := 5 * exactRes.ExpectedTime / math.Sqrt(seeds)
		if tol < 0.25 {
			tol = 0.25
		}
		if math.Abs(mean-exactRes.ExpectedTime) > tol {
			t.Errorf("%s: simulated mean %.3f vs exact %.3f (tol %.3f)",
				name, mean, exactRes.ExpectedTime, tol)
		} else {
			t.Logf("%s: simulated mean %.3f, exact %.3f", name, mean, exactRes.ExpectedTime)
		}
	}
}

// TestKPScheduleOpeningStep sanity-checks the exposed schedule: step 1 is
// source-only with probability 1 and an immediate stage boundary.
func TestKPScheduleOpeningStep(t *testing.T) {
	sched := kpSchedule(t, 15, 4)
	if !sched.SourceOnly(1) {
		t.Fatal("step 1 not source-only")
	}
	if sched.ProbAt(1) != 1 {
		t.Fatalf("ProbAt(1) = %f", sched.ProbAt(1))
	}
	if !sched.StageEndsAt(1) {
		t.Fatal("opening step must promote pending nodes")
	}
	if sched.SourceOnly(2) {
		t.Fatal("step 2 wrongly source-only")
	}
	// The first ladder step of stage 1 has probability 1 (l = 0).
	if sched.ProbAt(2) != 1 {
		t.Fatalf("ProbAt(2) = %f", sched.ProbAt(2))
	}
	// Stage boundaries then recur every StageLen steps.
	if !sched.StageEndsAt(1 + sched.StageLen) {
		t.Fatal("first stage boundary misplaced")
	}
	if sched.StageEndsAt(2 + sched.StageLen) {
		t.Fatal("phantom stage boundary")
	}
}
