package exact

import (
	"math"
	"testing"

	"adhocradio/internal/decay"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

func TestDecayScheduleShape(t *testing.T) {
	s := DecaySchedule(2) // labels {0,1,2}: k = ⌈log2 3⌉+1 = 3
	if s.StageLen != 3 {
		t.Fatalf("StageLen = %d", s.StageLen)
	}
	want := []float64{1, 0.5, 0.25, 1, 0.5, 0.25}
	for i, w := range want {
		if got := s.ProbAt(i + 1); got != w {
			t.Fatalf("ProbAt(%d) = %f, want %f", i+1, got, w)
		}
	}
}

func TestExactStarIsOneStep(t *testing.T) {
	// Star: the source's first (probability-1) transmission informs every
	// leaf; E[T] = 1 with probability 1.
	g := graph.Star(4)
	res, err := ExpectedBroadcastTime(g, DecaySchedule(3), 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExpectedTime-1) > 1e-9 || res.ResidualMass > 1e-12 {
		t.Fatalf("star E[T] = %f (residual %g)", res.ExpectedTime, res.ResidualMass)
	}
	if res.CompletionByStep[0] != 1 {
		t.Fatalf("P(T<=1) = %f", res.CompletionByStep[0])
	}
}

func TestExactPath3IsDeterministicFour(t *testing.T) {
	// Path 0-1-2 under Decay with k=3: node 1 informed at step 1, promoted
	// after step 3, transmits at step 4 (p=1) informing node 2. T = 4
	// deterministically.
	g := graph.Path(3)
	res, err := ExpectedBroadcastTime(g, DecaySchedule(2), 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExpectedTime-4) > 1e-9 {
		t.Fatalf("path3 E[T] = %f, want 4", res.ExpectedTime)
	}
	if res.CompletionByStep[2] != 0 || res.CompletionByStep[3] != 1 {
		t.Fatalf("CDF = %v", res.CompletionByStep[:4])
	}
}

func TestExactSingleNode(t *testing.T) {
	res, err := ExpectedBroadcastTime(graph.New(1, true), DecaySchedule(1), 10, 1e-9)
	if err != nil || res.ExpectedTime != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestExactRejectsBigGraphs(t *testing.T) {
	if _, err := ExpectedBroadcastTime(graph.Path(21), DecaySchedule(20), 10, 1e-9); err == nil {
		t.Fatal("n=21 accepted")
	}
}

func TestExactRejectsBadSchedule(t *testing.T) {
	if _, err := ExpectedBroadcastTime(graph.Path(3), Schedule{}, 10, 1e-9); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

// TestSimulatorMatchesExactOracle is the differential heart of this
// package: the empirical distribution of simulated BGI Decay broadcast
// times must match the exact one on several small topologies.
func TestSimulatorMatchesExactOracle(t *testing.T) {
	topos := map[string]*graph.Graph{
		"path5":    graph.Path(5),
		"clique5":  graph.Clique(5),
		"star6":    graph.Star(6),
		"cycle6":   mustCycle(t, 6),
		"lollipop": lollipop(t),
	}
	const seeds = 3000
	for name, g := range topos {
		exactRes, err := ExpectedBroadcastTime(g, DecaySchedule(g.N()-1), 2000, 1e-9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0.0
		counts := map[int]int{}
		for seed := 1; seed <= seeds; seed++ {
			res, err := radio.Run(g, decay.New(), radio.Config{Seed: uint64(seed)}, radio.Options{})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			total += float64(res.BroadcastTime)
			counts[res.BroadcastTime]++
		}
		mean := total / seeds
		// Standard error of the mean is ~ std/sqrt(seeds); allow 5 sigma
		// with a generous std estimate of E[T].
		tolMean := 5 * exactRes.ExpectedTime / math.Sqrt(seeds)
		if tolMean < 0.2 {
			tolMean = 0.2
		}
		if math.Abs(mean-exactRes.ExpectedTime) > tolMean {
			t.Errorf("%s: simulated mean %.3f vs exact %.3f (tol %.3f)",
				name, mean, exactRes.ExpectedTime, tolMean)
		}
		// Check the CDF at a mid quantile too.
		mid := int(exactRes.ExpectedTime)
		if mid >= 1 && mid <= len(exactRes.CompletionByStep) {
			exactCDF := exactRes.CompletionByStep[mid-1]
			empirical := 0
			for bt, c := range counts {
				if bt <= mid {
					empirical += c
				}
			}
			empCDF := float64(empirical) / seeds
			if math.Abs(empCDF-exactCDF) > 0.05 {
				t.Errorf("%s: P(T<=%d): empirical %.3f vs exact %.3f",
					name, mid, empCDF, exactCDF)
			}
		}
	}
}

func mustCycle(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// lollipop returns a triangle with a 2-edge tail: mixes contention and a
// pendant path.
func lollipop(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5, true)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	return g
}

func TestTransmitPatternsSumToOne(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		total := 0.0
		calls := 0
		transmitPatterns(0b1011, p, func(tx uint32, prob float64) {
			total += prob
			calls++
			if tx&^uint32(0b1011) != 0 {
				t.Fatalf("pattern %b outside active mask", tx)
			}
		})
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("p=%f: probabilities sum to %f", p, total)
		}
		if p > 0 && p < 1 && calls != 8 {
			t.Fatalf("p=%f: %d patterns, want 8", p, calls)
		}
	}
}
