// Package exact computes exact broadcast-time distributions for
// Decay-style randomized protocols on tiny networks, by evolving the full
// probability distribution over network states. It is the analytic oracle
// the test suite uses to validate the simulator and the protocol
// implementations: on graphs small enough to enumerate, the empirical mean
// broadcast time over many simulated seeds must converge to the exact
// expectation computed here, and the per-step completion probabilities must
// match.
//
// The protocol class covered is "synchronized ladder" schedules: every
// participating node transmits in step t independently with a common
// probability p(t), and a node informed during a stage starts participating
// at the next stage boundary — exactly BGI Decay and the ladder part of the
// paper's Stage procedure. The network state is therefore
// (active set, pending set): active nodes follow the schedule, pending
// nodes were informed during the current stage and are promoted when it
// ends.
package exact

import (
	"fmt"
	"math"
	"sort"

	"adhocradio/internal/graph"
)

// Schedule gives the common transmission probability of step t (t >= 1)
// and the stage length L (participation starts at stage boundaries: a node
// informed during stage s activates at the first step of stage s+1).
type Schedule struct {
	// ProbAt returns the transmission probability for step t.
	ProbAt func(t int) float64
	// StageLen is the number of steps per stage (>= 1).
	StageLen int
	// StageEndsAt overrides the default stage-boundary rule
	// (t % StageLen == 0); pending nodes are promoted to active after any
	// step where it returns true. The paper's Stage procedure needs this:
	// its phase opens with a source-only step, shifting every boundary.
	StageEndsAt func(t int) bool
	// SourceOnly marks steps where only the source transmits (with
	// probability 1), like the opening "the source transmits" step of
	// procedure Randomized-Broadcasting(D). Nil means no such steps.
	SourceOnly func(t int) bool
}

// DecaySchedule returns BGI Decay's schedule for label bound r: stages of
// k = ⌈log2(r+1)⌉+1 steps with probability 2^{-(t-1 mod k)}.
func DecaySchedule(labelBound int) Schedule {
	k := 1
	for 1<<k < labelBound+1 {
		k++
	}
	k++
	return Schedule{
		ProbAt:   func(t int) float64 { return math.Pow(2, -float64((t-1)%k)) },
		StageLen: k,
	}
}

// state encodes (active, pending) as two bitmasks over node indices.
type state struct{ active, pending uint32 }

// sortedStates returns dist's keys ordered by (active, pending), giving the
// evolution loops a deterministic iteration order.
func sortedStates(dist map[state]float64) []state {
	states := make([]state, 0, len(dist))
	//radiolint:ignore detmaprange keys are sorted before use
	for st := range dist {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].active != states[j].active {
			return states[i].active < states[j].active
		}
		return states[i].pending < states[j].pending
	})
	return states
}

// Result is the exact analysis output.
type Result struct {
	// ExpectedTime is E[broadcast time] conditioned on completion within
	// MaxSteps, plus the truncation correction term; with ResidualMass
	// small it approximates the true expectation tightly.
	ExpectedTime float64
	// CompletionByStep[t] is P(all nodes informed after <= t steps).
	CompletionByStep []float64
	// ResidualMass is the probability not yet absorbed at MaxSteps; the
	// true expectation lies within ResidualMass·(horizon growth) of
	// ExpectedTime. Keep it tiny by choosing MaxSteps generously.
	ResidualMass float64
	Steps        int
}

// ExpectedBroadcastTime evolves the exact state distribution of the given
// synchronized-ladder schedule on g until the completion probability mass
// reaches 1 - tol or maxSteps elapses. The graph must have at most 20 nodes
// (the state space is enumerated explicitly).
func ExpectedBroadcastTime(g *graph.Graph, sched Schedule, maxSteps int, tol float64) (*Result, error) {
	n := g.N()
	if n < 1 || n > 20 {
		return nil, fmt.Errorf("exact: n=%d outside [1, 20]", n)
	}
	if sched.StageLen < 1 || sched.ProbAt == nil {
		return nil, fmt.Errorf("exact: invalid schedule")
	}
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	full := uint32(1)<<uint(n) - 1
	if n == 1 {
		return &Result{ExpectedTime: 0, CompletionByStep: []float64{1}, Steps: 0}, nil
	}

	// Neighborhood masks.
	inMask := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.In(v) {
			inMask[v] |= 1 << uint(u)
		}
	}

	dist := map[state]float64{{active: 1, pending: 0}: 1}
	res := &Result{CompletionByStep: make([]float64, 0, 64)}
	absorbed := 0.0
	expected := 0.0

	stageEnds := sched.StageEndsAt
	if stageEnds == nil {
		stageEnds = func(t int) bool { return t%sched.StageLen == 0 }
	}
	for t := 1; t <= maxSteps; t++ {
		p := sched.ProbAt(t)
		sourceOnly := sched.SourceOnly != nil && sched.SourceOnly(t)
		next := make(map[state]float64, len(dist)*2)
		// Iterate states in a fixed order: float accumulation into next is
		// not associative, so map order would perturb low-order bits across
		// runs and the oracle must be bit-for-bit reproducible.
		for _, st := range sortedStates(dist) {
			mass := dist[st]
			if mass == 0 {
				continue
			}
			informed := st.active | st.pending
			if informed == full {
				// Already complete states were removed; defensive.
				continue
			}
			txMask := st.active
			if sourceOnly {
				txMask = st.active & 1 // only the source transmits
			}
			txProb := p
			if sourceOnly {
				txProb = 1
			}
			transmitPatterns(txMask, txProb, func(tx uint32, prob float64) {
				if prob == 0 {
					return
				}
				newPending := st.pending
				for v := 0; v < n; v++ {
					bit := uint32(1) << uint(v)
					if informed&bit != 0 {
						continue
					}
					hits := tx & inMask[v]
					if hits != 0 && hits&(hits-1) == 0 {
						newPending |= bit
					}
				}
				ns := state{active: st.active, pending: newPending}
				if stageEnds(t) {
					ns = state{active: ns.active | ns.pending, pending: 0}
				}
				next[ns] += mass * prob
			})
		}
		// Absorb completed states, again in fixed order for reproducible
		// float sums.
		for _, st := range sortedStates(next) {
			if st.active|st.pending == full {
				mass := next[st]
				absorbed += mass
				expected += mass * float64(t)
				delete(next, st)
			}
		}
		res.CompletionByStep = append(res.CompletionByStep, absorbed)
		res.Steps = t
		dist = next
		if 1-absorbed < tol {
			break
		}
	}
	res.ResidualMass = 1 - absorbed
	if absorbed > 0 {
		// Attribute residual mass to the final step (a lower-bound
		// correction); with tiny residuals the effect is negligible.
		res.ExpectedTime = expected + res.ResidualMass*float64(res.Steps)
	}
	return res, nil
}

// transmitPatterns enumerates every subset of the active mask along with
// its probability under independent transmission probability p, calling fn
// for each. Exponential in the popcount of active; callers keep graphs
// tiny.
func transmitPatterns(active uint32, p float64, fn func(tx uint32, prob float64)) {
	// Collect the active bit positions.
	var bits []uint32
	for m := active; m != 0; m &= m - 1 {
		bits = append(bits, m&-m)
	}
	k := len(bits)
	if p <= 0 {
		fn(0, 1)
		return
	}
	if p >= 1 {
		fn(active, 1)
		return
	}
	q := 1 - p
	for sub := 0; sub < 1<<uint(k); sub++ {
		var tx uint32
		prob := 1.0
		for i := 0; i < k; i++ {
			if sub&(1<<uint(i)) != 0 {
				tx |= bits[i]
				prob *= p
			} else {
				prob *= q
			}
		}
		fn(tx, prob)
	}
}
