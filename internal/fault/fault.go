// Package fault provides deterministic, seed-derived fault injection for
// the radio simulator: the adversarial conditions the paper's model talks
// about (wake-up schedules, jamming adversaries, unstable topology) made
// executable. A Plan composes independent fault models:
//
//   - per-step link loss: each directed arc (u,v) independently drops every
//     transmission crossing it in a given step with probability LinkLoss;
//   - step-windowed topology churn: each undirected link pair {u,v} goes
//     down for whole windows of ChurnWindow steps with probability
//     ChurnProb per window (a coarse-grained outage, distinct from the
//     per-step loss);
//   - adversarial jammers: external noise devices co-located with the
//     Jammers nodes; in every step each device independently transmits
//     noise with probability JamProb, reaching exactly the out-neighbors of
//     its host node. Noise destroys any single legitimate reception there
//     (a collision); noise alone is indistinguishable from silence, as the
//     model requires. The host node itself keeps operating normally — the
//     jammer is an attacker's device, not a node failure.
//   - node crash schedules: a CrashFrac fraction of nodes is deterministically
//     chosen at plan-compile time; each chosen node halts forever at a step
//     drawn uniformly from [1, CrashWindow];
//   - sleep-wake duty cycles: a SleepFrac fraction of nodes runs a periodic
//     duty cycle (awake SleepAwake of every SleepPeriod steps, phase drawn
//     per node); a sleeping node neither transmits nor receives, but its
//     program state persists across naps.
//
// The source (node 0) is exempt from crash and sleep — a dead source makes
// broadcast vacuously impossible — but its links can drop and it can sit in
// a jammer's shadow.
//
// Every decision is a pure function of (Plan.Seed, step, node/arc): node
// schedules are drawn from per-node rng.NewStream substreams at compile
// time, and per-step decisions go through a keyed, order-independent mixing
// function. That order independence is what lets the optimized CSR engine
// and the naive RunReference oracle — which visit arcs in different orders
// and different subsets — agree bit for bit on every faulty run, which the
// differential battery and FuzzRunVsReference enforce. It also keeps
// `-parallel N` experiment tables byte-identical: a trial's fault stream
// depends only on the plan seed the trial derived, never on scheduling.
//
// CONTRIBUTING.md rule: a fault model may only ship once it is implemented
// in BOTH simulators and covered by the differential gate.
package fault

import (
	"fmt"

	"adhocradio/internal/rng"
)

// Plan describes a composable set of fault models. The zero value injects
// no faults. Plans are plain data: the same Plan (same Seed) always yields
// the same fault pattern, so runs are replayable.
//
// The mirror marker makes the mirrorref pass hold the optimized engine and
// the RunReference* oracles to the CONTRIBUTING.md rule above: any member
// the engine consults must be consulted by the reference too.
//
//radiolint:mirror
type Plan struct {
	// Seed drives every fault decision. Harnesses derive it from their
	// master seed and trial index (rng.NewStream(seed, trial).Uint64()) so
	// trials stay independent and parallel runs bit-identical.
	Seed uint64

	// LinkLoss is the per-step probability that a given directed arc drops
	// the transmission crossing it (0 disables). Loss is independent per
	// (step, arc); the reverse arc of an undirected edge fails
	// independently too, modelling asymmetric interference.
	LinkLoss float64

	// ChurnProb is the probability that a given undirected link pair is
	// down for a given whole window of ChurnWindow steps (0 disables).
	// Churn takes the pair down in both directions at once.
	ChurnProb   float64
	ChurnWindow int

	// Jammers lists the host nodes of adversarial noise devices; JamProb is
	// the per-step probability that each device transmits noise into its
	// host's out-neighborhood. Jam noise ignores LinkLoss and churn: the
	// attacker's transmitter does not care that the logical link is down.
	Jammers []int
	JamProb float64

	// CrashFrac is the fraction of nodes (excluding the source) that crash;
	// each chosen node halts forever at a step drawn uniformly from
	// [1, CrashWindow]. CrashWindow must be >= 1 when CrashFrac > 0.
	CrashFrac   float64
	CrashWindow int

	// SleepFrac is the fraction of nodes (excluding the source) on a
	// sleep-wake duty cycle: awake for SleepAwake of every SleepPeriod
	// steps, with a per-node phase. Requires 1 <= SleepAwake < SleepPeriod
	// when SleepFrac > 0.
	SleepFrac   float64
	SleepPeriod int
	SleepAwake  int
}

// Active reports whether the plan injects any fault at all. Inactive plans
// are equivalent to a nil plan: the simulator takes its fault-free hot path.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.LinkLoss > 0 ||
		p.ChurnProb > 0 ||
		(len(p.Jammers) > 0 && p.JamProb > 0) ||
		p.CrashFrac > 0 ||
		p.SleepFrac > 0
}

// Validate checks the plan against an n-node network.
func (p *Plan) Validate(n int) error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"LinkLoss", p.LinkLoss},
		{"ChurnProb", p.ChurnProb},
		{"JamProb", p.JamProb},
		{"CrashFrac", p.CrashFrac},
		{"SleepFrac", p.SleepFrac},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.ChurnProb > 0 && p.ChurnWindow < 1 {
		return fmt.Errorf("fault: ChurnProb > 0 needs ChurnWindow >= 1 (got %d)", p.ChurnWindow)
	}
	if p.CrashFrac > 0 && p.CrashWindow < 1 {
		return fmt.Errorf("fault: CrashFrac > 0 needs CrashWindow >= 1 (got %d)", p.CrashWindow)
	}
	if p.SleepFrac > 0 && (p.SleepPeriod < 2 || p.SleepAwake < 1 || p.SleepAwake >= p.SleepPeriod) {
		return fmt.Errorf("fault: SleepFrac > 0 needs 1 <= SleepAwake < SleepPeriod (got awake %d of %d)",
			p.SleepAwake, p.SleepPeriod)
	}
	seen := make([]bool, n)
	for _, j := range p.Jammers {
		if j < 0 || j >= n {
			return fmt.Errorf("fault: jammer node %d outside [0, %d)", j, n)
		}
		if seen[j] {
			return fmt.Errorf("fault: duplicate jammer node %d", j)
		}
		seen[j] = true
	}
	return nil
}

// Substream ids for the per-purpose keys, so the models stay independent:
// changing e.g. the jammer list never perturbs the loss pattern.
const (
	keyLinkLoss uint64 = iota + 1
	keyChurn
	keyJam
	keyCrash
	keySleep
)

// State is a plan compiled against a specific network size: the per-node
// crash/sleep schedules plus the per-purpose keys for the step-level
// decisions. A State is reusable across runs via Reset and is safe for
// concurrent readers once reset (all methods are pure reads).
//
//radiolint:mirror
type State struct {
	plan Plan
	n    int

	lossKey, churnKey, jamKey uint64

	crashAt []int32 // 0 = never crashes; otherwise the first dead step
	phase   []int32 // -1 = never sleeps; otherwise the duty-cycle phase
	jammers []int32 // validated copy of the plan's jammer list
	isJam   []bool  // node -> is a jammer host
}

// NewState returns an empty State; call Reset before use.
func NewState() *State { return &State{} }

// Reset compiles plan for an n-node network, reusing the receiver's storage.
// It validates the plan and derives every node schedule from
// rng.NewStream(plan.Seed, ...) substreams.
func (s *State) Reset(plan *Plan, n int) error {
	if err := plan.Validate(n); err != nil {
		return err
	}
	s.plan = *plan
	s.plan.Jammers = nil // the compiled copy lives in s.jammers
	s.n = n

	s.lossKey = rng.NewStream(plan.Seed, keyLinkLoss).Uint64()
	s.churnKey = rng.NewStream(plan.Seed, keyChurn).Uint64()
	s.jamKey = rng.NewStream(plan.Seed, keyJam).Uint64()

	if cap(s.crashAt) < n {
		s.crashAt = make([]int32, n)
		s.phase = make([]int32, n)
		s.isJam = make([]bool, n)
	}
	s.crashAt = s.crashAt[:n]
	s.phase = s.phase[:n]
	s.isJam = s.isJam[:n]

	crashSeed := rng.NewStream(plan.Seed, keyCrash).Uint64()
	sleepSeed := rng.NewStream(plan.Seed, keySleep).Uint64()
	for v := 0; v < n; v++ {
		s.crashAt[v] = 0
		s.phase[v] = -1
		s.isJam[v] = false
		if v == 0 {
			continue // the source neither crashes nor sleeps
		}
		if plan.CrashFrac > 0 {
			src := rng.NewStream(crashSeed, uint64(v))
			if src.Bernoulli(plan.CrashFrac) {
				s.crashAt[v] = int32(1 + src.Intn(plan.CrashWindow))
			}
		}
		if plan.SleepFrac > 0 {
			src := rng.NewStream(sleepSeed, uint64(v))
			if src.Bernoulli(plan.SleepFrac) {
				s.phase[v] = int32(src.Intn(plan.SleepPeriod))
			}
		}
	}

	s.jammers = s.jammers[:0]
	if plan.JamProb > 0 {
		for _, j := range plan.Jammers {
			s.jammers = append(s.jammers, int32(j))
			s.isJam[j] = true
		}
	}
	return nil
}

// N returns the network size the state was compiled for.
func (s *State) N() int { return s.n }

// NodeDown reports whether node v is dead at step t: crashed for good, or
// in the sleeping part of its duty cycle. A down node neither transmits nor
// receives; its program is simply not consulted that step.
//
//radiolint:hotpath
func (s *State) NodeDown(t, v int) bool {
	if at := s.crashAt[v]; at != 0 && int32(t) >= at {
		return true
	}
	if ph := s.phase[v]; ph >= 0 {
		if (t+int(ph))%s.plan.SleepPeriod >= s.plan.SleepAwake {
			return true
		}
	}
	return false
}

// Crashed reports whether node v is permanently dead at step t (sleep-wake
// naps excluded). Harnesses use it to score informed fractions among nodes
// that could still have been reached.
//
//radiolint:hotpath
func (s *State) Crashed(t, v int) bool {
	at := s.crashAt[v]
	return at != 0 && int32(t) >= at
}

// LinkDown reports whether the directed arc u->v is unusable at step t,
// either through per-step loss or because the pair {u,v} is churned out for
// the current window. The decision is a pure function of (seed, t, u, v).
//
//radiolint:hotpath
func (s *State) LinkDown(t, u, v int) bool {
	if p := s.plan.LinkLoss; p > 0 {
		if chance(s.lossKey, uint64(t), uint64(u)<<32|uint64(v)) < p {
			return true
		}
	}
	if p := s.plan.ChurnProb; p > 0 {
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		w := t / s.plan.ChurnWindow
		if chance(s.churnKey, uint64(w), uint64(lo)<<32|uint64(hi)) < p {
			return true
		}
	}
	return false
}

// JammerNodes returns the compiled jammer host list (empty when jamming is
// off). The slice is owned by the State; callers must not modify it.
//
//radiolint:mirror-exempt iteration accelerator for the CSR engine; the naive oracle probes every in-neighbor through JamAt, which carries the semantics
func (s *State) JammerNodes() []int32 { return s.jammers }

// JamAt reports whether the device hosted at node u transmits noise in step
// t. It is false for nodes that host no jammer, so naive oracles may probe
// every in-neighbor.
//
//radiolint:hotpath
func (s *State) JamAt(t, u int) bool {
	if !s.isJam[u] {
		return false
	}
	return chance(s.jamKey, uint64(t), uint64(u)) < s.plan.JamProb
}

// mix64 is the SplitMix64 output finalizer (same constants as internal/rng
// uses for seeding): a cheap bijective avalanche over one word.
//
//radiolint:hotpath
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns a pseudo-uniform float64 in [0, 1) as a pure function of
// (key, a, b). Unlike a sequential rng.Source, it has no call-order state:
// both simulator implementations get the same draw for the same (step,
// node/arc) identifier no matter when — or whether — the other one asks.
//
//radiolint:hotpath
func chance(key, a, b uint64) float64 {
	z := mix64(key ^ (a+1)*0x9e3779b97f4a7c15)
	z = mix64(z ^ (b+1)*0xd1342543de82ef95)
	return float64(z>>11) / (1 << 53)
}
