package fault

import (
	"strings"
	"testing"
)

func TestActive(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want bool
	}{
		{"nil", nil, false},
		{"zero", &Plan{}, false},
		{"seed-only", &Plan{Seed: 7}, false},
		{"loss", &Plan{LinkLoss: 0.1}, true},
		{"churn", &Plan{ChurnProb: 0.1, ChurnWindow: 4}, true},
		{"jam", &Plan{Jammers: []int{1}, JamProb: 0.5}, true},
		{"jam-no-prob", &Plan{Jammers: []int{1}}, false},
		{"prob-no-jammers", &Plan{JamProb: 0.5}, false},
		{"crash", &Plan{CrashFrac: 0.1, CrashWindow: 10}, true},
		{"sleep", &Plan{SleepFrac: 0.1, SleepPeriod: 4, SleepAwake: 2}, true},
	}
	for _, c := range cases {
		if got := c.plan.Active(); got != c.want {
			t.Errorf("%s: Active() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		wantErr string
	}{
		{"zero", Plan{}, ""},
		{"full", Plan{
			LinkLoss: 0.2, ChurnProb: 0.1, ChurnWindow: 8,
			Jammers: []int{0, 3}, JamProb: 0.5,
			CrashFrac: 0.1, CrashWindow: 100,
			SleepFrac: 0.3, SleepPeriod: 10, SleepAwake: 7,
		}, ""},
		{"loss-negative", Plan{LinkLoss: -0.1}, "LinkLoss"},
		{"loss-above-one", Plan{LinkLoss: 1.5}, "LinkLoss"},
		{"churn-no-window", Plan{ChurnProb: 0.2}, "ChurnWindow"},
		{"crash-no-window", Plan{CrashFrac: 0.2}, "CrashWindow"},
		{"sleep-no-period", Plan{SleepFrac: 0.2}, "SleepAwake"},
		{"sleep-awake-too-big", Plan{SleepFrac: 0.2, SleepPeriod: 4, SleepAwake: 4}, "SleepAwake"},
		{"jammer-out-of-range", Plan{Jammers: []int{8}}, "outside"},
		{"jammer-negative", Plan{Jammers: []int{-1}}, "outside"},
		{"jammer-duplicate", Plan{Jammers: []int{2, 2}}, "duplicate"},
	}
	for _, c := range cases {
		err := c.plan.Validate(8)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
}

// TestResetRejectsInvalid pins that State.Reset surfaces validation errors.
func TestResetRejectsInvalid(t *testing.T) {
	s := NewState()
	if err := s.Reset(&Plan{Jammers: []int{99}}, 8); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

// TestDecisionsDeterministicAndOrderFree is the property the differential
// gate rests on: every decision is a pure function of (seed, step, id),
// identical across State instances and independent of query order.
func TestDecisionsDeterministicAndOrderFree(t *testing.T) {
	plan := &Plan{
		Seed:     42,
		LinkLoss: 0.3, ChurnProb: 0.2, ChurnWindow: 5,
		Jammers: []int{1, 4}, JamProb: 0.4,
		CrashFrac: 0.3, CrashWindow: 50,
		SleepFrac: 0.3, SleepPeriod: 6, SleepAwake: 3,
	}
	const n, steps = 12, 40
	a, b := NewState(), NewState()
	if err := a.Reset(plan, n); err != nil {
		t.Fatal(err)
	}
	if err := b.Reset(plan, n); err != nil {
		t.Fatal(err)
	}
	// a queried forward, b queried backward: answers must agree pointwise.
	type key struct{ t, u, v int }
	got := map[key]bool{}
	for step := 1; step <= steps; step++ {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got[key{step, u, v}] = a.LinkDown(step, u, v)
			}
		}
	}
	for step := steps; step >= 1; step-- {
		for u := n - 1; u >= 0; u-- {
			if a.NodeDown(step, u) != b.NodeDown(step, u) {
				t.Fatalf("NodeDown(%d, %d) differs across states", step, u)
			}
			if a.JamAt(step, u) != b.JamAt(step, u) {
				t.Fatalf("JamAt(%d, %d) differs across states", step, u)
			}
			for v := n - 1; v >= 0; v-- {
				if b.LinkDown(step, u, v) != got[key{step, u, v}] {
					t.Fatalf("LinkDown(%d, %d, %d) depends on query order", step, u, v)
				}
			}
		}
	}
}

// TestResetReplaysSchedules: recompiling the same plan (even after the state
// served a different one) reproduces the same crash/sleep schedules.
func TestResetReplaysSchedules(t *testing.T) {
	plan := &Plan{Seed: 9, CrashFrac: 0.5, CrashWindow: 20, SleepFrac: 0.5, SleepPeriod: 8, SleepAwake: 4}
	other := &Plan{Seed: 77, CrashFrac: 0.9, CrashWindow: 3}
	const n = 32
	s := NewState()
	if err := s.Reset(plan, n); err != nil {
		t.Fatal(err)
	}
	first := make([]bool, 0, n*10)
	for step := 1; step <= 10; step++ {
		for v := 0; v < n; v++ {
			first = append(first, s.NodeDown(step, v))
		}
	}
	if err := s.Reset(other, n/2); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(plan, n); err != nil {
		t.Fatal(err)
	}
	i := 0
	for step := 1; step <= 10; step++ {
		for v := 0; v < n; v++ {
			if s.NodeDown(step, v) != first[i] {
				t.Fatalf("NodeDown(%d, %d) changed after Reset round-trip", step, v)
			}
			i++
		}
	}
}

// TestSourceExempt: node 0 is never down, whatever the crash/sleep rates.
func TestSourceExempt(t *testing.T) {
	s := NewState()
	plan := &Plan{Seed: 3, CrashFrac: 1, CrashWindow: 1, SleepFrac: 1, SleepPeriod: 2, SleepAwake: 1}
	if err := s.Reset(plan, 16); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 50; step++ {
		if s.NodeDown(step, 0) {
			t.Fatalf("source down at step %d", step)
		}
	}
	// ... and with those rates every other node is dead from step 1 on
	// (CrashWindow 1 crashes them all at step 1).
	for v := 1; v < 16; v++ {
		if !s.NodeDown(1, v) || !s.Crashed(1, v) {
			t.Fatalf("node %d survived CrashFrac=1, CrashWindow=1", v)
		}
	}
}

// TestCrashIsPermanentSleepIsNot pins the two down-time semantics.
func TestCrashIsPermanentSleepIsNot(t *testing.T) {
	s := NewState()
	if err := s.Reset(&Plan{Seed: 5, CrashFrac: 1, CrashWindow: 10}, 8); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 8; v++ {
		// Find the crash step; from there on the node must stay down.
		crashed := -1
		for step := 1; step <= 20; step++ {
			if s.NodeDown(step, v) {
				crashed = step
				break
			}
		}
		if crashed == -1 || crashed > 10 {
			t.Fatalf("node %d crash step %d outside [1, 10]", v, crashed)
		}
		for step := crashed; step <= crashed+20; step++ {
			if !s.NodeDown(step, v) {
				t.Fatalf("node %d rose from the dead at step %d", v, step)
			}
		}
	}

	if err := s.Reset(&Plan{Seed: 5, SleepFrac: 1, SleepPeriod: 4, SleepAwake: 2}, 8); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 8; v++ {
		downs, ups := 0, 0
		for step := 1; step <= 40; step++ {
			if s.NodeDown(step, v) {
				downs++
			} else {
				ups++
			}
			if s.Crashed(step, v) {
				t.Fatalf("sleeper %d reported crashed", v)
			}
		}
		// Awake 2 of every 4 steps: exactly half over 10 full periods.
		if downs != 20 || ups != 20 {
			t.Fatalf("node %d duty cycle: %d down / %d up, want 20/20", v, downs, ups)
		}
	}
}

// TestChurnIsWindowed: within one window the link state is constant; across
// many windows both states occur.
func TestChurnIsWindowed(t *testing.T) {
	s := NewState()
	const window = 7
	if err := s.Reset(&Plan{Seed: 11, ChurnProb: 0.5, ChurnWindow: window}, 4); err != nil {
		t.Fatal(err)
	}
	sawDown, sawUp := false, false
	for w := 0; w < 40; w++ {
		first := s.LinkDown(w*window, 1, 2)
		for off := 1; off < window; off++ {
			if s.LinkDown(w*window+off, 1, 2) != first {
				t.Fatalf("window %d: link state flipped mid-window", w)
			}
		}
		if first {
			sawDown = true
		} else {
			sawUp = true
		}
		// Churn is symmetric on the pair.
		if s.LinkDown(w*window, 2, 1) != first {
			t.Fatalf("window %d: churn not symmetric", w)
		}
	}
	if !sawDown || !sawUp {
		t.Fatalf("churn at p=0.5 never changed state over 40 windows (down=%v up=%v)", sawDown, sawUp)
	}
}

// TestRatesLandNearProbabilities sanity-checks the keyed mixing function:
// empirical frequencies over many draws sit near the configured rates.
func TestRatesLandNearProbabilities(t *testing.T) {
	s := NewState()
	plan := &Plan{Seed: 123, LinkLoss: 0.25, Jammers: []int{1}, JamProb: 0.4}
	if err := s.Reset(plan, 4); err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	loss, jam := 0, 0
	for step := 1; step <= trials; step++ {
		if s.LinkDown(step, 0, 2) {
			loss++
		}
		if s.JamAt(step, 1) {
			jam++
		}
		if s.JamAt(step, 2) {
			t.Fatal("non-jammer node emitted noise")
		}
	}
	if f := float64(loss) / trials; f < 0.23 || f > 0.27 {
		t.Errorf("loss frequency %.3f far from 0.25", f)
	}
	if f := float64(jam) / trials; f < 0.38 || f > 0.42 {
		t.Errorf("jam frequency %.3f far from 0.4", f)
	}
}

// TestSeedIndependence: different plan seeds give different patterns, and
// the models are keyed independently (changing the jammer list does not
// perturb the loss pattern).
func TestSeedIndependence(t *testing.T) {
	a, b := NewState(), NewState()
	if err := a.Reset(&Plan{Seed: 1, LinkLoss: 0.5}, 8); err != nil {
		t.Fatal(err)
	}
	if err := b.Reset(&Plan{Seed: 2, LinkLoss: 0.5}, 8); err != nil {
		t.Fatal(err)
	}
	same := 0
	const steps = 2000
	for step := 1; step <= steps; step++ {
		if a.LinkDown(step, 0, 1) == b.LinkDown(step, 0, 1) {
			same++
		}
	}
	if same == steps {
		t.Fatal("seeds 1 and 2 produced identical loss patterns")
	}

	c := NewState()
	if err := c.Reset(&Plan{Seed: 1, LinkLoss: 0.5, Jammers: []int{3}, JamProb: 0.9}, 8); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= steps; step++ {
		if a.LinkDown(step, 0, 1) != c.LinkDown(step, 0, 1) {
			t.Fatalf("adding a jammer changed the loss pattern at step %d", step)
		}
	}
}
