package selective

import (
	"testing"

	"adhocradio/internal/rng"
)

func TestMinimalSizeTinyCases(t *testing.T) {
	// (m,1): X are singletons; the full universe set selects each singleton
	// singly, so one set suffices.
	size, f, err := MinimalSize(4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if size != 1 {
		t.Fatalf("(4,1) minimal size %d, want 1", size)
	}
	if ok, bad := f.IsSelective(1); !ok {
		t.Fatalf("returned family not selective, witness %v", bad)
	}
}

func TestMinimalSizeM2K2(t *testing.T) {
	// m=2, k=2: X ∈ {{0},{1},{0,1}}; a single set cannot select both
	// {0,1} (needs |X∩F|=1) and... {0} alone handles {0} and {0,1}; {1}
	// remains. So 2 sets are needed and sufficient.
	size, f, err := MinimalSize(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if size != 2 {
		t.Fatalf("(2,2) minimal size %d, want 2", size)
	}
	if ok, _ := f.IsSelective(2); !ok {
		t.Fatal("family not selective")
	}
}

func TestMinimalFamiliesAreSelectiveAndMinimal(t *testing.T) {
	cases := []struct{ m, k int }{{3, 2}, {4, 2}, {5, 2}, {4, 3}, {5, 3}}
	for _, c := range cases {
		size, f, err := MinimalSize(c.m, c.k, 12)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.m, c.k, err)
		}
		if ok, bad := f.IsSelective(c.k); !ok {
			t.Fatalf("(%d,%d): family of size %d not selective (witness %v)", c.m, c.k, size, bad)
		}
		// Minimality: no family of size-1 exists (the search already
		// proved it by failing at smaller sizes, but cross-check against
		// the CMS lower bound).
		if size < CMSLowerBound(c.m, c.k) {
			t.Fatalf("(%d,%d): minimal size %d below the CMS bound %d — bound implementation wrong",
				c.m, c.k, size, CMSLowerBound(c.m, c.k))
		}
		t.Logf("(%d,%d): minimal selective family size = %d (CMS bound %d)", c.m, c.k, size, CMSLowerBound(c.m, c.k))
	}
}

func TestMinimalSizeGrowsWithK(t *testing.T) {
	s2, _, err := MinimalSize(5, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	s4, _, err := MinimalSize(5, 4, 14)
	if err != nil {
		t.Fatal(err)
	}
	if s4 < s2 {
		t.Fatalf("minimal size decreased with k: %d -> %d", s2, s4)
	}
}

func TestMinimalSizeErrors(t *testing.T) {
	if _, _, err := MinimalSize(0, 1, 3); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, _, err := MinimalSize(20, 2, 3); err == nil {
		t.Fatal("huge m accepted")
	}
	if _, _, err := MinimalSize(4, 4, 0); err == nil {
		t.Fatal("impossible budget accepted")
	}
}

func TestGreedyNotFarFromMinimal(t *testing.T) {
	// The greedy construction should land within a small factor of the
	// true minimum on tiny instances.
	size, _, err := MinimalSize(5, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	f, err := GreedyConstruct(5, 2, newTestRand())
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() > 8*size {
		t.Fatalf("greedy used %d sets vs minimal %d", f.Len(), size)
	}
}

// newTestRand avoids importing rng at every call site above.
func newTestRand() *rng.Source { return rng.New(99) }
