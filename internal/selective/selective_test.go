package selective

import (
	"testing"
	"testing/quick"

	"adhocradio/internal/bitset"
	"adhocradio/internal/rng"
)

func setOf(elements ...int) *bitset.Set {
	s := bitset.New(8)
	for _, e := range elements {
		s.Add(e)
	}
	return s
}

func TestSelectsSingly(t *testing.T) {
	f := NewFamily(6)
	f.Add([]int{0, 1})
	f.Add([]int{2})
	if !f.SelectsSingly(setOf(2, 3)) { // {2} hits it singly
		t.Fatal("missed single selection")
	}
	if f.SelectsSingly(setOf(0, 1)) { // {0,1} hits both or none
		t.Fatal("false single selection")
	}
}

func TestIsSelectiveSingletons(t *testing.T) {
	// The family of all singletons is (m,k)-selective for every k.
	f := NewFamily(5)
	for e := 0; e < 5; e++ {
		f.Add([]int{e})
	}
	ok, bad := f.IsSelective(5)
	if !ok {
		t.Fatalf("singleton family rejected, witness %v", bad)
	}
}

func TestIsSelectiveFindsWitness(t *testing.T) {
	// One set {0,1}: X={0,1} is hit twice, X={2} not at all.
	f := NewFamily(3)
	f.Add([]int{0, 1})
	ok, bad := f.IsSelective(2)
	if ok {
		t.Fatal("non-selective family accepted")
	}
	if len(bad) == 0 {
		t.Fatal("no witness returned")
	}
	x := bitset.New(3)
	for _, e := range bad {
		x.Add(e)
	}
	if f.SelectsSingly(x) {
		t.Fatalf("returned witness %v is singly selected", bad)
	}
}

func TestEmptyFamilyNotSelective(t *testing.T) {
	f := NewFamily(4)
	ok, bad := f.IsSelective(2)
	if ok || len(bad) != 1 {
		t.Fatalf("empty family: ok=%v witness=%v", ok, bad)
	}
}

func TestWitnessAgreesWithExactCheck(t *testing.T) {
	// Property: Witness over the full universe finds an X iff IsSelective
	// says the family is not selective, and any returned X really is
	// unselected.
	src := rng.New(42)
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		m := 4 + r.Intn(8)
		k := 2 + r.Intn(3)
		fam := NewFamily(m)
		numSets := r.Intn(6)
		for i := 0; i < numSets; i++ {
			s := bitset.New(m)
			for e := 0; e < m; e++ {
				if r.Bool() {
					s.Add(e)
				}
			}
			fam.AddSet(s)
		}
		candidates := make([]int, m)
		for i := range candidates {
			candidates[i] = i
		}
		w := Witness(fam.Sets, candidates, k)
		ok, _ := fam.IsSelective(k)
		if ok != (w == nil) {
			return false
		}
		if w != nil {
			if len(w) == 0 || len(w) > k {
				return false
			}
			x := bitset.New(m)
			for _, e := range w {
				x.Add(e)
			}
			if fam.SelectsSingly(x) {
				return false
			}
		}
		return true
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessRestrictedCandidates(t *testing.T) {
	// Universe {0..5}; family selects everything containing 0 or 1 singly,
	// but candidates {2,3} are invisible to the family: {2} is a witness.
	fam := []*bitset.Set{setOf(0), setOf(1)}
	w := Witness(fam, []int{2, 3}, 2)
	if len(w) != 1 || (w[0] != 2 && w[0] != 3) {
		t.Fatalf("witness = %v", w)
	}
}

func TestWitnessNilWhenSelective(t *testing.T) {
	// Singletons over the candidate pool: no witness exists.
	fam := []*bitset.Set{setOf(4), setOf(7)}
	if w := Witness(fam, []int{4, 7}, 2); w != nil {
		t.Fatalf("unexpected witness %v", w)
	}
}

func TestWitnessNeedsPair(t *testing.T) {
	// family = {{4},{7}} with candidates {4,7,9} and k=2: {9} works (in no
	// set). With candidates {4,7} witness must pair... {4,7}: set {4} hits
	// it singly -> actually selected. So nil. With family {{4,7}} the pair
	// {4,7} is hit twice: witness.
	fam := []*bitset.Set{setOf(4, 7)}
	w := Witness(fam, []int{4, 7}, 2)
	if len(w) != 2 {
		t.Fatalf("witness = %v, want the pair", w)
	}
}

func TestWitnessBudgetRespected(t *testing.T) {
	// k=1 but every singleton is selected: must return nil even though a
	// pair would work.
	fam := []*bitset.Set{setOf(0, 1)}
	if w := Witness(fam, []int{0, 1}, 1); w != nil {
		t.Fatalf("k=1 witness = %v", w)
	}
	if w := Witness(fam, []int{0, 1}, 2); len(w) != 2 {
		t.Fatalf("k=2 witness = %v", w)
	}
}

func TestGreedyConstructSmall(t *testing.T) {
	src := rng.New(7)
	for _, tc := range []struct{ m, k int }{{6, 2}, {10, 3}, {12, 2}} {
		f, err := GreedyConstruct(tc.m, tc.k, src)
		if err != nil {
			t.Fatalf("(%d,%d): %v", tc.m, tc.k, err)
		}
		if ok, bad := f.IsSelective(tc.k); !ok {
			t.Fatalf("(%d,%d): constructed family not selective, witness %v", tc.m, tc.k, bad)
		}
	}
}

func TestGreedySizeAboveCMSBound(t *testing.T) {
	// Sanity on the bound function and that real selective families respect
	// it (they must: it is a lower bound).
	src := rng.New(9)
	f, err := GreedyConstruct(12, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() < CMSLowerBound(12, 3) {
		t.Fatalf("family of size %d below CMS bound %d: bound or construction broken",
			f.Len(), CMSLowerBound(12, 3))
	}
}

func TestCMSLowerBoundShape(t *testing.T) {
	if CMSLowerBound(1, 5) != 1 || CMSLowerBound(100, 1) != 1 {
		t.Fatal("degenerate bounds wrong")
	}
	// Grows with m and k.
	if CMSLowerBound(1<<20, 64) <= CMSLowerBound(1<<10, 64) {
		t.Fatal("bound not increasing in m")
	}
	if CMSLowerBound(1<<20, 256) <= CMSLowerBound(1<<20, 16) {
		t.Fatal("bound not increasing in k")
	}
}

func TestAddCapped(t *testing.T) {
	// Set 0 and 2 in sig; take 1 twice should cap at 2.
	var counts uint64
	counts = addCapped(counts, 0b101, 1, 3)
	counts = addCapped(counts, 0b101, 1, 3)
	counts = addCapped(counts, 0b101, 5, 3) // huge take still caps
	if (counts>>0)&3 != 2 || (counts>>2)&3 != 0 || (counts>>4)&3 != 2 {
		t.Fatalf("counts = %b", counts)
	}
}
