package selective

import (
	"testing"

	"adhocradio/internal/bitset"
)

// FuzzWitness feeds arbitrary small families and checks that any witness
// returned is genuinely unselected, within budget, and drawn from the
// candidate pool — and that the search never panics.
func FuzzWitness(f *testing.F) {
	f.Add(uint64(0b1010_0101), uint8(2), uint8(3))
	f.Add(uint64(0xffff), uint8(4), uint8(2))
	f.Add(uint64(0), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, setBits uint64, numSetsRaw, kRaw uint8) {
		const universe = 12
		numSets := int(numSetsRaw%5) + 1
		k := int(kRaw%4) + 1
		family := make([]*bitset.Set, numSets)
		for i := range family {
			s := bitset.New(universe)
			for e := 0; e < universe; e++ {
				if setBits>>(uint(i*7+e)%64)&1 == 1 {
					s.Add(e)
				}
			}
			family[i] = s
		}
		candidates := make([]int, universe)
		for i := range candidates {
			candidates[i] = i
		}
		w := Witness(family, candidates, k)
		if w == nil {
			return
		}
		if len(w) == 0 || len(w) > k {
			t.Fatalf("witness size %d out of [1,%d]", len(w), k)
		}
		x := bitset.New(universe)
		for _, e := range w {
			if e < 0 || e >= universe {
				t.Fatalf("witness element %d outside pool", e)
			}
			x.Add(e)
		}
		for i, s := range family {
			if s.IntersectionCount(x) == 1 {
				t.Fatalf("witness %v singly selected by set %d", w, i)
			}
		}
	})
}
