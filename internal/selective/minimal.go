package selective

import (
	"fmt"

	"adhocradio/internal/bitset"
)

// MinimalSize computes, by exhaustive branch-and-bound over candidate sets,
// the exact minimum size of an (m,k)-selective family over the universe
// {0..m-1}. Only practical for tiny parameters (m <= ~8); it exists to
// validate CMSLowerBound empirically and to give tests ground truth.
//
// The search treats member sets up to the symmetry that only their
// intersection pattern with small X matters, and prunes on the remaining
// budget. It returns the size and one witness family.
func MinimalSize(m, k, maxSize int) (int, *Family, error) {
	if m < 1 || k < 1 {
		return 0, nil, fmt.Errorf("selective: bad parameters m=%d k=%d", m, k)
	}
	if m > 12 {
		return 0, nil, fmt.Errorf("selective: m=%d too large for exhaustive search", m)
	}
	if k > m {
		k = m
	}
	targets := enumerateTargets(m, k)

	// Candidate member sets: all non-empty subsets of the universe. (The
	// empty set never selects anything.)
	numCandidates := (1 << uint(m)) - 1

	// covers[s] = bitmask over targets singly selected by subset s.
	covers := make([][]uint64, numCandidates+1)
	words := (len(targets) + 63) / 64
	for s := 1; s <= numCandidates; s++ {
		cv := make([]uint64, words)
		for ti, x := range targets {
			if popcount(uint32(s)&x) == 1 {
				cv[ti/64] |= 1 << uint(ti%64)
			}
		}
		covers[s] = cv
	}
	full := make([]uint64, words)
	for ti := range targets {
		full[ti/64] |= 1 << uint(ti%64)
	}

	for size := 0; size <= maxSize; size++ {
		if sets, ok := searchCover(covers, full, words, size, numCandidates); ok {
			f := NewFamily(m)
			for _, s := range sets {
				b := bitset.New(m)
				for e := 0; e < m; e++ {
					if s&(1<<uint(e)) != 0 {
						b.Add(e)
					}
				}
				f.AddSet(b)
			}
			return size, f, nil
		}
	}
	return 0, nil, fmt.Errorf("selective: no (%d,%d)-selective family of size <= %d", m, k, maxSize)
}

// enumerateTargets lists every non-empty X ⊆ {0..m-1} with |X| <= k as a
// bitmask.
func enumerateTargets(m, k int) []uint32 {
	var out []uint32
	for x := uint32(1); x < 1<<uint(m); x++ {
		if popcount(x) <= k {
			out = append(out, x)
		}
	}
	return out
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// searchCover looks for `size` candidate sets whose covers union to full.
// Classic set-cover DFS with a greedy bound: order is by first uncovered
// target, branching over candidates covering it.
func searchCover(covers [][]uint64, full []uint64, words, size, numCandidates int) ([]uint32, bool) {
	covered := make([]uint64, words)
	var chosen []uint32
	var dfs func(remaining int) bool
	dfs = func(remaining int) bool {
		// First uncovered target.
		ti := -1
		for w := 0; w < words; w++ {
			if miss := full[w] &^ covered[w]; miss != 0 {
				b := 0
				for miss&1 == 0 {
					miss >>= 1
					b++
				}
				ti = w*64 + b
				break
			}
		}
		if ti == -1 {
			return true
		}
		if remaining == 0 {
			return false
		}
		for s := 1; s <= numCandidates; s++ {
			cv := covers[s]
			if cv[ti/64]&(1<<uint(ti%64)) == 0 {
				continue
			}
			// Apply.
			saved := make([]uint64, words)
			copy(saved, covered)
			progress := false
			for w := 0; w < words; w++ {
				nw := covered[w] | cv[w]
				if nw != covered[w] {
					progress = true
				}
				covered[w] = nw
			}
			if progress {
				chosen = append(chosen, uint32(s))
				if dfs(remaining - 1) {
					return true
				}
				chosen = chosen[:len(chosen)-1]
			}
			copy(covered, saved)
		}
		return false
	}
	if dfs(size) {
		return append([]uint32(nil), chosen...), true
	}
	return nil, false
}
