// Package selective implements (m,k)-selective families, the combinatorial
// object behind the paper's deterministic lower bound (Section 3).
//
// A family F of subsets of a universe U is (m,k)-selective (m = |U|) when
// for every non-empty X ⊆ U with |X| <= k some member F ∈ F selects X
// singly: |X ∩ F| = 1. The lower bound of Clementi, Monti and Silvestri
// (reference [10]) says any (m,k)-selective family has size
// Ω(k·log m / log k); the adversary of Section 3 runs few enough jamming
// steps that its transmit-set family stays below that size, so a witness X*
// of non-selectivity exists, and X* becomes the hidden sub-layer L*_{2i+1}.
package selective

import (
	"fmt"
	"math"
	"sort"

	"adhocradio/internal/bitset"
	"adhocradio/internal/rng"
)

// Family is a finite family of subsets of the universe {0, ..., Universe-1}.
type Family struct {
	Universe int
	Sets     []*bitset.Set
}

// NewFamily returns a family over a universe of the given size.
func NewFamily(universe int) *Family {
	return &Family{Universe: universe}
}

// Add appends a set given by its elements.
func (f *Family) Add(elements []int) {
	s := bitset.New(f.Universe)
	for _, e := range elements {
		s.Add(e)
	}
	f.Sets = append(f.Sets, s)
}

// AddSet appends a prebuilt set (not copied).
func (f *Family) AddSet(s *bitset.Set) { f.Sets = append(f.Sets, s) }

// Len returns the number of member sets.
func (f *Family) Len() int { return len(f.Sets) }

// SelectsSingly reports whether some member selects X singly (|X ∩ F| = 1).
func (f *Family) SelectsSingly(x *bitset.Set) bool {
	for _, s := range f.Sets {
		if s.IntersectionCount(x) == 1 {
			return true
		}
	}
	return false
}

// IsSelective exhaustively checks (Universe,k)-selectivity and returns the
// lexicographically-first violating X when the family is not selective.
// Cost grows like C(Universe, <=k); callers should keep Universe small
// (tests use Universe <= ~24).
func (f *Family) IsSelective(k int) (bool, []int) {
	x := bitset.New(f.Universe)
	var cur []int
	var rec func(next, size int) []int
	rec = func(next, size int) []int {
		if size > 0 && !f.SelectsSingly(x) {
			return append([]int(nil), cur...)
		}
		if size == k {
			return nil
		}
		for e := next; e < f.Universe; e++ {
			x.Add(e)
			cur = append(cur, e)
			if bad := rec(e+1, size+1); bad != nil {
				return bad
			}
			cur = cur[:len(cur)-1]
			x.Remove(e)
		}
		return nil
	}
	if bad := rec(0, 0); bad != nil {
		return false, bad
	}
	return true, nil
}

// CMSLowerBound returns the Clementi–Monti–Silvestri lower bound (with the
// 1/8 constant the paper's Section 3 budget is tuned against) on the size
// of any (m,k)-selective family: k·log2(m) / (8·log2(k)), for k >= 2.
func CMSLowerBound(m, k int) int {
	if m < 2 || k < 2 {
		return 1
	}
	return int(float64(k) * math.Log2(float64(m)) / (8 * math.Log2(float64(k))))
}

// Witness searches for a non-empty X with |X| <= k drawn from candidates
// such that no member of the family selects X singly; it returns nil when
// every such X is singly selected (i.e. the family restricted to the
// candidate pool is selective). This is the exact search the Section 3
// adversary uses to pick L*_{2i+1} ⊆ B_l(p*).
//
// The search groups candidates by signature (which member sets contain
// them): two candidates with equal signatures are interchangeable, and
// taking more than two from one group never changes feasibility, so the
// effective search space is 3^(#groups) capped by the budget k — small for
// the family sizes the adversary produces. Memoization on capped per-set
// counts keeps worst cases polynomial in practice.
func Witness(family []*bitset.Set, candidates []int, k int) []int {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	// Drop member sets that contain no candidate: they can never select
	// any X ⊆ candidates singly.
	var live []*bitset.Set
	for _, s := range family {
		for _, c := range candidates {
			if s.Contains(c) {
				live = append(live, s)
				break
			}
		}
	}
	if len(live) == 0 {
		// No set can select anything: any single candidate is a witness.
		return []int{candidates[0]}
	}
	if len(live) > 62 {
		// Signatures no longer fit one word; the adversary never gets
		// close (family size ~ k·log n / (8 log k)). Fall back to a greedy
		// randomized search rather than failing outright.
		return witnessRandomized(live, candidates, k)
	}

	type group struct {
		sig    uint64
		sample []int // up to 2 representative candidates
	}
	groupIdx := map[uint64]int{}
	var groups []group
	for _, c := range candidates {
		var sig uint64
		for i, s := range live {
			if s.Contains(c) {
				sig |= 1 << uint(i)
			}
		}
		gi, ok := groupIdx[sig]
		if !ok {
			gi = len(groups)
			groupIdx[sig] = gi
			groups = append(groups, group{sig: sig})
		}
		if len(groups[gi].sample) < 2 {
			groups[gi].sample = append(groups[gi].sample, c)
		}
	}
	// A candidate in no live set is a one-element witness.
	if gi, ok := groupIdx[0]; ok {
		return []int{groups[gi].sample[0]}
	}

	// DFS over groups choosing 0, 1 or 2 members each, tracking per-set
	// counts capped at 2 (2 and "more" are equivalent for the ≠1 test).
	nSets := len(live)
	type key struct {
		gi     int
		counts uint64 // 2 bits per set, capped at 2
		budget int
		used   bool
	}
	seen := map[key]bool{}
	var pick []int
	var dfs func(gi int, counts uint64, budget int, used bool) bool
	dfs = func(gi int, counts uint64, budget int, used bool) bool {
		if gi == len(groups) {
			if !used {
				return false
			}
			for i := 0; i < nSets; i++ {
				if (counts>>(2*uint(i)))&3 == 1 {
					return false
				}
			}
			return true
		}
		k0 := key{gi, counts, budget, used}
		if seen[k0] {
			return false
		}
		g := groups[gi]
		maxTake := len(g.sample)
		if maxTake > budget {
			maxTake = budget
		}
		for take := 0; take <= maxTake; take++ {
			nc := counts
			if take > 0 {
				nc = addCapped(counts, g.sig, take, nSets)
			}
			if dfs(gi+1, nc, budget-take, used || take > 0) {
				if take > 0 {
					pick = append(pick, g.sample[:take]...)
				}
				return true
			}
		}
		seen[k0] = true
		return false
	}
	if dfs(0, 0, k, false) {
		sort.Ints(pick)
		return pick
	}
	return nil
}

// addCapped adds `take` to the 2-bit counter of every set in sig, capping
// each counter at 2.
func addCapped(counts, sig uint64, take, nSets int) uint64 {
	for i := 0; i < nSets; i++ {
		if sig&(1<<uint(i)) == 0 {
			continue
		}
		shift := 2 * uint(i)
		c := (counts >> shift) & 3
		c += uint64(take)
		if c > 2 {
			c = 2
		}
		counts = counts&^(3<<shift) | c<<shift
	}
	return counts
}

// witnessRandomized is a fallback witness search for oversized families:
// random subsets of the candidates with greedy repair. Returns nil after a
// bounded number of attempts.
func witnessRandomized(family []*bitset.Set, candidates []int, k int) []int {
	src := rng.New(0x5eed)
	x := bitset.New(0)
	for attempt := 0; attempt < 2000; attempt++ {
		x.Clear()
		size := 1 + src.Intn(k)
		for _, idx := range src.Sample(len(candidates), min(size, len(candidates))) {
			x.Add(candidates[idx])
		}
		ok := true
		for _, s := range family {
			if s.IntersectionCount(x) == 1 {
				ok = false
				break
			}
		}
		if ok && !x.Empty() {
			return x.Elements()
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// GreedyConstruct builds an (m,k)-selective family by drawing random sets
// of geometric densities and keeping those that reduce the number of
// unselected X, verifying exact selectivity at the end. Intended for small
// m (tests and demonstrations); returns an error when it fails to converge.
func GreedyConstruct(m, k int, src *rng.Source) (*Family, error) {
	if m < 1 || k < 1 {
		return nil, fmt.Errorf("selective: bad parameters m=%d k=%d", m, k)
	}
	f := NewFamily(m)
	// Densities 1, 1/2, 1/4, ...: a random set of density ~1/|X| selects X
	// singly with constant probability.
	for budget := 0; budget < 64*k*(1+intLog2(m)); budget++ {
		ok, _ := f.IsSelective(k)
		if ok {
			return f, nil
		}
		density := 1 << uint(src.Intn(intLog2(m)+1))
		s := bitset.New(m)
		for e := 0; e < m; e++ {
			if src.Intn(density) == 0 {
				s.Add(e)
			}
		}
		f.AddSet(s)
	}
	if ok, _ := f.IsSelective(k); ok {
		return f, nil
	}
	return nil, fmt.Errorf("selective: greedy construction for (%d,%d) did not converge", m, k)
}

func intLog2(x int) int {
	l := 0
	for 1<<uint(l+1) <= x {
		l++
	}
	return l
}
