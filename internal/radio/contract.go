package radio

import (
	"fmt"
	"sync"
)

// ContractViolationError reports a breach of the NodeProgram calling
// contract observed by WithContractChecks.
type ContractViolationError struct {
	Node   int
	Step   int
	Reason string
}

// Error implements error.
func (e *ContractViolationError) Error() string {
	return fmt.Sprintf("radio: contract violation at node %d, step %d: %s", e.Node, e.Step, e.Reason)
}

// WithContractChecks wraps a protocol so that every node program asserts
// the simulator↔program contract at run time:
//
//   - Act(t) is called at most once per step, with strictly increasing t;
//   - Deliver(t, m) refers to the current step (never the past), and a
//     program never receives a message in a step where it transmitted
//     (half-duplex);
//   - the first call a non-source program sees is a Deliver (a node cannot
//     act before it is informed), unless the protocol declares spontaneous
//     transmissions.
//
// Violations are reported through the callback (tests pass t.Errorf-like
// sinks); the wrapped program keeps working so a single run surfaces every
// breach. Protocol authors run their implementation through this wrapper in
// tests; the repository's own suites do the same for every built-in
// protocol — and the Section 3 adversary's replay discipline is checked
// with it too.
func WithContractChecks(p Protocol, report func(error)) Protocol {
	cp := &contractProtocol{inner: p, report: report}
	if _, ok := p.(NeighborAwareProtocol); ok {
		return &contractProtocolNA{contractProtocol: cp}
	}
	return cp
}

type contractProtocol struct {
	inner  Protocol
	report func(error)
	mu     sync.Mutex
}

func (c *contractProtocol) Name() string { return c.inner.Name() }

// Spontaneous forwards the inner protocol's spontaneity declaration.
func (c *contractProtocol) Spontaneous() bool {
	sp, ok := c.inner.(SpontaneousProtocol)
	return ok && sp.Spontaneous()
}

func (c *contractProtocol) Deterministic() bool {
	d, ok := c.inner.(DeterministicProtocol)
	return ok && d.Deterministic()
}

func (c *contractProtocol) NewNode(label int, cfg Config) NodeProgram {
	return c.wrap(label, c.inner.NewNode(label, cfg))
}

func (c *contractProtocol) wrap(label int, prog NodeProgram) NodeProgram {
	return &contractNode{
		inner:       prog,
		label:       label,
		report:      c.syncReport,
		spontaneous: c.Spontaneous(),
	}
}

// syncReport serializes violation reports across node programs: parallel
// harnesses drive different nodes from different goroutines, and the
// callbacks tests pass (appending to a shared slice, say) are not
// necessarily safe to call concurrently.
func (c *contractProtocol) syncReport(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report(err)
}

// contractProtocolNA adds the neighbor-aware constructor when the inner
// protocol has one.
type contractProtocolNA struct {
	*contractProtocol
}

func (c *contractProtocolNA) NewNodeWithNeighbors(label int, neighbors []int, cfg Config) NodeProgram {
	na := c.inner.(NeighborAwareProtocol)
	return c.wrap(label, na.NewNodeWithNeighbors(label, neighbors, cfg))
}

type contractNode struct {
	inner       NodeProgram
	label       int
	report      func(error)
	spontaneous bool

	lastActStep     int
	lastDeliverStep int
	transmittedAt   int // step of the most recent transmission; 0 none
	sawAnyCall      bool
	delivered       bool
}

func (n *contractNode) violate(step int, format string, args ...any) {
	n.report(&ContractViolationError{Node: n.label, Step: step, Reason: fmt.Sprintf(format, args...)})
}

// Act implements NodeProgram with assertions.
func (n *contractNode) Act(t int) (bool, any) {
	if t <= 0 {
		n.violate(t, "Act with non-positive step")
	}
	if t <= n.lastActStep {
		n.violate(t, "Act steps not strictly increasing (previous %d)", n.lastActStep)
	}
	if !n.sawAnyCall && n.label != 0 && !n.spontaneous && !n.delivered {
		n.violate(t, "Act before any Deliver on a non-source node")
	}
	n.sawAnyCall = true
	n.lastActStep = t
	tx, payload := n.inner.Act(t)
	if tx {
		n.transmittedAt = t
	}
	return tx, payload
}

// Deliver implements NodeProgram with assertions.
func (n *contractNode) Deliver(t int, msg Message) {
	if t < n.lastDeliverStep {
		n.violate(t, "Deliver steps went backwards (previous %d)", n.lastDeliverStep)
	}
	if t < n.lastActStep {
		n.violate(t, "Deliver for a step before the last Act (%d)", n.lastActStep)
	}
	if n.transmittedAt == t {
		n.violate(t, "Deliver in a step the node transmitted (half-duplex breach)")
	}
	if msg.From == n.label {
		n.violate(t, "node received its own transmission")
	}
	n.sawAnyCall = true
	n.delivered = true
	n.lastDeliverStep = t
	n.inner.Deliver(t, msg)
}

// DeliverCollision forwards the collision-detection variant.
func (n *contractNode) DeliverCollision(t int) {
	if cl, ok := n.inner.(CollisionListener); ok {
		cl.DeliverCollision(t)
	}
}
