package radio

import (
	"errors"
	"testing"

	"adhocradio/internal/fault"
	"adhocradio/internal/graph"
	"adhocradio/internal/rng"
)

// labelOnly is a payload that does not carry the source message (the shape
// of Section 4's Echo replies): hearing one must not inform a node.
type labelOnly struct{ from int }

func (labelOnly) CarriesSourceMessage() bool { return false }

// mixed is a deterministic protocol that interleaves carrier and label-only
// transmissions on a label-dependent schedule, exercising every delivery
// rule: collisions, half-duplex, and the SourceCarrier gate.
type mixed struct{}

func (mixed) Name() string { return "mixed" }
func (mixed) NewNode(label int, cfg Config) NodeProgram {
	return &mixedNode{label: label}
}

type mixedNode struct{ label int }

func (n *mixedNode) Act(t int) (bool, any) {
	switch (t + n.label) % 4 {
	case 0:
		return true, nil // carrier (nil payloads always carry the source message)
	case 1:
		return true, labelOnly{from: n.label}
	default:
		return false, nil
	}
}
func (n *mixedNode) Deliver(t int, msg Message) {}

// fuzzGraph deterministically derives a small broadcastable topology from
// the fuzz input.
func fuzzGraph(gseed uint64, kind uint8, n int) *graph.Graph {
	src := rng.New(gseed)
	switch kind % 5 {
	case 0:
		return graph.GNPConnected(n, 3.0/float64(n), src)
	case 1:
		return graph.RandomTree(n, src)
	case 2:
		g, err := graph.RandomLayered(n, 2+int(gseed%5), 0.3, src)
		if err != nil {
			return graph.Path(n)
		}
		return g
	case 3:
		g, err := graph.DirectedLayered(n, 2+int(gseed%5), 0.3, src)
		if err != nil {
			return graph.Path(n)
		}
		return g
	default:
		return graph.GNPConnected(n, 0.2, src)
	}
}

// fuzzPlan derives a fault plan from three fuzz bytes. All-zero bytes mean
// no plan at all (the fault-free hot path); otherwise lossB packs link loss
// and churn, crashB packs crash and sleep fractions, jamB packs the jam
// probability and a jammer host.
func fuzzPlan(pseed uint64, n int, lossB, crashB, jamB uint8) *fault.Plan {
	if lossB == 0 && crashB == 0 && jamB == 0 {
		return nil
	}
	plan := &fault.Plan{
		Seed:      pseed ^ 0x9e3779b97f4a7c15,
		LinkLoss:  float64(lossB&0x3f) / 100, // [0, 0.63]
		ChurnProb: float64(lossB>>6) / 4,     // {0, 0.25, 0.5, 0.75}
		CrashFrac: float64(crashB&0x0f) / 32, // [0, ~0.47]
		SleepFrac: float64(crashB>>4) / 20,   // [0, 0.75]
		JamProb:   float64(jamB&0x0f) / 16,   // [0, ~0.94]
	}
	if plan.ChurnProb > 0 {
		plan.ChurnWindow = 16
	}
	if plan.CrashFrac > 0 {
		plan.CrashWindow = 1 + n
	}
	if plan.SleepFrac > 0 {
		plan.SleepPeriod, plan.SleepAwake = 8, 5
	}
	if plan.JamProb > 0 {
		plan.Jammers = []int{int(jamB>>4) % n}
	}
	return plan
}

// FuzzRunVsReference is the differential fuzzer the hot loop is gated on:
// for random connected graphs, seeds, protocols (randomized coin,
// deterministic flood, SourceCarrier-mixing mixed, nil-payload nilFlood —
// the last being the only one eligible for the bit-parallel tally kernel),
// and fault plans derived from three extra bytes, the optimized CSR engine
// and the naive oracle must agree on every observable Result field AND on
// every obs.Counters field — including runs that hit the step budget.
func FuzzRunVsReference(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint8(0), uint8(20), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(2), uint64(9), uint8(1), uint8(40), uint8(1), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(3), uint64(11), uint8(2), uint8(33), uint8(2), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(4), uint64(13), uint8(3), uint8(48), uint8(0), uint8(12), uint8(0), uint8(0))
	f.Add(uint64(5), uint64(15), uint8(4), uint8(64), uint8(2), uint8(0x80), uint8(0), uint8(0))
	f.Add(uint64(6), uint64(17), uint8(0), uint8(2), uint8(1), uint8(0), uint8(0x35), uint8(0))
	f.Add(uint64(7), uint64(19), uint8(1), uint8(25), uint8(2), uint8(0), uint8(0), uint8(0x78))
	f.Add(uint64(8), uint64(21), uint8(4), uint8(50), uint8(0), uint8(0x4a), uint8(0x23), uint8(0xe7))
	// Dispatch-crossover seeds (mirrored as named files in
	// testdata/fuzz/FuzzRunVsReference/): dense GNP under nilFlood at the
	// bitplane word boundaries n=64 (one word) and n=65 (one spare bit) and
	// at the size cap n=80 drive the bit-parallel kernel; the sparse control
	// fails the BitmapDense gate; mixed flips allNil (and so the dispatch)
	// per step; the fault-plan variant must bypass the kernel via tallyFaulty.
	f.Add(uint64(9), uint64(23), uint8(4), uint8(62), uint8(3), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(10), uint64(25), uint8(4), uint8(63), uint8(3), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(11), uint64(27), uint8(4), uint8(78), uint8(3), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(12), uint64(29), uint8(0), uint8(62), uint8(3), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(13), uint64(31), uint8(4), uint8(62), uint8(2), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(14), uint64(33), uint8(4), uint8(78), uint8(3), uint8(0x22), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, gseed, pseed uint64, kind, size, proto, lossB, crashB, jamB uint8) {
		n := 2 + int(size)%79 // [2, 80]
		g := fuzzGraph(gseed, kind, n)
		plan := fuzzPlan(pseed, n, lossB, crashB, jamB)
		var p Protocol
		switch proto % 4 {
		case 0:
			p = coin{}
		case 1:
			p = flood{}
		case 2:
			p = mixed{}
		default:
			// nilFlood transmits nil payloads only, so on bitmap-dense
			// inputs it drives the bit-parallel tally kernel and, around
			// the dispatch thresholds, the scalar/bitset crossover.
			p = nilFlood{}
		}
		// A finite budget keeps livelocking combinations (flood on a
		// colliding front) bounded; both simulators must then agree on the
		// partial result and on hitting the limit at all.
		const budget = 4096
		cfg := Config{Seed: pseed}
		var runner Runner
		fast, fastErr := runner.Run(g, p, cfg, Options{MaxSteps: budget, Fault: plan})
		ref, refCounters, refErr := RunReferenceObserved(g, p, cfg, budget, plan)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("error mismatch: fast=%v ref=%v", fastErr, refErr)
		}
		if fastErr != nil {
			if !errors.Is(fastErr, ErrStepLimit) || !errors.Is(refErr, ErrStepLimit) {
				t.Fatalf("unexpected errors: fast=%v ref=%v", fastErr, refErr)
			}
		}
		if fast == nil || ref == nil {
			t.Fatalf("nil result without validation error: fast=%v ref=%v", fast, ref)
		}
		if fast.BroadcastTime != ref.BroadcastTime ||
			fast.Transmissions != ref.Transmissions ||
			fast.Receptions != ref.Receptions ||
			fast.Collisions != ref.Collisions {
			t.Fatalf("divergence on %s (n=%d kind=%d):\nfast %+v\nref  %+v",
				p.Name(), n, kind%5, fast, ref)
		}
		if eng := runner.Counters(); eng != refCounters {
			t.Fatalf("counter divergence on %s (n=%d kind=%d):\nengine    %+v\nreference %+v",
				p.Name(), n, kind%5, eng, refCounters)
		}
		for v := range fast.InformedAt {
			if fast.InformedAt[v] != ref.InformedAt[v] {
				t.Fatalf("%s: InformedAt[%d] = %d (optimized) vs %d (reference)",
					p.Name(), v, fast.InformedAt[v], ref.InformedAt[v])
			}
		}
	})
}
