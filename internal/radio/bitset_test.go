package radio

import (
	"errors"
	"testing"

	"adhocradio/internal/bitset"
	"adhocradio/internal/graph"
	"adhocradio/internal/rng"
)

// assertMatchesReference runs p through a reused Runner and through the
// naive oracle and requires every Result field and every obs.Counters field
// to agree — including runs where both sides exhaust the step budget (the
// livelocking dense workloads that keep the bit-parallel kernel on air hit
// ErrStepLimit by design).
func assertMatchesReference(t *testing.T, g *graph.Graph, p Protocol, cfg Config, maxSteps int) {
	t.Helper()
	r := NewRunner()
	fast, fastErr := r.Run(g, p, cfg, Options{MaxSteps: maxSteps})
	ref, refCounters, refErr := RunReferenceObserved(g, p, cfg, maxSteps, nil)
	if (fastErr == nil) != (refErr == nil) {
		t.Fatalf("error mismatch on %s: fast=%v ref=%v", p.Name(), fastErr, refErr)
	}
	if fastErr != nil && (!errors.Is(fastErr, ErrStepLimit) || !errors.Is(refErr, ErrStepLimit)) {
		t.Fatalf("unexpected errors on %s: fast=%v ref=%v", p.Name(), fastErr, refErr)
	}
	if fast.BroadcastTime != ref.BroadcastTime ||
		fast.Transmissions != ref.Transmissions ||
		fast.Receptions != ref.Receptions ||
		fast.Collisions != ref.Collisions ||
		fast.StepsSimulated != ref.StepsSimulated ||
		fast.Completed != ref.Completed {
		t.Fatalf("divergence on %s:\nfast %+v\nref  %+v", p.Name(), fast, ref)
	}
	for v := range fast.InformedAt {
		if fast.InformedAt[v] != ref.InformedAt[v] {
			t.Fatalf("%s: InformedAt[%d] = %d vs %d", p.Name(), v, fast.InformedAt[v], ref.InformedAt[v])
		}
	}
	if eng := r.Counters(); eng != refCounters {
		t.Fatalf("counter divergence on %s:\nengine    %+v\nreference %+v", p.Name(), eng, refCounters)
	}
}

// kernelLayered builds an n-node complete layered network {1, a, b} whose
// nil-payload flood livelocks with the whole first layer on air every step:
// layer 2 collides forever while layer 1 keeps receiving from the source,
// so every step mixes receptions and collisions through the bit-parallel
// kernel (T = 1+a transmitters, arcs ≈ n²/4, far over the dispatch
// threshold at these densities).
func kernelLayered(t *testing.T, n int) *graph.Graph {
	t.Helper()
	a := (n - 1) / 2
	g, err := graph.CompleteLayered([]int{1, a, n - 1 - a})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.BitmapDense(n, g.Edges()) {
		t.Fatalf("CompleteLayered n=%d unexpectedly not bitmap-dense (arcs=%d)", n, g.Edges())
	}
	return g
}

// TestBitsetKernelMatchesReference drives the bit-parallel tally path on
// dense livelocking graphs straddling every bitplane word boundary (one
// word, exactly full words, one spare bit) and requires exact agreement
// with the oracle on results and counters, including the matched
// step-limit outcome.
func TestBitsetKernelMatchesReference(t *testing.T) {
	for _, n := range []int{9, 63, 64, 65, 127, 128, 129, 200} {
		g := kernelLayered(t, n)
		words := bitset.Words(n)
		a := (n - 1) / 2
		if arcsT := a * (2 + (n - 1 - a)); arcsT < bitsetArcFactor*(1+a)*words {
			t.Fatalf("n=%d: livelocked step would not take the bitset path (arcs=%d, threshold=%d)",
				n, arcsT, bitsetArcFactor*(1+a)*words)
		}
		// nilFlood livelocks on the layered collision front: pure kernel
		// steps until the budget, both sides hitting ErrStepLimit together.
		assertMatchesReference(t, g, nilFlood{}, Config{}, 300)
		// coin sends payloads, so per-step dispatch stays on the scalar
		// paths; run it (budgeted — exactly-one-of-k among dense layers is
		// vanishingly rare, so coin livelocks here too) to cover the
		// payload side of the boundary.
		assertMatchesReference(t, g, coin{}, Config{Seed: uint64(n)}, 200)
	}
}

// TestBitsetKernelDenseGNP exercises the kernel on irregular dense
// topologies (no layered symmetry: rows have ragged popcounts, some words
// all-zero) across several seeds.
func TestBitsetKernelDenseGNP(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed)
		g := graph.GNPConnected(150, 0.3, src)
		if !graph.BitmapDense(g.N(), g.Edges()) {
			t.Fatalf("seed %d: GNP(150, 0.3) not bitmap-dense (arcs=%d)", seed, g.Edges())
		}
		assertMatchesReference(t, g, nilFlood{}, Config{}, 400)
		assertMatchesReference(t, g, mixed{}, Config{}, 400)
	}
}

// TestBitsetKernelPayloadFastPathOnly pins the eligibility rule on a
// bitmap-dense graph with a protocol that interleaves nil-payload steps
// (kernel-eligible) with payload-bearing and label-only steps (scalar
// paths): the mixed schedule must match the oracle exactly across the
// per-step allNil dispatch flips. This is the boundary the CONTRIBUTING
// rule ("payload-fast-path-only or mirror the observables") exists for.
func TestBitsetKernelPayloadFastPathOnly(t *testing.T) {
	src := rng.New(17)
	g := graph.GNPConnected(96, 0.4, src)
	if !graph.BitmapDense(g.N(), g.Edges()) {
		t.Fatalf("GNP(96, 0.4) not bitmap-dense (arcs=%d)", g.Edges())
	}
	assertMatchesReference(t, g, mixed{}, Config{}, 512)
	assertMatchesReference(t, g, nilFlood{}, Config{}, 512)
}

// TestBitsetKernelCollisionDetection runs the collision-detection model
// variant over the kernel path: DeliverCollision must fire deterministically
// for informed listeners. The burst schedule (half the labels on air each
// step) keeps T*words well past the dispatch threshold on a clique.
func TestBitsetKernelCollisionDetection(t *testing.T) {
	g := graph.Clique(80)
	collisionEvents = 0
	fast, err := Run(g, collisionCounter{}, Config{}, Options{MaxSteps: 64, RunToMaxSteps: true, CollisionDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	firstTotal := collisionEvents
	collisionEvents = 0
	again, err := Run(g, collisionCounter{}, Config{}, Options{MaxSteps: 64, RunToMaxSteps: true, CollisionDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	if collisionEvents != firstTotal || firstTotal == 0 {
		t.Fatalf("collision events not deterministic or empty: %d vs %d", collisionEvents, firstTotal)
	}
	if fast.Collisions != again.Collisions || fast.Collisions == 0 {
		t.Fatalf("collision counts diverged or empty: %d vs %d", fast.Collisions, again.Collisions)
	}
	collisionEvents = 0
}

// collisionEvents tallies DeliverCollision calls across a run; test-only.
var collisionEvents int

// collisionCounter transmits in bursts (labels matching the step's parity)
// with nil payloads, so the other half of the clique collides every step.
type collisionCounter struct{}

func (collisionCounter) Name() string { return "collision-counter" }
func (collisionCounter) NewNode(label int, cfg Config) NodeProgram {
	return &collisionCounterNode{label: label}
}

type collisionCounterNode struct{ label int }

func (n *collisionCounterNode) Act(t int) (bool, any)      { return (t+n.label)%2 == 0, nil }
func (n *collisionCounterNode) Deliver(t int, msg Message) {}
func (n *collisionCounterNode) DeliverCollision(t int)     { collisionEvents++ }

// collisionPanicAt is collisionCounter with a DeliverCollision that panics
// at a chosen step — the unwind happens inside the bit-parallel kernel's
// delivery sweep, while all three bitplanes still hold live masks.
type collisionPanicAt struct{ step int }

func (p collisionPanicAt) Name() string { return "collision-panic" }
func (p collisionPanicAt) NewNode(label int, cfg Config) NodeProgram {
	return &collisionPanicNode{label: label, step: p.step}
}

type collisionPanicNode struct{ label, step int }

func (n *collisionPanicNode) Act(t int) (bool, any)      { return (t+n.label)%2 == 0, nil }
func (n *collisionPanicNode) Deliver(t int, msg Message) {}
func (n *collisionPanicNode) DeliverCollision(t int) {
	if t == n.step {
		panic("listener bug") //radiolint:ignore nopanic test fixture: poisons the bitplanes mid-kernel to exercise the scratch-rebuild contract
	}
}

// TestBitsetKernelPoisonRecovery panics a listener mid-kernel — inside
// tallyBitset's collision delivery sweep, with hitOnce/hitTwice/txPlane all
// holding live masks — and requires the next run on the same engine to be
// byte-identical to a fresh one. This is the scratch-rebuild contract
// extended to the bitplanes: a poisoned plane word would corrupt the next
// dense trial's tally.
func TestBitsetKernelPoisonRecovery(t *testing.T) {
	g := graph.Clique(100)
	r := NewRunner()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic from listener")
			}
		}()
		_, _ = r.Run(g, collisionPanicAt{step: 4}, Config{},
			Options{MaxSteps: 20, RunToMaxSteps: true, CollisionDetection: true})
	}()
	reused, err := r.Run(g, collisionCounter{}, Config{},
		Options{MaxSteps: 20, RunToMaxSteps: true, CollisionDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(g, collisionCounter{}, Config{},
		Options{MaxSteps: 20, RunToMaxSteps: true, CollisionDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	if reused.BroadcastTime != fresh.BroadcastTime ||
		reused.Transmissions != fresh.Transmissions ||
		reused.Receptions != fresh.Receptions ||
		reused.Collisions != fresh.Collisions {
		t.Fatalf("post-panic bitset run diverged:\nreused %+v\nfresh  %+v", reused, fresh)
	}
}

// TestBitsetDispatchCrossover walks one run across all three tally
// strategies: flooding a barbell of two bitmap-dense cliques starts sparse
// (lone source), goes bit-parallel when a whole clique is on air, and
// crawls the bridge on the sparse scalar path. The oracle must agree on
// every field at each flip.
func TestBitsetDispatchCrossover(t *testing.T) {
	g, err := graph.Barbell(70, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.BitmapDense(g.N(), g.Edges()) {
		t.Fatalf("Barbell(70, 8) not bitmap-dense (arcs=%d)", g.Edges())
	}
	assertMatchesReference(t, g, nilFlood{}, Config{}, 2048)
	assertMatchesReference(t, g, coin{}, Config{Seed: 9}, 500)
}
