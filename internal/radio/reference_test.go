package radio

import (
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/rng"
)

// TestDifferentialAgainstReference cross-checks the optimized simulator
// against the naive oracle on randomized topologies and a randomized
// protocol: every metric must coincide exactly.
func TestDifferentialAgainstReference(t *testing.T) {
	src := rng.New(555)
	for trial := 0; trial < 25; trial++ {
		var g *graph.Graph
		switch trial % 4 {
		case 0:
			g = graph.GNPConnected(20+src.Intn(40), 0.1, src)
		case 1:
			g = graph.RandomTree(20+src.Intn(40), src)
		case 2:
			var err error
			g, err = graph.RandomLayered(30+src.Intn(30), 3+src.Intn(5), 0.3, src)
			if err != nil {
				t.Fatal(err)
			}
		case 3:
			var err error
			g, err = graph.DirectedLayered(30+src.Intn(30), 3+src.Intn(5), 0.3, src)
			if err != nil {
				t.Fatal(err)
			}
		}
		seed := uint64(trial) + 17
		fast, err := Run(g, coin{}, Config{Seed: seed}, Options{})
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		ref, err := RunReference(g, coin{}, Config{Seed: seed}, 0)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		if fast.BroadcastTime != ref.BroadcastTime ||
			fast.Transmissions != ref.Transmissions ||
			fast.Receptions != ref.Receptions ||
			fast.Collisions != ref.Collisions {
			t.Fatalf("trial %d: divergence:\nfast %+v\nref  %+v", trial, fast, ref)
		}
		for v := range fast.InformedAt {
			if fast.InformedAt[v] != ref.InformedAt[v] {
				t.Fatalf("trial %d: InformedAt[%d]: %d vs %d",
					trial, v, fast.InformedAt[v], ref.InformedAt[v])
			}
		}
	}
}

// TestReferenceMatchesOnDeterministicProtocol repeats the differential
// check with a command-driven protocol whose payloads include label-only
// echo replies (exercising the SourceCarrier path in both simulators).
func TestReferenceStepLimit(t *testing.T) {
	g, err := graph.CompleteLayered([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunReference(g, flood{}, Config{}, 50); err == nil {
		t.Fatal("reference missed the livelock")
	}
}

func TestReferenceEmptyGraph(t *testing.T) {
	if _, err := RunReference(graph.New(0, true), flood{}, Config{}, 0); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestReferenceSingleNode(t *testing.T) {
	res, err := RunReference(graph.New(1, true), flood{}, Config{}, 0)
	if err != nil || !res.Completed || res.BroadcastTime != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}
