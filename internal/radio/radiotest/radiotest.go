// Package radiotest provides a conformance harness for broadcasting
// protocols: every algorithm in this repository must satisfy the same model
// invariants on a standard battery of topologies. Protocol packages call
// Check from their tests.
package radiotest

import (
	"sort"
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

// Battery returns the standard topology battery keyed by name. All graphs
// are small enough for fast test runs but cover the structural extremes:
// long paths, wide stars, dense cliques, bottlenecks, regular expanders,
// and layered networks.
func Battery(seed uint64) map[string]*graph.Graph {
	src := rng.New(seed)
	b := map[string]*graph.Graph{
		"path":   graph.Path(24),
		"star":   graph.Star(24),
		"clique": graph.Clique(16),
		"grid":   graph.Grid(5, 6),
		"tree":   graph.RandomTree(48, src),
		"gnp":    graph.GNPConnected(48, 0.1, src),
		"chain":  graph.StarChain(3, 6),
	}
	if g, err := graph.UniformCompleteLayered(40, 5); err == nil {
		b["layered"] = g
	}
	if g, err := graph.Hypercube(5); err == nil {
		b["hypercube"] = g
	}
	if g, err := graph.Barbell(8, 4); err == nil {
		b["barbell"] = g
	}
	if g, err := graph.RandomLayered(48, 6, 0.3, src); err == nil {
		b["rlayered"] = g
	}
	return b
}

// Options tweak the conformance run for protocols with special needs.
type Options struct {
	// Skip names topologies to leave out (e.g. Complete-Layered only works
	// on its class).
	Skip map[string]bool
	// MaxSteps overrides the step budget (0 = simulator default).
	MaxSteps int
	// Seeds lists protocol seeds to try (default: {1, 2}).
	Seeds []uint64
}

// Check runs the protocol over the battery and asserts the model
// invariants:
//
//  1. broadcast completes within the budget;
//  2. information travels at most one hop per step:
//     InformedAt[v] >= dist(v) for every node ("speed of light");
//  3. the source is informed at step 0 and everyone else strictly later;
//  4. the same seed replays to the identical result — through a reused
//     radio.Runner, so engine-scratch reuse is proven to leak nothing
//     between runs for every protocol;
//  5. the optimized engine agrees with the naive RunReference oracle on
//     every Result field (differential validation of the CSR hot loop);
//  6. the engine's obs.Counters window for the run equals the counters
//     RunReferenceObserved tallies independently, and both restate the
//     Result's own accounting — the counter half of the mirror rule.
func Check(t *testing.T, build func() radio.Protocol, opt Options) {
	t.Helper()
	seeds := opt.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1, 2}
	}
	// One engine shared across all topologies and seeds: any scratch state
	// bleeding from one run into the next shows up as a replay divergence.
	runner := radio.NewRunner()
	battery := Battery(7)
	names := make([]string, 0, len(battery))
	//radiolint:ignore detmaprange names are sorted before use
	for name := range battery {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if opt.Skip[name] {
			continue
		}
		g := battery[name]
		t.Run(name, func(t *testing.T) {
			dist, _ := g.BFSLayers()
			for _, seed := range seeds {
				// Every conformance run also asserts the NodeProgram
				// calling contract (Act/Deliver ordering, half-duplex, no
				// act-before-informed).
				p := radio.WithContractChecks(build(), func(err error) {
					t.Errorf("seed %d: %v", seed, err)
				})
				res, err := radio.Run(g, p, radio.Config{Seed: seed},
					radio.Options{MaxSteps: opt.MaxSteps})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Completed {
					t.Fatalf("seed %d: incomplete", seed)
				}
				if res.InformedAt[0] != 0 {
					t.Fatalf("seed %d: source informed at %d", seed, res.InformedAt[0])
				}
				for v := 1; v < g.N(); v++ {
					at := res.InformedAt[v]
					if at < 1 {
						t.Fatalf("seed %d: node %d informed at %d", seed, v, at)
					}
					if at < dist[v] {
						t.Fatalf("seed %d: node %d at distance %d informed at step %d (faster than light)",
							seed, v, dist[v], at)
					}
				}
				// Replay determinism, through the reused engine. The
				// counter snapshot around the replay is the engine side of
				// the per-run counter window.
				before := runner.Counters()
				res2, err := runner.Run(g, build(), radio.Config{Seed: seed},
					radio.Options{MaxSteps: opt.MaxSteps})
				if err != nil {
					t.Fatalf("seed %d replay: %v", seed, err)
				}
				engCounters := runner.Counters().Diff(before)
				if res.BroadcastTime != res2.BroadcastTime || res.Transmissions != res2.Transmissions {
					t.Fatalf("seed %d: replay diverged (%d/%d vs %d/%d)", seed,
						res.BroadcastTime, res.Transmissions, res2.BroadcastTime, res2.Transmissions)
				}
				// Differential validation: the optimized CSR engine must
				// reproduce the naive oracle byte for byte — Result fields
				// and engine counters alike.
				ref, refCounters, err := radio.RunReferenceObserved(g, build(), radio.Config{Seed: seed}, opt.MaxSteps, nil)
				if err != nil {
					t.Fatalf("seed %d reference: %v", seed, err)
				}
				if engCounters != refCounters {
					t.Fatalf("seed %d: counter mirror divergence:\nengine    %+v\nreference %+v",
						seed, engCounters, refCounters)
				}
				if engCounters.Steps != int64(res2.StepsSimulated) ||
					engCounters.Transmissions != res2.Transmissions ||
					engCounters.Receptions != res2.Receptions ||
					engCounters.Collisions != res2.Collisions {
					t.Fatalf("seed %d: counters diverge from Result:\ncounters %+v\nresult   %+v",
						seed, engCounters, res2)
				}
				if engCounters.FaultEvents() != 0 {
					t.Fatalf("seed %d: fault counters fired without a fault plan: %+v", seed, engCounters)
				}
				if res.BroadcastTime != ref.BroadcastTime ||
					res.Transmissions != ref.Transmissions ||
					res.Receptions != ref.Receptions ||
					res.Collisions != ref.Collisions {
					t.Fatalf("seed %d: optimized vs reference diverged:\nfast %+v\nref  %+v",
						seed, res, ref)
				}
				for v := range res.InformedAt {
					if res.InformedAt[v] != ref.InformedAt[v] {
						t.Fatalf("seed %d: InformedAt[%d] %d (optimized) vs %d (reference)",
							seed, v, res.InformedAt[v], ref.InformedAt[v])
					}
				}
			}
		})
	}
}
