// Conformance runs for every protocol in the repository. Living here (a
// package that may import all protocol packages) avoids import cycles.
package radiotest

import (
	"testing"

	"adhocradio/internal/core"
	"adhocradio/internal/decay"
	"adhocradio/internal/det"
	"adhocradio/internal/radio"
)

func TestConformanceKPOptimal(t *testing.T) {
	Check(t, func() radio.Protocol { return core.New() }, Options{})
}

func TestConformanceKPKnownRadius(t *testing.T) {
	Check(t, func() radio.Protocol {
		return core.NewWithParams(core.Params{KnownRadius: 8})
	}, Options{})
}

func TestConformanceKPPaperExact(t *testing.T) {
	Check(t, func() radio.Protocol { return core.NewPaperExact() }, Options{})
}

func TestConformanceDecay(t *testing.T) {
	Check(t, func() radio.Protocol { return decay.New() }, Options{})
}

func TestConformanceRoundRobin(t *testing.T) {
	Check(t, func() radio.Protocol { return det.RoundRobin{} }, Options{})
}

func TestConformanceSelectAndSend(t *testing.T) {
	Check(t, func() radio.Protocol { return det.SelectAndSend{} }, Options{})
}

func TestConformanceInterleaved(t *testing.T) {
	Check(t, func() radio.Protocol {
		return det.NewInterleaved(det.RoundRobin{}, det.SelectAndSend{})
	}, Options{})
}

func TestConformanceDFSNeighborhood(t *testing.T) {
	Check(t, func() radio.Protocol { return det.DFSNeighborhood{} }, Options{})
}

func TestConformanceSpontaneousLinear(t *testing.T) {
	Check(t, func() radio.Protocol { return det.SpontaneousLinear{} }, Options{})
}

func TestConformanceObliviousDecay(t *testing.T) {
	Check(t, func() radio.Protocol { return det.ObliviousDecay{Seed: 11} }, Options{})
}

func TestConformanceCompleteLayered(t *testing.T) {
	// Complete-Layered is only correct on complete layered networks: skip
	// everything else in the battery. (Path and star are complete layered.)
	Check(t, func() radio.Protocol { return det.CompleteLayered{} }, Options{
		Skip: map[string]bool{
			"clique": true, "grid": true, "tree": true, "gnp": true,
			"chain": true, "hypercube": true, "barbell": true, "rlayered": true,
		},
	})
}
