package radiotest

import (
	"errors"
	"sort"
	"testing"

	"adhocradio/internal/fault"
	"adhocradio/internal/radio"
)

// FaultPlans returns the standard fault-plan battery keyed by name: one plan
// per fault model plus a composite "storm" that enables them all. Jammer
// hosts are fixed small labels, valid on every battery topology.
func FaultPlans(seed uint64) map[string]*fault.Plan {
	return map[string]*fault.Plan{
		"loss":  {Seed: seed, LinkLoss: 0.15},
		"churn": {Seed: seed + 1, ChurnProb: 0.3, ChurnWindow: 8},
		"jam":   {Seed: seed + 2, Jammers: []int{0, 3}, JamProb: 0.35},
		"crash": {Seed: seed + 3, CrashFrac: 0.25, CrashWindow: 40},
		"sleep": {Seed: seed + 4, SleepFrac: 0.4, SleepPeriod: 6, SleepAwake: 3},
		"storm": {
			Seed: seed + 5, LinkLoss: 0.1,
			ChurnProb: 0.2, ChurnWindow: 5,
			Jammers: []int{1}, JamProb: 0.3,
			SleepFrac: 0.2, SleepPeriod: 4, SleepAwake: 2,
		},
	}
}

// CheckFaults runs the protocol over the topology battery crossed with the
// fault-plan battery and asserts, for every combination:
//
//  1. the optimized engine and the naive RunReferenceWithFaults oracle agree
//     on every Result field AND on every obs.Counters field (steps,
//     traffic, silent steps, links dropped, jam noise, crash/sleep skips),
//     including on runs that hit the step limit — the differential gate for
//     the faulty code paths and their accounting;
//  2. replaying through the same reused Runner reproduces the result, so
//     fault scratch (jam shadows, compiled schedules) leaks nothing between
//     runs;
//  3. the model invariants that survive faults still hold: the source is
//     informed at step 0, and information travels at most one hop per step
//     (faults only remove receptions, they cannot accelerate anything).
//
// Faulty runs may legitimately never complete (a crashed cut node strands a
// component), so the budget is capped and a step-limit error on BOTH
// simulators counts as agreement.
func CheckFaults(t *testing.T, build func() radio.Protocol, opt Options) {
	t.Helper()
	maxSteps := opt.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2500
	}
	seeds := opt.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	runner := radio.NewRunner()
	battery := Battery(7)
	names := make([]string, 0, len(battery))
	//radiolint:ignore detmaprange names are sorted before use
	for name := range battery {
		names = append(names, name)
	}
	sort.Strings(names)
	plans := FaultPlans(13)
	planNames := make([]string, 0, len(plans))
	//radiolint:ignore detmaprange names are sorted before use
	for name := range plans {
		planNames = append(planNames, name)
	}
	sort.Strings(planNames)
	for _, name := range names {
		if opt.Skip[name] {
			continue
		}
		g := battery[name]
		t.Run(name, func(t *testing.T) {
			dist, _ := g.BFSLayers()
			for _, planName := range planNames {
				plan := plans[planName]
				for _, seed := range seeds {
					cfg := radio.Config{Seed: seed}
					before := runner.Counters()
					fast, fastErr := runner.Run(g, build(), cfg,
						radio.Options{MaxSteps: maxSteps, Fault: plan})
					if fastErr != nil && !errors.Is(fastErr, radio.ErrStepLimit) {
						t.Fatalf("%s seed %d: %v", planName, seed, fastErr)
					}
					engCounters := runner.Counters().Diff(before)
					ref, refCounters, refErr := radio.RunReferenceObserved(g, build(), cfg, maxSteps, plan)
					if refErr != nil && !errors.Is(refErr, radio.ErrStepLimit) {
						t.Fatalf("%s seed %d reference: %v", planName, seed, refErr)
					}
					if engCounters != refCounters {
						t.Fatalf("%s seed %d: counter mirror divergence:\nengine    %+v\nreference %+v",
							planName, seed, engCounters, refCounters)
					}
					if (fastErr == nil) != (refErr == nil) {
						t.Fatalf("%s seed %d: step-limit disagreement: fast err %v, ref err %v",
							planName, seed, fastErr, refErr)
					}
					if fast.Completed != ref.Completed ||
						fast.BroadcastTime != ref.BroadcastTime ||
						fast.StepsSimulated != ref.StepsSimulated ||
						fast.Transmissions != ref.Transmissions ||
						fast.Receptions != ref.Receptions ||
						fast.Collisions != ref.Collisions {
						t.Fatalf("%s seed %d: optimized vs reference diverged:\nfast %+v\nref  %+v",
							planName, seed, fast, ref)
					}
					for v := range fast.InformedAt {
						if fast.InformedAt[v] != ref.InformedAt[v] {
							t.Fatalf("%s seed %d: InformedAt[%d] %d (optimized) vs %d (reference)",
								planName, seed, v, fast.InformedAt[v], ref.InformedAt[v])
						}
					}
					// Invariants that survive faults.
					if fast.InformedAt[0] != 0 {
						t.Fatalf("%s seed %d: source informed at %d", planName, seed, fast.InformedAt[0])
					}
					for v := 1; v < g.N(); v++ {
						if at := fast.InformedAt[v]; at >= 0 && at < dist[v] {
							t.Fatalf("%s seed %d: node %d at distance %d informed at step %d (faster than light)",
								planName, seed, v, dist[v], at)
						}
					}
					// Replay determinism through the reused engine.
					again, againErr := runner.Run(g, build(), cfg,
						radio.Options{MaxSteps: maxSteps, Fault: plan})
					if againErr != nil && !errors.Is(againErr, radio.ErrStepLimit) {
						t.Fatalf("%s seed %d replay: %v", planName, seed, againErr)
					}
					if (fastErr == nil) != (againErr == nil) ||
						again.BroadcastTime != fast.BroadcastTime ||
						again.Transmissions != fast.Transmissions ||
						again.Receptions != fast.Receptions ||
						again.Collisions != fast.Collisions {
						t.Fatalf("%s seed %d: replay diverged (%+v vs %+v)", planName, seed, fast, again)
					}
				}
			}
		})
	}
}
