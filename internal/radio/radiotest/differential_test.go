package radiotest

import (
	"testing"

	"adhocradio/internal/det"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

// TestOptimizedMatchesReferenceOnDetProtocols cross-checks the optimized
// simulator against the naive oracle for the command-driven deterministic
// protocols, whose echo replies exercise the SourceCarrier (label-only)
// delivery rules in both implementations.
func TestOptimizedMatchesReferenceOnDetProtocols(t *testing.T) {
	src := rng.New(99)
	protocols := []radio.Protocol{
		det.SelectAndSend{},
		det.RoundRobin{},
		det.NewInterleaved(det.RoundRobin{}, det.SelectAndSend{}),
		det.DFSNeighborhood{},
		det.SpontaneousLinear{},
		det.ObliviousDecay{Seed: 4},
	}
	graphs := []*graph.Graph{
		graph.Path(15),
		graph.Clique(10),
		graph.GNPConnected(30, 0.12, src),
		graph.RandomTree(30, src),
		graph.StarChain(2, 5),
	}
	for _, p := range protocols {
		for gi, g := range graphs {
			fast, err := radio.Run(g, p, radio.Config{Seed: 1}, radio.Options{})
			if err != nil {
				t.Fatalf("%s graph %d fast: %v", p.Name(), gi, err)
			}
			ref, err := radio.RunReference(g, p, radio.Config{Seed: 1}, 0)
			if err != nil {
				t.Fatalf("%s graph %d reference: %v", p.Name(), gi, err)
			}
			if fast.BroadcastTime != ref.BroadcastTime ||
				fast.Transmissions != ref.Transmissions ||
				fast.Receptions != ref.Receptions ||
				fast.Collisions != ref.Collisions {
				t.Fatalf("%s graph %d diverged:\nfast %+v\nref  %+v", p.Name(), gi, fast, ref)
			}
			for v := range fast.InformedAt {
				if fast.InformedAt[v] != ref.InformedAt[v] {
					t.Fatalf("%s graph %d: InformedAt[%d] %d vs %d",
						p.Name(), gi, v, fast.InformedAt[v], ref.InformedAt[v])
				}
			}
		}
	}
}

// TestCompleteLayeredDifferential runs the differential check on the
// protocol's own network class.
func TestCompleteLayeredDifferential(t *testing.T) {
	for _, sizes := range [][]int{{3, 2, 4}, {1, 1, 1, 1}, {5, 5}} {
		g, err := graph.CompleteLayered(sizes)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := radio.Run(g, det.CompleteLayered{}, radio.Config{}, radio.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := radio.RunReference(g, det.CompleteLayered{}, radio.Config{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fast.BroadcastTime != ref.BroadcastTime || fast.Transmissions != ref.Transmissions {
			t.Fatalf("sizes %v diverged: fast %+v ref %+v", sizes, fast, ref)
		}
	}
}
