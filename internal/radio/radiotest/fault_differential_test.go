package radiotest

import (
	"testing"

	"adhocradio/internal/core"
	"adhocradio/internal/decay"
	"adhocradio/internal/det"
	"adhocradio/internal/radio"
)

// Every fault model must be mirrored in the reference simulator before it
// ships (CONTRIBUTING.md); these runs are the gate. The protocol list spans
// the delivery-path variants: randomized payload-carrying broadcast (core,
// decay), deterministic nil-payload protocols (Select-and-Send, Round-Robin),
// and the neighbor-aware DFS token with its label-only SourceCarrier echoes.

func TestFaultDifferentialKPOptimal(t *testing.T) {
	CheckFaults(t, func() radio.Protocol { return core.New() }, Options{})
}

func TestFaultDifferentialDecay(t *testing.T) {
	CheckFaults(t, func() radio.Protocol { return decay.New() }, Options{})
}

func TestFaultDifferentialSelectAndSend(t *testing.T) {
	CheckFaults(t, func() radio.Protocol { return det.SelectAndSend{} }, Options{})
}

func TestFaultDifferentialRoundRobin(t *testing.T) {
	CheckFaults(t, func() radio.Protocol { return det.RoundRobin{} }, Options{})
}

func TestFaultDifferentialDFSNeighborhood(t *testing.T) {
	CheckFaults(t, func() radio.Protocol { return det.DFSNeighborhood{} }, Options{})
}
