package radio

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"adhocradio/internal/bitset"
	"adhocradio/internal/fault"
	"adhocradio/internal/graph"
	"adhocradio/internal/obs"
)

// Runner is a reusable simulation engine. It owns every piece of per-run
// scratch the hot loop needs — reception counters, last-sender table,
// half-duplex flags, the program table, transmitter/payload buffers — so
// repeated trials on same-sized graphs perform zero steady-state allocations
// beyond whatever the protocol's own NewNode does. The zero value is ready
// to use; the package-level Run is a thin wrapper that spins up a fresh
// Runner per call.
//
// The engine walks the graph's compiled CSR form (graph.Compile): flat
// int32 adjacency arrays instead of [][]int spines. Per step it picks one
// of three tally strategies by the transmitters' total out-degree and the
// graph's density: a sparse path that tracks only the nodes actually hit
// (cost proportional to arcs touched), a dense scalar path that tallies
// branch-free into the counter array and then sweeps all nodes (cost
// arcs + n, cheaper once the arcs touched exceed n), and — on dense graphs
// with nil payloads — a bit-parallel kernel that ORs cached bitmap
// adjacency rows (graph.CompileBitmap) into two saturating bitplanes, 64
// receivers per ALU op (see tallyBitset and the DESIGN.md dispatch table).
// All orders of delivery are observationally identical: node programs are
// isolated state machines, so no program can see the order in which other
// nodes were served within a step.
//
// A Runner must not be used from multiple goroutines at once. Parallel
// harnesses give each worker its own Runner (or draw from a pool); the
// simulation itself stays deterministic because a Runner carries no state
// across runs that a Result could observe.
//
// Every slice/map field below is scratch and must be reset by the poison
// branch in ensure (see the scratchreset pass).
//
//radiolint:scratch-owner
type Runner struct {
	// Per-node scratch, grown to the largest graph seen. Between runs (and
	// between steps) hits and transmitted are all-zero/false; every step
	// restores that invariant for exactly the entries it touched.
	hits        []int32 // receptions tallied in the current step
	lastFrom    []int32 // transmitter index of the most recent hitter
	transmitted []bool  // half-duplex: transmitted in the current step
	dirty       []int32 // nodes hit this step (sparse path only)
	programs    []NodeProgram

	// Bitplane scratch for the bit-parallel tally kernel (tallyBitset),
	// each bitset.Words(n) long. Between steps all three are all-zero; the
	// kernel restores that invariant on the way out of every step it runs.
	hitOnce  []uint64 // bit v: v heard >= 1 transmitter this step
	hitTwice []uint64 // bit v: v heard >= 2 transmitters this step
	txPlane  []uint64 // bit v: v transmitted this step (half-duplex mask)

	// Fault-injection scratch, used only when a run carries an active
	// fault.Plan: jammed marks nodes in a noisy jammer's shadow this step
	// (cleared via jamDirty on the way out), and faults is the compiled
	// per-run fault state, reused across runs via Reset.
	jammed   []bool
	jamDirty []int32
	faults   *fault.State

	// Step buffers, pre-sized to the node count (a step can have at most n
	// transmitters and n receptions) so first steps never grow-copy.
	active       []int
	transmitters []int
	payloads     []any
	receptions   []Message

	// counters accumulates engine observables across every run on this
	// Runner (it is NOT scratch and survives the poison rebuild): plain
	// int64 increments in the hot loop, mirrored independently by
	// RunReferenceObserved so the differential battery gates their
	// semantics. Snapshot with Counters(), window with Counters().Diff.
	counters obs.Counters

	// Run-scoped state; cleared by finish so a pooled Runner does not pin
	// graphs or programs alive between trials.
	res           *Result
	g             *graph.Graph
	p             Protocol
	na            NeighborAwareProtocol
	cfg           Config
	opt           Options
	spontaneous   bool
	informedCount int
	running       bool
}

// NewRunner returns an empty engine. Scratch is allocated lazily on the
// first run and reused afterwards.
func NewRunner() *Runner { return &Runner{} }

// Counters returns the engine counters accumulated across every run this
// Runner has executed (including partial, step-limited runs). For a
// per-run window, snapshot before the run and Diff after it.
func (r *Runner) Counters() obs.Counters { return r.counters }

// ResetCounters zeroes the accumulated engine counters.
func (r *Runner) ResetCounters() { r.counters = obs.Counters{} }

// Run simulates protocol p on network g, allocating a fresh Result. See the
// package-level Run for the semantics; the only difference is scratch reuse
// across calls on the same Runner.
func (r *Runner) Run(g *graph.Graph, p Protocol, cfg Config, opt Options) (*Result, error) {
	return r.RunContext(context.Background(), g, p, cfg, opt)
}

// RunContext is Run honoring ctx: cancellation is checked between steps and
// aborts the simulation with an error wrapping ctx.Err(). A cancelled run
// returns a nil Result (only step-limit errors carry a usable partial one).
func (r *Runner) RunContext(ctx context.Context, g *graph.Graph, p Protocol, cfg Config, opt Options) (*Result, error) {
	res := new(Result)
	err := r.RunIntoContext(ctx, res, g, p, cfg, opt)
	if err != nil && !errors.Is(err, ErrStepLimit) {
		return nil, err
	}
	return res, err
}

// RunInto is Run writing into a caller-owned Result, reusing its InformedAt
// slice when the capacity suffices — the zero-allocation entry point for
// tight trial loops. On a step-limit error the partially-filled Result is
// left in place; on validation errors res is untouched.
func (r *Runner) RunInto(res *Result, g *graph.Graph, p Protocol, cfg Config, opt Options) error {
	return r.RunIntoContext(context.Background(), res, g, p, cfg, opt)
}

// RunIntoContext is RunInto honoring ctx, the cancellable zero-allocation
// entry point service handlers use for in-flight simulations. Cancellation
// is checked between steps (the same granularity RunExperimentContext uses
// between measurement points): the run stops before the next step begins,
// the error wraps ctx.Err() so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) discriminate the cause, and the
// partially-filled Result reports the steps actually simulated. The
// background context costs one predictable nil check per step, so the
// steady-state allocation and throughput contracts are unchanged.
//
//radiolint:hotpath
func (r *Runner) RunIntoContext(ctx context.Context, res *Result, g *graph.Graph, p Protocol, cfg Config, opt Options) error {
	n := g.N()
	if n == 0 {
		return errors.New("radio: empty graph")
	}
	if cfg.N == 0 {
		cfg.N = n
	}
	if cfg.N != n {
		return fmt.Errorf("radio: cfg.N=%d does not match graph n=%d", cfg.N, n)
	}
	if opt.MaxSteps < 0 {
		return fmt.Errorf("radio: negative MaxSteps %d", opt.MaxSteps)
	}
	maxSteps := opt.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps(n)
	}
	// Compile the fault plan (validating it) before res is touched, so
	// validation errors leave the caller's Result intact.
	var fs *fault.State
	if opt.Fault != nil {
		if err := opt.Fault.Validate(n); err != nil {
			return err
		}
		if opt.Fault.Active() {
			if r.faults == nil {
				r.faults = fault.NewState()
			}
			if err := r.faults.Reset(opt.Fault, n); err != nil {
				return err
			}
			fs = r.faults
		}
	}
	csr := g.Compile()
	// On dense graphs (see graph.BitmapDense) the bit-parallel tally kernel
	// is in play: compile (or fetch the cached) bitmap adjacency up front so
	// the hot loop only dispatches on per-step transmitter counts.
	var bm *graph.Bitmap
	if graph.BitmapDense(n, csr.Arcs()) {
		bm = g.CompileBitmap()
	}
	r.ensure(n, opt)
	if fs != nil {
		if cap(r.jammed) < n {
			r.jammed = make([]bool, n)
			r.jamDirty = make([]int32, 0, n)
		}
		r.jammed = r.jammed[:n]
	}

	informed := res.InformedAt
	if cap(informed) < n {
		informed = make([]int, n)
	}
	informed = informed[:n]
	for i := range informed {
		informed[i] = -1
	}
	*res = Result{BroadcastTime: -1, InformedAt: informed}
	res.InformedAt[0] = 0

	r.res, r.g, r.p, r.cfg, r.opt = res, g, p, cfg, opt
	r.na, _ = p.(NeighborAwareProtocol)
	r.spontaneous = false
	if sp, ok := p.(SpontaneousProtocol); ok && sp.Spontaneous() {
		r.spontaneous = true
	}
	r.active = r.active[:0]
	r.active = append(r.active, 0)
	r.programs[0] = r.newProgram(0)
	r.informedCount = 1
	if r.spontaneous {
		for v := 1; v < n; v++ {
			r.programs[v] = r.newProgram(v)
			r.active = append(r.active, v)
		}
	}

	outOff, outAdj := csr.OutOff, csr.OutAdj
	for t := 1; ; t++ {
		if r.informedCount == n && !opt.RunToMaxSteps {
			break
		}
		if t > maxSteps {
			if r.informedCount == n {
				break
			}
			res.StepsSimulated = t - 1
			informedCount := r.informedCount
			r.finish()
			return fmt.Errorf("%w after %d steps (%d/%d informed, protocol %s)",
				ErrStepLimit, maxSteps, informedCount, n, p.Name())
		}
		if err := ctx.Err(); err != nil {
			// Between-steps cancellation: the scratch invariants hold (no
			// step is in flight), so finish() parks the engine cleanly and
			// the next run on this Runner needs no poison rebuild.
			res.StepsSimulated = t - 1
			informedCount := r.informedCount
			r.finish()
			return fmt.Errorf("radio: run cancelled after %d steps (%d/%d informed, protocol %s): %w",
				t-1, informedCount, n, p.Name(), err)
		}

		// Phase 1: collect transmitters among active nodes, tracking the
		// total out-degree (to pick the tally strategy) and whether any
		// payload is non-nil (nil payloads skip the boxing-sensitive
		// SourceCarrier probing on every delivery). Nodes a fault plan has
		// down (crashed or asleep) are not consulted at all.
		r.transmitters = r.transmitters[:0]
		r.payloads = r.payloads[:0]
		allNil := true
		arcs := 0
		for _, v := range r.active {
			if fs != nil && fs.NodeDown(t, v) {
				// Mirror rule: RunReferenceObserved discriminates the same
				// way, so the crash/sleep counters gate differentially.
				if fs.Crashed(t, v) {
					r.counters.CrashSkips++
				} else {
					r.counters.SleepSkips++
				}
				continue
			}
			tx, payload := r.programs[v].Act(t)
			if tx {
				r.transmitters = append(r.transmitters, v)
				r.payloads = append(r.payloads, payload)
				if payload != nil {
					allNil = false
				}
				r.transmitted[v] = true
				arcs += int(outOff[v+1] - outOff[v])
			}
		}
		res.Transmissions += int64(len(r.transmitters))
		r.counters.Transmissions += int64(len(r.transmitters))
		if len(r.transmitters) == 0 {
			r.counters.SilentSteps++
		}

		// Phases 2+3: tally receptions over the flat CSR arrays, then
		// deliver. hits is restored to all-zero on the way out. Faulty runs
		// take their own tally (per-arc loss checks and jam marks); the two
		// fault-free paths below stay branch-free.
		r.receptions = r.receptions[:0]
		hits, lastFrom := r.hits, r.lastFrom
		if fs != nil {
			r.tallyFaulty(t, n, outOff, outAdj, fs, allNil)
		} else if bm != nil && allNil && arcs >= n &&
			arcs >= bitsetArcFactor*len(r.transmitters)*bm.WordsPerRow {
			// Bit-parallel path: word-wise two-plane accumulation over the
			// cached bitmap rows. Eligible only on the nil-payload fast path
			// (payload routing needs per-hit transmitter identity) and only
			// when the scalar per-arc work exceeds the kernel's per-word
			// work by the measured crossover factor.
			r.tallyBitset(t, bm, allNil)
		} else if arcs >= n {
			// Dense path: branch-free saturating-by-construction counters
			// (a step has at most n-1 in-transmitters per node), then a
			// full sweep.
			for i, u := range r.transmitters {
				for _, v := range outAdj[outOff[u]:outOff[u+1]] {
					hits[v]++
					lastFrom[v] = int32(i)
				}
			}
			for v := 0; v < n; v++ {
				h := hits[v]
				if h == 0 {
					continue
				}
				hits[v] = 0
				if r.transmitted[v] {
					continue // half-duplex: transmitters hear nothing
				}
				r.deliver(t, v, h, false, allNil)
			}
		} else {
			// Sparse path: track first-touch nodes so the sweep visits only
			// what was hit.
			dirty := r.dirty[:0]
			for i, u := range r.transmitters {
				for _, v := range outAdj[outOff[u]:outOff[u+1]] {
					if hits[v] == 0 {
						dirty = append(dirty, v)
						lastFrom[v] = int32(i)
					}
					hits[v]++
				}
			}
			r.dirty = dirty
			for _, v32 := range dirty {
				v := int(v32)
				h := hits[v]
				hits[v] = 0
				if r.transmitted[v] {
					continue // half-duplex: transmitters hear nothing
				}
				r.deliver(t, v, h, false, allNil)
			}
		}
		for _, u := range r.transmitters {
			r.transmitted[u] = false
		}

		if r.informedCount == n && res.BroadcastTime == -1 {
			res.BroadcastTime = t
		}
		if opt.Trace != nil {
			opt.Trace(t, r.transmitters, r.receptions)
		}
		res.StepsSimulated = t
		r.counters.Steps++
	}

	res.Completed = r.informedCount == n
	if n == 1 {
		res.BroadcastTime = 0
		res.Completed = true
	}
	r.finish()
	return nil
}

// bitsetArcFactor is the dispatch crossover between the dense scalar tally
// and the bit-parallel kernel: the kernel runs when the transmitters' total
// out-degree is at least this many times T*words (T transmitters, words =
// bitset.Words(n) per bitplane). Per transmitter the scalar path costs
// ~out-degree counter increments while the kernel costs ~3*words word ops
// for the accumulate plus ~words for the lastFrom second pass, so the
// crossover is a pure degree-vs-words ratio. BenchmarkTallyCrossover
// measures it (table in DESIGN.md): break-even at mean degree ≈ 2·words,
// with the kernel 2.1x ahead by 4·words and 22x ahead at clique density.
// 3 sits just above break-even so the kernel only fires on clear wins.
const bitsetArcFactor = 3

// tallyBitset is the bit-parallel tally: each transmitter's out-neighborhood
// is one row of the graph's cached bitmap adjacency, and per-receiver hit
// counts saturate at two in a pair of bitplanes —
//
//	hitTwice |= hitOnce & row
//	hitOnce  |= row
//
// — so after T row accumulations (T·words word ops instead of Σ out-degree
// scalar increments), "exactly one hit" and "collision" fall out as word-wise
// boolean masks. Half-duplex is a third plane ANDed out of both. A short
// scalar second pass over the transmitters' rows resolves lastFrom for the
// exactly-one words only (each such bit has a unique covering row, so the
// write is unambiguous); collision words never need transmitter identity.
// Delivery then iterates set bits in ascending node order, matching the
// dense scalar sweep. Eligible only on the fault-free, all-nil-payload fast
// path: payload routing would need per-hit payload indices the planes do
// not carry, and RunReference* stays naive either way (the differential
// battery and FuzzRunVsReference gate this kernel end-to-end).
//
// All three planes are all-zero on entry and restored to all-zero on the
// way out, the same touched-entries invariant the scalar paths keep on hits.
//
//radiolint:hotpath
func (r *Runner) tallyBitset(t int, bm *graph.Bitmap, allNil bool) {
	once, twice, tx := r.hitOnce, r.hitTwice, r.txPlane
	for _, u := range r.transmitters {
		bitset.AccumulateTwoPlane(once, twice, bm.OutRow(u))
		bitset.Mark(tx, u)
	}
	// Reduce to listener-only masks: once becomes "exactly one hit", twice
	// "two or more hits", both excluding half-duplex transmitters.
	for w := range once {
		once[w] &^= twice[w] | tx[w]
		twice[w] &^= tx[w]
	}
	lastFrom := r.lastFrom
	for i, u := range r.transmitters {
		row := bm.OutRow(u)
		for w, rw := range row {
			m := rw & once[w]
			for m != 0 {
				lastFrom[w<<6+bits.TrailingZeros64(m)] = int32(i)
				m &= m - 1
			}
		}
	}
	for w, m := range once {
		for m != 0 {
			v := w<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			r.deliver(t, v, 1, false, allNil)
		}
	}
	for w, m := range twice {
		for m != 0 {
			v := w<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			r.deliver(t, v, 2, false, allNil)
		}
	}
	bitset.Zero(once)
	bitset.Zero(twice)
	bitset.Zero(tx)
}

// tallyFaulty is the fault-aware tally: sparse-style first-touch tracking
// with a per-arc LinkDown check, jam-noise marks from the plan's jammers,
// and a NodeDown gate on every receiver. Semantics (mirrored exactly by
// RunReferenceWithFaults): a down node hears nothing and counts nothing; a
// dropped arc contributes no hit; jam noise turns a single legitimate hit
// into a collision but is itself indistinguishable from silence, so noise
// with zero legitimate hits produces no event at all.
//
//radiolint:hotpath
func (r *Runner) tallyFaulty(t, n int, outOff, outAdj []int32, fs *fault.State, allNil bool) {
	hits, lastFrom := r.hits, r.lastFrom
	dirty := r.dirty[:0]
	for i, u := range r.transmitters {
		for _, v32 := range outAdj[outOff[u]:outOff[u+1]] {
			v := int(v32)
			if fs.LinkDown(t, u, v) {
				r.counters.LinksDropped++
				continue
			}
			if hits[v] == 0 {
				dirty = append(dirty, v32)
				lastFrom[v] = int32(i)
			}
			hits[v]++
		}
	}
	r.dirty = dirty
	jamDirty := r.jamDirty[:0]
	for _, j := range fs.JammerNodes() {
		if !fs.JamAt(t, int(j)) {
			continue
		}
		r.counters.JamNoise++
		for _, v := range outAdj[outOff[j]:outOff[j+1]] {
			if !r.jammed[v] {
				r.jammed[v] = true
				jamDirty = append(jamDirty, v)
			}
		}
	}
	r.jamDirty = jamDirty
	for _, v32 := range dirty {
		v := int(v32)
		h := hits[v]
		hits[v] = 0
		if r.transmitted[v] || fs.NodeDown(t, v) {
			continue // half-duplex, or the receiver is down
		}
		r.deliver(t, v, h, r.jammed[v], allNil)
	}
	for _, v := range jamDirty {
		r.jammed[v] = false
	}
}

// deliver serves one non-transmitting node that was hit h times in step t:
// exactly one hit is a reception, two or more a collision. A jammed
// receiver's single hit is destroyed by the noise and becomes a collision.
// allNil short-circuits payload handling when no transmitter attached one
// this step.
//
//radiolint:hotpath
func (r *Runner) deliver(t, v int, h int32, jammed, allNil bool) {
	switch {
	case h == 1 && !jammed:
		i := r.lastFrom[v]
		var payload any
		if !allNil {
			payload = r.payloads[i]
		}
		msg := Message{From: r.transmitters[i], Payload: payload}
		if r.res.InformedAt[v] == -1 {
			carrier := true
			if !allNil {
				if c, ok := payload.(SourceCarrier); ok && !c.CarriesSourceMessage() {
					carrier = false
				}
			}
			switch {
			case carrier:
				r.res.InformedAt[v] = t
				r.informedCount++
				if !r.spontaneous {
					r.programs[v] = r.newProgram(v)
					r.active = append(r.active, v)
				}
			case !r.spontaneous:
				return // label-only traffic cannot inform or be acted on
			}
		}
		r.programs[v].Deliver(t, msg)
		r.res.Receptions++
		r.counters.Receptions++
		if r.opt.Trace != nil {
			r.receptions = append(r.receptions, msg)
		}
	case h >= 2 || jammed:
		r.res.Collisions++
		r.counters.Collisions++
		if r.opt.CollisionDetection && r.res.InformedAt[v] != -1 {
			if cl, ok := r.programs[v].(CollisionListener); ok {
				cl.DeliverCollision(t)
			}
		}
	}
}

func (r *Runner) newProgram(v int) NodeProgram {
	if r.na != nil {
		neighbors := append([]int(nil), r.g.Out(v)...)
		return r.na.NewNodeWithNeighbors(v, neighbors, r.cfg)
	}
	return r.p.NewNode(v, r.cfg)
}

// ensure sizes every scratch buffer for an n-node graph. Counters are
// pre-sized from the graph, and step buffers get capacity n up front, so
// even a first step with n transmitters on a dense graph never grow-copies.
func (r *Runner) ensure(n int, opt Options) {
	if r.running {
		// The previous run unwound mid-step (a panicking program); the
		// between-steps all-zero invariant on hits/transmitted may not
		// hold, so rebuild every scratch buffer rather than trust any of
		// them — the sizing code below re-allocates on demand.
		//radiolint:scratch-rebuild
		r.hits, r.lastFrom, r.transmitted, r.dirty = nil, nil, nil, nil
		r.hitOnce, r.hitTwice, r.txPlane = nil, nil, nil
		r.jammed, r.jamDirty = nil, nil
		r.programs, r.active = nil, nil
		r.transmitters, r.payloads, r.receptions = nil, nil, nil
	}
	r.running = true
	if cap(r.hits) < n {
		r.hits = make([]int32, n)
		r.lastFrom = make([]int32, n)
		r.transmitted = make([]bool, n)
	}
	r.hits = r.hits[:n]
	r.lastFrom = r.lastFrom[:n]
	r.transmitted = r.transmitted[:n]
	words := bitset.Words(n)
	if cap(r.hitOnce) < words {
		r.hitOnce = make([]uint64, words)
		r.hitTwice = make([]uint64, words)
		r.txPlane = make([]uint64, words)
	}
	r.hitOnce = r.hitOnce[:words]
	r.hitTwice = r.hitTwice[:words]
	r.txPlane = r.txPlane[:words]
	if cap(r.dirty) < n {
		r.dirty = make([]int32, 0, n)
	}
	if cap(r.programs) < n {
		r.programs = make([]NodeProgram, n)
	}
	r.programs = r.programs[:n]
	for i := range r.programs {
		r.programs[i] = nil
	}
	if cap(r.active) < n {
		r.active = make([]int, 0, n)
	}
	if cap(r.transmitters) < n {
		r.transmitters = make([]int, 0, n)
		r.payloads = make([]any, 0, n)
	}
	if opt.Trace != nil && cap(r.receptions) < n {
		r.receptions = make([]Message, 0, n)
	}
}

// finish drops every run-scoped reference so a parked Runner pins neither
// programs, payloads, nor the graph, and marks the run cleanly ended.
func (r *Runner) finish() {
	for i := range r.programs {
		r.programs[i] = nil
	}
	payloads := r.payloads[:cap(r.payloads)]
	for i := range payloads {
		payloads[i] = nil
	}
	r.payloads = r.payloads[:0]
	receptions := r.receptions[:cap(r.receptions)]
	for i := range receptions {
		receptions[i] = Message{}
	}
	r.receptions = r.receptions[:0]
	r.active = r.active[:0]
	r.transmitters = r.transmitters[:0]
	r.dirty = r.dirty[:0]
	r.jamDirty = r.jamDirty[:0]
	r.res, r.g, r.p, r.na = nil, nil, nil, nil
	r.cfg, r.opt = Config{}, Options{}
	r.informedCount = 0
	r.running = false
}
