package radio

import (
	"errors"
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/rng"
)

// flood transmits in every step once informed: correct on collision-free
// topologies, livelocks where fronts collide.
type flood struct{}

func (flood) Name() string                              { return "flood" }
func (flood) NewNode(label int, cfg Config) NodeProgram { return &floodNode{} }

type floodNode struct{}

func (fn *floodNode) Act(t int) (bool, any)      { return true, "m" }
func (fn *floodNode) Deliver(t int, msg Message) {}

func TestFloodOnPath(t *testing.T) {
	g := graph.Path(6)
	res, err := Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.BroadcastTime != 5 {
		t.Fatalf("BroadcastTime = %d, want 5", res.BroadcastTime)
	}
	for v, at := range res.InformedAt {
		if at != v {
			t.Fatalf("InformedAt[%d] = %d", v, at)
		}
	}
}

func TestFloodOnStar(t *testing.T) {
	res, err := Run(graph.Star(10), flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BroadcastTime != 1 {
		t.Fatalf("BroadcastTime = %d, want 1", res.BroadcastTime)
	}
}

func TestFloodCollisionLivelock(t *testing.T) {
	// Layer sizes [2,1]: both layer-1 nodes transmit forever, colliding at
	// the single layer-2 node; broadcast never completes.
	g, err := graph.CompleteLayered([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, flood{}, Config{}, Options{MaxSteps: 200})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if res.Completed {
		t.Fatal("reported completed despite livelock")
	}
	if res.Collisions == 0 {
		t.Fatal("no collisions recorded")
	}
	if res.InformedAt[3] != -1 {
		t.Fatalf("layer-2 node informed at %d", res.InformedAt[3])
	}
}

// onceAt transmits exactly at the given step after becoming informed.
type onceAt struct{ step int }

func (o onceAt) Name() string { return "onceAt" }
func (o onceAt) NewNode(label int, cfg Config) NodeProgram {
	return &onceAtNode{step: o.step, isSource: label == 0}
}

type onceAtNode struct {
	step     int
	isSource bool
	got      []Message
}

func (n *onceAtNode) Act(t int) (bool, any) {
	if n.isSource && t == n.step {
		return true, t
	}
	return false, nil
}
func (n *onceAtNode) Deliver(t int, msg Message) { n.got = append(n.got, msg) }

func TestMessageContents(t *testing.T) {
	g := graph.Star(3)
	var seen []Message
	trace := func(step int, tx []int, rx []Message) {
		seen = append(seen, rx...)
	}
	res, err := Run(g, onceAt{step: 4}, Config{}, Options{Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if res.BroadcastTime != 4 {
		t.Fatalf("BroadcastTime = %d", res.BroadcastTime)
	}
	if len(seen) != 2 {
		t.Fatalf("receptions = %d", len(seen))
	}
	for _, m := range seen {
		if m.From != 0 || m.Payload.(int) != 4 {
			t.Fatalf("message = %+v", m)
		}
	}
	if res.Transmissions != 1 || res.Receptions != 2 {
		t.Fatalf("tx=%d rx=%d", res.Transmissions, res.Receptions)
	}
}

// halfDuplexProbe: node 0 and node 1 both transmit at step 1 (node 1 is
// pre-informed via a first message at... impossible: only source informed).
// Instead test half-duplex on a triangle: source transmits step 1 informing
// 1 and 2; at step 2, nodes 1 and 2 transmit while source listens: source
// must record a collision, and 1,2 must hear nothing from each other.
type hdProbe struct{}

func (hdProbe) Name() string { return "hdProbe" }
func (hdProbe) NewNode(label int, cfg Config) NodeProgram {
	return &hdNode{label: label}
}

type hdNode struct {
	label      int
	informedAt int
	heard      int
}

func (n *hdNode) Act(t int) (bool, any) {
	if n.label == 0 {
		return t == 1, "src"
	}
	return t == n.informedAt+1, "echo"
}
func (n *hdNode) Deliver(t int, msg Message) {
	if n.informedAt == 0 && n.label != 0 {
		n.informedAt = t
	}
	n.heard++
}

func TestHalfDuplexAndCollision(t *testing.T) {
	g := graph.Clique(3)
	res, err := Run(g, hdProbe{}, Config{}, Options{MaxSteps: 10, RunToMaxSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: source informs 1 and 2. Step 2: both transmit; source hears a
	// collision; neither 1 nor 2 receives (they transmitted).
	if res.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", res.Collisions)
	}
	if res.Receptions != 2 {
		t.Fatalf("receptions = %d, want 2", res.Receptions)
	}
}

// cdProbe verifies the collision-detection model variant.
type cdProbe struct{}

func (cdProbe) Name() string { return "cdProbe" }
func (cdProbe) NewNode(label int, cfg Config) NodeProgram {
	return &cdNode{label: label}
}

type cdNode struct {
	label      int
	collisions int
	informedAt int
}

func (n *cdNode) Act(t int) (bool, any) {
	if n.label == 0 {
		return t == 1, "src"
	}
	return t == n.informedAt+1, "echo"
}
func (n *cdNode) Deliver(t int, msg Message) {
	if n.informedAt == 0 && n.label != 0 {
		n.informedAt = t
	}
}
func (n *cdNode) DeliverCollision(t int) { n.collisions++ }

func TestCollisionDetectionVariant(t *testing.T) {
	g := graph.Clique(3)
	p := cdProbe{}
	// Build programs through a capturing protocol so we can inspect them.
	cap := &capturing{inner: p}
	_, err := Run(g, cap, Config{}, Options{MaxSteps: 10, RunToMaxSteps: true, CollisionDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	src := cap.nodes[0].(*cdNode)
	if src.collisions != 1 {
		t.Fatalf("source saw %d collisions, want 1", src.collisions)
	}

	// Without the variant, no collision callbacks.
	cap2 := &capturing{inner: p}
	_, err = Run(g, cap2, Config{}, Options{MaxSteps: 10, RunToMaxSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if cap2.nodes[0].(*cdNode).collisions != 0 {
		t.Fatal("collision delivered outside CD variant")
	}
}

// capturing wraps a protocol and remembers the programs it built.
type capturing struct {
	inner Protocol
	nodes map[int]NodeProgram
}

func (c *capturing) Name() string { return c.inner.Name() }
func (c *capturing) NewNode(label int, cfg Config) NodeProgram {
	if c.nodes == nil {
		c.nodes = map[int]NodeProgram{}
	}
	n := c.inner.NewNode(label, cfg)
	c.nodes[label] = n
	return n
}

// coin transmits with probability 1/2 each step; used for determinism tests.
type coin struct{}

func (coin) Name() string { return "coin" }
func (coin) NewNode(label int, cfg Config) NodeProgram {
	return &coinNode{src: rng.NewStream(cfg.Seed, uint64(label))}
}

type coinNode struct{ src *rng.Source }

func (n *coinNode) Act(t int) (bool, any)      { return n.src.Bool(), "c" }
func (n *coinNode) Deliver(t int, msg Message) {}

func TestSeedDeterminism(t *testing.T) {
	src := rng.New(9)
	g := graph.GNPConnected(40, 0.1, src)
	a, err := Run(g, coin{}, Config{Seed: 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, coin{}, Config{Seed: 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.BroadcastTime != b.BroadcastTime || a.Transmissions != b.Transmissions {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(g, coin{}, Config{Seed: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Different seed should (with overwhelming probability) change the
	// transmission count on a 40-node run.
	if a.Transmissions == c.Transmissions && a.BroadcastTime == c.BroadcastTime {
		t.Log("warning: different seeds produced identical metrics (possible but unlikely)")
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := graph.New(1, true)
	res, err := Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.BroadcastTime != 0 {
		t.Fatalf("single node result %+v", res)
	}
}

func TestEmptyGraphError(t *testing.T) {
	if _, err := Run(graph.New(0, true), flood{}, Config{}, Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestConfigMismatch(t *testing.T) {
	if _, err := Run(graph.Path(3), flood{}, Config{N: 5}, Options{}); err == nil {
		t.Fatal("mismatched cfg.N accepted")
	}
}

func TestLabelBound(t *testing.T) {
	if (Config{N: 8}).LabelBound() != 7 {
		t.Fatal("default LabelBound wrong")
	}
	if (Config{N: 8, R: 15}).LabelBound() != 15 {
		t.Fatal("explicit LabelBound wrong")
	}
}

func TestDefaultMaxStepsMonotone(t *testing.T) {
	prev := 0
	for _, n := range []int{1, 2, 4, 100, 5000} {
		m := DefaultMaxSteps(n)
		if m <= 0 || m < prev {
			t.Fatalf("DefaultMaxSteps(%d) = %d not positive/monotone", n, m)
		}
		prev = m
	}
}

func TestRunToMaxSteps(t *testing.T) {
	res, err := Run(graph.Path(3), flood{}, Config{}, Options{MaxSteps: 50, RunToMaxSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsSimulated != 50 {
		t.Fatalf("StepsSimulated = %d, want 50", res.StepsSimulated)
	}
	if res.BroadcastTime != 2 {
		t.Fatalf("BroadcastTime = %d, want 2", res.BroadcastTime)
	}
}

func TestDirectedDelivery(t *testing.T) {
	// Directed path 0 -> 1 -> 2: flood completes; reverse arcs absent so no
	// collisions at all.
	g := graph.New(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	res, err := Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BroadcastTime != 2 || res.Collisions != 0 {
		t.Fatalf("directed run %+v", res)
	}
}
