package radio

import (
	"errors"
	"testing"

	"adhocradio/internal/fault"
	"adhocradio/internal/graph"
	"adhocradio/internal/obs"
	"adhocradio/internal/rng"
)

// TestCountersMatchResultFaultFree: on a fault-free run the engine counters
// must restate the Result's own accounting exactly, fault counters stay
// zero, and silent steps plus transmitting steps partition the run.
func TestCountersMatchResultFaultFree(t *testing.T) {
	g := graph.GNPConnected(40, 0.15, rng.New(3))
	r := NewRunner()
	res, err := r.Run(g, coin{}, Config{Seed: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counters()
	if c.Steps != int64(res.StepsSimulated) ||
		c.Transmissions != res.Transmissions ||
		c.Receptions != res.Receptions ||
		c.Collisions != res.Collisions {
		t.Fatalf("counters diverge from Result:\ncounters %+v\nresult   %+v", c, res)
	}
	if c.FaultEvents() != 0 {
		t.Fatalf("fault counters fired on a fault-free run: %+v", c)
	}
	if c.SilentSteps < 0 || c.SilentSteps > c.Steps {
		t.Fatalf("silent steps %d outside [0, %d]", c.SilentSteps, c.Steps)
	}
}

// TestCountersAccumulateAndReset: counters are Runner-cumulative (the
// per-run window is a Diff of snapshots) and ResetCounters zeroes them.
func TestCountersAccumulateAndReset(t *testing.T) {
	g := graph.Path(12)
	r := NewRunner()
	if _, err := r.Run(g, flood{}, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
	first := r.Counters()
	if first.IsZero() {
		t.Fatal("no counters recorded")
	}
	if _, err := r.Run(g, flood{}, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
	second := r.Counters()
	if got := second.Diff(first); got != first {
		t.Fatalf("replay window %+v differs from first run %+v", got, first)
	}
	r.ResetCounters()
	if !r.Counters().IsZero() {
		t.Fatalf("ResetCounters left %+v", r.Counters())
	}
}

// TestCountersSingleNode: an n=1 run simulates zero steps and counts
// nothing.
func TestCountersSingleNode(t *testing.T) {
	g := graph.Path(1)
	r := NewRunner()
	res, err := r.Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.BroadcastTime != 0 {
		t.Fatalf("n=1 result wrong: %+v", res)
	}
	if !r.Counters().IsZero() {
		t.Fatalf("n=1 counted events: %+v", r.Counters())
	}
}

// TestCountersEngineVsReferenceUnderFaults: engine counters equal the
// independently counted reference counters on every fault model, including
// a run that hits the step limit (both sides then cover the same executed
// steps).
func TestCountersEngineVsReferenceUnderFaults(t *testing.T) {
	g := graph.GNPConnected(36, 0.15, rng.New(9))
	plans := map[string]*fault.Plan{
		"none":  nil,
		"loss":  {Seed: 11, LinkLoss: 0.2},
		"churn": {Seed: 12, ChurnProb: 0.3, ChurnWindow: 6},
		"jam":   {Seed: 13, Jammers: []int{0, 2}, JamProb: 0.4},
		"crash": {Seed: 14, CrashFrac: 0.3, CrashWindow: 30},
		"sleep": {Seed: 15, SleepFrac: 0.5, SleepPeriod: 5, SleepAwake: 2},
		"storm": {Seed: 16, LinkLoss: 0.1, Jammers: []int{1}, JamProb: 0.3,
			CrashFrac: 0.15, CrashWindow: 20, SleepFrac: 0.2, SleepPeriod: 4, SleepAwake: 2},
	}
	r := NewRunner()
	for name, plan := range plans {
		for _, maxSteps := range []int{0, 25} { // 25 forces step-limited partial runs
			before := r.Counters()
			_, fastErr := r.Run(g, coin{}, Config{Seed: 21}, Options{MaxSteps: maxSteps, Fault: plan})
			if fastErr != nil && !errors.Is(fastErr, ErrStepLimit) {
				t.Fatalf("%s/max=%d: %v", name, maxSteps, fastErr)
			}
			eng := r.Counters().Diff(before)
			_, ref, refErr := RunReferenceObserved(g, coin{}, Config{Seed: 21}, maxSteps, plan)
			if refErr != nil && !errors.Is(refErr, ErrStepLimit) {
				t.Fatalf("%s/max=%d reference: %v", name, maxSteps, refErr)
			}
			if (fastErr == nil) != (refErr == nil) {
				t.Fatalf("%s/max=%d: step-limit disagreement (%v vs %v)", name, maxSteps, fastErr, refErr)
			}
			if eng != ref {
				t.Fatalf("%s/max=%d: counter divergence:\nengine    %+v\nreference %+v", name, maxSteps, eng, ref)
			}
			switch name {
			case "loss", "churn":
				if maxSteps == 0 && eng.LinksDropped == 0 {
					t.Errorf("%s: no links dropped — the plan never fired", name)
				}
			case "jam":
				if maxSteps == 0 && eng.JamNoise == 0 {
					t.Errorf("jam: no noise transmissions — the plan never fired")
				}
			case "crash":
				if maxSteps == 0 && eng.CrashSkips == 0 {
					t.Errorf("crash: no crash skips — the plan never fired")
				}
			case "sleep":
				if maxSteps == 0 && eng.SleepSkips == 0 {
					t.Errorf("sleep: no sleep skips — the plan never fired")
				}
			}
		}
	}
}

// TestRunReferenceObservedValidation: validation failures return zero
// counters and a nil result, exactly like RunReferenceWithFaults.
func TestRunReferenceObservedValidation(t *testing.T) {
	g := graph.Path(4)
	res, c, err := RunReferenceObserved(g, flood{}, Config{N: 7}, 0, nil)
	if err == nil || res != nil || !c.IsZero() {
		t.Fatalf("mismatched cfg.N: res=%v c=%+v err=%v", res, c, err)
	}
	res, c, err = RunReferenceObserved(g, flood{}, Config{}, -1, nil)
	if err == nil || res != nil || !c.IsZero() {
		t.Fatalf("negative MaxSteps: res=%v c=%+v err=%v", res, c, err)
	}
	bad := &fault.Plan{LinkLoss: 2}
	res, c, err = RunReferenceObserved(g, flood{}, Config{}, 0, bad)
	if err == nil || res != nil || !c.IsZero() {
		t.Fatalf("invalid plan: res=%v c=%+v err=%v", res, c, err)
	}
}

// TestCountersSurviveScratchPoison: a panicking program poisons the
// engine's scratch, which is rebuilt on the next run — but the counters
// are an observability ledger, not scratch, and must survive the rebuild.
func TestCountersSurviveScratchPoison(t *testing.T) {
	g := graph.Path(6)
	r := NewRunner()
	if _, err := r.Run(g, flood{}, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
	kept := r.Counters()
	func() {
		defer func() { recover() }()
		_, _ = r.Run(g, panicAt{step: 2}, Config{}, Options{})
	}()
	if got := r.Counters(); got.Diff(kept).Steps == 0 && got != kept {
		// The panicked run may have counted partial steps; what must not
		// happen is the ledger going backwards or zeroing.
		t.Fatalf("counters corrupted across panic: %+v -> %+v", kept, got)
	}
	poisoned := r.Counters()
	if _, err := r.Run(g, flood{}, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := r.Counters().Diff(poisoned); got != kept {
		t.Fatalf("post-poison run window %+v differs from clean run %+v", got, kept)
	}
	var sink obs.Counters
	sink.Add(r.Counters()) // the ledger is consumable by the obs layer
	if sink.IsZero() {
		t.Fatal("ledger unexpectedly empty")
	}
}
