package radio

import (
	"errors"
	"fmt"

	"adhocradio/internal/fault"
	"adhocradio/internal/obs"
)

// ReferenceGraph is the minimal topology view the naive oracle needs.
type ReferenceGraph interface {
	N() int
	Out(v int) []int
	In(v int) []int
}

// RunReference is a deliberately naive implementation of the same model as
// Run: per step it scans every node and every arc, with no incremental
// bookkeeping. It exists purely as a differential-testing oracle — the
// optimized simulator is checked against it on randomized workloads — and
// for readers who want the model semantics in thirty lines.
//
// It supports the core model only (no collision-detection variant). The
// protocol must be replayable (same cfg.Seed ⇒ same behaviour) for the
// comparison to be meaningful.
func RunReference(g ReferenceGraph, p Protocol, cfg Config, maxSteps int) (*Result, error) {
	return RunReferenceWithFaults(g, p, cfg, maxSteps, nil)
}

// RunReferenceWithFaults is RunReference under a fault plan. Every fault
// model of internal/fault is implemented here, independently of the
// optimized engine, from the same order-free decision functions — that is
// what lets the differential battery and FuzzRunVsReference gate the faulty
// paths: both simulators must agree bit for bit on every Result field.
//
// Semantics, spelled out once (the engine mirrors them):
//   - a down node (crashed or asleep) is not asked to Act and hears
//     nothing — no reception, no collision is accounted to it;
//   - an arc whose LinkDown decision fires carries no transmission;
//   - jam noise from a device hosted at u reaches every out-neighbor of u,
//     ignoring link faults; a jammed listener with exactly one surviving
//     legitimate hit suffers a collision instead of a reception, while jam
//     noise over silence is just more silence.
func RunReferenceWithFaults(g ReferenceGraph, p Protocol, cfg Config, maxSteps int, plan *fault.Plan) (*Result, error) {
	res, _, err := RunReferenceObserved(g, p, cfg, maxSteps, plan)
	return res, err
}

// RunReferenceObserved is RunReferenceWithFaults additionally returning
// the engine counters of the run, counted independently of the optimized
// engine: plain increments over this function's own naive scans, never
// derived from a Result or from radio.Runner. This is the reference side
// of the counter mirror rule (CONTRIBUTING.md): every obs.Counters field
// the engine maintains must be maintained here too, at the semantically
// identical accounting point, so the differential battery and
// FuzzRunVsReference gate counter semantics exactly like result semantics.
// On a step-limit error the counters cover the executed steps.
func RunReferenceObserved(g ReferenceGraph, p Protocol, cfg Config, maxSteps int, plan *fault.Plan) (*Result, obs.Counters, error) {
	var c obs.Counters
	n := g.N()
	if n == 0 {
		return nil, c, errors.New("radio: empty graph")
	}
	if cfg.N == 0 {
		cfg.N = n
	}
	if cfg.N != n {
		return nil, c, fmt.Errorf("radio: cfg.N=%d does not match graph n=%d", cfg.N, n)
	}
	if maxSteps < 0 {
		return nil, c, fmt.Errorf("radio: negative MaxSteps %d", maxSteps)
	}
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps(n)
	}
	var st *fault.State
	if plan != nil {
		if err := plan.Validate(n); err != nil {
			return nil, c, err
		}
		if plan.Active() {
			st = fault.NewState()
			if err := st.Reset(plan, n); err != nil {
				return nil, c, err
			}
		}
	}

	newProgram := func(v int) NodeProgram {
		if na, ok := p.(NeighborAwareProtocol); ok {
			return na.NewNodeWithNeighbors(v, append([]int(nil), g.Out(v)...), cfg)
		}
		return p.NewNode(v, cfg)
	}

	spontaneous := false
	if sp, ok := p.(SpontaneousProtocol); ok && sp.Spontaneous() {
		spontaneous = true
	}
	res := &Result{BroadcastTime: -1, InformedAt: make([]int, n)}
	for v := range res.InformedAt {
		res.InformedAt[v] = -1
	}
	res.InformedAt[0] = 0
	programs := make([]NodeProgram, n)
	programs[0] = newProgram(0)
	if spontaneous {
		for v := 1; v < n; v++ {
			programs[v] = newProgram(v)
		}
	}

	informed := func() int {
		c := 0
		for _, at := range res.InformedAt {
			if at >= 0 {
				c++
			}
		}
		return c
	}

	for t := 1; informed() < n; t++ {
		if t > maxSteps {
			res.StepsSimulated = t - 1
			return res, c, fmt.Errorf("radio: %w after %d steps (reference)", ErrStepLimit, maxSteps)
		}
		res.StepsSimulated = t
		c.Steps++

		// Who transmits. Nodes the fault plan has down are not consulted; a
		// down node with a program is a lost transmit opportunity, counted
		// as a crash or sleep skip (crash wins when both hold, matching the
		// engine).
		tx := make(map[int]any, 4)
		for v := 0; v < n; v++ {
			if programs[v] == nil {
				continue
			}
			if st != nil && st.NodeDown(t, v) {
				if st.Crashed(t, v) {
					c.CrashSkips++
				} else {
					c.SleepSkips++
				}
				continue
			}
			if ok, payload := programs[v].Act(t); ok {
				tx[v] = payload
			}
		}
		res.Transmissions += int64(len(tx))
		c.Transmissions += int64(len(tx))
		if len(tx) == 0 {
			c.SilentSteps++
		}

		// Fault-event accounting, mirroring the engine's points exactly:
		// every arc out of a transmitter that a link fault destroys, and
		// every (step, jammer) noise transmission — JamAt is false for
		// nodes hosting no jammer, so scanning all n keeps this naive.
		if st != nil {
			for u := 0; u < n; u++ {
				if _, ok := tx[u]; ok {
					for _, v := range g.Out(u) {
						if st.LinkDown(t, u, v) {
							c.LinksDropped++
						}
					}
				}
				if st.JamAt(t, u) {
					c.JamNoise++
				}
			}
		}

		// Who receives what: scan every node's in-neighbors.
		for v := 0; v < n; v++ {
			if _, transmitting := tx[v]; transmitting {
				continue
			}
			if st != nil && st.NodeDown(t, v) {
				continue // a down node hears nothing
			}
			from, count := -1, 0
			jammed := false
			for _, u := range g.In(v) {
				if _, ok := tx[u]; ok && (st == nil || !st.LinkDown(t, u, v)) {
					from = u
					count++
				}
				if st != nil && st.JamAt(t, u) {
					jammed = true
				}
			}
			switch {
			case count == 1 && !jammed:
				payload := tx[from]
				if res.InformedAt[v] == -1 {
					carrier := true
					if c, ok := payload.(SourceCarrier); ok && !c.CarriesSourceMessage() {
						carrier = false
					}
					switch {
					case carrier:
						res.InformedAt[v] = t
						if !spontaneous {
							programs[v] = newProgram(v)
						}
					case !spontaneous:
						continue
					}
				}
				programs[v].Deliver(t, Message{From: from, Payload: payload})
				res.Receptions++
				c.Receptions++
			case count >= 2 || (count == 1 && jammed):
				res.Collisions++
				c.Collisions++
			}
		}
		if informed() == n {
			res.BroadcastTime = t
		}
	}
	res.Completed = true
	if n == 1 {
		res.BroadcastTime = 0
	}
	return res, c, nil
}
