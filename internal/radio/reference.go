package radio

import (
	"errors"
	"fmt"
)

// RunReference is a deliberately naive implementation of the same model as
// Run: per step it scans every node and every arc, with no incremental
// bookkeeping. It exists purely as a differential-testing oracle — the
// optimized simulator is checked against it on randomized workloads — and
// for readers who want the model semantics in thirty lines.
//
// It supports the core model only (no collision-detection variant). The
// protocol must be replayable (same cfg.Seed ⇒ same behaviour) for the
// comparison to be meaningful.
func RunReference(g interface {
	N() int
	Out(v int) []int
	In(v int) []int
}, p Protocol, cfg Config, maxSteps int) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("radio: empty graph")
	}
	if cfg.N == 0 {
		cfg.N = n
	}
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps(n)
	}

	newProgram := func(v int) NodeProgram {
		if na, ok := p.(NeighborAwareProtocol); ok {
			return na.NewNodeWithNeighbors(v, append([]int(nil), g.Out(v)...), cfg)
		}
		return p.NewNode(v, cfg)
	}

	spontaneous := false
	if sp, ok := p.(SpontaneousProtocol); ok && sp.Spontaneous() {
		spontaneous = true
	}
	res := &Result{BroadcastTime: -1, InformedAt: make([]int, n)}
	for v := range res.InformedAt {
		res.InformedAt[v] = -1
	}
	res.InformedAt[0] = 0
	programs := make([]NodeProgram, n)
	programs[0] = newProgram(0)
	if spontaneous {
		for v := 1; v < n; v++ {
			programs[v] = newProgram(v)
		}
	}

	informed := func() int {
		c := 0
		for _, at := range res.InformedAt {
			if at >= 0 {
				c++
			}
		}
		return c
	}

	for t := 1; informed() < n; t++ {
		if t > maxSteps {
			res.StepsSimulated = t - 1
			return res, fmt.Errorf("radio: %w after %d steps (reference)", ErrStepLimit, maxSteps)
		}
		res.StepsSimulated = t

		// Who transmits.
		tx := make(map[int]any, 4)
		for v := 0; v < n; v++ {
			if programs[v] == nil {
				continue
			}
			if ok, payload := programs[v].Act(t); ok {
				tx[v] = payload
			}
		}
		res.Transmissions += int64(len(tx))

		// Who receives what: scan every node's in-neighbors.
		for v := 0; v < n; v++ {
			if _, transmitting := tx[v]; transmitting {
				continue
			}
			from, count := -1, 0
			for _, u := range g.In(v) {
				if _, ok := tx[u]; ok {
					from = u
					count++
				}
			}
			switch {
			case count == 1:
				payload := tx[from]
				if res.InformedAt[v] == -1 {
					carrier := true
					if c, ok := payload.(SourceCarrier); ok && !c.CarriesSourceMessage() {
						carrier = false
					}
					switch {
					case carrier:
						res.InformedAt[v] = t
						if !spontaneous {
							programs[v] = newProgram(v)
						}
					case !spontaneous:
						continue
					}
				}
				programs[v].Deliver(t, Message{From: from, Payload: payload})
				res.Receptions++
			case count > 1:
				res.Collisions++
			}
		}
		if informed() == n {
			res.BroadcastTime = t
		}
	}
	res.Completed = true
	if n == 1 {
		res.BroadcastTime = 0
	}
	return res, nil
}
