package radio

import (
	"errors"
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/rng"
)

// TestRunnerReuseMatchesFreshRun drives one engine through a mixed sequence
// of graphs, protocols, and seeds and checks every run against a fresh
// package-level Run: scratch reuse must never change a byte of the Result.
func TestRunnerReuseMatchesFreshRun(t *testing.T) {
	src := rng.New(41)
	graphs := []*graph.Graph{
		graph.Clique(20),
		graph.Path(40),
		graph.GNPConnected(64, 0.08, src),
		graph.Star(7), // shrinking graph: scratch must re-bound, not leak
		graph.RandomTree(50, src),
	}
	r := NewRunner()
	for gi, g := range graphs {
		for seed := uint64(1); seed <= 3; seed++ {
			reused, err := r.Run(g, coin{}, Config{Seed: seed}, Options{})
			if err != nil {
				t.Fatalf("graph %d seed %d reused: %v", gi, seed, err)
			}
			fresh, err := Run(g, coin{}, Config{Seed: seed}, Options{})
			if err != nil {
				t.Fatalf("graph %d seed %d fresh: %v", gi, seed, err)
			}
			if reused.BroadcastTime != fresh.BroadcastTime ||
				reused.Transmissions != fresh.Transmissions ||
				reused.Receptions != fresh.Receptions ||
				reused.Collisions != fresh.Collisions ||
				reused.StepsSimulated != fresh.StepsSimulated ||
				reused.Completed != fresh.Completed {
				t.Fatalf("graph %d seed %d: reused %+v vs fresh %+v", gi, seed, reused, fresh)
			}
			for v := range fresh.InformedAt {
				if reused.InformedAt[v] != fresh.InformedAt[v] {
					t.Fatalf("graph %d seed %d: InformedAt[%d] %d vs %d",
						gi, seed, v, reused.InformedAt[v], fresh.InformedAt[v])
				}
			}
		}
	}
}

// TestRunnerRunIntoReusesResult checks that RunInto reuses the caller's
// InformedAt storage and fully resets stale fields.
func TestRunnerRunIntoReusesResult(t *testing.T) {
	r := NewRunner()
	g := graph.Path(6)
	var res Result
	if err := r.RunInto(&res, g, flood{}, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if res.BroadcastTime != 5 || !res.Completed {
		t.Fatalf("first run: %+v", res)
	}
	buf := &res.InformedAt[0]
	// Second run on a smaller graph: storage reused, length re-bounded.
	if err := r.RunInto(&res, graph.Path(3), flood{}, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(res.InformedAt) != 3 || res.BroadcastTime != 2 {
		t.Fatalf("second run: %+v", res)
	}
	if &res.InformedAt[0] != buf {
		t.Fatal("RunInto reallocated InformedAt despite sufficient capacity")
	}
}

// TestRunnerValidationLeavesResultUntouched pins RunInto's error contract.
func TestRunnerValidationLeavesResultUntouched(t *testing.T) {
	r := NewRunner()
	res := Result{BroadcastTime: 99}
	if err := r.RunInto(&res, graph.New(0, true), flood{}, Config{}, Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if res.BroadcastTime != 99 {
		t.Fatal("validation error mutated the Result")
	}
	if err := r.RunInto(&res, graph.Path(3), flood{}, Config{N: 7}, Options{}); err == nil {
		t.Fatal("mismatched cfg.N accepted")
	}
	// The runner must still be usable after validation failures.
	if err := r.RunInto(&res, graph.Path(3), flood{}, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestRunnerStepLimitThenReuse checks that a step-limit abort leaves the
// engine clean for the next trial (the invariant the pooled experiment
// workers rely on).
func TestRunnerStepLimitThenReuse(t *testing.T) {
	r := NewRunner()
	g, err := graph.CompleteLayered([]int{2, 1}) // flood livelocks here
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(g, flood{}, Config{}, Options{MaxSteps: 50})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if res.Completed {
		t.Fatal("livelock reported complete")
	}
	ok, err := r.Run(g.Clone(), flood{}, Config{}, Options{MaxSteps: 50})
	if !errors.Is(err, ErrStepLimit) || ok.Collisions != res.Collisions {
		t.Fatalf("reuse after step limit diverged: %+v vs %+v (err %v)", ok, res, err)
	}
	clean, err := r.Run(graph.Path(4), flood{}, Config{}, Options{})
	if err != nil || clean.BroadcastTime != 3 {
		t.Fatalf("clean run after aborts: %+v, %v", clean, err)
	}
}

// panicAt panics inside Act at a chosen step, to poison the engine mid-step.
type panicAt struct{ step int }

func (p panicAt) Name() string { return "panicAt" }
func (p panicAt) NewNode(label int, cfg Config) NodeProgram {
	return &panicAtNode{step: p.step}
}

type panicAtNode struct{ step int }

func (n *panicAtNode) Act(t int) (bool, any) {
	if t == n.step {
		panic("protocol bug") //radiolint:ignore nopanic test fixture: simulates a buggy protocol to exercise engine poisoning recovery
	}
	return true, nil
}
func (n *panicAtNode) Deliver(t int, msg Message) {}

// TestRunnerRecoversFromPanickedRun checks the poisoned-scratch path: a run
// that unwinds mid-step must not corrupt the next run on the same engine.
func TestRunnerRecoversFromPanickedRun(t *testing.T) {
	r := NewRunner()
	g := graph.Path(6)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic from protocol")
			}
		}()
		_, _ = r.Run(g, panicAt{step: 3}, Config{}, Options{})
	}()
	res, err := r.Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BroadcastTime != 5 || !res.Completed {
		t.Fatalf("post-panic run diverged: %+v", res)
	}
}

// TestRunnerSteadyStateAllocs pins the tentpole's allocation claim: repeated
// trials on a reused Runner + Result allocate nothing in steady state (the
// protocol here builds zero-size programs and nil payloads, so every
// remaining allocation would be the engine's own).
func TestRunnerSteadyStateAllocs(t *testing.T) {
	r := NewRunner()
	g := graph.Clique(64)
	var res Result
	run := func() {
		if err := r.RunInto(&res, g, nilFlood{}, Config{}, Options{MaxSteps: 20, RunToMaxSteps: true}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch
	if allocs := testing.AllocsPerRun(20, run); allocs > 0 {
		t.Fatalf("steady-state allocations = %v, want 0", allocs)
	}
}

// nilFlood floods with nil payloads through a zero-size program, making the
// protocol side of a trial allocation-free.
type nilFlood struct{}

func (nilFlood) Name() string                              { return "nil-flood" }
func (nilFlood) NewNode(label int, cfg Config) NodeProgram { return nilFloodNode{} }

type nilFloodNode struct{}

func (nilFloodNode) Act(t int) (bool, any)      { return true, nil }
func (nilFloodNode) Deliver(t int, msg Message) {}

// TestRunnerDensePathThresholdCrossing runs a workload that flips between
// the sparse and dense tally paths within one run: flooding a barbell, the
// source's first step touches only deg(0) < n arcs (sparse), while later
// steps have a whole informed clique on air (arcs >= n, dense) as the front
// crawls over the bridge — and the run still completes. Results must match
// the oracle exactly.
func TestRunnerDensePathThresholdCrossing(t *testing.T) {
	g, err := graph.Barbell(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunReference(g, flood{}, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.BroadcastTime != ref.BroadcastTime ||
		fast.Transmissions != ref.Transmissions ||
		fast.Receptions != ref.Receptions ||
		fast.Collisions != ref.Collisions {
		t.Fatalf("threshold crossing diverged:\nfast %+v\nref  %+v", fast, ref)
	}
	for v := range fast.InformedAt {
		if fast.InformedAt[v] != ref.InformedAt[v] {
			t.Fatalf("InformedAt[%d]: %d vs %d", v, fast.InformedAt[v], ref.InformedAt[v])
		}
	}
}
