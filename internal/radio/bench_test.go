package radio

import (
	"errors"
	"fmt"
	"math/bits"
	"testing"

	"adhocradio/internal/bitset"
	"adhocradio/internal/graph"
	"adhocradio/internal/rng"
)

// Simulator micro-benchmarks: per-step cost under light (sparse
// transmitters) and heavy (everyone transmits) load, engine reuse, the
// relative cost of the reference oracle, and the CSR-vs-slice adjacency
// tally kernel. Every benchmark reports ns/step next to ns/op so runs with
// different step budgets stay comparable.

// reportSteps attaches the per-step cost metric; call after the timed loop.
func reportSteps(b *testing.B, totalSteps int) {
	b.Helper()
	if totalSteps > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalSteps), "ns/step")
	}
}

func benchRun(b *testing.B, g *graph.Graph, p Protocol, maxSteps int) {
	b.Helper()
	b.ReportAllocs()
	totalSteps := 0
	for i := 0; i < b.N; i++ {
		// Fixed step budget: measure per-step cost; the protocol may well
		// be incomplete at the cap.
		res, err := Run(g, p, Config{Seed: uint64(i + 1)}, Options{MaxSteps: maxSteps, RunToMaxSteps: true})
		if err != nil && !errors.Is(err, ErrStepLimit) {
			b.Fatal(err)
		}
		if res == nil || res.StepsSimulated == 0 {
			b.Fatal("no steps")
		}
		totalSteps += res.StepsSimulated
	}
	reportSteps(b, totalSteps)
}

func BenchmarkSimulatorSparseLoad(b *testing.B) {
	src := rng.New(1)
	g := graph.GNPConnected(1024, 4.0/1024, src)
	benchRun(b, g, coin{}, 200)
}

// BenchmarkSimulatorDenseLoad is the dense saturation workload: every step
// floods ~256 transmitters over 65k arcs with nil payloads, the shape of
// every tally-bound trial in the experiment harness. Nil payloads keep the
// run on the allNil fast path, where the bit-parallel bitset kernel is
// eligible — the payload-bearing variant of the same workload is
// BenchmarkSimulatorDensePayloadLoad below.
func BenchmarkSimulatorDenseLoad(b *testing.B) {
	g := graph.Clique(256)
	benchRun(b, g, nilFlood{}, 50)
}

// BenchmarkSimulatorDensePayloadLoad is DenseLoad with a payload attached
// to every transmission: allNil is false, so this pins the cost of the
// dense scalar tally path (the bitset kernel is payload-fast-path-only).
func BenchmarkSimulatorDensePayloadLoad(b *testing.B) {
	g := graph.Clique(256)
	benchRun(b, g, flood{}, 50)
}

// BenchmarkSimulatorRunnerReuse is the steady-state trial loop the
// experiment engine runs: one Runner, one Result, many trials on the same
// graph. With a protocol whose programs are zero-size and payloads nil, the
// allocs/op column is the engine's own steady-state allocation count — the
// tentpole target is 0.
func BenchmarkSimulatorRunnerReuse(b *testing.B) {
	g := graph.Clique(256)
	r := NewRunner()
	var res Result
	if err := r.RunInto(&res, g, nilFlood{}, Config{}, Options{MaxSteps: 50, RunToMaxSteps: true}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	totalSteps := 0
	for i := 0; i < b.N; i++ {
		if err := r.RunInto(&res, g, nilFlood{}, Config{}, Options{MaxSteps: 50, RunToMaxSteps: true}); err != nil {
			b.Fatal(err)
		}
		totalSteps += res.StepsSimulated
	}
	reportSteps(b, totalSteps)
}

func BenchmarkSimulatorVsReference(b *testing.B) {
	src := rng.New(2)
	g := graph.GNPConnected(256, 0.05, src)
	// Fixed step budget: this measures per-step cost, not completion (the
	// coin protocol can stall on high-degree nodes).
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		totalSteps := 0
		for i := 0; i < b.N; i++ {
			res, err := Run(g, coin{}, Config{Seed: 7},
				Options{MaxSteps: 300, RunToMaxSteps: true})
			if err != nil && !errors.Is(err, ErrStepLimit) {
				b.Fatal(err)
			}
			totalSteps += res.StepsSimulated
		}
		reportSteps(b, totalSteps)
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		totalSteps := 0
		for i := 0; i < b.N; i++ {
			// The reference stops with ErrStepLimit at the budget; that is
			// the expected outcome here.
			res, err := RunReference(g, coin{}, Config{Seed: 7}, 300)
			if err != nil && !errors.Is(err, ErrStepLimit) {
				b.Fatal(err)
			}
			totalSteps += res.StepsSimulated
		}
		reportSteps(b, totalSteps)
	})
}

// The dense tally kernel, isolated: every node transmits on a clique, and
// the benchmark measures only phase 2 — counting hits over the adjacency.
// The CSR variant walks the compiled flat int32 arrays exactly as the
// engine's dense path does; the slice variant is the pre-CSR hot loop
// (pointer-chasing [][]int plus first-touch dirty tracking), kept here as
// the comparison baseline.

// benchTallyDenseCSR times the engine's dense scalar tally (branch-free
// per-arc counters plus full clear) with the given transmitter set.
func benchTallyDenseCSR(b *testing.B, g *graph.Graph, transmitters []int) {
	b.Helper()
	csr := g.Compile()
	n := g.N()
	hits := make([]int32, n)
	lastFrom := make([]int32, n)
	outOff, outAdj := csr.OutOff, csr.OutAdj
	b.ReportAllocs()
	b.ResetTimer()
	for bi := 0; bi < b.N; bi++ {
		for i, u := range transmitters {
			for _, v := range outAdj[outOff[u]:outOff[u+1]] {
				hits[v]++
				lastFrom[v] = int32(i)
			}
		}
		for v := 0; v < n; v++ {
			hits[v] = 0
		}
	}
	_ = lastFrom
}

// benchTallyBitset times the bit-parallel tally exactly as tallyBitset runs
// it: two-plane accumulation over the cached bitmap rows, listener-only
// mask reduction, the scalar lastFrom second pass over exactly-one words,
// and the plane clear.
func benchTallyBitset(b *testing.B, g *graph.Graph, transmitters []int) {
	b.Helper()
	bm := g.CompileBitmap()
	n := g.N()
	words := bitset.Words(n)
	once := make([]uint64, words)
	twice := make([]uint64, words)
	tx := make([]uint64, words)
	lastFrom := make([]int32, n)
	b.ReportAllocs()
	b.ResetTimer()
	for bi := 0; bi < b.N; bi++ {
		for _, u := range transmitters {
			bitset.AccumulateTwoPlane(once, twice, bm.OutRow(u))
			bitset.Mark(tx, u)
		}
		for w := range once {
			once[w] &^= twice[w] | tx[w]
			twice[w] &^= tx[w]
		}
		for i, u := range transmitters {
			row := bm.OutRow(u)
			for w, rw := range row {
				m := rw & once[w]
				for m != 0 {
					lastFrom[w<<6+bits.TrailingZeros64(m)] = int32(i)
					m &= m - 1
				}
			}
		}
		bitset.Zero(once)
		bitset.Zero(twice)
		bitset.Zero(tx)
	}
	_ = lastFrom
}

// allTransmitters returns 0..n-1: the saturation transmitter set.
func allTransmitters(n int) []int {
	tr := make([]int, n)
	for v := range tr {
		tr[v] = v
	}
	return tr
}

func BenchmarkTallyDenseCSR(b *testing.B) {
	g := graph.Clique(256)
	benchTallyDenseCSR(b, g, allTransmitters(256))
}

// BenchmarkTallyBitset is BenchmarkTallyDenseCSR through the bit-parallel
// kernel: same clique, same saturation transmitter set, 64 receivers per
// word op instead of one per scalar op.
func BenchmarkTallyBitset(b *testing.B) {
	g := graph.Clique(256)
	benchTallyBitset(b, g, allTransmitters(256))
}

// BenchmarkTallyCrossover sweeps mean degree on a fixed node count with
// every node transmitting, pairing the dense scalar tally with the bitset
// kernel at each density. Per transmitter the scalar path costs ~out-degree
// ops and the kernel ~O(words) ops, so the crossover is a pure
// degree-vs-words ratio — this sweep is the measurement behind
// bitsetArcFactor (table in DESIGN.md).
func BenchmarkTallyCrossover(b *testing.B) {
	const n = 512
	src := rng.New(99)
	for _, deg := range []int{8, 16, 32, 64, 128, 511} {
		var g *graph.Graph
		if deg == 511 {
			g = graph.Clique(n)
		} else {
			g = graph.GNPConnected(n, float64(deg)/float64(n-1), src)
		}
		tr := allTransmitters(n)
		b.Run(fmt.Sprintf("deg%d/csr", deg), func(b *testing.B) {
			benchTallyDenseCSR(b, g, tr)
		})
		b.Run(fmt.Sprintf("deg%d/bitset", deg), func(b *testing.B) {
			benchTallyBitset(b, g, tr)
		})
	}
}

func BenchmarkTallyDenseSlice(b *testing.B) {
	g := graph.Clique(256)
	n := g.N()
	hits := make([]int32, n)
	lastFrom := make([]int32, n)
	dirty := make([]int, 0, n)
	transmitters := make([]int, n)
	for v := range transmitters {
		transmitters[v] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for bi := 0; bi < b.N; bi++ {
		for i, u := range transmitters {
			for _, v := range g.Out(u) {
				if hits[v] == 0 {
					dirty = append(dirty, v)
				}
				hits[v]++
				if hits[v] == 1 {
					lastFrom[v] = int32(i)
				}
			}
		}
		for _, v := range dirty {
			hits[v] = 0
		}
		dirty = dirty[:0]
	}
	_ = lastFrom
}
