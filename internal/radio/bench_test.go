package radio

import (
	"errors"
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/rng"
)

// Simulator micro-benchmarks: per-step cost under light (sparse
// transmitters) and heavy (everyone transmits) load, engine reuse, the
// relative cost of the reference oracle, and the CSR-vs-slice adjacency
// tally kernel. Every benchmark reports ns/step next to ns/op so runs with
// different step budgets stay comparable.

// reportSteps attaches the per-step cost metric; call after the timed loop.
func reportSteps(b *testing.B, totalSteps int) {
	b.Helper()
	if totalSteps > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalSteps), "ns/step")
	}
}

func benchRun(b *testing.B, g *graph.Graph, p Protocol, maxSteps int) {
	b.Helper()
	b.ReportAllocs()
	totalSteps := 0
	for i := 0; i < b.N; i++ {
		// Fixed step budget: measure per-step cost; the protocol may well
		// be incomplete at the cap.
		res, err := Run(g, p, Config{Seed: uint64(i + 1)}, Options{MaxSteps: maxSteps, RunToMaxSteps: true})
		if err != nil && !errors.Is(err, ErrStepLimit) {
			b.Fatal(err)
		}
		if res == nil || res.StepsSimulated == 0 {
			b.Fatal("no steps")
		}
		totalSteps += res.StepsSimulated
	}
	reportSteps(b, totalSteps)
}

func BenchmarkSimulatorSparseLoad(b *testing.B) {
	src := rng.New(1)
	g := graph.GNPConnected(1024, 4.0/1024, src)
	benchRun(b, g, coin{}, 200)
}

func BenchmarkSimulatorDenseLoad(b *testing.B) {
	g := graph.Clique(256) // every step floods ~256 transmitters over 65k arcs
	benchRun(b, g, flood{}, 50)
}

// BenchmarkSimulatorRunnerReuse is the steady-state trial loop the
// experiment engine runs: one Runner, one Result, many trials on the same
// graph. With a protocol whose programs are zero-size and payloads nil, the
// allocs/op column is the engine's own steady-state allocation count — the
// tentpole target is 0.
func BenchmarkSimulatorRunnerReuse(b *testing.B) {
	g := graph.Clique(256)
	r := NewRunner()
	var res Result
	if err := r.RunInto(&res, g, nilFlood{}, Config{}, Options{MaxSteps: 50, RunToMaxSteps: true}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	totalSteps := 0
	for i := 0; i < b.N; i++ {
		if err := r.RunInto(&res, g, nilFlood{}, Config{}, Options{MaxSteps: 50, RunToMaxSteps: true}); err != nil {
			b.Fatal(err)
		}
		totalSteps += res.StepsSimulated
	}
	reportSteps(b, totalSteps)
}

func BenchmarkSimulatorVsReference(b *testing.B) {
	src := rng.New(2)
	g := graph.GNPConnected(256, 0.05, src)
	// Fixed step budget: this measures per-step cost, not completion (the
	// coin protocol can stall on high-degree nodes).
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		totalSteps := 0
		for i := 0; i < b.N; i++ {
			res, err := Run(g, coin{}, Config{Seed: 7},
				Options{MaxSteps: 300, RunToMaxSteps: true})
			if err != nil && !errors.Is(err, ErrStepLimit) {
				b.Fatal(err)
			}
			totalSteps += res.StepsSimulated
		}
		reportSteps(b, totalSteps)
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		totalSteps := 0
		for i := 0; i < b.N; i++ {
			// The reference stops with ErrStepLimit at the budget; that is
			// the expected outcome here.
			res, err := RunReference(g, coin{}, Config{Seed: 7}, 300)
			if err != nil && !errors.Is(err, ErrStepLimit) {
				b.Fatal(err)
			}
			totalSteps += res.StepsSimulated
		}
		reportSteps(b, totalSteps)
	})
}

// The dense tally kernel, isolated: every node transmits on a clique, and
// the benchmark measures only phase 2 — counting hits over the adjacency.
// The CSR variant walks the compiled flat int32 arrays exactly as the
// engine's dense path does; the slice variant is the pre-CSR hot loop
// (pointer-chasing [][]int plus first-touch dirty tracking), kept here as
// the comparison baseline.

func BenchmarkTallyDenseCSR(b *testing.B) {
	g := graph.Clique(256)
	csr := g.Compile()
	n := g.N()
	hits := make([]int32, n)
	lastFrom := make([]int32, n)
	transmitters := make([]int, n)
	for v := range transmitters {
		transmitters[v] = v
	}
	outOff, outAdj := csr.OutOff, csr.OutAdj
	b.ReportAllocs()
	b.ResetTimer()
	for bi := 0; bi < b.N; bi++ {
		for i, u := range transmitters {
			for _, v := range outAdj[outOff[u]:outOff[u+1]] {
				hits[v]++
				lastFrom[v] = int32(i)
			}
		}
		for v := 0; v < n; v++ {
			hits[v] = 0
		}
	}
	_ = lastFrom
}

func BenchmarkTallyDenseSlice(b *testing.B) {
	g := graph.Clique(256)
	n := g.N()
	hits := make([]int32, n)
	lastFrom := make([]int32, n)
	dirty := make([]int, 0, n)
	transmitters := make([]int, n)
	for v := range transmitters {
		transmitters[v] = v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for bi := 0; bi < b.N; bi++ {
		for i, u := range transmitters {
			for _, v := range g.Out(u) {
				if hits[v] == 0 {
					dirty = append(dirty, v)
				}
				hits[v]++
				if hits[v] == 1 {
					lastFrom[v] = int32(i)
				}
			}
		}
		for _, v := range dirty {
			hits[v] = 0
		}
		dirty = dirty[:0]
	}
	_ = lastFrom
}
