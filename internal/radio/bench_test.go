package radio

import (
	"errors"
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/rng"
)

// Simulator micro-benchmarks: per-step cost under light (sparse
// transmitters) and heavy (everyone transmits) load, and the relative cost
// of the reference oracle.

func benchRun(b *testing.B, g *graph.Graph, p Protocol, maxSteps int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Fixed step budget: measure per-step cost; the protocol may well
		// be incomplete at the cap.
		res, err := Run(g, p, Config{Seed: uint64(i + 1)}, Options{MaxSteps: maxSteps, RunToMaxSteps: true})
		if err != nil && !errors.Is(err, ErrStepLimit) {
			b.Fatal(err)
		}
		if res != nil && res.StepsSimulated == 0 {
			b.Fatal("no steps")
		}
	}
}

func BenchmarkSimulatorSparseLoad(b *testing.B) {
	src := rng.New(1)
	g := graph.GNPConnected(1024, 4.0/1024, src)
	benchRun(b, g, coin{}, 200)
}

func BenchmarkSimulatorDenseLoad(b *testing.B) {
	g := graph.Clique(256) // every step floods ~256 transmitters over 65k arcs
	benchRun(b, g, flood{}, 50)
}

func BenchmarkSimulatorVsReference(b *testing.B) {
	src := rng.New(2)
	g := graph.GNPConnected(256, 0.05, src)
	// Fixed step budget: this measures per-step cost, not completion (the
	// coin protocol can stall on high-degree nodes).
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(g, coin{}, Config{Seed: 7},
				Options{MaxSteps: 300, RunToMaxSteps: true}); err != nil && !errors.Is(err, ErrStepLimit) {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The reference stops with ErrStepLimit at the budget; that is
			// the expected outcome here.
			if _, err := RunReference(g, coin{}, Config{Seed: 7}, 300); err != nil && !errors.Is(err, ErrStepLimit) {
				b.Fatal(err)
			}
		}
	})
}
