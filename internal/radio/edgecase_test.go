package radio

import (
	"errors"
	"strings"
	"testing"

	"adhocradio/internal/fault"
	"adhocradio/internal/graph"
)

// This file pins the degenerate-graph and degenerate-option edge cases on
// BOTH simulators, asserting parity: the optimized engine and the naive
// oracle must agree not only on healthy runs but on the boundary inputs —
// single-node graphs, empty step budgets, isolated sources, config
// mismatches — where off-by-ones and missing validation hide.

// TestEdgeSingleNodeParity: n = 1 means broadcast is complete before step 1.
// Both engines must report Completed with BroadcastTime 0 and simulate no
// steps.
func TestEdgeSingleNodeParity(t *testing.T) {
	g := graph.New(1, true)
	for _, withFaults := range []bool{false, true} {
		opt := Options{}
		var plan *fault.Plan
		if withFaults {
			plan = &fault.Plan{Seed: 3, LinkLoss: 0.5, CrashFrac: 1, CrashWindow: 1}
			opt.Fault = plan
		}
		res, err := Run(g, flood{}, Config{}, opt)
		if err != nil {
			t.Fatalf("faults=%v: %v", withFaults, err)
		}
		ref, err := RunReferenceWithFaults(g, flood{}, Config{}, 0, plan)
		if err != nil {
			t.Fatalf("faults=%v reference: %v", withFaults, err)
		}
		for name, r := range map[string]*Result{"fast": res, "ref": ref} {
			if !r.Completed || r.BroadcastTime != 0 || r.StepsSimulated != 0 {
				t.Fatalf("faults=%v %s: %+v, want completed at time 0 with 0 steps",
					withFaults, name, r)
			}
			if len(r.InformedAt) != 1 || r.InformedAt[0] != 0 {
				t.Fatalf("faults=%v %s: InformedAt %v", withFaults, name, r.InformedAt)
			}
		}
	}
}

// TestEdgeZeroMaxStepsIsDefault: MaxSteps == 0 selects DefaultMaxSteps, not
// an empty budget — a flood on a path completes under it in both engines.
func TestEdgeZeroMaxStepsIsDefault(t *testing.T) {
	g := graph.Path(8)
	res, err := Run(g, flood{}, Config{}, Options{MaxSteps: 0})
	if err != nil || !res.Completed {
		t.Fatalf("fast: err %v, res %+v", err, res)
	}
	ref, err := RunReference(g, flood{}, Config{}, 0)
	if err != nil || !ref.Completed {
		t.Fatalf("ref: err %v, res %+v", err, ref)
	}
	if res.BroadcastTime != ref.BroadcastTime {
		t.Fatalf("BroadcastTime %d vs %d", res.BroadcastTime, ref.BroadcastTime)
	}
}

// TestEdgeNegativeMaxSteps: a negative budget is a validation error in both
// engines, not an instant step-limit or an infinite loop.
func TestEdgeNegativeMaxSteps(t *testing.T) {
	g := graph.Path(4)
	if _, err := Run(g, flood{}, Config{}, Options{MaxSteps: -1}); err == nil ||
		errors.Is(err, ErrStepLimit) || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("fast: err = %v, want negative-MaxSteps validation error", err)
	}
	if _, err := RunReference(g, flood{}, Config{}, -1); err == nil ||
		errors.Is(err, ErrStepLimit) || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("ref: err = %v, want negative-MaxSteps validation error", err)
	}
}

// TestEdgeIsolatedSource: a source with no out-neighbours can never inform
// anyone. Both engines must hit the step limit with identical partial
// results (and no panic).
func TestEdgeIsolatedSource(t *testing.T) {
	// 0 is isolated; 1-2 are connected to each other only.
	g := graph.New(3, true)
	g.MustAddEdge(1, 2)
	res, err := Run(g, flood{}, Config{}, Options{MaxSteps: 50})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("fast: err = %v, want ErrStepLimit", err)
	}
	ref, refErr := RunReference(g, flood{}, Config{}, 50)
	if !errors.Is(refErr, ErrStepLimit) {
		t.Fatalf("ref: err = %v, want ErrStepLimit", refErr)
	}
	for name, r := range map[string]*Result{"fast": res, "ref": ref} {
		if r.Completed || r.InformedAt[1] != -1 || r.InformedAt[2] != -1 {
			t.Fatalf("%s: %+v, want nobody informed", name, r)
		}
	}
	if res.Transmissions != ref.Transmissions || res.StepsSimulated != ref.StepsSimulated {
		t.Fatalf("partial results diverged:\nfast %+v\nref  %+v", res, ref)
	}
}

// TestEdgeConfigMismatchParity: cfg.N contradicting the graph is rejected by
// BOTH engines. (The reference oracle used to silently accept it.)
func TestEdgeConfigMismatchParity(t *testing.T) {
	g := graph.Path(4)
	if _, err := Run(g, flood{}, Config{N: 5}, Options{}); err == nil {
		t.Fatal("fast: mismatched cfg.N accepted")
	}
	if _, err := RunReference(g, flood{}, Config{N: 5}, 0); err == nil {
		t.Fatal("ref: mismatched cfg.N accepted")
	}
}

// TestEdgeInvalidFaultPlanParity: an invalid fault plan is a validation
// error in both engines, and the fast engine must leave the caller's Result
// untouched (same contract as its other validation errors).
func TestEdgeInvalidFaultPlanParity(t *testing.T) {
	g := graph.Path(4)
	bad := &fault.Plan{Jammers: []int{99}, JamProb: 0.5}
	var r Runner
	res := Result{BroadcastTime: 42}
	if err := r.RunInto(&res, g, flood{}, Config{}, Options{Fault: bad}); err == nil {
		t.Fatal("fast: invalid plan accepted")
	}
	if res.BroadcastTime != 42 {
		t.Fatalf("validation error mutated caller's Result: %+v", res)
	}
	if _, err := RunReferenceWithFaults(g, flood{}, Config{}, 0, bad); err == nil {
		t.Fatal("ref: invalid plan accepted")
	}
}

// TestEdgeInactiveFaultPlanIsFree: a non-nil but inactive plan must take the
// fault-free hot path and produce results identical to a nil plan.
func TestEdgeInactiveFaultPlanIsFree(t *testing.T) {
	g := graph.Star(12)
	clean, err := Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inactive, err := Run(g, flood{}, Config{}, Options{Fault: &fault.Plan{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if clean.BroadcastTime != inactive.BroadcastTime ||
		clean.Transmissions != inactive.Transmissions ||
		clean.Receptions != inactive.Receptions ||
		clean.Collisions != inactive.Collisions {
		t.Fatalf("inactive plan changed the run:\nclean    %+v\ninactive %+v", clean, inactive)
	}
}

// TestEdgeFaultRunnerReuse: a faulty run through a Runner must not leak jam
// or schedule state into a following clean run on the same engine.
func TestEdgeFaultRunnerReuse(t *testing.T) {
	g := graph.Star(12)
	var r Runner
	want, err := r.Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Seed: 8, LinkLoss: 0.4, Jammers: []int{2}, JamProb: 0.8,
		SleepFrac: 0.5, SleepPeriod: 4, SleepAwake: 2}
	if _, err := r.Run(g, flood{}, Config{}, Options{Fault: plan, MaxSteps: 300}); err != nil &&
		!errors.Is(err, ErrStepLimit) {
		t.Fatal(err)
	}
	got, err := r.Run(g, flood{}, Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want.BroadcastTime != got.BroadcastTime ||
		want.Transmissions != got.Transmissions ||
		want.Receptions != got.Receptions ||
		want.Collisions != got.Collisions {
		t.Fatalf("fault state leaked into clean run:\nbefore %+v\nafter  %+v", want, got)
	}
}
