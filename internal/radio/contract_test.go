package radio

import (
	"errors"
	"strings"
	"testing"

	"adhocradio/internal/graph"
)

func TestContractCleanProtocolPasses(t *testing.T) {
	var violations []error
	p := WithContractChecks(flood{}, func(err error) { violations = append(violations, err) })
	if _, err := Run(graph.Path(6), p, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("clean protocol reported %d violations: %v", len(violations), violations)
	}
}

func TestContractPreservesMarkers(t *testing.T) {
	p := WithContractChecks(flood{}, func(error) {})
	if p.Name() != "flood" {
		t.Fatalf("name = %q", p.Name())
	}
	if sp, ok := p.(SpontaneousProtocol); !ok || sp.Spontaneous() {
		t.Fatal("spontaneity marker mishandled")
	}
	if d, ok := p.(DeterministicProtocol); !ok || d.Deterministic() {
		t.Fatal("determinism marker mishandled for a non-deterministic inner protocol")
	}
}

// misbehaving simulators/adversaries are what the checker exists for: drive
// a wrapped program by hand with bad call sequences.
func TestContractCatchesDecreasingActSteps(t *testing.T) {
	var got []error
	p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
	prog := p.NewNode(0, Config{N: 2})
	prog.Act(5)
	prog.Act(5)
	prog.Act(3)
	if len(got) != 2 {
		t.Fatalf("violations = %v", got)
	}
	for _, err := range got {
		if !strings.Contains(err.Error(), "strictly increasing") {
			t.Fatalf("wrong violation: %v", err)
		}
	}
}

func TestContractCatchesActBeforeDeliver(t *testing.T) {
	var got []error
	p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
	prog := p.NewNode(3, Config{N: 8}) // non-source
	prog.Act(1)
	if len(got) != 1 || !strings.Contains(got[0].Error(), "before any Deliver") {
		t.Fatalf("violations = %v", got)
	}
	// The source may act immediately.
	got = nil
	src := p.NewNode(0, Config{N: 8})
	src.Act(1)
	if len(got) != 0 {
		t.Fatalf("source flagged: %v", got)
	}
}

func TestContractCatchesHalfDuplexBreach(t *testing.T) {
	var got []error
	p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
	prog := p.NewNode(0, Config{N: 2})
	prog.Act(1) // flood transmits
	prog.Deliver(1, Message{From: 1, Payload: "x"})
	if len(got) != 1 || !strings.Contains(got[0].Error(), "half-duplex") {
		t.Fatalf("violations = %v", got)
	}
}

func TestContractCatchesSelfDelivery(t *testing.T) {
	var got []error
	p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
	prog := p.NewNode(2, Config{N: 4})
	prog.Deliver(1, Message{From: 2, Payload: "x"})
	if len(got) != 1 || !strings.Contains(got[0].Error(), "own transmission") {
		t.Fatalf("violations = %v", got)
	}
}

// TestContractViolationFieldsTable violates each clause of the NodeProgram
// contract in turn and asserts the exact ContractViolationError the checker
// reports — node, step, and reason — not just that something fired.
func TestContractViolationFieldsTable(t *testing.T) {
	type want struct {
		node   int
		step   int
		reason string // substring of the Reason field
	}
	cases := []struct {
		name  string
		label int
		drive func(prog NodeProgram)
		want  []want
	}{
		{
			name:  "act with non-positive step",
			label: 0,
			drive: func(p NodeProgram) { p.Act(0) },
			// t=0 also fails strict monotonicity against the zero value, so
			// both clauses fire on the single call.
			want: []want{
				{node: 0, step: 0, reason: "non-positive step"},
				{node: 0, step: 0, reason: "strictly increasing"},
			},
		},
		{
			name:  "double act at one step",
			label: 0,
			drive: func(p NodeProgram) { p.Act(2); p.Act(2) },
			want:  []want{{node: 0, step: 2, reason: "strictly increasing (previous 2)"}},
		},
		{
			name:  "act before deliver on a non-source node",
			label: 3,
			drive: func(p NodeProgram) { p.Act(1) },
			want:  []want{{node: 3, step: 1, reason: "Act before any Deliver"}},
		},
		{
			name:  "deliver steps going backwards",
			label: 2,
			drive: func(p NodeProgram) {
				p.Deliver(3, Message{From: 9, Payload: "x"})
				p.Deliver(2, Message{From: 9, Payload: "x"})
			},
			want: []want{{node: 2, step: 2, reason: "went backwards (previous 3)"}},
		},
		{
			name:  "deliver for a past step",
			label: 0,
			drive: func(p NodeProgram) {
				p.Act(4)
				p.Deliver(3, Message{From: 9, Payload: "x"})
			},
			want: []want{{node: 0, step: 3, reason: "before the last Act (4)"}},
		},
		{
			name:  "half-duplex breach",
			label: 0,
			drive: func(p NodeProgram) {
				p.Act(1) // flood transmits
				p.Deliver(1, Message{From: 9, Payload: "x"})
			},
			want: []want{{node: 0, step: 1, reason: "half-duplex"}},
		},
		{
			name:  "self delivery",
			label: 2,
			drive: func(p NodeProgram) { p.Deliver(1, Message{From: 2, Payload: "x"}) },
			want:  []want{{node: 2, step: 1, reason: "own transmission"}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var got []error
			p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
			c.drive(p.NewNode(c.label, Config{N: 8}))
			if len(got) != len(c.want) {
				t.Fatalf("got %d violations %v, want %d", len(got), got, len(c.want))
			}
			for i, w := range c.want {
				var cv *ContractViolationError
				if !errors.As(got[i], &cv) {
					t.Fatalf("violation %d is a %T, want *ContractViolationError", i, got[i])
				}
				if cv.Node != w.node || cv.Step != w.step || !strings.Contains(cv.Reason, w.reason) {
					t.Errorf("violation %d = {Node:%d Step:%d Reason:%q}, want {Node:%d Step:%d Reason:~%q}",
						i, cv.Node, cv.Step, cv.Reason, w.node, w.step, w.reason)
				}
			}
		})
	}
}

func TestContractViolationErrorFormat(t *testing.T) {
	err := &ContractViolationError{Node: 7, Step: 42, Reason: "boom"}
	for _, want := range []string{"node 7", "step 42", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err.Error(), want)
		}
	}
}
