package radio

import (
	"strings"
	"testing"

	"adhocradio/internal/graph"
)

func TestContractCleanProtocolPasses(t *testing.T) {
	var violations []error
	p := WithContractChecks(flood{}, func(err error) { violations = append(violations, err) })
	if _, err := Run(graph.Path(6), p, Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("clean protocol reported %d violations: %v", len(violations), violations)
	}
}

func TestContractPreservesMarkers(t *testing.T) {
	p := WithContractChecks(flood{}, func(error) {})
	if p.Name() != "flood" {
		t.Fatalf("name = %q", p.Name())
	}
	if sp, ok := p.(SpontaneousProtocol); !ok || sp.Spontaneous() {
		t.Fatal("spontaneity marker mishandled")
	}
	if d, ok := p.(DeterministicProtocol); !ok || d.Deterministic() {
		t.Fatal("determinism marker mishandled for a non-deterministic inner protocol")
	}
}

// misbehaving simulators/adversaries are what the checker exists for: drive
// a wrapped program by hand with bad call sequences.
func TestContractCatchesDecreasingActSteps(t *testing.T) {
	var got []error
	p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
	prog := p.NewNode(0, Config{N: 2})
	prog.Act(5)
	prog.Act(5)
	prog.Act(3)
	if len(got) != 2 {
		t.Fatalf("violations = %v", got)
	}
	for _, err := range got {
		if !strings.Contains(err.Error(), "strictly increasing") {
			t.Fatalf("wrong violation: %v", err)
		}
	}
}

func TestContractCatchesActBeforeDeliver(t *testing.T) {
	var got []error
	p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
	prog := p.NewNode(3, Config{N: 8}) // non-source
	prog.Act(1)
	if len(got) != 1 || !strings.Contains(got[0].Error(), "before any Deliver") {
		t.Fatalf("violations = %v", got)
	}
	// The source may act immediately.
	got = nil
	src := p.NewNode(0, Config{N: 8})
	src.Act(1)
	if len(got) != 0 {
		t.Fatalf("source flagged: %v", got)
	}
}

func TestContractCatchesHalfDuplexBreach(t *testing.T) {
	var got []error
	p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
	prog := p.NewNode(0, Config{N: 2})
	prog.Act(1) // flood transmits
	prog.Deliver(1, Message{From: 1, Payload: "x"})
	if len(got) != 1 || !strings.Contains(got[0].Error(), "half-duplex") {
		t.Fatalf("violations = %v", got)
	}
}

func TestContractCatchesSelfDelivery(t *testing.T) {
	var got []error
	p := WithContractChecks(flood{}, func(err error) { got = append(got, err) })
	prog := p.NewNode(2, Config{N: 4})
	prog.Deliver(1, Message{From: 2, Payload: "x"})
	if len(got) != 1 || !strings.Contains(got[0].Error(), "own transmission") {
		t.Fatalf("violations = %v", got)
	}
}

func TestContractViolationErrorFormat(t *testing.T) {
	err := &ContractViolationError{Node: 7, Step: 42, Reason: "boom"}
	for _, want := range []string{"node 7", "step 42", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err.Error(), want)
		}
	}
}
