// Package radio implements the synchronous radio network model of the paper
// (Section 1.3) as a discrete-event simulator.
//
// Time proceeds in synchronous steps 1, 2, 3, ... In every step each node
// acts either as a transmitter or as a receiver. A receiver gets a message
// iff exactly one of its in-neighbors transmits in that step; when two or
// more transmit, a collision occurs, and the node cannot distinguish a
// collision from silence. Only nodes that already hold the source message
// may transmit ("no spontaneous transmissions"); the simulator enforces this
// by never asking an uninformed node to act. (Optional model variants relax
// this and other assumptions: SpontaneousProtocol, NeighborAwareProtocol,
// Options.CollisionDetection.)
//
// Algorithms are implemented as per-node state machines (NodeProgram). The
// contract mirrors the knowledge model of the paper: a program is created
// knowing only its own label and the global parameters every node knows (the
// label bound R and, for some procedures, an assumed radius). It observes
// the world only through Deliver calls, which occur exactly when the model
// says a message is received. Silent steps and collided steps produce no
// call — indistinguishable, as required.
package radio

import (
	"context"
	"errors"

	"adhocradio/internal/fault"
	"adhocradio/internal/graph"
)

// Config carries the a-priori knowledge shared by all nodes, matching
// Section 1.3: each node knows its own label and the bound R such that all
// labels are in {0,...,R} (R is linear in n). Seed drives all protocol
// randomness; deterministic protocols ignore it.
//
//radiolint:mirror
type Config struct {
	// N is the number of nodes. Protocols faithful to the paper must not
	// depend on it beyond deriving R; it is provided for harness use.
	N int
	// R is the label bound: labels lie in {0,...,R}. Zero means "use N-1".
	R int
	// Seed is the master random seed. Each node derives an independent
	// stream from (Seed, label), so runs are replayable.
	Seed uint64
}

// LabelBound returns the effective R.
func (c Config) LabelBound() int {
	if c.R > 0 {
		return c.R
	}
	return c.N - 1
}

// Message is what a receiver observes on a successful reception.
type Message struct {
	// From is the label of the transmitter. The radio model does not
	// deliver sender identity out of band; protocols that need it include
	// it in the payload. From is provided for tracing and for the harness.
	From int
	// Payload is the protocol-defined message content. Broadcasting
	// payloads always implicitly carry the source message: any node that
	// receives any message becomes informed.
	Payload any
}

// SourceCarrier lets a payload declare whether it conveys the source
// message. Payloads that do not implement it are assumed to carry it (true
// for all randomized broadcast payloads). Section 4's Echo replies transmit
// only the responder's label: a not-yet-informed node that hears one does
// not thereby obtain the source message, so the simulator does not mark it
// informed (and, since uninformed nodes may not transmit or act, does not
// deliver such traffic to it at all). Informed receivers get every
// successful reception as usual.
type SourceCarrier interface {
	CarriesSourceMessage() bool
}

// NodeProgram is the state machine run at one node.
//
// The simulator calls Act(t) once per step t for every informed node, in
// increasing t, and expects (transmit, payload). It calls Deliver(t, msg)
// when the node was listening at step t and exactly one in-neighbor
// transmitted. A node that transmits in a step cannot receive in it
// (half-duplex). Programs are never called before the node is informed.
type NodeProgram interface {
	Act(t int) (transmit bool, payload any)
	Deliver(t int, msg Message)
}

// CollisionListener is an optional extension for the collision-detection
// model variant: when the simulator runs with CollisionDetection enabled and
// two or more in-neighbors of a listening informed node transmit, the node
// is told so. The paper's model has no collision detection; this variant
// exists to demonstrate (in tests) that procedure Echo simulates it.
type CollisionListener interface {
	DeliverCollision(t int)
}

// Protocol builds node programs. Name is used in reports.
type Protocol interface {
	Name() string
	NewNode(label int, cfg Config) NodeProgram
}

// DeterministicProtocol marks protocols whose programs are deterministic
// functions of (label, cfg, reception history). Only such protocols can be
// attacked by the Section 3 adversary.
type DeterministicProtocol interface {
	Protocol
	// Deterministic is a marker; implementations simply return true.
	Deterministic() bool
}

// SpontaneousProtocol marks protocols built for the model variant of
// Section 1.1's reference [7], where nodes may transmit before holding the
// source message ("spontaneous transmissions"). The simulator then creates
// every node's program at step 0 and drives all of them; transmissions not
// carrying the source message are delivered to uninformed listeners too
// (they can act on them in this model). Broadcast completion is still
// defined by source-message possession. The paper's own algorithms never
// use this variant; it exists to reproduce the §1.1 landscape, where
// spontaneous transmissions buy O(n) deterministic broadcast while the
// standard model is stuck at Ω(n·log n / log(n/D)) (Theorem 2).
type SpontaneousProtocol interface {
	Protocol
	Spontaneous() bool
}

// NeighborAwareProtocol is the stronger knowledge model of Section 1.1's
// reference [3]: every node knows a priori the labels of its neighbors (but
// still nothing else about the topology). When a protocol implements this
// interface the simulator builds programs through NewNodeWithNeighbors,
// passing the node's out-neighbor labels. The paper's own algorithms never
// use it; the linear-time DFS broadcast that "follows from [2]" does.
//
// NOTE: the Section 3 adversary cannot attack neighbor-aware protocols —
// its layer construction would change the neighborhoods it already
// committed to. Build rejects them.
type NeighborAwareProtocol interface {
	Protocol
	NewNodeWithNeighbors(label int, neighbors []int, cfg Config) NodeProgram
}

// Options control a simulation run.
//
// The struct carries the mirror marker so any future engine-consulted knob
// must either reach the RunReference* oracles too or carry an explicit
// exemption. The oracle deliberately has no Options parameter — it takes
// maxSteps and the fault plan as plain arguments — so today every field is
// exempt, each for its own stated reason.
//
//radiolint:mirror
type Options struct {
	// MaxSteps bounds the run; 0 selects a generous default based on n.
	// Negative values are a validation error.
	//
	//radiolint:mirror-exempt the oracle takes maxSteps as an explicit parameter with the same zero-means-default rule
	MaxSteps int
	// RunToMaxSteps, when true, keeps simulating after every node is
	// informed (some protocols have post-completion behaviour worth
	// tracing). The default stops at completion.
	//
	//radiolint:mirror-exempt post-completion simulation is engine-only tracing; the differential battery stops both sides at completion
	RunToMaxSteps bool
	// CollisionDetection enables the model variant where listeners that
	// implement CollisionListener are told about collisions.
	//
	//radiolint:mirror-exempt the oracle supports the core model only and is never run with collision-detection protocols
	CollisionDetection bool
	// Fault attaches a deterministic fault-injection plan (link loss,
	// topology churn, jammers, crash and sleep-wake schedules — see
	// internal/fault). Nil or inactive plans leave the fault-free hot path
	// untouched. Every fault model is implemented identically in the naive
	// RunReference oracle (RunReferenceWithFaults), so the differential
	// battery gates the faulty paths too.
	//
	//radiolint:mirror-exempt the oracle takes the plan as an explicit parameter; the plan's own members are mirror-checked
	Fault *fault.Plan
	// Trace, if non-nil, receives one event per step. Keep it cheap.
	//
	//radiolint:mirror-exempt tracing is observability, not model semantics; Result fields carry everything the comparison needs
	Trace TraceFunc
}

// TraceFunc observes a completed step. transmitters and receptions alias
// internal buffers and must not be retained.
type TraceFunc func(step int, transmitters []int, receptions []Message)

// Result reports a completed simulation.
type Result struct {
	// Completed is true when every node was informed within MaxSteps.
	Completed bool
	// BroadcastTime is the step at the end of which the last node became
	// informed (the paper's broadcasting time); 0 if n == 1, -1 if the run
	// did not complete.
	BroadcastTime int
	// StepsSimulated is the number of steps actually executed.
	StepsSimulated int
	// InformedAt[v] is the step at which v became informed (0 for the
	// source, -1 if never).
	InformedAt []int
	// Transmissions counts (node, step) transmit events.
	Transmissions int64
	// Receptions counts successful message deliveries.
	Receptions int64
	// Collisions counts (listener, step) events where >= 2 in-neighbors
	// transmitted.
	Collisions int64
}

// ErrStepLimit is wrapped in the error returned by Run when the step budget
// is exhausted before broadcast completes.
var ErrStepLimit = errors.New("radio: step limit reached before broadcast completed")

// DefaultMaxSteps is the budget used when Options.MaxSteps is zero: generous
// enough for every algorithm in this repository on every benign topology
// (Θ(n log² n) with a floor), while still catching livelocked protocols.
func DefaultMaxSteps(n int) int {
	if n < 2 {
		return 16
	}
	lg := 1
	for 1<<lg < n {
		lg++
	}
	return 64 * n * lg * lg
}

// Run simulates protocol p on network g until broadcast completes or the
// step budget runs out. Node 0 is the source and is informed at step 0.
//
// Run returns an error (wrapping ErrStepLimit) if the budget is exhausted;
// the partial Result is still returned alongside it.
//
// Run is a thin wrapper that spins up a fresh Runner per call. Trial loops
// that simulate many times on same-sized graphs should hold a Runner (see
// its RunInto) to reuse the engine scratch across runs.
func Run(g *graph.Graph, p Protocol, cfg Config, opt Options) (*Result, error) {
	var r Runner
	return r.Run(g, p, cfg, opt)
}

// RunContext is Run honoring ctx: cancellation is checked between steps, so
// a caller (an HTTP handler, a worker with a request deadline) can abort an
// in-flight simulation. The returned error wraps ctx.Err(); discriminate
// with errors.Is. See Runner.RunIntoContext for the exact semantics.
func RunContext(ctx context.Context, g *graph.Graph, p Protocol, cfg Config, opt Options) (*Result, error) {
	var r Runner
	return r.RunContext(ctx, g, p, cfg, opt)
}
