package radio

import (
	"context"
	"errors"
	"testing"

	"adhocradio/internal/graph"
)

// stepCanceller cancels its context the moment node 0 has acted a given
// number of times, so the cut lands at a deterministic step.
type stepCanceller struct {
	cancelAt int
	cancel   context.CancelFunc
}

func (s *stepCanceller) Name() string { return "step-canceller" }
func (s *stepCanceller) NewNode(label int, cfg Config) NodeProgram {
	return &stepCancellerNode{p: s, label: label}
}

type stepCancellerNode struct {
	p     *stepCanceller
	label int
}

func (n *stepCancellerNode) Act(t int) (bool, any) {
	if n.label == 0 && t >= n.p.cancelAt {
		n.p.cancel()
	}
	return n.label == 0, nil
}

func (n *stepCancellerNode) Deliver(t int, msg Message) {}

func TestRunIntoContextCancellation(t *testing.T) {
	g := graph.Path(64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &stepCanceller{cancelAt: 5, cancel: cancel}

	r := NewRunner()
	var res Result
	err := r.RunIntoContext(ctx, &res, g, p, Config{Seed: 1}, Options{})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if errors.Is(err, ErrStepLimit) {
		t.Fatalf("cancellation must not be confused with the step limit: %v", err)
	}
	// Cancellation fires between steps: step 5 runs to completion (the
	// protocol cancels from inside Act), the check before step 6 aborts.
	if res.StepsSimulated != 5 {
		t.Fatalf("StepsSimulated = %d, want 5", res.StepsSimulated)
	}

	// A cleanly cancelled engine is immediately reusable with no poison
	// rebuild, and the rerun is bit-identical to a fresh engine's.
	fl := flood{}
	var reused, fresh Result
	if err := r.RunInto(&reused, g, fl, Config{Seed: 7}, Options{}); err != nil {
		t.Fatalf("reuse after cancellation: %v", err)
	}
	if err := NewRunner().RunInto(&fresh, g, fl, Config{Seed: 7}, Options{}); err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	if reused.BroadcastTime != fresh.BroadcastTime ||
		reused.Transmissions != fresh.Transmissions ||
		reused.Collisions != fresh.Collisions {
		t.Fatalf("reused engine diverged after cancellation: %+v vs %+v", reused, fresh)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	g := graph.Path(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, g, flood{}, Config{Seed: 1}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled RunContext returned a Result: %+v", res)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	g := graph.Path(32)
	a, err := Run(g, flood{}, Config{Seed: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), g, flood{}, Config{Seed: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.BroadcastTime != b.BroadcastTime || a.Transmissions != b.Transmissions ||
		a.Receptions != b.Receptions || a.Collisions != b.Collisions {
		t.Fatalf("RunContext(Background) diverged from Run: %+v vs %+v", a, b)
	}
}
