package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adhocradio/internal/core"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

// newTestService builds, starts, and auto-drains a service for one test.
func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Drain()
	})
	return s, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var testSimReq = SimulateRequest{
	Topology: graph.Spec{Kind: "gnp", N: 96, P: 0.08, Seed: 11},
	Protocol: "kp",
	Seed:     5,
}

// TestSimulateCacheByteIdentity is the core determinism gate: the same
// request served from a cold cache (miss) and a warm cache (hit) must
// produce byte-identical bodies, with cache status only in the header.
func TestSimulateCacheByteIdentity(t *testing.T) {
	s, srv := newTestService(t, Config{Workers: 2})

	r1 := postJSON(t, srv.URL+"/v1/simulate", testSimReq)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", r1.StatusCode, readAll(t, r1))
	}
	if got := r1.Header.Get("X-Radiosd-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	b1 := readAll(t, r1)

	r2 := postJSON(t, srv.URL+"/v1/simulate", testSimReq)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", r2.StatusCode)
	}
	if got := r2.Header.Get("X-Radiosd-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	b2 := readAll(t, r2)

	if !bytes.Equal(b1, b2) {
		t.Fatalf("hit and miss bodies differ:\nmiss: %s\nhit:  %s", b1, b2)
	}
	if s.cache.hits.Load() != 1 || s.cache.misses.Load() != 1 {
		t.Fatalf("cache counters = %d hits / %d misses, want 1/1",
			s.cache.hits.Load(), s.cache.misses.Load())
	}
}

// TestSimulateMatchesDirectRun gates the service against the library: the
// HTTP body must be byte-identical to marshalling the result of a direct
// engine run with the same spec, protocol, and seed.
func TestSimulateMatchesDirectRun(t *testing.T) {
	_, srv := newTestService(t, Config{})

	resp := postJSON(t, srv.URL+"/v1/simulate", testSimReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	got := readAll(t, resp)

	// The direct path: same spec → same graph, same protocol factory, same
	// seed, fresh engine.
	spec, err := testSimReq.Topology.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	runner := radio.NewRunner()
	var res radio.Result
	before := runner.Counters()
	if err := runner.RunIntoContext(context.Background(), &res, g, core.New(),
		radio.Config{Seed: testSimReq.Seed}, radio.Options{}); err != nil {
		t.Fatal(err)
	}
	want := SimulateResponse{
		Topology: key,
		Protocol: testSimReq.Protocol,
		Seed:     testSimReq.Seed,
		Result: SimulateResult{
			Completed:      res.Completed,
			BroadcastTime:  res.BroadcastTime,
			StepsSimulated: res.StepsSimulated,
			Transmissions:  res.Transmissions,
			Receptions:     res.Receptions,
			Collisions:     res.Collisions,
		},
		Counters: runner.Counters().Diff(before),
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Fatalf("service body differs from direct run:\nservice: %s\ndirect:  %s", got, buf.Bytes())
	}
}

// TestSimulateStepLimitPartial: exhausting MaxSteps is a 200 with
// completed=false, not a failure.
func TestSimulateStepLimitPartial(t *testing.T) {
	_, srv := newTestService(t, Config{})
	req := testSimReq
	req.MaxSteps = 2
	req.IncludeInformedAt = true
	resp := postJSON(t, srv.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var body SimulateResponse
	if err := json.Unmarshal(readAll(t, resp), &body); err != nil {
		t.Fatal(err)
	}
	if body.Result.Completed {
		t.Fatal("2-step run on a 96-node graph reported completed")
	}
	if body.Result.StepsSimulated != 2 {
		t.Fatalf("StepsSimulated = %d, want 2", body.Result.StepsSimulated)
	}
	if len(body.Result.InformedAt) != 96 {
		t.Fatalf("len(InformedAt) = %d, want 96", len(body.Result.InformedAt))
	}
}

func TestSimulateBadRequests(t *testing.T) {
	_, srv := newTestService(t, Config{})
	cases := []struct {
		name string
		body any
	}{
		{"bad spec", SimulateRequest{Topology: graph.Spec{Kind: "warp", N: 4}, Protocol: "kp"}},
		{"bad protocol", SimulateRequest{Topology: graph.Spec{Kind: "path", N: 8}, Protocol: "zigzag"}},
		{"bad json", "not an object"},
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+"/v1/simulate", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		readAll(t, resp)
	}
}

// TestBackpressureQueueFull fills the single queue slot while the only
// worker is parked, then asserts the next request sheds with 503 +
// Retry-After instead of queueing unboundedly.
func TestBackpressureQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testHookJobStart = func(*job) {
		started <- struct{}{}
		<-release
	}
	s.Start()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Drain()
	})

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	post := func() {
		resp := postJSON(t, srv.URL+"/v1/simulate", testSimReq)
		results <- result{resp.StatusCode, readAll(t, resp)}
	}
	go post()
	<-started // worker parked holding job 1
	go post()
	for len(s.queue) == 0 { // job 2 occupies the single queue slot
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, srv.URL+"/v1/simulate", testSimReq)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	if !strings.Contains(string(body), ErrQueueFull.Error()) {
		t.Fatalf("503 body %s does not mention the queue", body)
	}

	close(release) // let the parked worker finish both accepted jobs
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("accepted job answered %d: %s", r.status, r.body)
		}
	}
}

// TestDeadlineExpiry parks the worker until the job's own deadline passes;
// the handler must answer 504 and the worker must abandon the run.
func TestDeadlineExpiry(t *testing.T) {
	s := New(Config{Workers: 1})
	s.testHookJobStart = func(j *job) { <-j.ctx.Done() }
	s.Start()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Drain()
	})

	req := testSimReq
	req.TimeoutMS = 20
	resp := postJSON(t, srv.URL+"/v1/simulate", req)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
}

// TestGracefulDrain initiates shutdown while a job is in flight and others
// are queued: everything accepted completes, new work is shed with 503, and
// the report shows zero active jobs.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.testHookJobStart = func(*job) {
		started <- struct{}{}
		<-release
	}
	s.Start()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	results := make(chan int, 2)
	post := func() {
		resp := postJSON(t, srv.URL+"/v1/simulate", testSimReq)
		readAll(t, resp)
		results <- resp.StatusCode
	}
	go post()
	<-started // worker parked mid-job
	go post()
	for len(s.queue) == 0 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan DrainReport, 1)
	go func() { drained <- s.Drain() }()
	for !s.draining() {
		time.Sleep(time.Millisecond)
	}

	// Draining: admission is closed...
	resp := postJSON(t, srv.URL+"/v1/simulate", testSimReq)
	if body := readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503; body %s", resp.StatusCode, body)
	}
	var hb struct {
		Status string `json:"status"`
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readAll(t, hresp), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "draining" {
		t.Fatalf("healthz status = %q, want draining", hb.Status)
	}

	// ...but accepted work still runs to completion.
	close(release)
	rep := <-drained
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("accepted job answered %d during drain", code)
		}
	}
	if rep.Active != 0 {
		t.Fatalf("drain report active = %d, want 0 (no dropped jobs)", rep.Active)
	}
	if rep.Completed != 2 {
		t.Fatalf("drain report completed = %d, want 2", rep.Completed)
	}
	if rep.Rejected == 0 {
		t.Fatal("drain report rejected = 0, want >= 1 (the shed request)")
	}
	// Drain is idempotent: a second call re-reports without hanging.
	if rep2 := s.Drain(); rep2.Completed != rep.Completed {
		t.Fatalf("second drain report differs: %+v vs %+v", rep2, rep)
	}
}

// TestExperimentFlow drives the async endpoint end to end: 202 with a job
// ID, polling until done, rendered table in the job view.
func TestExperimentFlow(t *testing.T) {
	_, srv := newTestService(t, Config{})

	resp := postJSON(t, srv.URL+"/v1/experiments/E9",
		ExperimentRequest{Seed: 1, Quick: true, Trials: 1})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202; body %s", resp.StatusCode, body)
	}
	var accepted JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.ID == "" || accepted.Kind != KindExperiment {
		t.Fatalf("bad accepted view: %+v", accepted)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var view JobView
	for {
		jr, err := http.Get(srv.URL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(readAll(t, jr), &view); err != nil {
			t.Fatal(err)
		}
		if view.Status == StatusDone || view.Status == StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("experiment stuck in status %q", view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.Status != StatusDone {
		t.Fatalf("experiment failed: %s", view.Error)
	}
	if !strings.Contains(view.Table, "E9") || !strings.Contains(view.Table, "protocol") {
		t.Fatalf("rendered table looks wrong:\n%s", view.Table)
	}
}

func TestExperimentUnknownID(t *testing.T) {
	_, srv := newTestService(t, Config{})
	resp := postJSON(t, srv.URL+"/v1/experiments/E99", ExperimentRequest{})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown id") {
		t.Fatalf("404 body %s does not carry the sentinel text", body)
	}
}

func TestJobNotFound(t *testing.T) {
	_, srv := newTestService(t, Config{})
	resp, err := http.Get(srv.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestMetrics exercises /metrics after one simulation: service gauges and
// the obs projection must both be present.
func TestMetrics(t *testing.T) {
	_, srv := newTestService(t, Config{})
	readAll(t, postJSON(t, srv.URL+"/v1/simulate", testSimReq))
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	for _, want := range []string{
		"radiosd_queue_depth 0",
		"radiosd_queue_capacity 16",
		"radiosd_workers 2",
		"radiosd_draining 0",
		"radiosd_jobs_completed_total 1",
		"radiosd_cache_misses_total 1",
		"obs_steps_total",
		"obs_transmissions_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestGraphCacheEviction pins LRU behaviour at capacity 1: the second key
// evicts the first, and re-requesting the first is a fresh miss.
func TestGraphCacheEviction(t *testing.T) {
	c := newGraphCache(1)
	a := graph.Spec{Kind: "path", N: 8}
	b := graph.Spec{Kind: "star", N: 8}
	for _, s := range []graph.Spec{a, b, a} {
		ns, err := s.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		key, err := ns.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.get(key, ns); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.misses.Load(); got != 3 {
		t.Fatalf("misses = %d, want 3 (capacity-1 cache must evict)", got)
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.len())
	}
}

// TestGraphCacheErrorNotCached: a failed build must not poison the key.
func TestGraphCacheErrorNotCached(t *testing.T) {
	c := newGraphCache(4)
	bad := graph.Spec{Kind: "warp", N: 4}
	if _, _, err := c.get("warp,n=4", bad); err == nil {
		t.Fatal("building an invalid spec succeeded")
	}
	if c.len() != 0 {
		t.Fatalf("failed build left %d entries resident", c.len())
	}
	good := graph.Spec{Kind: "path", N: 4}
	if _, _, err := c.get("warp,n=4", good); err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
}

func TestProtocolFor(t *testing.T) {
	for _, name := range []string{"kp", "kp-paper", "bgi", "rr", "ss", "cl", "inter"} {
		p, err := protocolFor(name)
		if err != nil {
			t.Fatalf("protocolFor(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("protocolFor(%q) returned unnamed protocol", name)
		}
	}
	if _, err := protocolFor("zigzag"); !errors.Is(err, ErrUnknownProtocol) {
		t.Fatalf("unknown protocol error = %v, want ErrUnknownProtocol", err)
	}
}
