package service

import (
	"fmt"
	"net/http"
	"strings"

	"adhocradio/internal/obs"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (counters and gauges only, hand-rendered — no client library).
// Lines appear in a fixed order so scrapes diff cleanly: service gauges
// first, then job and cache counters, then the process-wide engine-counter
// ledger projected from obs.Default.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var sb strings.Builder
	gauge := func(name string, v int64) {
		fmt.Fprintf(&sb, "%s %d\n", name, v)
	}
	gauge("radiosd_queue_depth", int64(len(s.queue)))
	gauge("radiosd_queue_capacity", int64(s.cfg.QueueCap))
	gauge("radiosd_workers", int64(s.cfg.Workers))
	draining := int64(0)
	if s.draining() {
		draining = 1
	}
	gauge("radiosd_draining", draining)
	gauge("radiosd_jobs_completed_total", s.completed.Load())
	gauge("radiosd_jobs_failed_total", s.failed.Load())
	gauge("radiosd_jobs_rejected_total", s.rejected.Load())
	gauge("radiosd_cache_entries", int64(s.cache.len()))
	gauge("radiosd_cache_hits_total", s.cache.hits.Load())
	gauge("radiosd_cache_misses_total", s.cache.misses.Load())
	c, trials := obs.Default.Snapshot()
	gauge("obs_steps_total", c.Steps)
	gauge("obs_transmissions_total", c.Transmissions)
	gauge("obs_receptions_total", c.Receptions)
	gauge("obs_collisions_total", c.Collisions)
	gauge("obs_silent_steps_total", c.SilentSteps)
	gauge("obs_fault_events_total", c.FaultEvents())
	gauge("obs_trials_total", trials.Count)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(sb.String()))
}
