package service

import (
	"context"
	"strconv"
	"sync"

	"adhocradio/internal/experiment"
	"adhocradio/internal/graph"
)

// Job kinds.
const (
	KindSimulate   = "simulate"
	KindExperiment = "experiment"
)

// Job statuses, in lifecycle order. A job is queued from acceptance until a
// worker picks it up, running while the worker executes it, and ends done
// or failed; there is no dropped state — graceful drain finishes every
// accepted job, and the smoke test asserts exactly that.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// job is one accepted unit of work. Input fields are written once by the
// accepting handler; result fields are written by the worker before done is
// closed and read by anyone after it (or, for the job view, under mu).
type job struct {
	id     string
	kind   string
	ctx    context.Context
	cancel context.CancelFunc

	// Simulate inputs.
	spec            graph.Spec // normalized
	specKey         string     // spec.Canonical()
	protocol        string
	seed            uint64
	maxSteps        int
	includeInformed bool

	// Experiment inputs.
	expID  string
	expCfg experiment.Config

	done chan struct{} // closed by the worker when the job reaches done/failed

	mu       sync.Mutex
	status   string
	resp     *SimulateResponse
	cacheHit bool
	table    string
	errMsg   string
	err      error
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// finish records the terminal state and releases everyone waiting on done.
func (j *job) finish(err error) {
	j.mu.Lock()
	if err != nil {
		j.status = StatusFailed
		j.err = err
		j.errMsg = err.Error()
	} else {
		j.status = StatusDone
	}
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	close(j.done)
}

// JobView is the JSON projection served by GET /v1/jobs/{id}.
type JobView struct {
	ID         string            `json:"id"`
	Kind       string            `json:"kind"`
	Status     string            `json:"status"`
	Experiment string            `json:"experiment,omitempty"`
	Error      string            `json:"error,omitempty"`
	Result     *SimulateResponse `json:"result,omitempty"`
	Table      string            `json:"table,omitempty"`
}

// view snapshots the job for the API.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:         j.id,
		Kind:       j.kind,
		Status:     j.status,
		Experiment: j.expID,
		Error:      j.errMsg,
		Result:     j.resp,
		Table:      j.table,
	}
}

// jobStore is the in-memory job registry. IDs are sequential ("j1", "j2",
// ...) — deterministic for a fixed request order, unique always.
type jobStore struct {
	mu   sync.Mutex
	seq  int64
	jobs map[string]*job
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job)}
}

func (s *jobStore) add(j *job) {
	s.mu.Lock()
	s.seq++
	j.id = "j" + strconv.FormatInt(s.seq, 10)
	j.status = StatusQueued
	s.jobs[j.id] = j
	s.mu.Unlock()
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	return j, ok
}

// counts tallies terminal and non-terminal jobs; active must be zero after
// a graceful drain (nothing accepted was dropped).
func (s *jobStore) counts() (done, failed, active int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		default:
			active++
		}
		j.mu.Unlock()
	}
	return done, failed, active
}
