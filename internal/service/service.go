// Package service implements radiosd's serving layer: a concurrent
// simulation service wrapping the adhocradio engine behind a small HTTP/JSON
// API. The pieces fit together as a classic bounded pipeline:
//
//	handler → bounded queue → worker pool → per-worker radio.Runner
//	                    ↘ LRU compiled-graph cache (shared, read-only graphs)
//
// Admission is the only place load is shed: when the queue is full (or the
// service is draining) the handler answers 503 with Retry-After, and every
// job past that point runs to completion — graceful shutdown closes the
// queue, finishes in-flight work, and reports a final observability
// snapshot with zero dropped jobs. Each worker owns one radio.Runner and
// one reused Result, so steady-state simulation allocates nothing beyond
// protocol node programs; topologies come from the compiled-graph cache and
// are shared read-only across workers.
//
// Determinism is load-bearing: a response is a pure function of the request
// (spec canonical key, protocol, seed, step budget), never of cache state,
// queue order, or worker identity. The end-to-end test gates byte-identity
// against a direct library call with the same inputs.
package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adhocradio/internal/core"
	"adhocradio/internal/decay"
	"adhocradio/internal/det"
	"adhocradio/internal/experiment"
	"adhocradio/internal/obs"
	"adhocradio/internal/radio"
)

// Admission-control sentinels; handlers map both to 503 + Retry-After.
var (
	// ErrQueueFull is returned by enqueue when the bounded job queue has no
	// free slot. The client should back off and retry.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining is returned by enqueue once graceful shutdown has begun:
	// no new work is accepted, in-flight work runs to completion.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownProtocol is wrapped by protocolFor for unrecognized
	// protocol names; handlers map it to 400.
	ErrUnknownProtocol = errors.New("service: unknown protocol")
)

// Config sizes the service. Zero values select sensible defaults.
type Config struct {
	// Workers is the number of simulation workers (default 2). Each owns a
	// private radio.Runner, so Workers bounds both CPU use and peak scratch
	// memory.
	Workers int
	// QueueCap bounds the job queue (default 16). A full queue rejects
	// with 503 instead of queueing unboundedly — backpressure, not OOM.
	QueueCap int
	// CacheCap bounds the compiled-graph LRU cache (default 32 entries).
	CacheCap int
	// MaxTimeout clamps per-request deadlines (default 30s). Requests
	// asking for more get this much; requests asking for nothing get it
	// too.
	MaxTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueCap < 1 {
		c.QueueCap = 16
	}
	if c.CacheCap < 1 {
		c.CacheCap = 32
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	return c
}

// Service is the long-running simulation service. Create with New, launch
// workers with Start, shut down with Drain.
type Service struct {
	cfg   Config
	cache *graphCache
	jobs  *jobStore

	mu        sync.RWMutex // guards accepting and the queue's open/closed state
	accepting bool
	queue     chan *job

	wg sync.WaitGroup

	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64

	// testHookJobStart, when set before Start, is called by a worker right
	// after it dequeues a job and before it runs it. Tests use it to park a
	// worker deterministically (fill the queue, then assert backpressure or
	// drain behaviour) without sleeping.
	testHookJobStart func(*job)
}

// New builds a stopped service; call Start to launch the workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:   cfg,
		cache: newGraphCache(cfg.CacheCap),
		jobs:  newJobStore(),
		queue: make(chan *job, cfg.QueueCap),
	}
}

// Start opens admission and launches the worker pool.
func (s *Service) Start() {
	s.mu.Lock()
	s.accepting = true
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// enqueue admits a job or sheds it. The read lock excludes Drain's
// close(queue), so the non-blocking send can never hit a closed channel.
func (s *Service) enqueue(j *job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.accepting {
		s.rejected.Add(1)
		return ErrDraining
	}
	select {
	case s.queue <- j:
		return nil
	default:
		s.rejected.Add(1)
		return ErrQueueFull
	}
}

// worker drains the queue until Drain closes it. Each worker owns one
// Runner and one Result for its lifetime: the engine scratch and the result
// slices are reused across every job the worker executes.
func (s *Service) worker() {
	defer s.wg.Done()
	runner := radio.NewRunner()
	var res radio.Result
	for j := range s.queue {
		if s.testHookJobStart != nil {
			s.testHookJobStart(j)
		}
		j.setStatus(StatusRunning)
		var err error
		switch j.kind {
		case KindSimulate:
			err = s.runSimulate(j, runner, &res)
		case KindExperiment:
			err = s.runExperiment(j)
		default:
			err = fmt.Errorf("service: unknown job kind %q", j.kind)
		}
		if err != nil {
			s.failed.Add(1)
		} else {
			s.completed.Add(1)
		}
		j.finish(err)
	}
}

// runSimulate executes one simulation job on the worker's engine. The
// topology comes from the compiled-graph cache; the response is assembled
// from the reused Result before the next job overwrites it. The per-run
// counter window feeds the process-wide obs recorder, mirroring what the
// experiment engine does.
func (s *Service) runSimulate(j *job, runner *radio.Runner, res *radio.Result) error {
	g, hit, err := s.cache.get(j.specKey, j.spec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.cacheHit = hit
	j.mu.Unlock()
	proto, err := protocolFor(j.protocol)
	if err != nil {
		return err
	}
	before := runner.Counters()
	runErr := runner.RunIntoContext(j.ctx, res, g, proto,
		radio.Config{Seed: j.seed}, radio.Options{MaxSteps: j.maxSteps})
	obs.Default.AddCounters(runner.Counters().Diff(before))
	if runErr != nil && !errors.Is(runErr, radio.ErrStepLimit) {
		// Cancellation, contract violations, ...: no usable result.
		return runErr
	}
	// A step-limited run still carries a meaningful partial Result; the
	// response reports it with completed=false rather than failing the job.
	resp := &SimulateResponse{
		Topology: j.specKey,
		Protocol: j.protocol,
		Seed:     j.seed,
		Result: SimulateResult{
			Completed:      res.Completed,
			BroadcastTime:  res.BroadcastTime,
			StepsSimulated: res.StepsSimulated,
			Transmissions:  res.Transmissions,
			Receptions:     res.Receptions,
			Collisions:     res.Collisions,
		},
		Counters: runner.Counters().Diff(before),
	}
	if j.includeInformed {
		resp.Result.InformedAt = append([]int(nil), res.InformedAt...)
	}
	j.mu.Lock()
	j.resp = resp
	j.mu.Unlock()
	return nil
}

// runExperiment executes one registered experiment and renders its table.
func (s *Service) runExperiment(j *job) error {
	e, err := experiment.ByID(j.expID)
	if err != nil {
		return err
	}
	tab, err := e.Run(j.ctx, j.expCfg)
	if err != nil {
		return err
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		return err
	}
	j.mu.Lock()
	j.table = sb.String()
	j.mu.Unlock()
	return nil
}

// DrainReport summarizes a graceful shutdown: every accepted job reached a
// terminal state (Active == 0), plus the final observability snapshot.
type DrainReport struct {
	Completed int64        `json:"completed"`
	Failed    int64        `json:"failed"`
	Rejected  int64        `json:"rejected"`
	Active    int          `json:"active"`
	CacheHits int64        `json:"cache_hits"`
	CacheMiss int64        `json:"cache_misses"`
	Counters  obs.Counters `json:"counters"`
}

// Drain gracefully shuts the service down: stop accepting, let the workers
// finish every queued and in-flight job, then report. Safe to call more
// than once; later calls just wait and re-report.
func (s *Service) Drain() DrainReport {
	s.mu.Lock()
	if s.accepting {
		s.accepting = false
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	done, failed, active := s.jobs.counts()
	c, _ := obs.Default.Snapshot()
	return DrainReport{
		Completed: int64(done),
		Failed:    int64(failed),
		Rejected:  s.rejected.Load(),
		Active:    active,
		CacheHits: s.cache.hits.Load(),
		CacheMiss: s.cache.misses.Load(),
		Counters:  c,
	}
}

// draining reports whether admission is closed.
func (s *Service) draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.accepting
}

// protocolFor maps the wire protocol name to a fresh protocol instance,
// using the same names as cmd/radiosim's -proto flag. The error wraps
// ErrUnknownProtocol.
func protocolFor(name string) (radio.Protocol, error) {
	switch name {
	case "kp":
		return core.New(), nil
	case "kp-paper":
		return core.NewPaperExact(), nil
	case "bgi":
		return decay.New(), nil
	case "rr":
		return det.RoundRobin{}, nil
	case "ss":
		return det.SelectAndSend{}, nil
	case "cl":
		return det.CompleteLayered{}, nil
	case "inter":
		return det.NewInterleaved(det.RoundRobin{}, det.SelectAndSend{}), nil
	default:
		return nil, fmt.Errorf("%w %q (known: kp, kp-paper, bgi, rr, ss, cl, inter)", ErrUnknownProtocol, name)
	}
}
