package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"adhocradio/internal/experiment"
	"adhocradio/internal/graph"
	"adhocradio/internal/obs"
)

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	// Topology describes the generated network; see graph.Spec. The
	// canonical form of this spec is the compiled-graph cache key, so two
	// requests with equivalent specs share one compiled topology.
	Topology graph.Spec `json:"topology"`
	// Protocol names the algorithm, using cmd/radiosim's names:
	// kp, kp-paper, bgi, rr, ss, cl, inter.
	Protocol string `json:"protocol"`
	// Seed drives all protocol randomness; same request, same response.
	Seed uint64 `json:"seed"`
	// MaxSteps bounds the simulation (0 = the engine's default budget). A
	// run that exhausts it is reported with completed=false, not an error.
	MaxSteps int `json:"max_steps"`
	// TimeoutMS is the per-request deadline in milliseconds, clamped to
	// the service's MaxTimeout (0 = MaxTimeout).
	TimeoutMS int `json:"timeout_ms"`
	// IncludeInformedAt adds the per-node informed-step vector to the
	// response (omitted by default: it is O(n)).
	IncludeInformedAt bool `json:"include_informed_at"`
}

// SimulateResult is the engine outcome inside a SimulateResponse.
type SimulateResult struct {
	Completed      bool  `json:"completed"`
	BroadcastTime  int   `json:"broadcast_time"`
	StepsSimulated int   `json:"steps_simulated"`
	Transmissions  int64 `json:"transmissions"`
	Receptions     int64 `json:"receptions"`
	Collisions     int64 `json:"collisions"`
	InformedAt     []int `json:"informed_at,omitempty"`
}

// SimulateResponse is the body of a successful POST /v1/simulate. It is a
// pure function of the request: cache state is reported only in the
// X-Radiosd-Cache header, never in the body, so hit and miss responses for
// the same request are byte-identical (the e2e test gates this).
type SimulateResponse struct {
	// Topology is the canonical spec key the simulation ran on.
	Topology string `json:"topology"`
	Protocol string `json:"protocol"`
	Seed     uint64 `json:"seed"`
	// Result is the simulation outcome.
	Result SimulateResult `json:"result"`
	// Counters is this run's engine-counter window.
	Counters obs.Counters `json:"counters"`
}

// ExperimentRequest is the (optional) body of POST /v1/experiments/{id}.
type ExperimentRequest struct {
	Seed     uint64 `json:"seed"`
	Trials   int    `json:"trials"`
	Quick    bool   `json:"quick"`
	Parallel int    `json:"parallel"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// timeoutFor clamps a requested millisecond deadline to the configured
// maximum; zero or negative requests get the maximum.
func (s *Service) timeoutFor(ms int) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 || d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// handleSimulate is the synchronous endpoint: admit, wait for the worker,
// answer with the result. Backpressure (queue full or draining) is 503 +
// Retry-After; a deadline that expires first is 504 (the worker abandons
// the run at the next step boundary via the job context).
func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := req.Topology.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := spec.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := protocolFor(req.Protocol); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	j := &job{
		kind:            KindSimulate,
		ctx:             ctx,
		cancel:          cancel,
		spec:            spec,
		specKey:         key,
		protocol:        req.Protocol,
		seed:            req.Seed,
		maxSteps:        req.MaxSteps,
		includeInformed: req.IncludeInformedAt,
		done:            make(chan struct{}),
	}
	s.jobs.add(j)
	if err := s.enqueue(j); err != nil {
		cancel()
		j.finish(err)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		// Prefer the result if it raced the deadline to the finish line.
		select {
		case <-j.done:
		default:
			writeError(w, http.StatusGatewayTimeout, ctx.Err())
			return
		}
	}
	j.mu.Lock()
	resp, jobErr, hit := j.resp, j.err, j.cacheHit
	j.mu.Unlock()
	if jobErr != nil {
		status := http.StatusInternalServerError
		if errors.Is(jobErr, context.DeadlineExceeded) || errors.Is(jobErr, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, jobErr)
		return
	}
	if hit {
		w.Header().Set("X-Radiosd-Cache", "hit")
	} else {
		w.Header().Set("X-Radiosd-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExperiment is the asynchronous endpoint: validate, accept with 202
// and a job ID, run in the background; GET /v1/jobs/{id} retrieves status
// and (once done) the rendered table.
func (s *Service) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := experiment.ByID(id); err != nil {
		if errors.Is(err, experiment.ErrUnknownExperiment) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// The body is optional: every ExperimentRequest field has a default.
	var req ExperimentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Experiments outlive their submitting request: the job context is
	// detached from r.Context() and cancelled only when the job finishes.
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		kind:   KindExperiment,
		ctx:    ctx,
		cancel: cancel,
		expID:  id,
		expCfg: experiment.Config{
			Seed:     req.Seed,
			Trials:   req.Trials,
			Quick:    req.Quick,
			Parallel: req.Parallel,
		},
		done: make(chan struct{}),
	}
	s.jobs.add(j)
	if err := s.enqueue(j); err != nil {
		cancel()
		j.finish(err)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleHealthz reports liveness; "draining" once graceful shutdown began.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
