package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"adhocradio/internal/graph"
)

// graphCache is the LRU compiled-graph cache at the heart of the service's
// hot path: repeated requests for the same canonical topology spec reuse one
// generated, CSR-compiled (and, on dense graphs, bitmap-compiled) Graph
// instead of regenerating and recompiling per request. Keys are
// graph.Spec.Canonical() strings, so everything the generator consumes —
// kind, parameters, seed — is in the key and a cache hit can never change a
// simulation result; the end-to-end determinism test gates exactly that.
//
// Concurrent misses for the same key coalesce: the first request becomes the
// builder, later ones block on the entry's ready channel and reuse the
// result (counted as hits — they did not build). Cached graphs are shared by
// concurrent workers, which is safe because the engine only reads them and
// Graph's compiled-form caches are atomic-pointer published.
type graphCache struct {
	capacity int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

// cacheEntry is one cached topology. ready is closed by the builder once g
// and err are final; no field is written after that.
type cacheEntry struct {
	key   string
	ready chan struct{}
	g     *graph.Graph
	err   error
}

func newGraphCache(capacity int) *graphCache {
	if capacity < 1 {
		capacity = 1
	}
	return &graphCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the compiled graph for the canonical key, building it (at
// most once per residency) from spec on a miss. The boolean reports whether
// the caller reused an existing entry.
func (c *graphCache) get(key string, spec graph.Spec) (*graph.Graph, bool, error) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		ent := e.Value.(*cacheEntry)
		c.mu.Unlock()
		<-ent.ready
		if ent.err != nil {
			return nil, false, ent.err
		}
		c.hits.Add(1)
		return ent.g, true, nil
	}
	ent := &cacheEntry{key: key, ready: make(chan struct{})}
	e := c.ll.PushFront(ent)
	c.items[key] = e
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()

	c.misses.Add(1)
	ent.g, ent.err = buildCompiled(spec)
	if ent.err != nil {
		// Do not cache failures: remove the entry (if still resident) so a
		// later identical request retries the build.
		c.mu.Lock()
		if cur, ok := c.items[key]; ok && cur == e {
			c.ll.Remove(e)
			delete(c.items, key)
		}
		c.mu.Unlock()
	}
	close(ent.ready)
	return ent.g, false, ent.err
}

// buildCompiled generates the topology and pre-compiles the adjacency forms
// the engine dispatches on, so steady-state requests never pay compile cost:
// the CSR always, the bitmap rows when the graph is dense enough for the
// bit-parallel tally kernel to be eligible.
func buildCompiled(spec graph.Spec) (*graph.Graph, error) {
	g, err := spec.Build()
	if err != nil {
		return nil, err
	}
	csr := g.Compile()
	if graph.BitmapDense(g.N(), csr.Arcs()) {
		g.CompileBitmap()
	}
	return g, nil
}

// len returns the number of resident entries.
func (c *graphCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
