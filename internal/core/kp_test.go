package core

import (
	"strings"
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

func run(t *testing.T, g *graph.Graph, p *Protocol, seed uint64) *radio.Result {
	t.Helper()
	res, err := radio.Run(g, p, radio.Config{Seed: seed}, radio.Options{})
	if err != nil {
		t.Fatalf("%s did not complete: %v", p.Name(), err)
	}
	return res
}

func TestCompletesOnBasicTopologies(t *testing.T) {
	topos := map[string]*graph.Graph{
		"path":   graph.Path(64),
		"star":   graph.Star(64),
		"clique": graph.Clique(64),
		"grid":   graph.Grid(8, 8),
	}
	cl, err := graph.UniformCompleteLayered(128, 16)
	if err != nil {
		t.Fatal(err)
	}
	topos["layered"] = cl
	for name, g := range topos {
		res := run(t, g, New(), 1)
		if !res.Completed {
			t.Fatalf("%s: not completed", name)
		}
	}
}

func TestCompletesOnTwoNodes(t *testing.T) {
	res := run(t, graph.Path(2), New(), 7)
	if res.BroadcastTime < 1 {
		t.Fatalf("BroadcastTime = %d", res.BroadcastTime)
	}
}

func TestCompletesOnRandomLayered(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 3; trial++ {
		g, err := graph.RandomLayered(256, 32, 0.1, src)
		if err != nil {
			t.Fatal(err)
		}
		if !run(t, g, New(), uint64(trial)).Completed {
			t.Fatalf("trial %d incomplete", trial)
		}
	}
}

func TestCompletesOnDirectedLayered(t *testing.T) {
	// Section 2's analysis is for directed graphs; the algorithm must work
	// there too.
	src := rng.New(4)
	g, err := graph.DirectedLayered(200, 20, 0.2, src)
	if err != nil {
		t.Fatal(err)
	}
	if !run(t, g, New(), 5).Completed {
		t.Fatal("directed run incomplete")
	}
}

func TestKnownRadiusVariant(t *testing.T) {
	g, err := graph.UniformCompleteLayered(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := NewWithParams(Params{KnownRadius: 8})
	if !strings.Contains(p.Name(), "known") {
		t.Fatalf("Name = %q", p.Name())
	}
	if !run(t, g, p, 6).Completed {
		t.Fatal("known-radius run incomplete")
	}
}

func TestPaperExactConstantsComplete(t *testing.T) {
	// With the paper's constants every simulable phase takes the BGI
	// fallback; the run must still complete.
	g := graph.Path(64)
	if !run(t, g, NewPaperExact(), 7).Completed {
		t.Fatal("paper-exact run incomplete")
	}
}

func TestAblatedVariantRunsOnEasyTopology(t *testing.T) {
	p := NewWithParams(Params{DisableUniversalStep: true})
	if p.Name() != "kp-ablated" {
		t.Fatalf("Name = %q", p.Name())
	}
	if !run(t, graph.Path(32), p, 8).Completed {
		t.Fatal("ablated run incomplete on path")
	}
}

func TestScheduleLayout(t *testing.T) {
	s, err := buildSchedule(1023, Params{StageFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.rPow != 1024 || s.logR != 10 {
		t.Fatalf("rPow=%d logR=%d", s.rPow, s.logR)
	}
	if len(s.phases) != 10 {
		t.Fatalf("phases = %d, want 10 (doubling 2..1024)", len(s.phases))
	}
	total := 0
	for i, ph := range s.phases {
		if ph.d != 1<<(i+1) {
			t.Fatalf("phase %d: d=%d", i, ph.d)
		}
		if ph.fallback {
			t.Fatalf("phase %d: unexpected fallback with FallbackFactor=0", i)
		}
		wantLadder := 10 - (i + 1)
		if ph.ladderMax != wantLadder {
			t.Fatalf("phase %d: ladderMax=%d want %d", i, ph.ladderMax, wantLadder)
		}
		if ph.stageLen != wantLadder+2 {
			t.Fatalf("phase %d: stageLen=%d want %d", i, ph.stageLen, wantLadder+2)
		}
		if ph.numStages != 4*ph.d {
			t.Fatalf("phase %d: numStages=%d", i, ph.numStages)
		}
		if ph.length != 1+ph.stageLen*ph.numStages {
			t.Fatalf("phase %d: length=%d", i, ph.length)
		}
		if s.starts[i] != total {
			t.Fatalf("phase %d: start=%d want %d", i, s.starts[i], total)
		}
		total += ph.length
	}
	if s.cycle != total {
		t.Fatalf("cycle=%d want %d", s.cycle, total)
	}
}

func TestScheduleFallbackSelection(t *testing.T) {
	s, err := buildSchedule(1023, Params{StageFactor: 4, FallbackFactor: PaperFallbackFactor})
	if err != nil {
		t.Fatal(err)
	}
	// 32·1024^{2/3} = 32·~101.6 ≈ 3251 > 1024: every phase falls back.
	for i, ph := range s.phases {
		if !ph.fallback {
			t.Fatalf("phase %d (d=%d) did not fall back", i, ph.d)
		}
		if ph.stageLen != s.logR+1 {
			t.Fatalf("fallback stageLen = %d", ph.stageLen)
		}
	}
}

func TestLocateRoundTrip(t *testing.T) {
	s, err := buildSchedule(255, Params{StageFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Walk two full cycles step by step and verify offsets are consistent.
	wantPhase, wantPos := 0, 0
	for t0 := 1; t0 <= 2*s.cycle; t0++ {
		ph, pos := s.locate(t0)
		if ph != &s.phases[wantPhase] || pos != wantPos {
			t.Fatalf("locate(%d) = phase d=%d pos=%d, want phase %d pos %d",
				t0, ph.d, pos, wantPhase, wantPos)
		}
		wantPos++
		if wantPos == s.phases[wantPhase].length {
			wantPos = 0
			wantPhase = (wantPhase + 1) % len(s.phases)
		}
	}
}

func TestBuildScheduleRejectsBadBound(t *testing.T) {
	if _, err := buildSchedule(0, Params{StageFactor: 1}); err == nil {
		t.Fatal("label bound 0 accepted")
	}
}

func TestOnlySourceTransmitsInSourceStep(t *testing.T) {
	// Trace a run on a clique and assert step 1 (the phase's source step)
	// has the source as the only transmitter.
	var step1tx []int
	trace := func(step int, tx []int, rx []radio.Message) {
		if step == 1 {
			step1tx = append([]int(nil), tx...)
		}
	}
	g := graph.Clique(16)
	_, err := radio.Run(g, New(), radio.Config{Seed: 11}, radio.Options{Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if len(step1tx) != 1 || step1tx[0] != 0 {
		t.Fatalf("step-1 transmitters = %v, want [0]", step1tx)
	}
}

func TestSeedReplay(t *testing.T) {
	g := graph.StarChain(4, 8)
	a := run(t, g, New(), 99)
	b := run(t, g, New(), 99)
	if a.BroadcastTime != b.BroadcastTime || a.Transmissions != b.Transmissions {
		t.Fatal("same seed produced different runs")
	}
}

func TestUniversalStepHelpsOnHighInDegreeFronts(t *testing.T) {
	// Statistical ablation check (full version is experiment E8): on a
	// StarChain with wide fan-in, the median broadcast time with the
	// universal step must not exceed the ablated variant's. The ablated
	// variant's ladder stops at probability D/r, too high for fronts of
	// w >> r/D informed in-neighbors, so it relies on luck.
	g := graph.StarChain(3, 96) // n = 292, ladders truncated aggressively
	const trials = 7
	med := func(p *Protocol) int {
		times := make([]int, 0, trials)
		for s := 0; s < trials; s++ {
			res, err := radio.Run(g, p, radio.Config{Seed: uint64(1000 + s)},
				radio.Options{MaxSteps: 600000})
			if err != nil {
				times = append(times, 600000) // censored at budget
				continue
			}
			times = append(times, res.BroadcastTime)
		}
		for i := 1; i < len(times); i++ {
			for k := i; k > 0 && times[k] < times[k-1]; k-- {
				times[k], times[k-1] = times[k-1], times[k]
			}
		}
		return times[trials/2]
	}
	full := med(NewWithParams(Params{KnownRadius: 8}))
	ablated := med(NewWithParams(Params{KnownRadius: 8, DisableUniversalStep: true}))
	if full > ablated*2 {
		t.Fatalf("universal step made things worse: full=%d ablated=%d", full, ablated)
	}
	t.Logf("median broadcast time: full=%d ablated=%d", full, ablated)
}

// TestValidateExposesParameterErrors covers the error path NewNode can only
// panic on: Validate reports invalid configurations before any node is
// built, and a valid configuration validates clean.
func TestValidateExposesParameterErrors(t *testing.T) {
	bad := New()
	err := bad.Validate(radio.Config{N: 0}) // label bound -1
	if err == nil || !strings.Contains(err.Error(), "label bound") {
		t.Fatalf("Validate on an invalid config = %v, want label-bound error", err)
	}
	// The error is sticky: the same protocol value keeps reporting it.
	if err2 := bad.Validate(radio.Config{N: 64}); err2 == nil {
		t.Fatal("Validate forgot the schedule error on a second call")
	}

	good := New()
	if err := good.Validate(radio.Config{N: 64}); err != nil {
		t.Fatalf("Validate on a valid config = %v", err)
	}
	if prog := good.NewNode(1, radio.Config{N: 64}); prog == nil {
		t.Fatal("NewNode returned nil after successful Validate")
	}
}
