package core

import (
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
	"adhocradio/internal/stats"
)

// TestKnownRadiusWithinModelBound checks Theorem 1's shape statistically:
// procedure Randomized-Broadcasting(D) completes within a fixed constant
// times D·log(n/D) + log²n across sizes and topologies. The constant is an
// implementation property (ladder + universal step per stage); what matters
// is that it does NOT grow with n or D — that is the theorem.
func TestKnownRadiusWithinModelBound(t *testing.T) {
	const trials = 5
	const cBound = 12.0 // empirical ceiling with margin; flat across rows
	src := rng.New(4242)
	for _, tc := range []struct{ n, d int }{
		{256, 16}, {512, 32}, {1024, 64}, {1024, 8}, {512, 128},
	} {
		model := stats.ModelKP(float64(tc.n), float64(tc.d))
		for trial := 0; trial < trials; trial++ {
			g, err := graph.RandomLayered(tc.n, tc.d, 0.3, src)
			if err != nil {
				t.Fatal(err)
			}
			p := NewWithParams(Params{KnownRadius: tc.d})
			res, err := radio.Run(g, p, radio.Config{Seed: uint64(trial + 1)}, radio.Options{})
			if err != nil {
				t.Fatalf("n=%d d=%d trial %d: %v", tc.n, tc.d, trial, err)
			}
			if float64(res.BroadcastTime) > cBound*model {
				t.Fatalf("n=%d d=%d trial %d: time %d exceeds %.0f·model = %.0f",
					tc.n, tc.d, trial, res.BroadcastTime, cBound, cBound*model)
			}
		}
	}
}

// TestCompletionProbabilityHigh: with the (reduced) simulation stage budget
// the algorithm still completes on every seed of a moderate sample — the
// empirical stand-in for Theorem 1's 1 − 1/r success probability.
func TestCompletionProbabilityHigh(t *testing.T) {
	g, err := graph.UniformCompleteLayered(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	const seeds = 30
	for seed := 1; seed <= seeds; seed++ {
		res, err := radio.Run(g, New(), radio.Config{Seed: uint64(seed)}, radio.Options{})
		if err != nil || !res.Completed {
			failures++
		}
	}
	if failures > 0 {
		t.Fatalf("%d/%d seeds failed to complete", failures, seeds)
	}
}

// TestLadderCoversLowDegrees: within one stage, the ladder probabilities
// 1, 1/2, ..., D/r must give a front with at most r/D informed in-neighbors
// a constant success chance (Lemma 2's regime). We test the consequence:
// broadcast over a path (every front has exactly 1 informed in-neighbor) is
// fast — a constant number of steps per layer.
func TestLadderCoversLowDegrees(t *testing.T) {
	g := graph.Path(128)
	p := NewWithParams(Params{KnownRadius: 128})
	res, err := radio.Run(g, p, radio.Config{Seed: 5}, radio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	perLayer := float64(res.BroadcastTime) / 127.0
	// Stage length for D=128, r=128: log(r/D)+2 = 2; a front with one
	// informed in-neighbor crosses per stage with probability ~1 (the l=0
	// step transmits with probability 1 and there is no contention).
	if perLayer > 8 {
		t.Fatalf("path crossing cost %.1f steps/layer; ladder broken", perLayer)
	}
}
