package core

import (
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

func TestKnownRadiusClampedToLabelBound(t *testing.T) {
	// KnownRadius far above the label bound must clamp to rPow, not panic
	// or build an absurd schedule.
	s, err := buildSchedule(63, Params{StageFactor: 2, KnownRadius: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.phases) != 1 {
		t.Fatalf("%d phases", len(s.phases))
	}
	if s.phases[0].d > s.rPow {
		t.Fatalf("phase radius %d above rPow %d", s.phases[0].d, s.rPow)
	}
	// And the protocol still broadcasts.
	res, err := radio.Run(graph.Path(16), NewWithParams(Params{KnownRadius: 10_000}),
		radio.Config{Seed: 1}, radio.Options{})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestKnownRadiusMinimumTwo(t *testing.T) {
	s, err := buildSchedule(63, Params{StageFactor: 2, KnownRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.phases[0].d < 2 {
		t.Fatalf("phase radius %d < 2", s.phases[0].d)
	}
}

func TestTwoNodeNetworkSchedule(t *testing.T) {
	// labelBound 1: logR = 1, a single doubling phase. Must broadcast on
	// the 2-node path.
	res, err := radio.Run(graph.Path(2), New(), radio.Config{Seed: 2}, radio.Options{})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestAblatedStageLength(t *testing.T) {
	with, err := buildSchedule(255, Params{StageFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	without, err := buildSchedule(255, Params{StageFactor: 2, DisableUniversalStep: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range with.phases {
		if without.phases[i].stageLen != with.phases[i].stageLen-1 {
			t.Fatalf("phase %d: ablated stageLen %d vs full %d",
				i, without.phases[i].stageLen, with.phases[i].stageLen)
		}
		if without.phases[i].universalStep {
			t.Fatalf("phase %d still has the universal step", i)
		}
		if without.phases[i].seq != nil {
			t.Fatalf("phase %d built a universal sequence it will not use", i)
		}
	}
}

func TestPaperExactPhasesAllFallBack(t *testing.T) {
	// At laptop label bounds, 32·r^{2/3} > r: every phase of the
	// paper-exact configuration takes the BGI branch — the documented
	// reason the experiments disable the fallback.
	p := NewPaperExact()
	prog := p.NewNode(0, radio.Config{N: 1024})
	if prog == nil {
		t.Fatal("nil program")
	}
	s, err := buildSchedule(1023, Params{StageFactor: PaperStageFactor, FallbackFactor: PaperFallbackFactor})
	if err != nil {
		t.Fatal(err)
	}
	for i, ph := range s.phases {
		if !ph.fallback {
			t.Fatalf("phase %d did not fall back", i)
		}
		if ph.numStages != PaperStageFactor*(ph.d+s.logR) {
			t.Fatalf("phase %d budget %d", i, ph.numStages)
		}
	}
}

func TestScheduleViewMatchesNodeCoins(t *testing.T) {
	// The exposed ScheduleView must agree with the node program's actual
	// transmission probabilities: compare empirical rates per step offset.
	view, err := KnownRadiusSchedule(63, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the first two stages: probability at in-stage position l of the
	// ladder is 2^-l; the view must say the same.
	for t0 := 2; t0 < 2+2*view.StageLen; t0++ {
		p := view.ProbAt(t0)
		if p <= 0 || p > 1 {
			t.Fatalf("ProbAt(%d) = %f", t0, p)
		}
	}
	// Ladder head of each stage transmits with probability 1.
	if view.ProbAt(2) != 1 {
		t.Fatalf("stage head probability %f", view.ProbAt(2))
	}
	if view.ProbAt(2+view.StageLen) != 1 {
		t.Fatalf("second stage head probability %f", view.ProbAt(2+view.StageLen))
	}
}
