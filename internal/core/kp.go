// Package core implements the paper's primary contribution: the optimal
// randomized broadcasting algorithm of Section 2.
//
// Procedure Stage(D, i) consists of log(r/D)+1 "Decay ladder" steps — in
// step l a participating node transmits with probability 2^{-l} — followed
// by one extra step in which nodes transmit with the universal-sequence
// probability p_i (package sequences). Procedure Randomized-Broadcasting(D)
// is one source transmission followed by Θ(D) stages (the paper's constant
// is 4660). Algorithm Optimal-Randomized-Broadcasting removes the knowledge
// of D with the doubling technique, running Randomized-Broadcasting(2^i) for
// i = 1, ..., log r; per Corollary 1 the whole schedule repeats forever.
// Expected broadcast time is O(D log(n/D) + log² n).
package core

import (
	"fmt"
	"math"
	"sync"

	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
	"adhocradio/internal/sequences"
)

// PaperStageFactor is the per-phase stage budget constant from Lemma 6 of
// the paper: Randomized-Broadcasting(D) runs 4660·D stages to reach failure
// probability 1/r². Simulations use a smaller default (DefaultStageFactor)
// because the 4660 arises from loose union bounds; the broadcast virtually
// always completes within a small multiple of D stages, and the doubling
// wrapper retries anyway. This substitution is recorded in DESIGN.md.
const PaperStageFactor = 4660

// DefaultStageFactor is the simulation default for stages per phase.
const DefaultStageFactor = 16

// PaperFallbackFactor is the constant of the paper's "if D <= 32·r^{2/3}
// perform Procedure Broadcast from [3]" branch.
const PaperFallbackFactor = 32

// Params configures the algorithm.
type Params struct {
	// StageFactor sets the number of stages in Randomized-Broadcasting(D)
	// to StageFactor·D. Zero selects DefaultStageFactor; use
	// PaperStageFactor for the paper's exact budget.
	StageFactor int
	// FallbackFactor c selects the BGI fallback for phases with
	// D <= c·r^{2/3}. Zero disables the fallback entirely (every phase uses
	// the Stage machinery); use PaperFallbackFactor for the paper's branch.
	// At laptop scales c=32 makes every phase fall back (32·r^{2/3} > r for
	// r < 2^15), i.e. the paper's algorithm degenerates to BGI; experiments
	// that exercise the novel machinery therefore disable the fallback.
	FallbackFactor float64
	// KnownRadius, when positive, runs the single procedure
	// Randomized-Broadcasting(2^⌈log KnownRadius⌉) repeatedly instead of
	// the doubling wrapper.
	KnownRadius int
	// DisableUniversalStep ablates the extra per-stage step (experiment
	// E8), leaving only the truncated Decay ladder.
	DisableUniversalStep bool
}

// Protocol is Algorithm Optimal-Randomized-Broadcasting.
type Protocol struct {
	params Params

	once  sync.Once
	sched *schedule
	err   error
}

var _ radio.Protocol = (*Protocol)(nil)

// New returns the algorithm with the paper's structure and simulation-scale
// constants (StageFactor 16, no fallback). Use NewWithParams for full
// control, including the paper's exact constants.
func New() *Protocol { return NewWithParams(Params{}) }

// NewPaperExact returns the algorithm with the paper's published constants:
// 4660·D stages per phase and the 32·r^{2/3} BGI fallback branch.
func NewPaperExact() *Protocol {
	return NewWithParams(Params{StageFactor: PaperStageFactor, FallbackFactor: PaperFallbackFactor})
}

// NewWithParams returns the algorithm with explicit parameters.
func NewWithParams(p Params) *Protocol {
	if p.StageFactor <= 0 {
		p.StageFactor = DefaultStageFactor
	}
	return &Protocol{params: p}
}

// Name implements radio.Protocol.
func (p *Protocol) Name() string {
	switch {
	case p.params.DisableUniversalStep:
		return "kp-ablated"
	case p.params.KnownRadius > 0:
		return fmt.Sprintf("kp-known-D=%d", p.params.KnownRadius)
	default:
		return "kp-optimal"
	}
}

// Validate builds the transmission schedule for cfg and reports any
// parameter error. Callers with untrusted parameters check here before
// handing the protocol to a simulator; NewNode itself cannot return an
// error (the radio.Protocol interface has no error path) and panics on
// configurations Validate would have rejected.
func (p *Protocol) Validate(cfg radio.Config) error {
	p.once.Do(func() {
		p.sched, p.err = buildSchedule(cfg.LabelBound(), p.params)
	})
	return p.err
}

// NewNode implements radio.Protocol. The schedule is built lazily from the
// first configuration seen; a schedule construction failure indicates
// invalid parameters — check with Validate first, or the programmer error
// panics here.
func (p *Protocol) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	if err := p.Validate(cfg); err != nil {
		//radiolint:ignore nopanic radio.Protocol.NewNode has no error path; Validate exposes this error before any node is built
		panic(fmt.Sprintf("core: invalid parameters: %v", err))
	}
	return &node{
		sched:      p.sched,
		source:     label == 0,
		src:        rng.NewStream(cfg.Seed, uint64(label)),
		informedAt: -1,
	}
}

// phase is one execution of Randomized-Broadcasting(d) (or of the BGI
// fallback) inside the doubling schedule.
type phase struct {
	d             int // assumed radius (power of two)
	fallback      bool
	sourceStep    bool // phase begins with "the source transmits"
	stageLen      int
	numStages     int
	ladderMax     int                  // highest ladder exponent: log(r/d), or log r for fallback
	universalStep bool                 // stage ends with the p_i step
	seq           *sequences.Universal // nil when !universalStep
	length        int                  // total steps
}

// schedule lays the phases out on the absolute time axis and repeats the
// whole cycle forever (Corollary 1).
type schedule struct {
	rPow   int // 2^⌈log(R+1)⌉, the paper's power-of-two stand-in for r
	logR   int
	phases []phase
	starts []int // starts[i] = offset of phase i within the cycle
	cycle  int
}

func buildSchedule(labelBound int, p Params) (*schedule, error) {
	if labelBound < 1 {
		return nil, fmt.Errorf("label bound %d < 1", labelBound)
	}
	logR := sequences.CeilLog2(labelBound + 1)
	s := &schedule{rPow: 1 << logR, logR: logR}

	addPhase := func(dPow int) error {
		ph, err := makePhase(s.rPow, logR, dPow, p)
		if err != nil {
			return err
		}
		s.starts = append(s.starts, s.cycle)
		s.phases = append(s.phases, ph)
		s.cycle += ph.length
		return nil
	}

	if p.KnownRadius > 0 {
		dPow := 1 << sequences.CeilLog2(p.KnownRadius)
		if dPow > s.rPow {
			dPow = s.rPow
		}
		if dPow < 2 {
			dPow = 2
		}
		if err := addPhase(dPow); err != nil {
			return nil, err
		}
		return s, nil
	}
	for i := 1; i <= logR; i++ {
		if err := addPhase(1 << i); err != nil {
			return nil, err
		}
	}
	if len(s.phases) == 0 { // logR == 0: two-node network
		if err := addPhase(1); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func makePhase(rPow, logR, dPow int, p Params) (phase, error) {
	threshold := p.FallbackFactor * math.Cbrt(float64(rPow)*float64(rPow))
	if p.FallbackFactor > 0 && float64(dPow) <= threshold {
		// BGI fallback: plain Decay stages, budget Θ(D·log r + log² r).
		ph := phase{
			d:         dPow,
			fallback:  true,
			stageLen:  logR + 1,
			numStages: p.StageFactor * (dPow + logR),
			ladderMax: logR,
		}
		ph.length = ph.stageLen * ph.numStages
		return ph, nil
	}
	logD := sequences.CeilLog2(dPow)
	ladderMax := logR - logD // log(r/D)
	if ladderMax < 0 {
		ladderMax = 0
	}
	ph := phase{
		d:             dPow,
		sourceStep:    true,
		ladderMax:     ladderMax,
		numStages:     p.StageFactor * dPow,
		universalStep: !p.DisableUniversalStep,
	}
	ph.stageLen = ladderMax + 1
	if ph.universalStep {
		ph.stageLen++
		seq, err := sequences.BuildRelaxed(rPow, dPow)
		if err != nil {
			return phase{}, fmt.Errorf("universal sequence for r=%d D=%d: %w", rPow, dPow, err)
		}
		ph.seq = seq
	}
	ph.length = 1 + ph.stageLen*ph.numStages
	return ph, nil
}

// locate maps an absolute step t >= 1 to its phase and 0-based offset.
func (s *schedule) locate(t int) (*phase, int) {
	pos := (t - 1) % s.cycle
	// Few phases (<= log r): linear scan from the end.
	for i := len(s.phases) - 1; i >= 0; i-- {
		if pos >= s.starts[i] {
			return &s.phases[i], pos - s.starts[i]
		}
	}
	return &s.phases[0], pos // unreachable; starts[0] == 0
}

type node struct {
	sched      *schedule
	source     bool
	src        *rng.Source
	informedAt int // step the node was informed; 0 for source, -1 unset
}

// Act implements radio.NodeProgram.
func (n *node) Act(t int) (bool, any) {
	if n.informedAt < 0 {
		if !n.source {
			return false, nil
		}
		n.informedAt = 0
	}
	ph, pos := n.sched.locate(t)
	if ph.sourceStep {
		if pos == 0 {
			// "the source transmits".
			return n.source, payload{}
		}
		pos--
	}
	stageIdx := pos/ph.stageLen + 1
	inStage := pos % ph.stageLen
	// "if node v received source message before Stage(D, i) then v performs
	// Stage(D, i)": the stage begins at absolute step t - inStage.
	if n.informedAt >= t-inStage {
		return false, nil
	}
	if inStage <= ph.ladderMax {
		if n.src.CoinPow2(inStage) {
			return true, payload{}
		}
		return false, nil
	}
	// The extra step: transmit with probability p_i from the universal
	// sequence.
	e := ph.seq.ExponentAt(stageIdx)
	if e >= 0 && n.src.CoinPow2(e) {
		return true, payload{}
	}
	return false, nil
}

// Deliver implements radio.NodeProgram.
func (n *node) Deliver(t int, msg radio.Message) {
	if n.informedAt < 0 {
		n.informedAt = t
	}
}

// payload is the (empty) broadcast message; every transmission implicitly
// carries the source message.
type payload struct{}

// ScheduleView exposes the exact per-step transmission probabilities of a
// protocol configuration, for the analytic oracle in internal/exact.
type ScheduleView struct {
	// ProbAt is the common transmission probability at step t for every
	// participating node.
	ProbAt func(t int) float64
	// SourceOnly marks steps where only the source transmits (the phase's
	// opening "the source transmits" step).
	SourceOnly func(t int) bool
	// StageLen is the stage length; StageEndsAt gives the exact boundary
	// steps (the opening step shifts them off the t%StageLen grid).
	StageLen    int
	StageEndsAt func(t int) bool
}

// KnownRadiusSchedule returns the schedule of the single-phase procedure
// Randomized-Broadcasting(D) (Params{KnownRadius: knownRadius}). The values
// must match node.Act coin for coin; the exact package's oracle tests
// enforce that.
func KnownRadiusSchedule(labelBound, knownRadius int) (*ScheduleView, error) {
	s, err := buildSchedule(labelBound, Params{StageFactor: DefaultStageFactor, KnownRadius: knownRadius})
	if err != nil {
		return nil, err
	}
	ph := &s.phases[0]
	view := &ScheduleView{StageLen: ph.stageLen}
	view.ProbAt = func(t int) float64 {
		pos := (t - 1) % s.cycle
		if ph.sourceStep {
			if pos == 0 {
				return 1 // the source transmits; SourceOnly marks the step
			}
			pos--
		}
		stageIdx := pos/ph.stageLen + 1
		inStage := pos % ph.stageLen
		if inStage <= ph.ladderMax {
			return math.Pow(2, -float64(inStage))
		}
		e := ph.seq.ExponentAt(stageIdx)
		if e < 0 {
			return 0
		}
		return math.Pow(2, -float64(e))
	}
	view.SourceOnly = func(t int) bool {
		return ph.sourceStep && (t-1)%s.cycle == 0
	}
	view.StageEndsAt = func(t int) bool {
		pos := (t - 1) % s.cycle
		if ph.sourceStep {
			if pos == 0 {
				// Nodes informed by the opening transmission participate
				// from stage 1: promote immediately.
				return true
			}
			pos--
		}
		return pos%ph.stageLen == ph.stageLen-1
	}
	return view, nil
}
