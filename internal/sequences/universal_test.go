package sequences

import (
	"math/bits"
	"strings"
	"testing"
)

func TestLog2(t *testing.T) {
	cases := []struct {
		x    int
		want int
		ok   bool
	}{
		{1, 0, true}, {2, 1, true}, {1024, 10, true},
		{0, 0, false}, {-4, 0, false}, {3, 0, false}, {12, 0, false},
	}
	for _, c := range cases {
		got, err := Log2(c.x)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("Log2(%d) = %d, %v", c.x, got, err)
		}
	}
}

// TestLog2Above32Bits guards the 64-bit bit twiddling: bits.TrailingZeros
// and bits.Len on plain uint truncate label bounds above 2³² on 32-bit
// platforms. The inputs only fit in int on 64-bit platforms, so the test
// skips elsewhere (where such bounds are unrepresentable anyway).
func TestLog2Above32Bits(t *testing.T) {
	if bits.UintSize < 64 {
		t.Skip("values above 2^32 do not fit in int on this platform")
	}
	for _, c := range []struct{ shift, want int }{
		{33, 33}, {40, 40}, {62, 62},
	} {
		x := int(int64(1) << uint(c.shift))
		got, err := Log2(x)
		if err != nil || got != c.want {
			t.Errorf("Log2(1<<%d) = %d, %v; want %d", c.shift, got, err, c.want)
		}
		if got := CeilLog2(x); got != c.want {
			t.Errorf("CeilLog2(1<<%d) = %d, want %d", c.shift, got, c.want)
		}
		if got := CeilLog2(x + 1); got != c.want+1 {
			t.Errorf("CeilLog2(1<<%d + 1) = %d, want %d", c.shift, got, c.want+1)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := [][2]int{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {20, 5}}
	for _, c := range cases {
		if got := CeilLog2(c[0]); got != c[1] {
			t.Errorf("CeilLog2(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build(1000, 100); err == nil {
		t.Fatal("non-power-of-two r accepted")
	}
	if _, err := Build(1024, 100); err == nil {
		t.Fatal("non-power-of-two D accepted")
	}
	if _, err := Build(512, 1024); err == nil {
		t.Fatal("D > r accepted")
	}
}

// validParams lists (r, D) pairs inside the formal Lemma 1 window
// 32·r^{2/3} < D <= r (powers of two).
var validParams = [][2]int{
	{1 << 18, 1 << 18}, // D = r
	{1 << 18, 1 << 17},
	{1 << 20, 1 << 19},
	{1 << 21, 1 << 20},
}

func TestStrictBuildSatisfiesU1U2(t *testing.T) {
	for _, p := range validParams {
		r, d := p[0], p[1]
		u, err := Build(r, d)
		if err != nil {
			t.Fatalf("Build(%d,%d): %v", r, d, err)
		}
		if !u.Strict() {
			t.Fatalf("Build(%d,%d) not strict", r, d)
		}
		if err := u.Verify(); err != nil {
			t.Fatalf("Build(%d,%d): %v", r, d, err)
		}
	}
}

func TestStrictPeriodWithinLemmaBound(t *testing.T) {
	// Lemma 1: the total number of distributed reals is < 3D.
	for _, p := range validParams {
		u, err := Build(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if u.Period() >= u.TotalBound() {
			t.Fatalf("r=%d D=%d: period %d >= 3D=%d", p[0], p[1], u.Period(), u.TotalBound())
		}
	}
}

func TestLeafBalance(t *testing.T) {
	// The proof uses "at most 3 reals in every leaf": with D leaves and a
	// period < 3D distributed almost evenly, per-leaf counts differ by at
	// most 1 among moved reals. We check the aggregate consequence: the
	// period is spread so that every aligned window of the period of length
	// period/D·c covers all leaf positions evenly — concretely, verify no
	// exponent has a circular gap above its guaranteed window (Verify) and
	// that the period length is at least D (each leaf got >= 1 real).
	u, err := Build(1<<20, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	if u.Period() < u.D() {
		t.Fatalf("period %d < D=%d: some leaf empty", u.Period(), u.D())
	}
}

func TestRelaxedBuildSmallParams(t *testing.T) {
	// Small parameters violate the formal window; BuildRelaxed must still
	// produce a sequence whose U1 range verifies (clamping only adds
	// copies). Verify may legitimately fail only if it reports a U2 window
	// problem caused by clamping — for these parameters it should pass.
	for _, p := range [][2]int{{1 << 10, 1 << 8}, {1 << 12, 1 << 9}, {1 << 12, 1 << 12}, {1 << 14, 1 << 10}} {
		u, err := BuildRelaxed(p[0], p[1])
		if err != nil {
			t.Fatalf("BuildRelaxed(%d,%d): %v", p[0], p[1], err)
		}
		if err := u.Verify(); err != nil {
			t.Fatalf("BuildRelaxed(%d,%d): %v", p[0], p[1], err)
		}
	}
}

func TestStrictBuildFailsOutsideWindow(t *testing.T) {
	// r=1024, D=8: levels of the U2 range cannot fit in a depth-3 tree.
	_, err := Build(1<<10, 1<<3)
	if err == nil {
		t.Fatal("expected level-out-of-range error")
	}
	if !strings.Contains(err.Error(), "BuildRelaxed") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestExponentAtPeriodicity(t *testing.T) {
	u, err := BuildRelaxed(1<<12, 1<<9)
	if err != nil {
		t.Fatal(err)
	}
	p := u.Period()
	if p == 0 {
		t.Fatal("empty period")
	}
	for i := 1; i <= p; i++ {
		if u.ExponentAt(i) != u.ExponentAt(i+p) || u.ExponentAt(i) != u.ExponentAt(i+7*p) {
			t.Fatalf("period broken at %d", i)
		}
	}
}

func TestExponentRange(t *testing.T) {
	u, err := Build(1<<20, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	logR := 20
	logD := 19
	for i := 1; i <= u.Period(); i++ {
		j := u.ExponentAt(i)
		if j < logR-logD+1 || j > logR {
			t.Fatalf("exponent %d at position %d outside [%d,%d]", j, i, logR-logD+1, logR)
		}
	}
}

func TestU1RangeOccursOftenEnough(t *testing.T) {
	// Spot-check the quantitative guarantee directly: for the first U1
	// exponent j0 = log(r/D)+1 the window is 3·D·2^{j0}/r = 6, so among any
	// 6 consecutive stage indices, exponent j0 appears.
	u, err := Build(1<<20, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	j0 := 20 - 19 + 1
	w := u.U1Window(j0)
	if w != 6 {
		t.Fatalf("U1Window(%d) = %d, want 6", j0, w)
	}
	for start := 1; start <= u.Period(); start++ {
		found := false
		for i := start; i < start+w; i++ {
			if u.ExponentAt(i) == j0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("window [%d,%d) misses exponent %d", start, start+w, j0)
		}
	}
}

func TestEmptySequenceExponent(t *testing.T) {
	u := &Universal{}
	if u.ExponentAt(1) != -1 {
		t.Fatal("empty sequence must report -1")
	}
	if err := u.Verify(); err == nil {
		t.Fatal("empty sequence verified")
	}
}

func TestJ1Boundary(t *testing.T) {
	u, err := Build(1<<20, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	// J1 = logR - ceil(log(4·logR)) = 20 - ceil(log2 80) = 20 - 7 = 13.
	if u.J1() != 13 {
		t.Fatalf("J1 = %d, want 13", u.J1())
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(1<<20, 1<<19); err != nil {
			b.Fatal(err)
		}
	}
}
