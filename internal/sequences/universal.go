// Package sequences implements the universal probability sequences of
// Lemma 1 of the paper.
//
// An infinite sequence (p_i) of reals in [0,1] is universal for parameters
// r, D (both powers of two) when:
//
//	U1. for every j = log(r/D)+1, ..., J1 = ⌊log(r/(4 log r))⌋, every window
//	    p_{i+1}, ..., p_{i+3D·2^j/r} contains at least one value 1/2^j;
//	U2. for every j = J1+1, ..., log r, every window
//	    p_{i+1}, ..., p_{i+3D·2^j/(r·2^{⌈log log r⌉+1})} contains at least
//	    one value 1/2^j.
//
// The construction follows the Lemma 1 proof exactly: probabilities 1/2^j
// are attached to every node of a designated level of the complete binary
// tree of depth log D, then moved to leaves bottom-up with a left-to-right
// balancing rule, and the leaf lists are concatenated into one period that
// repeats forever. Values are represented by their exponent j (p = 2^-j) so
// everything stays exact.
package sequences

import (
	"fmt"
	"math/bits"
)

// Universal is a constructed universal sequence. The zero value is not
// meaningful; build with Build or BuildRelaxed.
type Universal struct {
	r, d   int
	logR   int
	logD   int
	j1     int   // last exponent of the U1 range
	cll    int   // ⌈log log r⌉
	period []int // exponent j at each position of the base period
	// strict records whether the parameters satisfied the Lemma 1
	// preconditions exactly (levels in range, D window valid).
	strict bool
	// levelOf records the (possibly clamped) tree level each exponent was
	// placed at; maxLeaf is the largest number of reals in any leaf. Both
	// feed the relaxed-mode recurrence guarantee.
	levelOf map[int]int
	maxLeaf int
}

// Log2 returns log2(x) for a positive power of two, or an error otherwise.
// The 64-bit bit twiddling is explicit: uint is 32 bits on 32-bit
// platforms, which would truncate label bounds above 2³².
func Log2(x int) (int, error) {
	if x <= 0 || x&(x-1) != 0 {
		return 0, fmt.Errorf("sequences: %d is not a positive power of two", x)
	}
	return bits.TrailingZeros64(uint64(x)), nil
}

// CeilLog2 returns ⌈log2 x⌉ for x >= 1.
func CeilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len64(uint64(x - 1))
}

// Build constructs the universal sequence for label bound r and assumed
// radius D, both powers of two with D <= r. It returns an error when the
// parameters are outside the range where the Lemma 1 construction is
// well-defined (some designated tree level falls outside [0, log D]); use
// BuildRelaxed to clamp instead.
func Build(r, d int) (*Universal, error) {
	return build(r, d, false)
}

// BuildRelaxed constructs the sequence clamping out-of-range tree levels
// into [0, log D]. Clamping only increases the number of copies of a value
// (placing it lower in the tree), so recurrence guarantees never weaken; the
// period may exceed the 3D bound of the lemma. The result records
// Strict() == false when clamping (or any other precondition relaxation)
// occurred.
func BuildRelaxed(r, d int) (*Universal, error) {
	return build(r, d, true)
}

func build(r, d int, relaxed bool) (*Universal, error) {
	logR, err := Log2(r)
	if err != nil {
		return nil, fmt.Errorf("sequences: r: %w", err)
	}
	logD, err := Log2(d)
	if err != nil {
		return nil, fmt.Errorf("sequences: D: %w", err)
	}
	if d > r {
		return nil, fmt.Errorf("sequences: D=%d exceeds r=%d", d, r)
	}

	u := &Universal{r: r, d: d, logR: logR, logD: logD, strict: true, levelOf: map[int]int{}}
	u.cll = CeilLog2(logR)
	// J1 = ⌊log(r / (4 log r))⌋ = logR - ⌈log(4·logR)⌉.
	u.j1 = logR - CeilLog2(4*logR)

	// levelVals[ℓ] lists the exponents attached to every node of level ℓ,
	// in the order they should be moved (larger exponent = smaller real
	// moves first, per "the smaller of them").
	levelVals := make([][]int, logD+1)
	place := func(j, level int) error {
		if level < 0 || level > logD {
			if !relaxed {
				return fmt.Errorf("sequences: exponent %d maps to level %d outside [0,%d] (r=%d D=%d); use BuildRelaxed",
					j, level, logD, r, d)
			}
			u.strict = false
			if level < 0 {
				level = 0
			} else {
				level = logD
			}
		}
		levelVals[level] = append(levelVals[level], j)
		u.levelOf[j] = level
		return nil
	}
	// U1 range: j in [log(r/D)+1, J1], level log(2r/2^j) = logR+1-j.
	for j := logR - logD + 1; j <= u.j1; j++ {
		if err := place(j, logR+1-j); err != nil {
			return nil, err
		}
	}
	// U2 range: j in [J1+1, logR], level log(2r·2^{cll+1}/2^j) = logR+2+cll-j.
	for j := u.j1 + 1; j <= logR; j++ {
		if err := place(j, logR+2+u.cll-j); err != nil {
			return nil, err
		}
	}
	// Move smaller reals (larger exponents) first within a node.
	for _, vals := range levelVals {
		for i := 1; i < len(vals); i++ { // insertion sort, descending j
			for k := i; k > 0 && vals[k] > vals[k-1]; k-- {
				vals[k], vals[k-1] = vals[k-1], vals[k]
			}
		}
	}

	numLeaves := d
	leaves := make([][]int, numLeaves)
	// Initial leaf assignment: values designated for level logD sit at every
	// leaf already.
	for i := range leaves {
		leaves[i] = append([]int(nil), levelVals[logD]...)
	}
	moved := make([]int, numLeaves) // count of reals moved to each leaf

	// Process internal levels bottom-up, nodes left to right. A node at
	// level ℓ, index k (0-based within level) owns leaves
	// [k·2^{logD-ℓ}, (k+1)·2^{logD-ℓ}).
	for level := logD - 1; level >= 0; level-- {
		vals := levelVals[level]
		if len(vals) == 0 {
			continue
		}
		span := 1 << (logD - level)
		for k := 0; k < 1<<level; k++ {
			lo := k * span
			for _, j := range vals {
				z := pickLeaf(moved, lo, span)
				leaves[z] = append(leaves[z], j)
				moved[z]++
			}
		}
	}

	for _, l := range leaves {
		if len(l) > u.maxLeaf {
			u.maxLeaf = len(l)
		}
		u.period = append(u.period, l...)
	}
	return u, nil
}

// pickLeaf returns the leftmost leaf in [lo, lo+span) holding fewer moved
// reals than some leaf to its left in the same range, or lo when all counts
// are equal. Counts within a subtree stay non-increasing left-to-right and
// differ by at most one, so it suffices to find the first count below
// moved[lo].
func pickLeaf(moved []int, lo, span int) int {
	for z := lo + 1; z < lo+span; z++ {
		if moved[z] < moved[lo] {
			return z
		}
	}
	return lo
}

// Period returns the length of the repeating base period. A period of 0
// means the sequence is empty (no exponent ranges applied; the extra stage
// step becomes a no-op).
func (u *Universal) Period() int { return len(u.period) }

// Strict reports whether the Lemma 1 preconditions held exactly.
func (u *Universal) Strict() bool { return u.strict }

// R returns the label-bound parameter.
func (u *Universal) R() int { return u.r }

// D returns the radius parameter.
func (u *Universal) D() int { return u.d }

// J1 returns the boundary exponent between the U1 and U2 ranges.
func (u *Universal) J1() int { return u.j1 }

// ExponentAt returns the exponent j of p_i = 1/2^j for stage index i >= 1,
// or -1 when the sequence is empty (callers treat -1 as "do not transmit").
func (u *Universal) ExponentAt(i int) int {
	if len(u.period) == 0 {
		return -1
	}
	return u.period[(i-1)%len(u.period)]
}

// U1Window returns the window length 3D·2^j/r guaranteed by U1 for exponent
// j in the U1 range, capped at the period length (a window spanning the
// whole period trivially contains every value that occurs at all).
func (u *Universal) U1Window(j int) int {
	w := 3 * int64(u.d) * (int64(1) << uint(j)) / int64(u.r)
	if w > int64(len(u.period)) {
		w = int64(len(u.period))
	}
	return int(w)
}

// U2Window returns the window length 3D·2^j/(r·2^{cll+1}) guaranteed by U2
// for exponent j in the U2 range (at least 1).
func (u *Universal) U2Window(j int) int {
	w := 3 * int64(u.d) * (int64(1) << uint(j)) / (int64(u.r) << uint(u.cll+1))
	if w < 1 {
		w = 1
	}
	if w > int64(len(u.period)) {
		w = int64(len(u.period))
	}
	return int(w)
}

// maxCircularGap returns the largest circular gap between consecutive
// occurrences of exponent j in the period, or -1 if j never occurs. A gap
// of g means some window of g-1 consecutive positions misses j.
func (u *Universal) maxCircularGap(j int) int {
	first, last, maxGap := -1, -1, 0
	for i, v := range u.period {
		if v != j {
			continue
		}
		if first == -1 {
			first = i
		} else if g := i - last; g > maxGap {
			maxGap = g
		}
		last = i
	}
	if first == -1 {
		return -1
	}
	if g := len(u.period) - last + first; g > maxGap {
		maxGap = g
	}
	return maxGap
}

// GuaranteedWindow returns the recurrence window the construction actually
// guarantees for exponent j: maxLeaf · 2 · (leaves under one node of j's
// placement level), capped at the period. For strict builds this is at most
// the definitional U1/U2 window (maxLeaf <= 3); for relaxed builds the
// clamped levels and fuller leaves may widen it. Returns 0 when j was never
// placed.
func (u *Universal) GuaranteedWindow(j int) int {
	level, ok := u.levelOf[j]
	if !ok {
		return 0
	}
	w := int64(u.maxLeaf) * 2 * (int64(1) << uint(u.logD-level))
	if w > int64(len(u.period)) {
		w = int64(len(u.period))
	}
	return int(w)
}

// Verify checks the recurrence properties over the infinite concatenation
// (circularly over the period) and returns a descriptive error on the first
// violation. Strict builds are checked against the definitional U1/U2
// windows of Lemma 1; relaxed builds against the constructive guarantee of
// GuaranteedWindow. For any successful Build or BuildRelaxed this must pass;
// tests rely on it.
func (u *Universal) Verify() error {
	if len(u.period) == 0 {
		return fmt.Errorf("sequences: empty period")
	}
	window := func(j int) int {
		if !u.strict {
			return u.GuaranteedWindow(j)
		}
		if j <= u.j1 {
			return u.U1Window(j)
		}
		return u.U2Window(j)
	}
	for j := u.logR - u.logD + 1; j <= u.logR; j++ {
		cond := "U1"
		if j > u.j1 {
			cond = "U2"
		}
		gap := u.maxCircularGap(j)
		if gap == -1 {
			return fmt.Errorf("sequences: %s exponent %d absent from period", cond, j)
		}
		if w := window(j); gap > w {
			return fmt.Errorf("sequences: %s violated for j=%d: max gap %d > window %d", cond, j, gap, w)
		}
	}
	return nil
}

// TotalBound returns the Lemma 1 bound 3D on the period length; the proof
// shows the distributed reals number fewer than 3D for valid parameters.
func (u *Universal) TotalBound() int { return 3 * u.d }
