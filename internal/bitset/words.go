package bitset

import "math/bits"

// Word-level views for kernels that accumulate directly over raw []uint64
// bitplanes instead of going through Set. The radio engine's bit-parallel
// tally kernel owns three such planes (hit-once, hit-twice, transmitters)
// and streams cached bitmap-adjacency rows through them; these helpers are
// the alloc-free word operations that kernel is built from. All of them
// treat their arguments as fixed-width planes sized by Words(n) — bounds
// are the caller's responsibility, exactly like indexing a slice.

// Words returns the number of 64-bit words needed to hold n bits.
func Words(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + wordBits - 1) / wordBits
}

// Mark sets bit i in the plane.
func Mark(w []uint64, i int) {
	w[i>>6] |= 1 << uint(i&63)
}

// Test reports whether bit i is set in the plane.
func Test(w []uint64, i int) bool {
	return w[i>>6]&(1<<uint(i&63)) != 0
}

// Zero clears every word of the plane, keeping its storage.
func Zero(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// OnesCount returns the number of set bits across the plane.
func OnesCount(w []uint64) int {
	c := 0
	for _, x := range w {
		c += bits.OnesCount64(x)
	}
	return c
}

// AccumulateTwoPlane ORs row into a two-plane saturating accumulator:
// after the call, twice holds every bit seen in at least two rows so far
// and once every bit seen at least once. The order matters — twice must
// absorb the overlap before once absorbs the row:
//
//	twice |= once & row
//	once  |= row
//
// This is the word-parallel analogue of a saturating per-receiver hit
// counter clamped at 2, which is all a radio collision model needs: the
// interesting receiver states are "exactly one hit" (once &^ twice) and
// "two or more" (twice). len(once) and len(twice) must be >= len(row).
func AccumulateTwoPlane(once, twice, row []uint64) {
	once = once[:len(row)]
	twice = twice[:len(row)]
	for i, w := range row {
		twice[i] |= once[i] & w
		once[i] |= w
	}
}
