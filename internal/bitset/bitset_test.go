package bitset

import (
	"sort"
	"testing"
	"testing/quick"

	"adhocradio/internal/rng"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	s.Add(100)
	if !s.Contains(100) || s.Len() != 1 {
		t.Fatal("Add on zero value failed")
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(10)
	for _, v := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		if s.Contains(v) {
			t.Fatalf("fresh set contains %d", v)
		}
		s.Add(v)
		if !s.Contains(v) {
			t.Fatalf("set missing %d after Add", v)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) || s.Len() != 7 {
		t.Fatal("Remove(64) failed")
	}
	s.Remove(64)    // idempotent
	s.Remove(99999) // out of range: no-op
	s.Remove(-3)    // negative: no-op
	if s.Len() != 7 {
		t.Fatal("no-op removes changed set")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(4).Add(-1)
}

func TestContainsNegative(t *testing.T) {
	s := New(4)
	if s.Contains(-1) {
		t.Fatal("Contains(-1) true")
	}
}

func TestClear(t *testing.T) {
	s := New(8)
	for i := 0; i < 200; i += 3 {
		s.Add(i)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left elements")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(8)
	s.Add(3)
	c := s.Clone()
	c.Add(5)
	if s.Contains(5) {
		t.Fatal("Clone shares storage")
	}
	if !c.Contains(3) {
		t.Fatal("Clone lost element")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(8)
	b := New(8)
	for _, v := range []int{1, 2, 3, 70} {
		a.Add(v)
	}
	for _, v := range []int{2, 3, 4, 200} {
		b.Add(v)
	}

	u := a.Clone()
	u.Union(b)
	want := []int{1, 2, 3, 4, 70, 200}
	if got := u.Elements(); !equalInts(got, want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}

	i := a.Clone()
	i.Intersect(b)
	if got := i.Elements(); !equalInts(got, []int{2, 3}) {
		t.Fatalf("Intersect = %v", got)
	}
	if a.IntersectionCount(b) != 2 || b.IntersectionCount(a) != 2 {
		t.Fatal("IntersectionCount wrong")
	}

	d := a.Clone()
	d.Subtract(b)
	if got := d.Elements(); !equalInts(got, []int{1, 70}) {
		t.Fatalf("Subtract = %v", got)
	}
}

func TestEqual(t *testing.T) {
	a := New(1)
	b := New(1000) // different capacity, same contents
	a.Add(5)
	b.Add(5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal ignores capacity difference incorrectly")
	}
	b.Add(999)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("Equal missed element beyond shorter set")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(8)
	for i := 0; i < 100; i++ {
		s.Add(i)
	}
	n := 0
	s.ForEach(func(i int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMinMax(t *testing.T) {
	s := New(8)
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatal("empty set Min/Max not -1")
	}
	s.Add(77)
	s.Add(12)
	s.Add(300)
	if s.Min() != 12 || s.Max() != 300 {
		t.Fatalf("Min=%d Max=%d", s.Min(), s.Max())
	}
}

func TestCountInRange(t *testing.T) {
	s := New(8)
	for _, v := range []int{0, 5, 63, 64, 100, 200} {
		s.Add(v)
	}
	cases := []struct{ lo, hi, want int }{
		{0, 200, 6},
		{1, 199, 4},
		{5, 64, 3},
		{64, 64, 1},
		{65, 99, 0},
		{-10, 3, 1},
		{0, 100000, 6},
		{201, 500, 0},
	}
	for _, c := range cases {
		if got := s.CountInRange(c.lo, c.hi); got != c.want {
			t.Errorf("CountInRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(4)
	s.Add(1)
	s.Add(9)
	if got := s.String(); got != "{1, 9}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property test: Set behaves like a map[int]bool under random operations.
func TestAgainstMapModel(t *testing.T) {
	r := rng.New(12345)
	s := New(64)
	model := map[int]bool{}
	for op := 0; op < 20000; op++ {
		v := r.Intn(512)
		switch r.Intn(3) {
		case 0:
			s.Add(v)
			model[v] = true
		case 1:
			s.Remove(v)
			delete(model, v)
		case 2:
			if s.Contains(v) != model[v] {
				t.Fatalf("op %d: Contains(%d) mismatch", op, v)
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", s.Len(), len(model))
	}
	var want []int
	for v := range model {
		want = append(want, v)
	}
	sort.Ints(want)
	if got := s.Elements(); !equalInts(got, want) {
		t.Fatalf("Elements mismatch: %v vs %v", got, want)
	}
}

// Property: CountInRange(lo,hi) equals brute-force count.
func TestCountInRangeQuick(t *testing.T) {
	r := rng.New(777)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		s := New(0)
		vals := map[int]bool{}
		for i := 0; i < 30; i++ {
			v := rr.Intn(300)
			s.Add(v)
			vals[v] = true
		}
		lo, hi := r.Intn(310)-5, r.Intn(310)-5
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for v := range vals {
			if v >= lo && v <= hi {
				want++
			}
		}
		return s.CountInRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkAddContains(b *testing.B) {
	s := New(4096)
	for i := 0; i < b.N; i++ {
		v := i & 4095
		s.Add(v)
		if !s.Contains(v) {
			b.Fatal("missing")
		}
	}
}
