// Package bitset implements a dense bit set over non-negative integers.
//
// The radio simulator tracks per-step transmitter sets, informed sets, and
// visited sets over node labels 0..r; a dense bit set keeps those operations
// allocation-free on the hot path.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit set. The zero value is an empty set ready to use.
type Set struct {
	words []uint64
}

// New returns a set pre-sized to hold values in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// grow ensures the set can hold value i.
func (s *Set) grow(i int) {
	need := i/wordBits + 1
	if need <= len(s.words) {
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Add inserts i into the set. Negative values panic: labels are never
// negative, so this is always a caller bug.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: Add of negative value") //radiolint:ignore nopanic labels are never negative; a negative Add is always a caller bug
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set; removing an absent value is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 || i/wordBits >= len(s.words) {
		return
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i/wordBits >= len(s.words) {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// Union adds every element of t to s.
func (s *Set) Union(t *Set) {
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect removes from s every element not in t.
func (s *Set) Intersect(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Subtract removes from s every element of t.
func (s *Set) Subtract(t *Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s *Set) IntersectionCount(t *Set) int {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns the elements in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// CountInRange returns the number of elements in [lo, hi].
func (s *Set) CountInRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s.words)*wordBits {
		hi = len(s.words)*wordBits - 1
	}
	c := 0
	for i := lo; i <= hi; {
		wi := i / wordBits
		w := s.words[wi]
		// Mask off bits below i within this word.
		w &= ^uint64(0) << uint(i%wordBits)
		// Mask off bits above hi if hi falls inside this word.
		if hi/wordBits == wi {
			w &= ^uint64(0) >> uint(wordBits-1-hi%wordBits)
		}
		c += bits.OnesCount64(w)
		i = (wi + 1) * wordBits
	}
	return c
}

// String renders the set like "{1, 5, 9}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
