package bitset

import (
	"testing"

	"adhocradio/internal/rng"
)

func TestWords(t *testing.T) {
	cases := []struct{ n, want int }{
		{-5, 0}, {0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {1000, 16},
	}
	for _, c := range cases {
		if got := Words(c.n); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMarkTestZero(t *testing.T) {
	w := make([]uint64, Words(200))
	for _, i := range []int{0, 1, 63, 64, 127, 128, 199} {
		if Test(w, i) {
			t.Fatalf("bit %d set before Mark", i)
		}
		Mark(w, i)
		if !Test(w, i) {
			t.Fatalf("bit %d not set after Mark", i)
		}
	}
	if got := OnesCount(w); got != 7 {
		t.Fatalf("OnesCount = %d, want 7", got)
	}
	Zero(w)
	if got := OnesCount(w); got != 0 {
		t.Fatalf("OnesCount after Zero = %d, want 0", got)
	}
	for _, x := range w {
		if x != 0 {
			t.Fatal("Zero left a non-zero word")
		}
	}
}

// TestAccumulateTwoPlane checks the saturating semantics against a scalar
// hit counter: after accumulating any sequence of rows, once must hold the
// bits hit >= 1 time and twice the bits hit >= 2 times.
func TestAccumulateTwoPlane(t *testing.T) {
	const n = 300
	words := Words(n)
	rnd := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		once := make([]uint64, words)
		twice := make([]uint64, words)
		hits := make([]int, n)
		rows := 1 + rnd.Intn(6)
		for r := 0; r < rows; r++ {
			row := make([]uint64, words)
			for i := 0; i < n; i++ {
				if rnd.Intn(4) == 0 {
					Mark(row, i)
					hits[i]++
				}
			}
			AccumulateTwoPlane(once, twice, row)
		}
		for i := 0; i < n; i++ {
			if got, want := Test(once, i), hits[i] >= 1; got != want {
				t.Fatalf("trial %d bit %d: once=%v, hits=%d", trial, i, got, hits[i])
			}
			if got, want := Test(twice, i), hits[i] >= 2; got != want {
				t.Fatalf("trial %d bit %d: twice=%v, hits=%d", trial, i, got, hits[i])
			}
		}
	}
}

// TestAccumulateTwoPlaneShortRow pins that a row shorter than the planes
// only touches its own prefix.
func TestAccumulateTwoPlaneShortRow(t *testing.T) {
	once := make([]uint64, 4)
	twice := make([]uint64, 4)
	once[3], twice[3] = 0xdead, 0xbeef
	row := []uint64{^uint64(0), 0, 1}
	AccumulateTwoPlane(once, twice, row)
	AccumulateTwoPlane(once, twice, row)
	if once[0] != ^uint64(0) || once[2] != 1 || twice[0] != ^uint64(0) || twice[2] != 1 {
		t.Fatalf("prefix wrong: once=%x twice=%x", once, twice)
	}
	if once[3] != 0xdead || twice[3] != 0xbeef {
		t.Fatalf("suffix touched: once[3]=%x twice[3]=%x", once[3], twice[3])
	}
}
