package graph

import (
	"errors"
	"strings"
	"testing"
)

func TestSpecCanonicalZeroesUnusedFields(t *testing.T) {
	// Two requests that differ only in fields the kind ignores must land on
	// the same cache key.
	a := Spec{Kind: "path", N: 16, D: 99, P: 0.5, Seed: 7, Rows: 3, Cols: 3}
	b := Spec{Kind: "path", N: 16}
	ka, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("keys differ for equivalent specs: %q vs %q", ka, kb)
	}
	if ka != "path,n=16" {
		t.Fatalf("canonical key = %q", ka)
	}
}

func TestSpecCanonicalKeys(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: "gnp", N: 256, P: 0.3, Seed: 7}, "gnp,n=256,p=0.3,seed=7"},
		{Spec{Kind: "layered", N: 128, D: 8, P: 0.25, Seed: 1}, "layered,n=128,d=8,p=0.25,seed=1"},
		{Spec{Kind: "grid", Rows: 4, Cols: 5}, "grid,rows=4,cols=5"},
		{Spec{Kind: "hypercube", D: 5}, "hypercube,d=5"},
		{Spec{Kind: "complete", N: 64, D: 4}, "complete,n=64,d=4"},
		{Spec{Kind: "tree", N: 33, Seed: 12}, "tree,n=33,seed=12"},
	}
	for _, c := range cases {
		got, err := c.spec.Canonical()
		if err != nil {
			t.Fatalf("%+v: %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("Canonical(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []Spec{
		{Kind: "warp", N: 4},                  // unknown kind
		{Kind: "path", N: 0},                  // n too small
		{Kind: "cycle", N: 2},                 // cycle needs 3
		{Kind: "grid", Rows: 0, Cols: 3},      // bad grid
		{Kind: "gnp", N: 8, P: 1.5},           // p out of range
		{Kind: "layered", N: 8, D: 9, P: 0.5}, // d > n-1
		{Kind: "regular", N: 5, D: 3},         // n*d odd
		{Kind: "starchain", N: 3, D: 4},       // fan width 0
		{Kind: "complete", N: 4, D: 0},        // d < 1
		{Kind: "disk", N: 16, P: -1},          // negative radius
		{Kind: "hypercube", D: 31},            // oversized dimension
	}
	for _, c := range cases {
		if _, err := c.Normalize(); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("Normalize(%+v) err = %v, want ErrBadSpec", c, err)
		}
		if _, err := c.Canonical(); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("Canonical(%+v) err = %v, want ErrBadSpec", c, err)
		}
		if _, err := c.Build(); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("Build(%+v) err = %v, want ErrBadSpec", c, err)
		}
	}
}

// sameAdjacency asserts two graphs have identical node counts and adjacency
// entry-for-entry.
func sameAdjacency(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("node counts differ: %d vs %d", a.N(), b.N())
	}
	for v := 0; v < a.N(); v++ {
		ao, bo := a.Out(v), b.Out(v)
		if len(ao) != len(bo) {
			t.Fatalf("node %d out-degree differs: %d vs %d", v, len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("node %d adjacency differs at %d: %d vs %d", v, i, ao[i], bo[i])
			}
		}
	}
}

func TestSpecBuildDeterministic(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: "path", N: 17},
		{Kind: "star", N: 9},
		{Kind: "clique", N: 8},
		{Kind: "cycle", N: 11},
		{Kind: "grid", Rows: 3, Cols: 7},
		{Kind: "complete", N: 40, D: 4},
		{Kind: "starchain", N: 41, D: 4},
		{Kind: "hypercube", D: 4},
		{Kind: "layered", N: 60, D: 5, P: 0.3, Seed: 9},
		{Kind: "gnp", N: 50, P: 0.2, Seed: 3},
		{Kind: "tree", N: 30, Seed: 5},
		{Kind: "regular", N: 20, D: 4, Seed: 2},
		{Kind: "disk", N: 40, Seed: 8},
	} {
		g1, err := spec.Build()
		if err != nil {
			t.Fatalf("Build(%+v): %v", spec, err)
		}
		g2, err := spec.Build()
		if err != nil {
			t.Fatalf("Build(%+v) rebuild: %v", spec, err)
		}
		sameAdjacency(t, g1, g2)
		if err := g1.Validate(); err != nil {
			t.Fatalf("Build(%+v) graph invalid: %v", spec, err)
		}
	}
}

func TestSpecBuildSeedMatters(t *testing.T) {
	a, err := Spec{Kind: "gnp", N: 64, P: 0.1, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{Kind: "gnp", N: 64, P: 0.1, Seed: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := 0; v < a.N() && same; v++ {
		ao, bo := a.Out(v), b.Out(v)
		if len(ao) != len(bo) {
			same = false
			break
		}
		for i := range ao {
			if ao[i] != bo[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical gnp graphs")
	}
}

func TestSpecDiskDefaultRadius(t *testing.T) {
	ns, err := Spec{Kind: "disk", N: 100, Seed: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ns.P != 0.2 { // 2/sqrt(100)
		t.Fatalf("default disk radius = %v, want 0.2", ns.P)
	}
	key, err := Spec{Kind: "disk", N: 100, Seed: 1}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(key, "p=0.2") {
		t.Fatalf("canonical disk key lacks defaulted radius: %q", key)
	}
}

func TestSpecKindsAllBuildable(t *testing.T) {
	// Every advertised kind has a shape; the Build switch covers it.
	for _, k := range Kinds() {
		if _, ok := shapeFor(k); !ok {
			t.Fatalf("Kinds() lists %q but shapeFor rejects it", k)
		}
	}
}
