package graph

import (
	"bytes"
	"strings"
	"testing"

	"adhocradio/internal/rng"
)

func TestWriteDOTUndirected(t *testing.T) {
	g := Path(3)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "p"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph p {", "0 [shape=doublecircle]", "0 -- 1;", "1 -- 2;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "1 -- 0") {
		t.Fatal("undirected edge emitted twice")
	}
}

func TestWriteDOTDirected(t *testing.T) {
	g := New(2, false)
	g.MustAddEdge(0, 1)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph radio {") || !strings.Contains(buf.String(), "0 -> 1;") {
		t.Fatalf("dot output:\n%s", buf.String())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	src := rng.New(4)
	for _, g := range []*Graph{
		Path(7),
		GNPConnected(30, 0.1, src),
		mustDirected(t, src),
	} {
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != g.N() || back.Edges() != g.Edges() || back.Undirected() != g.Undirected() {
			t.Fatalf("round trip changed shape: %s vs %s", g.Stats(), back.Stats())
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Out(u) {
				if !back.HasEdge(u, v) {
					t.Fatalf("lost edge (%d,%d)", u, v)
				}
			}
		}
	}
}

func mustDirected(t *testing.T, src *rng.Source) *Graph {
	t.Helper()
	g, err := DirectedLayered(20, 4, 0.3, src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# a comment\n\nnodes 3 undirected\n0 1\n# another\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || !g.HasEdge(0, 1) || !g.HasEdge(2, 1) {
		t.Fatalf("parsed %s", g.Stats())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                                // empty
		"nodes x undirected\n",            // bad count
		"nodes 3 sideways\n",              // bad kind
		"0 1\n",                           // edge before header
		"nodes 3 undirected\n0\n",         // malformed edge
		"nodes 3 undirected\n0 9\n",       // out of range
		"nodes 3 undirected\n0 1\n0 1\n",  // duplicate
		"nodes 2 undirected\n0 0\n",       // self loop
		"nodes -1 undirected\n",           // negative
		"nodes 3 undirected extra oops\n", // too many fields
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
