package graph

import (
	"testing"

	"adhocradio/internal/bitset"
	"adhocradio/internal/rng"
)

// checkBitmapMirrors asserts the bitmap rows agree bit-for-bit with the
// slice adjacency: bit v of row u set iff the arc u->v exists.
func checkBitmapMirrors(t *testing.T, g *Graph) {
	t.Helper()
	b := g.CompileBitmap()
	if b.NumNodes != g.N() {
		t.Fatalf("NumNodes = %d, want %d", b.NumNodes, g.N())
	}
	if b.WordsPerRow != bitset.Words(g.N()) {
		t.Fatalf("WordsPerRow = %d, want %d", b.WordsPerRow, bitset.Words(g.N()))
	}
	for u := 0; u < g.N(); u++ {
		row := b.OutRow(u)
		if len(row) != b.WordsPerRow {
			t.Fatalf("node %d: row length %d, want %d", u, len(row), b.WordsPerRow)
		}
		if got, want := bitset.OnesCount(row), g.OutDegree(u); got != want {
			t.Fatalf("node %d: row popcount %d, want out-degree %d", u, got, want)
		}
		for _, v := range g.Out(u) {
			if !bitset.Test(row, v) {
				t.Fatalf("node %d: bit %d clear for arc (%d,%d)", u, v, u, v)
			}
		}
	}
}

func TestCompileBitmapMirrorsSliceAdjacency(t *testing.T) {
	src := rng.New(5)
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"path", Path(17)},
		{"star", Star(9)},
		{"clique", Clique(8)},
		{"clique64", Clique(64)},   // exactly one word per row
		{"clique65", Clique(65)},   // word-boundary straddle
		{"clique128", Clique(128)}, // exactly two words per row
		{"gnp", GNPConnected(70, 0.2, src)},
		{"tree", RandomTree(33, src)},
		{"empty", New(5, true)},
		{"single", New(1, false)},
	}
	if g, err := DirectedLayered(40, 5, 0.3, src); err == nil {
		graphs = append(graphs, struct {
			name string
			g    *Graph
		}{"directed", g})
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) { checkBitmapMirrors(t, tc.g) })
	}
}

func TestCompileBitmapCachesUntilMutation(t *testing.T) {
	g := Path(6)
	b1 := g.CompileBitmap()
	if b2 := g.CompileBitmap(); b2 != b1 {
		t.Fatal("second CompileBitmap did not return the cached bitmap")
	}
	g.MustAddEdge(0, 5)
	b3 := g.CompileBitmap()
	if b3 == b1 {
		t.Fatal("AddEdge did not invalidate the bitmap cache")
	}
	checkBitmapMirrors(t, g)

	g.SortAdjacency()
	if g.CompileBitmap() == b3 {
		t.Fatal("SortAdjacency did not invalidate the bitmap cache")
	}
	checkBitmapMirrors(t, g)
}

func TestCompileBitmapInvalidatedByRemoveEdge(t *testing.T) {
	g := Clique(5)
	b1 := g.CompileBitmap()
	g.removeEdge(1, 2)
	b2 := g.CompileBitmap()
	if b2 == b1 {
		t.Fatal("removeEdge did not invalidate the bitmap cache")
	}
	if bitset.Test(b2.OutRow(1), 2) || bitset.Test(b2.OutRow(2), 1) {
		t.Fatal("removed edge still set in rebuilt bitmap")
	}
	checkBitmapMirrors(t, g)
}

func TestCompileBitmapConcurrentReaders(t *testing.T) {
	// Frozen graph, many concurrent compilers: must race-cleanly converge on
	// a consistent view (run under -race in the Makefile's race target).
	src := rng.New(13)
	g := GNPConnected(64, 0.2, src)
	done := make(chan *Bitmap, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- g.CompileBitmap() }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		b := <-done
		if b.NumNodes != first.NumNodes || b.WordsPerRow != first.WordsPerRow {
			t.Fatal("concurrent compilations disagree")
		}
	}
	checkBitmapMirrors(t, g)
}

func TestBitmapDense(t *testing.T) {
	cases := []struct {
		n, m int
		want bool
	}{
		{0, 0, false},           // empty graph never qualifies
		{1, 0, false},           // 1*0*32 < 1
		{64, 128, true},         // 128*32 = 4096 = 64²
		{64, 127, false},        // just under the floor
		{256, 256 * 255, true},  // clique
		{1024, 4096, false},     // sparse GNP(4/n)
		{100000, 100000, false}, // million-node-scale sparse graph
		{80, 80 * 16, true},     // GNP(0.2) at fuzz scale
	}
	for _, c := range cases {
		if got := BitmapDense(c.n, c.m); got != c.want {
			t.Errorf("BitmapDense(%d, %d) = %v, want %v", c.n, c.m, got, c.want)
		}
	}
}
