package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the parser never panics and that everything it
// accepts round-trips to an identical encoding.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("nodes 3 undirected\n0 1\n1 2\n")
	f.Add("nodes 2 directed\n0 1\n")
	f.Add("# comment\nnodes 1 undirected\n")
	f.Add("nodes 4 undirected\n0 1\n0 2\n0 3\n")
	f.Add("garbage")
	f.Add("nodes 99999999999999999999 undirected\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("accepted graph failed to encode: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != g.N() || back.Edges() != g.Edges() {
			t.Fatalf("round trip changed shape")
		}
		if err := back.Validate(); err != nil && err != ErrNotBroadcastable {
			t.Fatalf("parsed graph structurally invalid: %v", err)
		}
	})
}
