package graph

import (
	"testing"

	"adhocradio/internal/rng"
)

func TestCycle(t *testing.T) {
	g, err := Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := g.Radius(); r != 4 {
		t.Fatalf("radius %d", r)
	}
	for v := 0; v < 8; v++ {
		if g.OutDegree(v) != 2 {
			t.Fatalf("degree of %d is %d", v, g.OutDegree(v))
		}
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("cycle of 2 accepted")
	}
}

func TestWheel(t *testing.T) {
	g, err := Wheel(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := g.Radius(); r != 1 {
		t.Fatalf("radius %d", r)
	}
	if g.OutDegree(0) != 6 {
		t.Fatalf("hub degree %d", g.OutDegree(0))
	}
	for v := 1; v < 7; v++ {
		if g.OutDegree(v) != 3 {
			t.Fatalf("rim degree of %d is %d", v, g.OutDegree(v))
		}
	}
	if _, err := Wheel(3); err == nil {
		t.Fatal("wheel of 3 accepted")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g, err := CompleteBinaryTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 15 {
		t.Fatalf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := g.Radius(); r != 3 {
		t.Fatalf("radius %d", r)
	}
	if g.Edges() != 2*14 {
		t.Fatalf("arcs %d", g.Edges())
	}
	if _, err := CompleteBinaryTree(0); err == nil {
		t.Fatal("0 levels accepted")
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatalf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := g.Radius(); r != 4 {
		t.Fatalf("radius %d", r)
	}
	for v := 0; v < 16; v++ {
		if g.OutDegree(v) != 4 {
			t.Fatalf("degree of %d is %d", v, g.OutDegree(v))
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Fatal("dim 0 accepted")
	}
}

func TestBarbell(t *testing.T) {
	g, err := Barbell(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Radius: source in left clique; farthest right-clique node at
	// 1 (clique) + bridge + 1 = 5.
	if r, _ := g.Radius(); r != 5 {
		t.Fatalf("radius %d", r)
	}
	if _, err := Barbell(1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	// bridge=1: the cliques share an edge path of one hop.
	g2, err := Barbell(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 6 {
		t.Fatalf("bridge-1 n = %d", g2.N())
	}
}

func TestRandomRegular(t *testing.T) {
	src := rng.New(11)
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {50, 3}, {16, 5}} {
		if tc.n*tc.d%2 != 0 {
			continue
		}
		g, err := RandomRegular(tc.n, tc.d, src)
		if err != nil {
			t.Fatalf("(%d,%d): %v", tc.n, tc.d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < tc.n; v++ {
			if g.OutDegree(v) != tc.d {
				t.Fatalf("(%d,%d): degree of %d is %d", tc.n, tc.d, v, g.OutDegree(v))
			}
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	src := rng.New(12)
	if _, err := RandomRegular(5, 3, src); err == nil {
		t.Fatal("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 4, src); err == nil {
		t.Fatal("d >= n accepted")
	}
	if _, err := RandomRegular(6, 0, src); err == nil {
		t.Fatal("d = 0 accepted")
	}
}

func TestWorstLabelCompleteLayered(t *testing.T) {
	g, err := WorstLabelCompleteLayered(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, err := g.IsCompleteLayered()
	if err != nil || !ok {
		t.Fatalf("not complete layered: %v %v", ok, err)
	}
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	// Layer 1 must hold the top labels.
	s := len(layers[1])
	for _, v := range layers[1] {
		if v < 40-s {
			t.Fatalf("layer 1 contains low label %d", v)
		}
	}
	if _, err := WorstLabelCompleteLayered(5, 10); err == nil {
		t.Fatal("impossible layering accepted")
	}
}
