package graph

import (
	"testing"

	"adhocradio/internal/rng"
)

// checkCSRMirrors asserts the compiled view agrees entry-for-entry with the
// slice adjacency, in both directions and in the same order.
func checkCSRMirrors(t *testing.T, g *Graph) {
	t.Helper()
	c := g.Compile()
	if c.NumNodes != g.N() {
		t.Fatalf("NumNodes = %d, want %d", c.NumNodes, g.N())
	}
	if c.Arcs() != g.Edges() {
		t.Fatalf("Arcs = %d, want %d", c.Arcs(), g.Edges())
	}
	maxOut, maxIn := 0, 0
	for v := 0; v < g.N(); v++ {
		out := g.Out(v)
		span := c.OutSpan(v)
		if len(span) != len(out) || c.OutDegree(v) != len(out) {
			t.Fatalf("node %d: out span %d, want %d", v, len(span), len(out))
		}
		for i, w := range out {
			if int(span[i]) != w {
				t.Fatalf("node %d: OutSpan[%d] = %d, want %d", v, i, span[i], w)
			}
		}
		in := g.In(v)
		ispan := c.InSpan(v)
		if len(ispan) != len(in) {
			t.Fatalf("node %d: in span %d, want %d", v, len(ispan), len(in))
		}
		for i, w := range in {
			if int(ispan[i]) != w {
				t.Fatalf("node %d: InSpan[%d] = %d, want %d", v, i, ispan[i], w)
			}
		}
		if len(out) > maxOut {
			maxOut = len(out)
		}
		if len(in) > maxIn {
			maxIn = len(in)
		}
	}
	if c.MaxOutDeg != maxOut || c.MaxInDeg != maxIn {
		t.Fatalf("MaxOutDeg/MaxInDeg = %d/%d, want %d/%d", c.MaxOutDeg, c.MaxInDeg, maxOut, maxIn)
	}
}

func TestCompileMirrorsSliceAdjacency(t *testing.T) {
	src := rng.New(3)
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"path", Path(17)},
		{"star", Star(9)},
		{"clique", Clique(8)},
		{"gnp", GNPConnected(40, 0.15, src)},
		{"tree", RandomTree(33, src)},
		{"empty", New(5, true)},
		{"single", New(1, false)},
	}
	if g, err := DirectedLayered(40, 5, 0.3, src); err == nil {
		graphs = append(graphs, struct {
			name string
			g    *Graph
		}{"directed", g})
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) { checkCSRMirrors(t, tc.g) })
	}
}

func TestCompileCachesUntilMutation(t *testing.T) {
	g := Path(6)
	c1 := g.Compile()
	if c2 := g.Compile(); c2 != c1 {
		t.Fatal("second Compile did not return the cached CSR")
	}
	g.MustAddEdge(0, 5)
	c3 := g.Compile()
	if c3 == c1 {
		t.Fatal("AddEdge did not invalidate the CSR cache")
	}
	checkCSRMirrors(t, g)

	g.SortAdjacency()
	if g.Compile() == c3 {
		t.Fatal("SortAdjacency did not invalidate the CSR cache")
	}
	checkCSRMirrors(t, g)
}

func TestCompileInvalidatedByRemoveEdge(t *testing.T) {
	g := Clique(5)
	c1 := g.Compile()
	g.removeEdge(1, 2)
	if g.Compile() == c1 {
		t.Fatal("removeEdge did not invalidate the CSR cache")
	}
	checkCSRMirrors(t, g)
}

func TestCompileConcurrentReaders(t *testing.T) {
	// Frozen graph, many concurrent compilers: must race-cleanly converge on
	// a consistent view (run under -race in the Makefile's race target).
	src := rng.New(11)
	g := GNPConnected(64, 0.1, src)
	done := make(chan *CSR, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- g.Compile() }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		c := <-done
		if c.Arcs() != first.Arcs() || c.NumNodes != first.NumNodes {
			t.Fatal("concurrent compilations disagree")
		}
	}
	checkCSRMirrors(t, g)
}
