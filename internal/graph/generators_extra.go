package graph

import (
	"fmt"

	"adhocradio/internal/rng"
)

// Cycle returns the n-node cycle (n >= 3), source at node 0, radius ⌊n/2⌋.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	g := New(n, true)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n)
	}
	return g, nil
}

// Wheel returns the n-node wheel: a hub (the source) connected to an
// (n-1)-cycle. Radius 1, but high contention everywhere.
func Wheel(n int) (*Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("graph: wheel needs n >= 4, got %d", n)
	}
	g := New(n, true)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		g.MustAddEdge(v, next)
	}
	return g, nil
}

// CompleteBinaryTree returns the complete binary tree with the given number
// of levels (level 1 = the root/source alone); n = 2^levels - 1.
func CompleteBinaryTree(levels int) (*Graph, error) {
	if levels < 1 || levels > 30 {
		return nil, fmt.Errorf("graph: binary tree levels %d out of range", levels)
	}
	n := 1<<levels - 1
	g := New(n, true)
	for v := 0; 2*v+1 < n; v++ {
		g.MustAddEdge(v, 2*v+1)
		if 2*v+2 < n {
			g.MustAddEdge(v, 2*v+2)
		}
	}
	return g, nil
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes; node v
// and w are adjacent iff their labels differ in exactly one bit. Radius =
// dim, degree = dim: the classic low-diameter sparse benchmark.
func Hypercube(dim int) (*Graph, error) {
	if dim < 1 || dim > 24 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of range", dim)
	}
	n := 1 << dim
	g := New(n, true)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if v < w {
				g.MustAddEdge(v, w)
			}
		}
	}
	return g, nil
}

// Barbell returns two cliques of size k joined by a path of length bridge
// (bridge >= 1 edges): a bottleneck topology where a single relay chain
// throttles the broadcast. n = 2k + bridge - 1.
func Barbell(k, bridge int) (*Graph, error) {
	if k < 2 || bridge < 1 {
		return nil, fmt.Errorf("graph: barbell needs k >= 2, bridge >= 1 (got %d, %d)", k, bridge)
	}
	n := 2*k + bridge - 1
	g := New(n, true)
	// Left clique on 0..k-1 (source inside).
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.MustAddEdge(u, v)
		}
	}
	// Path from node k-1 through k..k+bridge-2 to the right clique's first
	// node k+bridge-1.
	prev := k - 1
	for v := k; v <= k+bridge-1; v++ {
		g.MustAddEdge(prev, v)
		prev = v
	}
	// Right clique on k+bridge-1 .. n-1.
	for u := k + bridge - 1; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g, nil
}

// RandomRegular returns a connected random d-regular graph on n nodes
// (n·d must be even, d < n). It pairs stubs as in the configuration model
// and repairs self-loops and multi-edges with degree-preserving edge swaps,
// retrying the whole construction if repair stalls or the result is
// disconnected. For d >= 3 almost every repaired sample is connected.
func RandomRegular(n, d int, src *rng.Source) (*Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: degree %d out of range for n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n·d = %d·%d is odd", n, d)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryConfigurationModel(n, d, src)
		if !ok {
			continue
		}
		if _, reachable := g.BFSLayers(); reachable == n {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected simple %d-regular graph found after %d attempts", d, maxAttempts)
}

// tryConfigurationModel pairs n·d stubs uniformly, then repairs invalid
// pairs (self-loops, duplicates) by swapping with random valid pairs.
func tryConfigurationModel(n, d int, src *rng.Source) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	src.Shuffle(stubs)
	pairs := make([][2]int, 0, len(stubs)/2)
	for i := 0; i < len(stubs); i += 2 {
		pairs = append(pairs, [2]int{stubs[i], stubs[i+1]})
	}
	g := New(n, true)
	bad := pairs[:0:0]
	for _, pr := range pairs {
		if pr[0] != pr[1] && !g.HasEdge(pr[0], pr[1]) {
			g.MustAddEdge(pr[0], pr[1])
		} else {
			bad = append(bad, pr)
		}
	}
	// Repair: swap one endpoint of a bad pair with an endpoint of a random
	// existing edge so both resulting edges are valid.
	budget := 100 * (len(bad) + 1)
	for len(bad) > 0 && budget > 0 {
		budget--
		pr := bad[len(bad)-1]
		a, b := pr[0], pr[1]
		// Pick a random existing edge (u, w).
		u := src.Intn(n)
		if g.OutDegree(u) == 0 {
			continue
		}
		w := g.Out(u)[src.Intn(g.OutDegree(u))]
		// Proposed replacement: (a, u) and (b, w).
		if a == u || b == w || g.HasEdge(a, u) || g.HasEdge(b, w) {
			continue
		}
		g.removeEdge(u, w)
		g.MustAddEdge(a, u)
		g.MustAddEdge(b, w)
		bad = bad[:len(bad)-1]
	}
	return g, len(bad) == 0
}
