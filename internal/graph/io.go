package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format. The source is drawn as
// a doubled circle. Undirected graphs emit each edge once.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "radio"
	}
	kind, sep := "digraph", "->"
	if g.undirected {
		kind, sep = "graph", "--"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %s {\n", kind, name)
	fmt.Fprintf(bw, "  0 [shape=doublecircle];\n")
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			if g.undirected && v < u {
				continue
			}
			fmt.Fprintf(bw, "  %d %s %d;\n", u, sep, v)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList writes a plain text format readable by ReadEdgeList:
//
//	# comments allowed
//	nodes <n> <undirected|directed>
//	<u> <v>     (one edge per line; undirected edges listed once)
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	kind := "directed"
	if g.undirected {
		kind = "undirected"
	}
	fmt.Fprintf(bw, "nodes %d %s\n", g.n, kind)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			if g.undirected && v < u {
				continue
			}
			fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with '#' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if g == nil {
			if len(fields) != 3 || fields[0] != "nodes" {
				return nil, fmt.Errorf("graph: line %d: expected \"nodes <n> <kind>\", got %q", lineNo, line)
			}
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			switch fields[2] {
			case "undirected":
				g = New(n, true)
			case "directed":
				g = New(n, false)
			default:
				return nil, fmt.Errorf("graph: line %d: bad kind %q", lineNo, fields[2])
			}
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"<u> <v>\", got %q", lineNo, line)
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return g, nil
}
