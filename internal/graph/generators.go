package graph

import (
	"fmt"
	"math"

	"adhocradio/internal/rng"
)

// Path returns the undirected path 0-1-2-...-n-1 (radius n-1).
func Path(n int) *Graph {
	g := New(n, true)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1)
	}
	return g
}

// Star returns the undirected star with the source at the center and n-1
// leaves (radius 1).
func Star(n int) *Graph {
	g := New(n, true)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v)
	}
	return g
}

// Clique returns the complete undirected graph on n nodes (radius 1).
func Clique(n int) *Graph {
	g := New(n, true)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// CompleteLayered returns the undirected complete layered network with the
// given layer sizes (Section 4.3): layer 0 is the source alone, and the edge
// set is exactly all pairs from consecutive layers. sizes[i] is the size of
// layer i+1; the source layer is implicit. Returns an error if any size is
// non-positive.
func CompleteLayered(sizes []int) (*Graph, error) {
	n := 1
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("graph: layer %d has non-positive size %d", i+1, s)
		}
		n += s
	}
	g := New(n, true)
	prev := []int{0}
	next := 1
	for _, s := range sizes {
		layer := make([]int, s)
		for i := range layer {
			layer[i] = next
			next++
		}
		for _, u := range prev {
			for _, v := range layer {
				g.MustAddEdge(u, v)
			}
		}
		prev = layer
	}
	return g, nil
}

// LayerSizesForRadius splits n-1 non-source nodes into d layers as evenly as
// possible (every layer non-empty). Returns an error if d < 1 or d > n-1.
func LayerSizesForRadius(n, d int) ([]int, error) {
	if d < 1 || d > n-1 {
		return nil, fmt.Errorf("graph: cannot place %d nodes in %d layers", n-1, d)
	}
	sizes := make([]int, d)
	base, extra := (n-1)/d, (n-1)%d
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes, nil
}

// UniformCompleteLayered returns a complete layered network with n nodes and
// radius d, layers as even as possible.
func UniformCompleteLayered(n, d int) (*Graph, error) {
	sizes, err := LayerSizesForRadius(n, d)
	if err != nil {
		return nil, err
	}
	return CompleteLayered(sizes)
}

// WorstLabelCompleteLayered returns an n-node complete layered network of
// radius d whose first layer carries the HIGHEST labels. Label-scanning
// bootstraps (part 1 of Select-and-Send, phase 1 of Complete-Layered) then
// genuinely pay their Θ(n) worst case, which makes the additive n term of
// the O(n + D log n) bound measurable instead of vanishing behind
// low-labelled first layers.
func WorstLabelCompleteLayered(n, d int) (*Graph, error) {
	sizes, err := LayerSizesForRadius(n, d)
	if err != nil {
		return nil, err
	}
	g := New(n, true)
	prev := []int{0}
	// Layer 1 takes the top labels; later layers fill ascending from 1.
	next := 1
	for li, s := range sizes {
		layer := make([]int, s)
		if li == 0 {
			for i := range layer {
				layer[i] = n - s + i
			}
		} else {
			for i := range layer {
				layer[i] = next
				next++
			}
		}
		for _, u := range prev {
			for _, v := range layer {
				g.MustAddEdge(u, v)
			}
		}
		prev = layer
	}
	return g, nil
}

// RandomLayered returns an undirected layered network with n nodes and
// radius exactly d: nodes are split into d even layers; each node in layer
// i+1 connects to a random non-empty subset of layer i (guaranteeing
// reachability), and additional intra-consecutive-layer edges appear with
// probability p. Labels are randomly permuted among non-source nodes so that
// label order carries no topological information.
func RandomLayered(n, d int, p float64, src *rng.Source) (*Graph, error) {
	sizes, err := LayerSizesForRadius(n, d)
	if err != nil {
		return nil, err
	}
	perm := permuteNonSource(n, src)
	layers := make([][]int, d+1)
	layers[0] = []int{0}
	next := 1
	for i, s := range sizes {
		layer := make([]int, s)
		for j := range layer {
			layer[j] = perm[next]
			next++
		}
		layers[i+1] = layer
	}
	g := New(n, true)
	for i := 1; i <= d; i++ {
		prev := layers[i-1]
		for _, v := range layers[i] {
			// One guaranteed parent keeps v at distance exactly i.
			parent := prev[src.Intn(len(prev))]
			g.MustAddEdge(parent, v)
			for _, u := range prev {
				if u != parent && src.Bernoulli(p) {
					g.MustAddEdge(u, v)
				}
			}
		}
	}
	return g, nil
}

// GNPConnected returns a connected undirected Erdős–Rényi-style graph: a
// uniform random spanning tree guarantees connectivity, then every other
// pair is added independently with probability p.
func GNPConnected(n int, p float64, src *rng.Source) *Graph {
	g := RandomTree(n, src)
	if p > 0 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) && src.Bernoulli(p) {
					g.MustAddEdge(u, v)
				}
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n nodes via a
// random Prüfer sequence (n >= 1; n <= 2 returns the trivial tree/path).
func RandomTree(n int, src *rng.Source) *Graph {
	g := New(n, true)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.MustAddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = src.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	// Standard linear Prüfer decoding: ptr scans for the smallest unused
	// leaf; the "v < ptr" case reuses a node freed behind the scan pointer.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		g.MustAddEdge(leaf, v)
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	g.MustAddEdge(leaf, n-1)
	return g
}

// Grid returns the rows×cols undirected grid with the source at a corner.
func Grid(rows, cols int) *Graph {
	g := New(rows*cols, true)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// UnitDisk places n nodes uniformly in the unit square and connects pairs at
// Euclidean distance <= radius: the classic ad hoc wireless deployment
// model. If the resulting graph is disconnected, each stranded component is
// attached to its nearest connected node, modelling a relay added by the
// operator; the returned graph is always broadcastable.
func UnitDisk(n int, radius float64, src *rng.Source) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	g := New(n, true)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				g.MustAddEdge(u, v)
			}
		}
	}
	// Patch connectivity: repeatedly attach the unreachable node closest to
	// any reachable node.
	for {
		dist, reachable := g.BFSLayers()
		if reachable == n {
			break
		}
		bestU, bestV, bestD := -1, -1, math.MaxFloat64
		for u := 0; u < n; u++ {
			if dist[u] == -1 {
				continue
			}
			for v := 0; v < n; v++ {
				if dist[v] != -1 {
					continue
				}
				dx, dy := xs[u]-xs[v], ys[u]-ys[v]
				if d := dx*dx + dy*dy; d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		g.MustAddEdge(bestU, bestV)
	}
	return g
}

// StarChain returns the "many informed in-neighbors" stress topology used by
// the universal-sequence ablation (experiment E8): a chain of d hubs where
// hub i fans out to w leaves that all connect to hub i+1. Every hop must
// funnel w simultaneously informed nodes through a single receiver, the
// situation the last step of Stage(D,i) exists to handle. n = 1 + d*(w+1).
func StarChain(d, w int) *Graph {
	n := 1 + d*(w+1)
	g := New(n, true)
	hub := 0
	next := 1
	for i := 0; i < d; i++ {
		leaves := make([]int, w)
		for j := range leaves {
			leaves[j] = next
			next++
		}
		newHub := next
		next++
		for _, l := range leaves {
			g.MustAddEdge(hub, l)
			g.MustAddEdge(l, newHub)
		}
		hub = newHub
	}
	return g
}

// Caterpillar returns a path of length d where every spine node additionally
// has legs leaves attached (radius d+1 when legs > 0). Useful as a sparse
// topology with low-degree fronts.
func Caterpillar(d, legs int) *Graph {
	n := d + 1 + d*legs
	g := New(n, true)
	next := d + 1
	for v := 0; v < d; v++ {
		g.MustAddEdge(v, v+1)
		for l := 0; l < legs; l++ {
			g.MustAddEdge(v+1, next)
			next++
		}
	}
	return g
}

// DirectedLayered returns a *directed* layered network (arcs only forward),
// matching Section 2's directed setting: every node in layer i+1 receives an
// arc from at least one node in layer i, plus extra forward arcs with
// probability p.
func DirectedLayered(n, d int, p float64, src *rng.Source) (*Graph, error) {
	sizes, err := LayerSizesForRadius(n, d)
	if err != nil {
		return nil, err
	}
	perm := permuteNonSource(n, src)
	layers := make([][]int, d+1)
	layers[0] = []int{0}
	next := 1
	for i, s := range sizes {
		layer := make([]int, s)
		for j := range layer {
			layer[j] = perm[next]
			next++
		}
		layers[i+1] = layer
	}
	g := New(n, false)
	for i := 1; i <= d; i++ {
		prev := layers[i-1]
		for _, v := range layers[i] {
			parent := prev[src.Intn(len(prev))]
			g.MustAddEdge(parent, v)
			for _, u := range prev {
				if u != parent && src.Bernoulli(p) {
					g.MustAddEdge(u, v)
				}
			}
		}
	}
	return g, nil
}

// permuteNonSource returns a permutation of 0..n-1 fixing 0, so the source
// keeps label 0 while all other labels are shuffled.
func permuteNonSource(n int, src *rng.Source) []int {
	perm := make([]int, n)
	perm[0] = 0
	rest := make([]int, n-1)
	for i := range rest {
		rest[i] = i + 1
	}
	src.Shuffle(rest)
	copy(perm[1:], rest)
	return perm
}
