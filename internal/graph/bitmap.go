package graph

import (
	"math"

	"adhocradio/internal/bitset"
)

// Bitmap is the bitmap-adjacency form of a Graph: one fixed-width row of
// uint64 words per node, bit v of row u set iff the arc u->v exists. It is
// the layout the simulator's bit-parallel tally kernel streams — one row OR
// per transmitter processes 64 receivers per ALU op — and is only worth its
// n²/8 bits of memory on dense graphs (see Dense), where it costs at most a
// small constant times the CSR it is built from.
//
// Like the CSR, a Bitmap is immutable once built: Graph.CompileBitmap caches
// it on the graph and every mutation invalidates the cache, so a compiled
// view never goes stale. Callers must not modify the returned rows.
type Bitmap struct {
	// NumNodes is the node count (same as Graph.N).
	NumNodes int
	// WordsPerRow is the row stride: bitset.Words(NumNodes).
	WordsPerRow int

	rows []uint64 // NumNodes rows of WordsPerRow words each
}

// OutRow returns u's out-neighborhood as a bitplane of WordsPerRow words.
// The slice aliases the bitmap's storage and must not be modified.
func (b *Bitmap) OutRow(u int) []uint64 {
	return b.rows[u*b.WordsPerRow : (u+1)*b.WordsPerRow]
}

// BitmapDense reports whether a graph with n nodes and m directed arcs is
// dense enough for bitmap adjacency to earn its memory: mean out-degree at
// least n/32, i.e. m*32 >= n². At that floor the bitmap's n²/8 bytes are at
// most 4x the CSR's 4m bytes, and the word-parallel kernel has enough set
// bits per row to beat per-arc scalar work. Sparser graphs should stay on
// CSR adjacency alone.
func BitmapDense(n, m int) bool {
	return n > 0 && int64(m)*32 >= int64(n)*int64(n)
}

// CompileBitmap returns the bitmap-adjacency form of the graph, building it
// from the compiled CSR on first use and caching it on the graph. The cache
// is invalidated by every mutation (AddEdge, removeEdge, SortAdjacency),
// exactly like the CSR cache, and shares its publication contract: racing
// compilers of a frozen graph build identical content, so whichever
// atomic store wins is indistinguishable.
//
// Callers gate on BitmapDense (or their own density policy) before
// compiling: the bitmap always costs NumNodes²/8 bytes regardless of the
// arc count.
func (g *Graph) CompileBitmap() *Bitmap {
	if b := g.bmp.Load(); b != nil {
		return b
	}
	b := buildBitmap(g.Compile())
	g.bmp.Store(b)
	return b
}

func buildBitmap(c *CSR) *Bitmap {
	n := c.NumNodes
	words := bitset.Words(n)
	if n > 0 && int64(n)*int64(words) > math.MaxInt32 {
		// >2^31 words is a >16 GiB bitmap; the density gate every caller
		// applies means the CSR's own int32 arc guard trips long before a
		// graph this large could be compiled here.
		panic("graph: too large for bitmap adjacency") //radiolint:ignore nopanic unreachable behind the CSR int32 guard at any bitmap-worthy density; guards row index arithmetic
	}
	b := &Bitmap{
		NumNodes:    n,
		WordsPerRow: words,
		rows:        make([]uint64, n*words),
	}
	for u := 0; u < n; u++ {
		row := b.rows[u*words : (u+1)*words]
		for _, v := range c.OutSpan(u) {
			bitset.Mark(row, int(v))
		}
	}
	return b
}
