package graph

import "math"

// CSR is the compressed-sparse-row form of a Graph: per-direction flat
// adjacency arrays plus offset arrays, int32-typed so the simulator's hot
// loop walks contiguous, cache-dense memory instead of chasing [][]int
// spines. OutAdj[OutOff[v]:OutOff[v+1]] lists v's out-neighbors in the same
// order as Graph.Out(v); the In pair mirrors Graph.In.
//
// A CSR is immutable: it is built once by Graph.Compile and shared by every
// reader (parallel trial workers hold the same instance). Callers must not
// modify any field.
type CSR struct {
	// NumNodes is the node count (same as Graph.N).
	NumNodes int
	// OutOff has length NumNodes+1; OutAdj has one entry per arc.
	OutOff []int32
	OutAdj []int32
	// InOff/InAdj are the transposed adjacency (in-neighbors).
	InOff []int32
	InAdj []int32
	// MaxOutDeg and MaxInDeg are the largest per-node degrees, used to
	// pre-size simulator scratch buffers.
	MaxOutDeg int
	MaxInDeg  int
}

// OutSpan returns v's out-neighbors as a slice of the flat array.
func (c *CSR) OutSpan(v int) []int32 { return c.OutAdj[c.OutOff[v]:c.OutOff[v+1]] }

// InSpan returns v's in-neighbors as a slice of the flat array.
func (c *CSR) InSpan(v int) []int32 { return c.InAdj[c.InOff[v]:c.InOff[v+1]] }

// OutDegree returns |Out(v)| without touching the adjacency array.
func (c *CSR) OutDegree(v int) int { return int(c.OutOff[v+1] - c.OutOff[v]) }

// Arcs returns the number of directed arcs.
func (c *CSR) Arcs() int { return len(c.OutAdj) }

// Compile returns the CSR form of the graph, building it on first use and
// caching it on the graph. The cache is invalidated by every mutation
// (AddEdge, removeEdge, SortAdjacency), so a compiled view never goes stale.
//
// Compile is safe to call from concurrent readers of a frozen graph — the
// usual experiment shape, where one goroutine generates a topology and many
// trial workers then simulate on it. Racing compilers may each build the
// view once, but they build identical content from the same frozen
// adjacency, so whichever publication wins is indistinguishable. Mutating
// the graph while other goroutines simulate on it is a caller bug, exactly
// as it already was for the slice API.
func (g *Graph) Compile() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.csr.Store(c)
	return c
}

func buildCSR(g *Graph) *CSR {
	n := g.n
	m := 0
	for v := 0; v < n; v++ {
		m += len(g.out[v])
	}
	if int64(m) > math.MaxInt32 || int64(n) >= math.MaxInt32 {
		// >2^31 arcs means hundreds of gigabytes of adjacency; long before
		// that the trial engine's memory budget is gone. No caller can reach
		// this without first failing to allocate the slice graph itself.
		panic("graph: too large for int32 CSR compilation") //radiolint:ignore nopanic unreachable at any allocatable graph size; guards int32 index arithmetic
	}
	c := &CSR{
		NumNodes: n,
		OutOff:   make([]int32, n+1),
		OutAdj:   make([]int32, 0, m),
		InOff:    make([]int32, n+1),
		InAdj:    make([]int32, 0, m),
	}
	for v := 0; v < n; v++ {
		c.OutOff[v] = int32(len(c.OutAdj))
		for _, w := range g.out[v] {
			c.OutAdj = append(c.OutAdj, int32(w))
		}
		if d := len(g.out[v]); d > c.MaxOutDeg {
			c.MaxOutDeg = d
		}
	}
	c.OutOff[n] = int32(len(c.OutAdj))
	for v := 0; v < n; v++ {
		c.InOff[v] = int32(len(c.InAdj))
		for _, w := range g.in[v] {
			c.InAdj = append(c.InAdj, int32(w))
		}
		if d := len(g.in[v]); d > c.MaxInDeg {
			c.MaxInDeg = d
		}
	}
	c.InOff[n] = int32(len(c.InAdj))
	return c
}
