package graph

import (
	"errors"
	"strings"
	"testing"

	"adhocradio/internal/rng"
)

func TestAddEdgeErrors(t *testing.T) {
	g := New(3, true)
	cases := []struct {
		u, v int
		want string
	}{
		{-1, 0, "out of range"},
		{0, 3, "out of range"},
		{1, 1, "self-loop"},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("AddEdge(%d,%d) err = %v, want containing %q", c.u, c.v, err, c.want)
		}
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("reverse of undirected edge accepted as new")
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := New(4, true)
	g.MustAddEdge(0, 2)
	if !g.HasEdge(2, 0) || !g.HasEdge(0, 2) {
		t.Fatal("undirected edge not symmetric")
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 {
		t.Fatal("degree bookkeeping wrong")
	}
	if g.Edges() != 2 {
		t.Fatalf("Edges() = %d, want 2 arcs", g.Edges())
	}
}

func TestDirectedAsymmetry(t *testing.T) {
	g := New(3, false)
	g.MustAddEdge(0, 1)
	if g.HasEdge(1, 0) {
		t.Fatal("directed graph created reverse arc")
	}
	if g.InDegree(1) != 1 || g.OutDegree(1) != 0 {
		t.Fatal("in/out mixed up")
	}
}

func TestBFSAndRadius(t *testing.T) {
	g := Path(5)
	dist, reach := g.BFSLayers()
	if reach != 5 {
		t.Fatalf("reachable = %d", reach)
	}
	for v, d := range dist {
		if d != v {
			t.Fatalf("dist[%d] = %d", v, d)
		}
	}
	r, err := g.Radius()
	if err != nil || r != 4 {
		t.Fatalf("Radius = %d, %v", r, err)
	}
}

func TestRadiusUnreachable(t *testing.T) {
	g := New(3, true)
	g.MustAddEdge(0, 1)
	if _, err := g.Radius(); err == nil {
		t.Fatal("Radius on disconnected graph did not error")
	}
	if err := g.Validate(); !errors.Is(err, ErrNotBroadcastable) {
		t.Fatalf("Validate = %v, want ErrNotBroadcastable", err)
	}
}

func TestLayers(t *testing.T) {
	g, err := CompleteLayered([]int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 3 {
		t.Fatalf("got %d layers", len(layers))
	}
	if len(layers[0]) != 1 || layers[0][0] != 0 {
		t.Fatalf("layer 0 = %v", layers[0])
	}
	if len(layers[1]) != 3 || len(layers[2]) != 2 {
		t.Fatalf("layer sizes %d,%d", len(layers[1]), len(layers[2]))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Path(4)
	// Corrupt: append an arc only to the out list.
	g.out[1] = append(g.out[1], 3)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric corruption")
	}
}

func TestIsCompleteLayered(t *testing.T) {
	g, err := CompleteLayered([]int{2, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.IsCompleteLayered()
	if err != nil || !ok {
		t.Fatalf("complete layered not recognized: %v %v", ok, err)
	}
	// A path of length >= 3 is NOT complete layered only when some layer has
	// >1 node; a pure path IS complete layered (all layers singletons). Test
	// a genuinely non-layered graph: layered plus a skip edge.
	h, _ := CompleteLayered([]int{2, 2})
	h.MustAddEdge(0, 3) // skip into layer 2
	ok, err = h.IsCompleteLayered()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("graph with skip edge recognized as complete layered")
	}
}

func TestPathIsCompleteLayered(t *testing.T) {
	ok, err := Path(6).IsCompleteLayered()
	if err != nil || !ok {
		t.Fatalf("path should be complete layered: %v %v", ok, err)
	}
}

func TestCompleteLayeredErrors(t *testing.T) {
	if _, err := CompleteLayered([]int{2, 0, 1}); err == nil {
		t.Fatal("zero layer size accepted")
	}
}

func TestLayerSizesForRadius(t *testing.T) {
	sizes, err := LayerSizesForRadius(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			t.Fatalf("empty layer in %v", sizes)
		}
		total += s
	}
	if total != 9 || len(sizes) != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
	if _, err := LayerSizesForRadius(3, 5); err == nil {
		t.Fatal("impossible split accepted")
	}
	if _, err := LayerSizesForRadius(3, 0); err == nil {
		t.Fatal("zero layers accepted")
	}
}

func TestStarAndClique(t *testing.T) {
	s := Star(8)
	if r, _ := s.Radius(); r != 1 {
		t.Fatal("star radius != 1")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Clique(6)
	if r, _ := c.Radius(); r != 1 {
		t.Fatal("clique radius != 1")
	}
	if c.Edges() != 6*5 {
		t.Fatalf("clique arcs = %d", c.Edges())
	}
}

func TestRandomTreeConnectedAndAcyclic(t *testing.T) {
	src := rng.New(1)
	for _, n := range []int{1, 2, 3, 4, 10, 100, 500} {
		g := RandomTree(n, src)
		if g.Edges() != 2*(n-1) && n > 0 {
			if !(n == 1 && g.Edges() == 0) {
				t.Fatalf("n=%d tree has %d arcs", n, g.Edges())
			}
		}
		if n > 0 {
			if err := g.Validate(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestRandomTreeDistribution(t *testing.T) {
	// All 3 labelled trees on 3 nodes should appear.
	src := rng.New(2)
	seen := map[string]int{}
	for i := 0; i < 300; i++ {
		g := RandomTree(3, src)
		g.SortAdjacency()
		key := ""
		for v := 0; v < 3; v++ {
			for _, w := range g.Out(v) {
				if w > v {
					key += string(rune('a'+v)) + string(rune('a'+w))
				}
			}
		}
		seen[key]++
	}
	if len(seen) != 3 {
		t.Fatalf("only %d of 3 labelled trees seen: %v", len(seen), seen)
	}
}

func TestGNPConnected(t *testing.T) {
	src := rng.New(3)
	for _, p := range []float64{0, 0.01, 0.3} {
		g := GNPConnected(50, p, src)
		if err := g.Validate(); err != nil {
			t.Fatalf("p=%f: %v", p, err)
		}
	}
}

func TestRandomLayeredRadius(t *testing.T) {
	src := rng.New(4)
	for _, tc := range []struct{ n, d int }{{20, 4}, {100, 10}, {64, 63}, {30, 1}} {
		g, err := RandomLayered(tc.n, tc.d, 0.3, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		r, err := g.Radius()
		if err != nil || r != tc.d {
			t.Fatalf("n=%d d=%d: radius %d (%v)", tc.n, tc.d, r, err)
		}
	}
}

func TestDirectedLayeredRadius(t *testing.T) {
	src := rng.New(5)
	g, err := DirectedLayered(60, 6, 0.2, src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Radius()
	if err != nil || r != 6 {
		t.Fatalf("radius %d (%v)", r, err)
	}
	if g.Undirected() {
		t.Fatal("DirectedLayered returned undirected graph")
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(4, 5)
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	r, err := g.Radius()
	if err != nil || r != 3+4 {
		t.Fatalf("radius %d (%v)", r, err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitDiskAlwaysBroadcastable(t *testing.T) {
	src := rng.New(6)
	for _, radius := range []float64{0.01, 0.1, 0.5} {
		g := UnitDisk(60, radius, src)
		if err := g.Validate(); err != nil {
			t.Fatalf("radius %f: %v", radius, err)
		}
	}
}

func TestStarChain(t *testing.T) {
	g := StarChain(3, 5)
	if g.N() != 1+3*6 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := g.Radius()
	if err != nil || r != 6 { // two hops per stage
		t.Fatalf("radius %d (%v)", r, err)
	}
	// The final hub has in-degree w (5) plus none beyond.
	lastHub := g.N() - 1
	if g.InDegree(lastHub) != 5 {
		t.Fatalf("last hub in-degree %d", g.InDegree(lastHub))
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.N() != 5+8 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.MustAddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("Clone shares adjacency storage")
	}
}

func TestStatsString(t *testing.T) {
	s := Path(3).Stats()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "radius=2") {
		t.Fatalf("Stats = %q", s)
	}
	g := New(2, true) // disconnected
	if !strings.Contains(g.Stats(), "∞") {
		t.Fatalf("Stats = %q", g.Stats())
	}
}

func TestSortAdjacencyDeterministic(t *testing.T) {
	g := New(4, true)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.SortAdjacency()
	want := []int{1, 2, 3}
	for i, v := range g.Out(0) {
		if v != want[i] {
			t.Fatalf("Out(0) = %v", g.Out(0))
		}
	}
}
