package graph

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"adhocradio/internal/rng"
)

// Spec is a canonical, serializable description of a generated topology:
// the generator kind plus the parameters (and seed) that make construction
// deterministic. Two Specs that normalize to the same Canonical() key build
// byte-identical graphs, which is exactly the contract the service layer's
// compiled-graph cache needs — the key captures everything the generator
// consumes, so a cache hit can never change a simulation result.
//
// Field usage per kind (unused fields must be zero after Normalize):
//
//	path, star, clique, cycle   N
//	grid                        Rows, Cols
//	complete                    N, D        (uniform complete layered)
//	starchain                   N, D        (fan width (N-1)/(D+1), as radiosim)
//	hypercube                   D           (dimension; 2^D nodes)
//	layered                     N, D, P, Seed
//	gnp                         N, P, Seed
//	tree                        N, Seed
//	regular                     N, D, Seed  (random D-regular)
//	disk                        N, P, Seed  (P = radius; 0 defaults to 2/sqrt(N))
type Spec struct {
	Kind string  `json:"kind"`
	N    int     `json:"n,omitempty"`
	D    int     `json:"d,omitempty"`
	Rows int     `json:"rows,omitempty"`
	Cols int     `json:"cols,omitempty"`
	P    float64 `json:"p,omitempty"`
	Seed uint64  `json:"seed,omitempty"`
}

// ErrBadSpec is the sentinel wrapped by every Spec validation failure;
// discriminate with errors.Is.
var ErrBadSpec = errors.New("graph: invalid topology spec")

// specShape describes which fields a kind consumes and which constraints
// they obey; the table keeps Normalize, Canonical and Build agreeing on the
// field set without three switch statements drifting apart.
type specShape struct {
	n, d, rows, p, seed bool // rows implies cols
	minN                int
}

// shapeFor returns the field shape for kind; ok is false for unknown kinds.
// A switch (not a map) so the dispatch is trivially deterministic.
func shapeFor(kind string) (specShape, bool) {
	switch kind {
	case "path", "star", "clique":
		return specShape{n: true, minN: 1}, true
	case "cycle":
		return specShape{n: true, minN: 3}, true
	case "grid":
		return specShape{rows: true}, true
	case "complete":
		return specShape{n: true, d: true, minN: 2}, true
	case "starchain":
		return specShape{n: true, d: true, minN: 2}, true
	case "hypercube":
		return specShape{d: true}, true
	case "layered":
		return specShape{n: true, d: true, p: true, seed: true, minN: 2}, true
	case "gnp":
		return specShape{n: true, p: true, seed: true, minN: 1}, true
	case "tree":
		return specShape{n: true, seed: true, minN: 1}, true
	case "regular":
		return specShape{n: true, d: true, seed: true, minN: 2}, true
	case "disk":
		return specShape{n: true, p: true, seed: true, minN: 1}, true
	default:
		return specShape{}, false
	}
}

// Kinds lists every spec kind Build understands, in canonical order.
func Kinds() []string {
	return []string{"clique", "complete", "cycle", "disk", "gnp", "grid",
		"hypercube", "layered", "path", "regular", "star", "starchain", "tree"}
}

// Normalize validates s and returns the canonical form: unused fields are
// zeroed (so equivalent requests collapse onto one cache key), kind-specific
// defaults are filled in, and every constraint the generators require is
// checked up front. The error wraps ErrBadSpec.
func (s Spec) Normalize() (Spec, error) {
	shape, ok := shapeFor(s.Kind)
	if !ok {
		return Spec{}, fmt.Errorf("%w: unknown kind %q (known: %s)",
			ErrBadSpec, s.Kind, strings.Join(Kinds(), ", "))
	}
	out := Spec{Kind: s.Kind}
	if shape.n {
		if s.N < shape.minN {
			return Spec{}, fmt.Errorf("%w: %s needs n >= %d, got %d", ErrBadSpec, s.Kind, shape.minN, s.N)
		}
		out.N = s.N
	}
	if shape.d {
		if s.D < 1 {
			return Spec{}, fmt.Errorf("%w: %s needs d >= 1, got %d", ErrBadSpec, s.Kind, s.D)
		}
		out.D = s.D
	}
	if shape.rows {
		if s.Rows < 1 || s.Cols < 1 {
			return Spec{}, fmt.Errorf("%w: grid needs rows, cols >= 1, got %dx%d", ErrBadSpec, s.Rows, s.Cols)
		}
		out.Rows, out.Cols = s.Rows, s.Cols
	}
	if shape.p {
		if s.P < 0 || math.IsNaN(s.P) || math.IsInf(s.P, 0) {
			return Spec{}, fmt.Errorf("%w: %s needs a finite p >= 0, got %v", ErrBadSpec, s.Kind, s.P)
		}
		out.P = s.P
		switch s.Kind {
		case "layered", "gnp":
			if s.P > 1 {
				return Spec{}, fmt.Errorf("%w: %s needs p in [0,1], got %v", ErrBadSpec, s.Kind, s.P)
			}
		case "disk":
			if out.P == 0 {
				// The ad hoc deployment default radiosim uses: dense enough
				// to be connected after patching, sparse enough to be radio.
				out.P = 2 / math.Sqrt(float64(s.N))
			}
		}
	}
	if shape.seed {
		out.Seed = s.Seed
	}
	// Kind-specific structural constraints the generators would otherwise
	// reject mid-build.
	switch s.Kind {
	case "complete":
		if out.D > out.N-1 {
			return Spec{}, fmt.Errorf("%w: %s needs d <= n-1, got d=%d n=%d", ErrBadSpec, s.Kind, out.D, out.N)
		}
	case "starchain":
		if (out.N-1)/(out.D+1) < 1 {
			return Spec{}, fmt.Errorf("%w: starchain needs n >= d+2 (fan width >= 1), got n=%d d=%d", ErrBadSpec, out.N, out.D)
		}
	case "layered":
		if out.D > out.N-1 {
			return Spec{}, fmt.Errorf("%w: layered needs d <= n-1, got d=%d n=%d", ErrBadSpec, out.D, out.N)
		}
	case "hypercube":
		if out.D > 30 {
			return Spec{}, fmt.Errorf("%w: hypercube dimension %d is unreasonably large", ErrBadSpec, out.D)
		}
	case "regular":
		if out.N*out.D%2 != 0 {
			return Spec{}, fmt.Errorf("%w: regular needs n*d even, got n=%d d=%d", ErrBadSpec, out.N, out.D)
		}
		if out.D > out.N-1 {
			return Spec{}, fmt.Errorf("%w: regular needs d <= n-1, got d=%d n=%d", ErrBadSpec, out.D, out.N)
		}
	}
	return out, nil
}

// Canonical returns the normalized cache key: a fixed-order, fixed-format
// rendering of exactly the fields the kind consumes. Equal keys imply
// byte-identical Build output.
func (s Spec) Canonical() (string, error) {
	ns, err := s.Normalize()
	if err != nil {
		return "", err
	}
	shape, _ := shapeFor(ns.Kind)
	var b strings.Builder
	b.WriteString(ns.Kind)
	if shape.n {
		b.WriteString(",n=")
		b.WriteString(strconv.Itoa(ns.N))
	}
	if shape.d {
		b.WriteString(",d=")
		b.WriteString(strconv.Itoa(ns.D))
	}
	if shape.rows {
		b.WriteString(",rows=")
		b.WriteString(strconv.Itoa(ns.Rows))
		b.WriteString(",cols=")
		b.WriteString(strconv.Itoa(ns.Cols))
	}
	if shape.p {
		b.WriteString(",p=")
		b.WriteString(strconv.FormatFloat(ns.P, 'g', -1, 64))
	}
	if shape.seed {
		b.WriteString(",seed=")
		b.WriteString(strconv.FormatUint(ns.Seed, 10))
	}
	return b.String(), nil
}

// Build normalizes the spec and constructs the graph. Construction is a
// pure function of the canonical spec: random kinds derive every draw from
// Seed through the repository's deterministic rng, so rebuilding the same
// spec always yields the same adjacency.
func (s Spec) Build() (*Graph, error) {
	ns, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	src := rng.New(ns.Seed)
	switch ns.Kind {
	case "path":
		return Path(ns.N), nil
	case "star":
		return Star(ns.N), nil
	case "clique":
		return Clique(ns.N), nil
	case "cycle":
		return Cycle(ns.N)
	case "grid":
		return Grid(ns.Rows, ns.Cols), nil
	case "complete":
		return UniformCompleteLayered(ns.N, ns.D)
	case "starchain":
		return StarChain(ns.D, (ns.N-1)/(ns.D+1)), nil
	case "hypercube":
		return Hypercube(ns.D)
	case "layered":
		return RandomLayered(ns.N, ns.D, ns.P, src)
	case "gnp":
		return GNPConnected(ns.N, ns.P, src), nil
	case "tree":
		return RandomTree(ns.N, src), nil
	case "regular":
		return RandomRegular(ns.N, ns.D, src)
	case "disk":
		return UnitDisk(ns.N, ns.P, src), nil
	}
	// Unreachable: Normalize rejected unknown kinds above.
	return nil, fmt.Errorf("%w: unknown kind %q", ErrBadSpec, ns.Kind)
}
