// Package graph provides the network topologies the radio model runs on.
//
// Networks are directed multigraph-free graphs over labels 0..n-1 with node 0
// as the broadcast source, matching the paper's model (Section 1.3): labels
// come from {0,...,r} with r linear in n, and the source carries label 0.
// Undirected networks are represented as symmetric directed graphs, which is
// exactly how Section 2 of the paper treats them ("undirected graphs can be
// considered as directed with every edge replaced by two directed edges").
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Graph is a directed graph on nodes 0..N-1. Out[v] lists the nodes whose
// receivers are reachable from v's transmitter; In[v] lists the nodes whose
// transmissions can reach v. For undirected graphs the two coincide.
type Graph struct {
	n          int
	out        [][]int
	in         [][]int
	undirected bool

	// csr caches the compiled flat-adjacency view (see Compile) and bmp the
	// bitmap-adjacency view (see CompileBitmap). Mutators store nil to
	// invalidate both; atomic publication lets concurrent read-only users
	// of a frozen graph share one compilation of each.
	csr atomic.Pointer[CSR]
	bmp atomic.Pointer[Bitmap]
}

// New returns an empty graph with n nodes and no edges. undirected selects
// whether AddEdge inserts symmetric arcs.
func New(n int, undirected bool) *Graph {
	return &Graph{
		n:          n,
		out:        make([][]int, n),
		in:         make([][]int, n),
		undirected: undirected,
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Undirected reports whether the graph was built symmetric.
func (g *Graph) Undirected() bool { return g.undirected }

// Out returns the out-neighbors of v. The slice is owned by the graph and
// must not be modified.
func (g *Graph) Out(v int) []int { return g.out[v] }

// In returns the in-neighbors of v. The slice is owned by the graph and must
// not be modified.
func (g *Graph) In(v int) []int { return g.in[v] }

// OutDegree returns |Out(v)|.
func (g *Graph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns |In(v)|.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Edges returns the number of directed arcs (an undirected edge counts as 2).
func (g *Graph) Edges() int {
	m := 0
	for _, adj := range g.out {
		m += len(adj)
	}
	return m
}

// AddEdge inserts the arc u->v (and v->u when the graph is undirected).
// Self-loops and duplicate arcs are rejected with an error: the radio model
// has no use for either, and silently ignoring them hides generator bugs.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.addArc(u, v)
	if g.undirected {
		g.addArc(v, u)
	}
	return nil
}

// MustAddEdge is AddEdge for generators whose edges are correct by
// construction; it panics on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func (g *Graph) addArc(u, v int) {
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.csr.Store(nil)
	g.bmp.Store(nil)
}

// removeEdge deletes the undirected edge {u, v}; generators use it for
// degree-preserving swaps. It assumes the edge exists.
func (g *Graph) removeEdge(u, v int) {
	g.out[u] = removeValue(g.out[u], v)
	g.in[v] = removeValue(g.in[v], u)
	if g.undirected {
		g.out[v] = removeValue(g.out[v], u)
		g.in[u] = removeValue(g.in[u], v)
	}
	g.csr.Store(nil)
	g.bmp.Store(nil)
}

func removeValue(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			xs[i] = xs[len(xs)-1]
			return xs[:len(xs)-1]
		}
	}
	return xs
}

// HasEdge reports whether the arc u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Scan the shorter list.
	if len(g.out[u]) <= len(g.in[v]) {
		for _, w := range g.out[u] {
			if w == v {
				return true
			}
		}
		return false
	}
	for _, w := range g.in[v] {
		if w == u {
			return true
		}
	}
	return false
}

// SortAdjacency orders every adjacency list ascending, giving deterministic
// iteration independent of insertion order.
func (g *Graph) SortAdjacency() {
	for v := 0; v < g.n; v++ {
		sort.Ints(g.out[v])
		sort.Ints(g.in[v])
	}
	g.csr.Store(nil)
	g.bmp.Store(nil)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n, g.undirected)
	for v := 0; v < g.n; v++ {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	return c
}

// BFSLayers returns, for each node, its distance from the source (node 0)
// following out-arcs, and the number of reachable nodes. Unreachable nodes
// get distance -1.
func (g *Graph) BFSLayers() (dist []int, reachable int) {
	dist = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if g.n == 0 {
		return dist, 0
	}
	dist[0] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, 0)
	reachable = 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.out[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				reachable++
				queue = append(queue, v)
			}
		}
	}
	return dist, reachable
}

// Radius returns the eccentricity of the source: the largest distance from
// node 0 to any node (the paper's parameter D). It returns an error if some
// node is unreachable from the source, since broadcast is then impossible.
func (g *Graph) Radius() (int, error) {
	dist, reachable := g.BFSLayers()
	if reachable != g.n {
		return 0, fmt.Errorf("graph: only %d of %d nodes reachable from source", reachable, g.n)
	}
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max, nil
}

// Layers groups nodes by BFS distance from the source: Layers()[j] is the
// paper's "jth layer". It returns an error if the graph is not fully
// reachable.
func (g *Graph) Layers() ([][]int, error) {
	dist, reachable := g.BFSLayers()
	if reachable != g.n {
		return nil, fmt.Errorf("graph: only %d of %d nodes reachable from source", reachable, g.n)
	}
	maxD := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	layers := make([][]int, maxD+1)
	for v, d := range dist {
		layers[d] = append(layers[d], v)
	}
	for _, l := range layers {
		sort.Ints(l)
	}
	return layers, nil
}

// ErrNotBroadcastable is returned by Validate when some node cannot receive
// the source message.
var ErrNotBroadcastable = errors.New("graph: not all nodes reachable from source")

// Validate checks structural invariants: adjacency symmetry for undirected
// graphs, in/out consistency, no self-loops or duplicates, and that every
// node is reachable from the source.
func (g *Graph) Validate() error {
	for v := 0; v < g.n; v++ {
		seen := make(map[int]bool, len(g.out[v]))
		for _, w := range g.out[v] {
			if w < 0 || w >= g.n {
				return fmt.Errorf("graph: arc (%d,%d) out of range", v, w)
			}
			if w == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if seen[w] {
				return fmt.Errorf("graph: duplicate arc (%d,%d)", v, w)
			}
			seen[w] = true
			if !contains(g.in[w], v) {
				return fmt.Errorf("graph: arc (%d,%d) missing from in-list of %d", v, w, w)
			}
			if g.undirected && !g.HasEdge(w, v) {
				return fmt.Errorf("graph: undirected graph missing reverse arc (%d,%d)", w, v)
			}
		}
		for _, w := range g.in[v] {
			if !contains(g.out[w], v) {
				return fmt.Errorf("graph: in-arc (%d,%d) missing from out-list of %d", w, v, w)
			}
		}
	}
	if _, reachable := g.BFSLayers(); reachable != g.n {
		return ErrNotBroadcastable
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// IsCompleteLayered reports whether the graph is a complete layered network
// in the paper's sense (Section 4.3): the edge set is exactly
// {{x,y} : x in L_i, y in L_{i+1}} for the BFS layers L_i.
func (g *Graph) IsCompleteLayered() (bool, error) {
	layers, err := g.Layers()
	if err != nil {
		return false, err
	}
	wantEdges := 0
	for i := 0; i+1 < len(layers); i++ {
		wantEdges += len(layers[i]) * len(layers[i+1])
		for _, u := range layers[i] {
			for _, v := range layers[i+1] {
				if !g.HasEdge(u, v) {
					return false, nil
				}
				if g.undirected && !g.HasEdge(v, u) {
					return false, nil
				}
			}
		}
	}
	factor := 1
	if g.undirected {
		factor = 2
	}
	return g.Edges() == factor*wantEdges, nil
}

// Degrees returns (min, max, mean) out-degree.
func (g *Graph) Degrees() (min, max int, mean float64) {
	if g.n == 0 {
		return 0, 0, 0
	}
	min = g.n
	total := 0
	for v := 0; v < g.n; v++ {
		d := len(g.out[v])
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		total += d
	}
	return min, max, float64(total) / float64(g.n)
}

// Stats describes a graph in one line for logs and experiment tables.
func (g *Graph) Stats() string {
	d, err := g.Radius()
	rad := "∞"
	if err == nil {
		rad = fmt.Sprintf("%d", d)
	}
	mn, mx, mean := g.Degrees()
	kind := "directed"
	if g.undirected {
		kind = "undirected"
	}
	return fmt.Sprintf("%s n=%d arcs=%d radius=%s deg[min=%d max=%d mean=%.1f]",
		kind, g.n, g.Edges(), rad, mn, mx, mean)
}
