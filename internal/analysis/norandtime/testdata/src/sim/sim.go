// Package sim is a norandtime fixture modelling a simulator-internal
// package: ambient randomness and the wall clock are banned here.
package sim

import (
	"math/rand"           // want "import of math/rand is forbidden"
	randv2 "math/rand/v2" // want "import of math/rand/v2 is forbidden"
	"time"
)

// Jitter draws from the global math/rand stream and consults the wall
// clock, all of which break single-seed replayability.
func Jitter() int {
	start := time.Now() // want "time.Now is forbidden"
	_ = start
	time.Sleep(time.Millisecond) // want "time.Sleep is forbidden"
	return rand.Int() + randv2.Int()
}

// Elapsed measures wall time but carries an explicit justification, so the
// finding is suppressed.
func Elapsed(t0 time.Time) time.Duration {
	//radiolint:ignore norandtime fixture: demonstrates a justified suppression
	return time.Since(t0)
}

// Budget handles time.Duration values, which is fine: only the clock and
// sleeping are banned, not the time types.
func Budget(d time.Duration) time.Duration { return 2 * d }
