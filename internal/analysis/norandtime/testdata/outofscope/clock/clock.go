// Package clock sits outside any internal/ tree, so norandtime leaves its
// wall-clock use alone.
package clock

import "time"

// Stamp may use the wall clock freely: command-line tools and other
// non-internal packages are out of scope.
func Stamp() time.Time { return time.Now() }
