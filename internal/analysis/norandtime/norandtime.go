// Package norandtime forbids ambient nondeterminism sources — math/rand and
// the wall clock — in the simulator's internal packages.
//
// Every run of the simulator must be bit-for-bit replayable from a single
// seed, which is why internal/rng pins xoshiro256** instead of math/rand
// (whose algorithm is not stable across Go releases, and whose global
// functions share hidden state). The simulator is step-driven, so wall-clock
// time has no business in protocol or algorithm code either: time.Now,
// time.Since and time.Sleep are banned alongside the math/rand and
// math/rand/v2 imports. Command-line tools under cmd/ and examples/ may
// measure wall time freely; only packages under an internal/ segment are in
// scope, and the analysis framework itself is exempt.
package norandtime

import (
	"go/ast"
	"go/types"
	"strings"

	"adhocradio/internal/analysis"
)

// Analyzer is the norandtime pass.
var Analyzer = &analysis.Analyzer{
	Name: "norandtime",
	Doc:  "forbid math/rand and wall-clock time in internal simulator packages",
	Run:  run,
}

var bannedImports = map[string]string{
	"math/rand":    "use adhocradio/internal/rng: runs must be replayable from a single seed",
	"math/rand/v2": "use adhocradio/internal/rng: runs must be replayable from a single seed",
}

var bannedTimeFuncs = map[string]string{
	"Now":   "the simulator is step-driven; wall-clock time breaks replayability",
	"Since": "the simulator is step-driven; wall-clock time breaks replayability",
	"Sleep": "the simulator is synchronous; real sleeping has no meaning in it",
}

func inScope(path string) bool {
	return analysis.HasSegment(path, "internal") &&
		!strings.Contains(path, "internal/analysis")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(spec.Pos(), "import of %s is forbidden in internal packages: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if why, ok := bannedTimeFuncs[sel.Sel.Name]; ok {
				pass.Reportf(sel.Pos(), "time.%s is forbidden in internal packages: %s", sel.Sel.Name, why)
			}
			return true
		})
	}
	return nil
}
