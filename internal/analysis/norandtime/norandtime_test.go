package norandtime_test

import (
	"testing"

	"adhocradio/internal/analysis/analysistest"
	"adhocradio/internal/analysis/norandtime"
)

func TestFixtures(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", "adhocradio/internal", norandtime.Analyzer)
	if len(diags) < 2 {
		t.Fatalf("want at least 2 true positives on the fixtures, got %d: %v", len(diags), diags)
	}
}

func TestOutOfScope(t *testing.T) {
	diags := analysistest.Run(t, "testdata/outofscope", "example.com/tools", norandtime.Analyzer)
	if len(diags) != 0 {
		t.Fatalf("non-internal package flagged: %v", diags)
	}
}
