// Package scratchreset enforces the poison-rebuild rule on reusable
// scratch: every slice or map field of a struct annotated
// //radiolint:scratch-owner must be reset inside the block marked
// //radiolint:scratch-rebuild.
//
// The engine's Runner owns per-run scratch whose between-runs invariant
// (counters all zero, flags all false) is maintained incrementally — each
// step cleans up exactly what it touched. A panicking protocol unwinds
// mid-step and leaves the invariant broken, which is why ensure() nils
// every scratch buffer when it detects an unclean previous run and lets
// the sizing code rebuild from scratch. The failure mode this pass guards
// against: someone adds a new scratch field, sizes it lazily, and forgets
// the poison branch — now a panic in trial k silently corrupts trial k+1,
// which is the worst kind of determinism bug (it depends on which trial
// panicked). TestRunnerPoisonedScratch catches the fields it knows about;
// this pass catches the field that was added yesterday.
//
// Mechanics: the pass finds every //radiolint:scratch-owner struct in the
// package and every block containing a standalone //radiolint:scratch-rebuild
// comment, then requires each slice/map field of each owner to appear as
// an assignment target inside some marked block. A scratch field whose
// invariant genuinely survives a mid-step unwind is excused with an
// ordinary //radiolint:ignore scratchreset <reason> on its declaration.
package scratchreset

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"adhocradio/internal/analysis"
)

// Analyzer is the scratchreset pass.
var Analyzer = &analysis.Analyzer{
	Name: "scratchreset",
	Doc:  "every scratch-owner slice/map field must be reset in the scratch-rebuild block",
	Run:  run,
}

const rebuildMarker = "//radiolint:scratch-rebuild"

// field is one slice/map member of an owner struct.
type field struct {
	obj  types.Object
	pos  token.Pos
	name string
}

// owner is one annotated struct.
type owner struct {
	name   string
	pos    token.Pos
	fields []field
}

func run(pass *analysis.Pass) error {
	var owners []owner
	for _, f := range pass.Pkg.Files {
		owners = append(owners, collectOwners(pass, f)...)
	}
	if len(owners) == 0 {
		return nil
	}

	reset := map[types.Object]bool{}
	foundBlock := false
	for _, f := range pass.Pkg.Files {
		for _, block := range rebuildBlocks(pass, f) {
			foundBlock = true
			collectResets(pass, block, reset)
		}
	}

	for _, o := range owners {
		if !foundBlock {
			pass.Reportf(o.pos, "scratch owner %s has no %s block in this package; mark the poison-rebuild path that resets its scratch", o.name, rebuildMarker)
			continue
		}
		for _, fld := range o.fields {
			if !reset[fld.obj] {
				pass.Reportf(fld.pos, "scratch field %s.%s is not reset in the %s block; a panic mid-run would leak its poisoned state into the next run", o.name, fld.name, rebuildMarker)
			}
		}
	}
	return nil
}

// collectOwners finds //radiolint:scratch-owner structs and their
// slice/map fields.
func collectOwners(pass *analysis.Pass, f *ast.File) []owner {
	var owners []owner
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if !analysis.HasMarker(gd.Doc, "scratch-owner") && !analysis.HasMarker(ts.Doc, "scratch-owner") {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			o := owner{name: ts.Name.Name, pos: ts.Pos()}
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					obj := pass.Pkg.Info.Defs[name]
					if obj == nil || !isSliceOrMap(obj.Type()) {
						continue
					}
					o.fields = append(o.fields, field{obj: obj, pos: name.Pos(), name: name.Name})
				}
			}
			owners = append(owners, o)
		}
	}
	return owners
}

func isSliceOrMap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// rebuildBlocks returns, for every //radiolint:scratch-rebuild comment in
// the file, the innermost block statement containing it.
func rebuildBlocks(pass *analysis.Pass, f *ast.File) []*ast.BlockStmt {
	var marks []token.Pos
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == rebuildMarker || strings.HasPrefix(c.Text, rebuildMarker+" ") {
				marks = append(marks, c.Pos())
			}
		}
	}
	var blocks []*ast.BlockStmt
	for _, pos := range marks {
		var innermost *ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			b, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			if b.Pos() <= pos && pos < b.End() {
				// Walking top-down, later matches are nested deeper.
				innermost = b
			}
			return true
		})
		if innermost != nil {
			blocks = append(blocks, innermost)
		}
	}
	return blocks
}

// collectResets records every field object assigned (via a selector) in
// the block.
func collectResets(pass *analysis.Pass, block *ast.BlockStmt, reset map[types.Object]bool) {
	ast.Inspect(block, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range a.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if s, ok := pass.Pkg.Info.Selections[sel]; ok {
				reset[s.Obj()] = true
			}
		}
		return true
	})
}
