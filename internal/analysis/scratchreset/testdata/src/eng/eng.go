package eng

// runner mirrors the engine's Runner shape: reusable scratch plus a
// poison-rebuild branch that must reset all of it.
//
//radiolint:scratch-owner
type runner struct {
	hits    []int32
	seen    map[int]bool
	stale   []int // want "scratch field runner.stale is not reset"
	size    int   // not a slice or map: out of scope
	program func()
}

func (r *runner) ensure(n int) {
	if r.size != 0 {
		// A previous run unwound mid-step; trust nothing.
		//radiolint:scratch-rebuild
		r.hits, r.seen = nil, nil
	}
	if cap(r.hits) < n {
		r.hits = make([]int32, n)
	}
	if r.seen == nil {
		r.seen = make(map[int]bool, n)
	}
	if cap(r.stale) < n {
		r.stale = make([]int, 0, n)
	}
	r.size = n
}
