package clean

// pool resets every scratch field in its rebuild block: no findings.
//
//radiolint:scratch-owner
type pool struct {
	buf  []byte
	idx  map[string]int
	keep int
}

func (p *pool) reset(broken bool) {
	if broken {
		//radiolint:scratch-rebuild
		p.buf = nil
		p.idx = nil
	}
	if p.buf == nil {
		p.buf = make([]byte, 0, p.keep)
	}
	if p.idx == nil {
		p.idx = make(map[string]int)
	}
}

// unmarked has no annotation, so its unreset fields are fine.
type unmarked struct {
	data []int
}

func (u *unmarked) use() { u.data = append(u.data, 1) }
