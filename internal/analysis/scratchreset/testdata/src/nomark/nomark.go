package nomark

// engine declares scratch but the package has no rebuild block at all —
// the annotation contract is half-applied, which is itself a finding.
//
//radiolint:scratch-owner
type engine struct { // want "scratch owner engine has no //radiolint:scratch-rebuild block"
	scratch []int
}

func (e *engine) run() { e.scratch = e.scratch[:0] }
