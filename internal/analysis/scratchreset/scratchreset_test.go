package scratchreset

import (
	"testing"

	"adhocradio/internal/analysis/analysistest"
)

func TestScratchreset(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", "example.com/scratch", Analyzer)
	if len(diags) != 2 {
		t.Errorf("got %d findings, want 2 (unreset field + missing rebuild block): %v", len(diags), diags)
	}
}
