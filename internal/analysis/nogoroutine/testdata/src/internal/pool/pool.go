// Package pool stands in for the harness layer, which is allowed to use
// real concurrency: it is outside the scoped core packages.
package pool

func fanOut(n int) []int {
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { results <- i * i }(i)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, <-results)
	}
	close(results)
	return out
}
