package radio

func work() {}

func step(done chan int, src <-chan int) {
	go work()  // want "go statement in the simulator core"
	done <- 2  // want "channel send in the simulator core"
	v := <-src // want "channel receive in the simulator core"
	_ = v
	select { // want "select statement in the simulator core"
	default:
	}
	for range src { // want "range over a channel in the simulator core"
		break
	}
	c := make(chan bool) // want "make(chan ...) in the simulator core"
	close(c)             // want "close of a channel in the simulator core"
}
