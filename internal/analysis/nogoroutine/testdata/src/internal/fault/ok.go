package fault

// clean fault-model code: pure functions, slices, no concurrency — the
// in-scope clean case.
func chance(key, a, b uint64) float64 {
	z := key ^ (a+1)*0x9e3779b97f4a7c15
	z ^= (b + 1) * 0xd1342543de82ef95
	return float64(z>>11) / (1 << 53)
}

// rangeOverSlice proves only channel ranges are flagged.
func rangeOverSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
