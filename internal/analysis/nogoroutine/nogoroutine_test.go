package nogoroutine

import (
	"testing"

	"adhocradio/internal/analysis/analysistest"
)

func TestNogoroutine(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", "example.com/core", Analyzer)
	if len(diags) != 7 {
		t.Errorf("got %d findings, want 7 (all in internal/radio): %v", len(diags), diags)
	}
}

func TestScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"adhocradio/internal/radio", true},
		{"adhocradio/internal/radio/radiotest", true},
		{"adhocradio/internal/fault", true},
		{"adhocradio/internal/exact", true},
		{"adhocradio/internal/obs", true},
		{"adhocradio/internal/experiment/pool", false},
		{"adhocradio/cmd/radiobench", false},
		{"adhocradio/internal/graph", false},
	}
	for _, c := range cases {
		if got := inScope(c.path); got != c.want {
			t.Errorf("inScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
