// Package nogoroutine forbids goroutines and channel operations inside the
// simulator core: internal/radio, internal/fault, internal/exact and
// internal/obs.
//
// Determinism in this repository lives in exactly one place — the
// experiment worker pool (internal/experiment/pool), whose index-sharded
// dispatch makes parallel runs bit-identical to sequential ones. The
// simulator itself must stay strictly sequential: a Runner is documented
// as single-goroutine, every fault decision is an order-independent PRF
// precisely so that no concurrency is needed, and the differential gates
// compare observables that any internal scheduling would scramble. A `go`
// statement or channel inside the core is therefore either dead weight or
// a replayability bug under construction; parallelism belongs in the
// harness layer above.
//
// The pass reports go statements, channel sends/receives, select
// statements, range-over-channel loops, close() calls and make(chan ...)
// in the scoped packages. Test files are out of scope (the loader never
// parses them), as are the harness packages (experiment, cmd, examples).
package nogoroutine

import (
	"go/ast"
	"go/types"

	"adhocradio/internal/analysis"
)

// Analyzer is the nogoroutine pass.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid goroutines and channel operations in the simulator core packages",
	Run:  run,
}

// scoped are the package path segments (under internal/) that form the
// sequential simulator core. internal/obs is included: its recorder is
// shared across pool workers but synchronizes with a plain mutex over
// commutative integer adds — goroutines or channels inside it would smuggle
// scheduling order into the counter ledger the differential gates compare.
var scoped = []string{"radio", "fault", "exact", "obs"}

func inScope(path string) bool {
	if !analysis.HasSegment(path, "internal") {
		return false
	}
	for _, seg := range scoped {
		if analysis.HasSegment(path, seg) {
			return true
		}
	}
	return false
}

const why = "the simulator core is strictly sequential; determinism-preserving parallelism lives in internal/experiment/pool"

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path) {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in the simulator core: %s", why)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in the simulator core: %s", why)
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(), "channel receive in the simulator core: %s", why)
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in the simulator core: %s", why)
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over a channel in the simulator core: %s", why)
					}
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				switch id.Name {
				case "make":
					if len(n.Args) > 0 {
						if t := info.TypeOf(n.Args[0]); t != nil {
							if _, ok := t.Underlying().(*types.Chan); ok {
								pass.Reportf(n.Pos(), "make(chan ...) in the simulator core: %s", why)
							}
						}
					}
				case "close":
					if len(n.Args) == 1 {
						if t := info.TypeOf(n.Args[0]); t != nil {
							if _, ok := t.Underlying().(*types.Chan); ok {
								pass.Reportf(n.Pos(), "close of a channel in the simulator core: %s", why)
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
