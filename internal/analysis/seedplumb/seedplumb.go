// Package seedplumb enforces the seed-plumbing discipline around
// internal/rng.
//
// The simulator's reproducibility story is that every random stream is
// derived from the master seed: each node owns an independent stream from
// (seed, label) via rng.NewStream, and harnesses plumb a *rng.Source down
// explicitly. Two patterns quietly break that property and are flagged
// here:
//
//   - a function that already receives a *rng.Source parameter but also
//     constructs a fresh generator from a literal seed (rng.New(42)) — the
//     hidden fork ignores the plumbed stream, so two call sites that pass
//     different sources still replay identically, and the per-node
//     independent-stream property is lost;
//
//   - a package-level variable of type *rng.Source (or rng.Source) — global
//     generator state is shared across runs and call sites, so replaying a
//     run no longer starts from a known state.
//
// The rng package is recognized by import path ("...something/rng"), which
// lets the pass's fixtures model it without importing the real one.
package seedplumb

import (
	"go/ast"
	"go/types"
	"strings"

	"adhocradio/internal/analysis"
)

// Analyzer is the seedplumb pass.
var Analyzer = &analysis.Analyzer{
	Name: "seedplumb",
	Doc:  "flag hidden seed forks and package-level rng state",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkPackageVars(pass, d)
			case *ast.FuncDecl:
				checkHiddenFork(pass, info, d)
			}
		}
	}
	return nil
}

// checkPackageVars reports package-level variables of rng.Source type.
func checkPackageVars(pass *analysis.Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj := pass.Pkg.Info.Defs[name]
			if obj == nil || !isRNGSource(obj.Type()) {
				continue
			}
			pass.Reportf(name.Pos(),
				"package-level rng state %s: generators must be plumbed explicitly so runs replay from a known state",
				name.Name)
		}
	}
}

// checkHiddenFork reports rng.New(<literal>) calls inside functions that
// already receive a *rng.Source parameter.
func checkHiddenFork(pass *analysis.Pass, info *types.Info, fn *ast.FuncDecl) {
	if fn.Body == nil || fn.Type.Params == nil {
		return
	}
	var plumbed string
	for _, field := range fn.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isRNGSource(tv.Type) {
			continue
		}
		if len(field.Names) > 0 {
			plumbed = field.Names[0].Name
		} else {
			plumbed = "the source parameter"
		}
		break
	}
	if plumbed == "" {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Name() != "New" || !isRNGPackage(obj.Pkg()) {
			return true
		}
		if len(call.Args) != 1 || !isLiteral(call.Args[0]) {
			return true
		}
		pass.Reportf(call.Pos(),
			"hidden seed fork: %s already receives %s but constructs a fresh generator from a literal seed; derive substreams from the plumbed source (rng.NewStream) instead",
			fn.Name.Name, plumbed)
		return true
	})
}

// isRNGSource reports whether t is rng.Source or *rng.Source for a package
// recognized by isRNGPackage.
func isRNGSource(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && isRNGPackage(obj.Pkg())
}

func isRNGPackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "rng" || strings.HasSuffix(path, "/rng")
}

func isLiteral(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return isLiteral(e.X)
	}
	return false
}
