package seedplumb_test

import (
	"testing"

	"adhocradio/internal/analysis/analysistest"
	"adhocradio/internal/analysis/seedplumb"
)

func TestFixtures(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", "adhocradio/internal/spfix", seedplumb.Analyzer)
	if len(diags) < 2 {
		t.Fatalf("want at least 2 true positives on the fixtures, got %d: %v", len(diags), diags)
	}
}
