// Package app is a seedplumb fixture: it takes plumbed rng sources and
// exhibits the hidden-fork and global-state patterns the pass bans.
package app

import "adhocradio/internal/spfix/rng"

// globalSrc is hidden package-level generator state.
var globalSrc *rng.Source // want "package-level rng state"

// pool holds generator state by value, which is just as bad.
var pool rng.Source // want "package-level rng state"

// Shuffle receives a plumbed source but forks a fresh literal-seeded
// generator, so every call site replays identically no matter what it
// plumbed in.
func Shuffle(xs []int, src *rng.Source) {
	fresh := rng.New(42) // want "hidden seed fork"
	for i := len(xs) - 1; i > 0; i-- {
		j := int(fresh.Uint64() % uint64(i+1))
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Derive also forks from a literal, but carries a justification and is
// suppressed.
func Derive(src *rng.Source) *rng.Source {
	//radiolint:ignore seedplumb fixture: demonstrates a justified suppression
	return rng.New(7)
}

// FromParam seeds from a plumbed value, which is the sanctioned pattern.
func FromParam(seed uint64, src *rng.Source) *rng.Source {
	return rng.New(seed)
}

// Fresh constructs from a literal but receives no source, so nothing was
// bypassed; top-level harnesses seed themselves exactly like this.
func Fresh() *rng.Source { return rng.New(1234) }
