// Package rng is a miniature stand-in for adhocradio/internal/rng; the
// seedplumb pass recognizes rng packages by their import-path suffix, which
// lets the fixtures model one without importing the real thing.
package rng

// Source is a toy deterministic generator.
type Source struct{ state uint64 }

// New returns a Source seeded from seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// NewStream derives a substream for id from the master seed.
func NewStream(seed, id uint64) *Source { return &Source{state: seed ^ (id + 1)} }

// Uint64 advances the stream.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}
