// Package hotalloc flags allocation-causing constructs in functions
// annotated //radiolint:hotpath.
//
// The simulator's steady-state loops (Runner.RunInto and the tally/deliver
// helpers it calls, plus internal/fault's per-step PRF decisions) are
// contractually allocation-free: TestRunnerSteadyStateAllocs pins the
// runtime behaviour, but only for the workloads it happens to run. This
// pass encodes the same rule statically, so an alloc on a branch the test
// never takes is still caught. Inside an annotated function it reports:
//
//   - make and new, unless guarded by a grow-once condition (an enclosing
//     if whose condition consults cap/len or compares against nil — the
//     engine's "grow scratch only when too small" idiom);
//   - append that does not reassign over its own first argument
//     (x = append(x, ...) recycles the pre-sized backing array and is the
//     accepted scratch idiom; y := append(x, ...) hides growth);
//   - function literals (closures allocate their captures);
//   - calls into package fmt (every variadic ...any call boxes, and the
//     formatters allocate their result);
//   - non-constant string concatenation;
//   - assignments that box a concrete value into an interface.
//
// Error paths that legitimately allocate (a fmt.Errorf on the way out) are
// suppressed in place with //radiolint:ignore hotalloc <reason> or carried
// in lint/baseline.json.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"adhocradio/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation-causing constructs in //radiolint:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !analysis.HasMarker(fn.Doc, "hotpath") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	guards := growGuards(fn.Body)
	blessed := selfAppends(pass, fn.Body)
	info := pass.Pkg.Info

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, info, n, guards, blessed)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in a hot path: closures allocate their captures; hoist the logic into a method")
		case *ast.BinaryExpr:
			checkConcat(pass, info, n)
		case *ast.AssignStmt:
			checkBoxing(pass, info, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, guards []guard, blessed map[*ast.CallExpr]bool) {
	// A conversion to an interface type boxes its operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		if to != nil && from != nil && types.IsInterface(to) && !types.IsInterface(from) && !isUntypedNil(from) {
			pass.Reportf(call.Pos(), "conversion of %s to interface %s boxes the value on the heap",
				typeName(pass, from), typeName(pass, to))
		}
		return
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); !ok {
			return
		}
		switch fun.Name {
		case "make", "new":
			if !guardedAt(guards, call.Pos()) {
				pass.Reportf(call.Pos(), "%s in a hot path allocates every call; pre-size the scratch and guard regrowth with a cap/len or nil check", fun.Name)
			}
		case "append":
			if !blessed[call] {
				pass.Reportf(call.Pos(), "append result is not reassigned over its own first argument; growth allocates a new backing array — use x = append(x, ...) on pre-sized scratch")
			}
		}
	case *ast.SelectorExpr:
		ident, ok := fun.X.(*ast.Ident)
		if !ok {
			return
		}
		if pn, ok := info.Uses[ident].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s in a hot path: formatting allocates and boxes its arguments; build errors outside the steady-state loop", fun.Sel.Name)
		}
	}
}

// typeName prints a type relative to the package under analysis, so
// messages say "item", not "example.com/hot/hot.item".
func typeName(pass *analysis.Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg.Types))
}

// checkConcat flags runtime string concatenation; constant-folded concats
// are free and skipped.
func checkConcat(pass *analysis.Pass, info *types.Info, b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := info.Types[b]
	if !ok || tv.Value != nil { // constant-folded
		return
	}
	if bt, ok := tv.Type.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
		pass.Reportf(b.Pos(), "string concatenation in a hot path allocates; precompute the string or use fixed buffers outside the loop")
	}
}

// checkBoxing flags assignments whose right side is a concrete value
// landing in an interface-typed left side. Only 1:1 assignment pairs are
// considered (comma-ok and multi-value calls are conversion-free).
func checkBoxing(pass *analysis.Pass, info *types.Info, a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt := info.TypeOf(lhs)
		rt := info.TypeOf(a.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if types.IsInterface(lt) && !types.IsInterface(rt) && !isUntypedNil(rt) {
			pass.Reportf(a.Rhs[i].Pos(), "assignment boxes %s into %s; interface conversions on the hot path allocate",
				typeName(pass, rt), typeName(pass, lt))
		}
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// guard is the body extent of an if statement whose condition consults
// cap/len or compares against nil — the grow-once idiom
// (if cap(s) < n { s = make(...) }).
type guard struct{ lo, hi token.Pos }

func growGuards(body *ast.BlockStmt) []guard {
	var gs []guard
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !isGrowCond(ifs.Cond) {
			return true
		}
		gs = append(gs, guard{lo: ifs.Body.Pos(), hi: ifs.Body.End()})
		return true
	})
	return gs
}

// isGrowCond reports whether the condition looks like a capacity or
// initialization check: it mentions cap(...) or len(...) or compares
// something to nil.
func isGrowCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				found = true
			}
		case *ast.Ident:
			if n.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}

func guardedAt(gs []guard, pos token.Pos) bool {
	for _, g := range gs {
		if g.lo <= pos && pos < g.hi {
			return true
		}
	}
	return false
}

// selfAppends collects append calls in x = append(x, ...) position — the
// reuse idiom where the (pre-sized) destination is its own source.
func selfAppends(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	blessed := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, rhs := range a.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || len(call.Args) == 0 {
				continue
			}
			if _, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); !ok {
				continue
			}
			if types.ExprString(a.Lhs[i]) == types.ExprString(call.Args[0]) {
				blessed[call] = true
			}
		}
		return true
	})
	return blessed
}
