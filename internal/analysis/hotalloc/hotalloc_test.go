package hotalloc

import (
	"strings"
	"testing"

	"adhocradio/internal/analysis/analysistest"
)

func TestHotalloc(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", "example.com/hot", Analyzer)
	// Every finding must come from the annotated functions; Unmarked's
	// allocations are out of scope by construction.
	for _, d := range diags {
		if strings.Contains(d.Message, "Unmarked") {
			t.Errorf("finding leaked out of annotated functions: %v", d)
		}
	}
	if len(diags) != 8 {
		t.Errorf("got %d findings, want 8 (one per construct)", len(diags))
	}
}
