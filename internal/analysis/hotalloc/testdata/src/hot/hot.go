package hot

import "fmt"

type item struct{ v int }

type runner struct {
	hits  []int32
	dirty []int32
	aux   *item
}

// Bad collects one true positive per construct the pass knows about.
//
//radiolint:hotpath
func Bad(xs []int, s1, s2 string, it item) {
	buf := make([]int, 4) // want "make in a hot path allocates every call"
	_ = buf
	p := new(item) // want "new in a hot path allocates every call"
	_ = p
	out := append(xs, 1) // want "append result is not reassigned over its own first argument"
	_ = out
	f := func() int { return it.v } // want "function literal in a hot path"
	_ = f
	s := s1 + s2 // want "string concatenation in a hot path allocates"
	_ = s
	_ = fmt.Sprintf("%d", it.v) // want "fmt.Sprintf in a hot path"
	var box any
	box = it // want "boxes item into any"
	_ = box
	_ = any(it.v) // want "conversion of int to interface any boxes the value"
}

// Good is hot too, but uses only the sanctioned idioms: grow-once guards,
// self-appends over pre-sized scratch, and constant concatenation.
//
//radiolint:hotpath
func Good(r *runner, n int) {
	if cap(r.hits) < n {
		r.hits = make([]int32, n)
	}
	if r.aux == nil {
		r.aux = new(item)
	}
	r.dirty = r.dirty[:0]
	for i := int32(0); i < int32(n); i++ {
		r.dirty = append(r.dirty, i)
	}
	const greeting = "hello, " + "world" // constant-folded: free
	_ = greeting
	//radiolint:ignore hotalloc error path, runs at most once per call
	err := fmt.Errorf("n = %d", n)
	_ = err
}

// Unmarked allocates freely: the pass only applies to annotated functions.
func Unmarked(xs []int) []int {
	out := make([]int, 0, len(xs)+1)
	out = append(out, xs...)
	return append(out, len(xs))
}
