package analysis

import (
	"go/ast"
	"strings"
	"sync"
	"testing"
)

// testFact is the fact type the framework tests push across the aa -> bb
// package boundary.
type testFact struct{ Tag string }

func (*testFact) AFact() {}

// loadDeps loads the two-package fixture (bb imports aa).
func loadDeps(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load("testdata/deps", "example.com/deps")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	return pkgs
}

// factAnalyzer exports a fact on aa.A while analyzing aa and reports a
// diagnostic from bb for every use of an object carrying the fact — the
// smallest possible cross-package fact round trip.
func factAnalyzer(tb testing.TB) *Analyzer {
	a := &Analyzer{
		Name:      "factprobe",
		Doc:       "test analyzer exercising cross-package facts",
		FactTypes: []Fact{(*testFact)(nil)},
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !fn.Name.IsExported() {
					continue
				}
				if strings.HasSuffix(pass.Pkg.Path, "/aa") {
					obj := pass.Pkg.Info.Defs[fn.Name]
					if err := pass.ExportObjectFact(obj, &testFact{Tag: "hot"}); err != nil {
						return err
					}
				}
			}
		}
		if strings.HasSuffix(pass.Pkg.Path, "/bb") {
			for _, f := range pass.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj := pass.Pkg.Info.Uses[sel.Sel]
					var got testFact
					if pass.ImportObjectFact(obj, &got) {
						pass.Reportf(sel.Pos(), "use of %s tagged %q", obj.Name(), got.Tag)
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

func TestFactsFlowAcrossPackages(t *testing.T) {
	pkgs := loadDeps(t)
	diags, err := Run(pkgs, []*Analyzer{factAnalyzer(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly one fact-tagged use: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `tagged "hot"`) {
		t.Errorf("fact payload lost: %v", diags[0])
	}
	if !strings.HasSuffix(diags[0].Pos.Filename, "bb.go") {
		t.Errorf("fact-driven finding not reported from the importer: %v", diags[0])
	}
}

func TestExportObjectFactRejectsMisuse(t *testing.T) {
	pkgs := loadDeps(t)
	// Locate aa's package and an object from bb (foreign to aa's pass).
	var aa, bb *Package
	for _, p := range pkgs {
		switch {
		case strings.HasSuffix(p.Path, "/aa"):
			aa = p
		case strings.HasSuffix(p.Path, "/bb"):
			bb = p
		}
	}
	bbObj := bb.Types.Scope().Lookup("B")
	if bbObj == nil {
		t.Fatal("fixture object bb.B not found")
	}
	a := &Analyzer{Name: "misuse", Doc: "t", FactTypes: []Fact{(*testFact)(nil)}}
	pass := &Pass{Analyzer: a, Pkg: aa, diags: new([]Diagnostic), facts: newFactStore()}

	if err := pass.ExportObjectFact(bbObj, &testFact{}); err == nil {
		t.Error("exporting a fact on a foreign package's object succeeded")
	}
	if err := pass.ExportObjectFact(nil, &testFact{}); err == nil {
		t.Error("exporting a fact on a nil object succeeded")
	}
	aaObj := aa.Types.Scope().Lookup("A")
	type otherFact struct{ Fact }
	if err := pass.ExportObjectFact(aaObj, &otherFact{}); err == nil {
		t.Error("exporting an unregistered fact type succeeded")
	}
	if err := pass.ExportObjectFact(aaObj, &testFact{Tag: "x"}); err != nil {
		t.Errorf("well-formed export failed: %v", err)
	}
	var got testFact
	if !pass.ImportObjectFact(aaObj, &got) || got.Tag != "x" {
		t.Errorf("round trip lost the fact: found=%v got=%+v", got.Tag == "x", got)
	}
	if pass.ImportObjectFact(bbObj, &got) {
		t.Error("import found a fact that was never exported")
	}
	if pass.ImportObjectFact(aaObj, nil) {
		t.Error("import into a nil pointer succeeded")
	}
}

// TestRunDiagnosticOrderAcrossPackages pins the deterministic merge: an
// analyzer reporting from every package must see its findings come back
// ordered by (file, line, column, pass, message) no matter which goroutine
// finished first.
func TestRunDiagnosticOrderAcrossPackages(t *testing.T) {
	pkgs := loadDeps(t)
	report := &Analyzer{Name: "report", Doc: "reports every func decl"}
	report.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fn.Pos(), "func %s", fn.Name.Name)
				}
			}
		}
		return nil
	}
	var first string
	for round := 0; round < 25; round++ {
		diags, err := Run(pkgs, []*Analyzer{report, factAnalyzer(t)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(diags); i++ {
			if diagLess(diags[i], diags[i-1]) {
				t.Fatalf("round %d: findings out of order: %v before %v", round, diags[i-1], diags[i])
			}
		}
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		if round == 0 {
			first = b.String()
			if !strings.Contains(first, "func A") || !strings.Contains(first, "func B") {
				t.Fatalf("findings missing packages: %s", first)
			}
			continue
		}
		if b.String() != first {
			t.Fatalf("round %d produced different output:\n%s\nvs\n%s", round, b.String(), first)
		}
	}
}

// TestRunParallelSafety hammers Run concurrently over the same loaded
// packages; under -race this catches any shared-state slip in the
// scheduler or fact store.
func TestRunParallelSafety(t *testing.T) {
	pkgs := loadDeps(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Run(pkgs, []*Analyzer{factAnalyzer(t)}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
