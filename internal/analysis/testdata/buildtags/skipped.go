// The fixture's never-selected half: the tag is never set, so the loader
// must drop this file (keeping it would redeclare PlatformSplit).
//go:build radiolint_fixture_tag

package buildtags

func PlatformSplit() int { return 2 }
