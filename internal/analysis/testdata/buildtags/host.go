package buildtags

// Unconstrained file: always selected.
func Unconstrained() int { return PlatformSplit() }
