// The fixture's always-selected half: !radiolint_fixture_tag is true on
// every host (the tag is never set), so this file is loaded.
//go:build !radiolint_fixture_tag

package buildtags

// Declared in both halves of the pair; the package only type-checks if the
// loader selects exactly one, as go build would.
func PlatformSplit() int { return 1 }
