// Package bad carries malformed suppression comments; the framework must
// report each one instead of silently honoring it.
package bad

// A is annotated with an ignore that names no pass.
func A() int {
	//radiolint:ignore
	return 1
}

// B is annotated with an ignore that gives no reason.
func B() int {
	//radiolint:ignore nopanic
	return 2
}

// C is annotated correctly; well-formed suppressions are not reported.
func C() int {
	//radiolint:ignore nopanic fixture: well-formed suppression with a reason
	return 3
}
