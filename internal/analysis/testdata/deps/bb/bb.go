// Package bb imports aa, so the analysis scheduler must finish aa first
// and the fact exported on aa.A must be visible here.
package bb

import "example.com/deps/aa"

// B uses aa.A; the facts test finds the use and imports the fact.
func B() int { return aa.A() }
