// Package aa is the dependency half of the framework test fixture: the
// facts test exports a fact on A here and imports it from package bb.
package aa

// A is the object the test fact rides on.
func A() int { return 1 }

// Unexported is here so tests can check facts are per-object, not
// per-package.
func unexported() int { return 2 }
