package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc parses one in-memory file and runs the suppression parser on it,
// returning the parse results for direct assertions.
func parseSrc(t *testing.T, src string) ([]suppression, []malformedSuppression) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", []byte(src), parser.ParseComments)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	return parseSuppressions(fset, f, []byte(src))
}

func TestParseSuppressionsCRLF(t *testing.T) {
	// The same file a Windows checkout would produce: every line ends \r\n.
	// The trailing suppression must cover only its own line; the standalone
	// one must cover the line below despite the \r before each newline.
	src := strings.ReplaceAll(`package p

func a() {
	bad() //radiolint:ignore nopanic trailing on crlf line
	//radiolint:ignore detmaprange standalone on crlf line
	worse()
}
`, "\n", "\r\n")
	sups, malformed := parseSrc(t, src)
	if len(malformed) != 0 {
		t.Fatalf("CRLF suppressions reported malformed: %v", malformed)
	}
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2: %+v", len(sups), sups)
	}
	if sups[0].lines != [2]int{4, 0} {
		t.Errorf("trailing CRLF suppression covers %v, want line 4 only", sups[0].lines)
	}
	if sups[1].lines != [2]int{5, 6} {
		t.Errorf("standalone CRLF suppression covers %v, want lines 5-6", sups[1].lines)
	}
}

func TestParseSuppressionsCommaLists(t *testing.T) {
	sups, malformed := parseSrc(t, `package p

//radiolint:ignore nopanic,detmaprange both are deliberate here
func a() {}

//radiolint:ignore nopanic, detmaprange space splits the list
func b() {}

//radiolint:ignore nopanic,,detmaprange doubled comma
func c() {}
`)
	if len(sups) != 1 || len(sups[0].passes) != 2 {
		t.Fatalf("well-formed two-pass list not parsed: sups=%+v", sups)
	}
	if sups[0].passes[0] != "nopanic" || sups[0].passes[1] != "detmaprange" {
		t.Errorf("passes = %v", sups[0].passes)
	}
	// "nopanic," (space after comma) and "nopanic,,detmaprange" both
	// contain an empty pass name and must be called out, not silently
	// matched against no pass at all.
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed reports, want 2: %v", len(malformed), malformed)
	}
	for _, m := range malformed {
		if !strings.Contains(m.reason, "empty pass name") {
			t.Errorf("malformed reason %q does not explain the empty pass name", m.reason)
		}
	}
}

func TestParseSuppressionsStartOfFile(t *testing.T) {
	// A suppression on the very first line: standaloneComment must treat
	// offset 0 as standalone (nothing precedes it), covering line 2.
	sups, malformed := parseSrc(t, `//radiolint:ignore nopanic file-leading comment
package p
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed: %v", malformed)
	}
	if len(sups) != 1 || sups[0].lines != [2]int{1, 2} {
		t.Fatalf("start-of-file suppression parsed as %+v, want lines 1-2", sups)
	}
}

func TestStandaloneCommentOffsetPastSource(t *testing.T) {
	// A position whose offset lies beyond the backing source (conceivable
	// when positions and sources drift, e.g. a stale FileSet) must not
	// panic and must conservatively report "not standalone".
	src := []byte("package p\n")
	for _, off := range []int{len(src), len(src) + 1, len(src) + 100} {
		if off < len(src) {
			continue
		}
		pos := token.Position{Filename: "x.go", Line: 1, Offset: off}
		if off > len(src) && standaloneComment(src, pos) {
			t.Errorf("offset %d past len(src)=%d treated as standalone", off, len(src))
		}
	}
}

// TestParseSuppressionsGofmtPositions pins the standalone-covers-next-line
// rule on gofmt output: the comment is tab-indented exactly as gofmt
// rewrites it, and the statement below is what the suppression must cover.
func TestParseSuppressionsGofmtPositions(t *testing.T) {
	src := "package p\n\nfunc a() {\n\t//radiolint:ignore nopanic the panic below is a documented caller-bug contract\n\tpanic(\"x\")\n}\n"
	sups, malformed := parseSrc(t, src)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed: %v", malformed)
	}
	if len(sups) != 1 {
		t.Fatalf("got %d suppressions, want 1", len(sups))
	}
	if sups[0].lines != [2]int{4, 5} {
		t.Errorf("tab-indented standalone suppression covers %v, want lines 4-5", sups[0].lines)
	}
}

// FuzzParseSuppressions drives the suppression parser with arbitrary
// sources. The properties: never panic, never produce a suppression with
// zero or empty pass names, and line numbers stay positive with the
// next-line extension being exactly +1.
func FuzzParseSuppressions(f *testing.F) {
	seeds := []string{
		"package p\n",
		"//radiolint:ignore nopanic reason\npackage p\n",
		"package p\n\nfunc a() { bad() } //radiolint:ignore nopanic trailing\n",
		"package p\n//radiolint:ignore\n",
		"package p\n//radiolint:ignore nopanic\n",
		"package p\n//radiolint:ignore a,b reason\n",
		"package p\n//radiolint:ignore a,, reason\n",
		strings.ReplaceAll("package p\n\n//radiolint:ignore x y\nfunc a() {}\n", "\n", "\r\n"),
		"package p\n/*radiolint:ignore*/\n",
		"package p\n//radiolint:ignore   nbsp\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil || file == nil {
			return
		}
		sups, malformed := parseSuppressions(fset, file, src)
		for _, s := range sups {
			if len(s.passes) == 0 {
				t.Fatalf("suppression with no passes: %+v", s)
			}
			for _, name := range s.passes {
				if name == "" {
					t.Fatalf("suppression with empty pass name: %+v", s)
				}
			}
			if s.lines[0] < 1 {
				t.Fatalf("suppression on non-positive line: %+v", s)
			}
			if s.lines[1] != 0 && s.lines[1] != s.lines[0]+1 {
				t.Fatalf("next-line extension is not +1: %+v", s)
			}
		}
		for _, m := range malformed {
			if m.pos.Line < 1 {
				t.Fatalf("malformed report on non-positive line: %+v", m)
			}
			if m.reason == "" {
				t.Fatalf("malformed report without a reason")
			}
		}
	})
}
