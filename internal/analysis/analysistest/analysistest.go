// Package analysistest runs an analyzer over a fixture tree and checks its
// findings against expectations written in the fixtures themselves: a line
// expecting a diagnostic carries a trailing comment
//
//	// want "substring"
//
// and the test fails on any unmatched expectation or unexpected finding.
// This keeps each analyzer's true-positive and suppression cases readable as
// ordinary Go source under the analyzer's testdata directory.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"adhocradio/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"([^"]*)"`)

// expectation is one `// want "..."` marker in a fixture.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// Run loads the fixture tree rooted at dir as a module named modulePath,
// runs the analyzer over every package, and compares findings against the
// fixtures' want-comments. It returns the diagnostics for any extra
// assertions the caller wants to make.
func Run(t *testing.T, dir, modulePath string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := analysis.Load(dir, modulePath)
	if err != nil {
		t.Fatalf("loading fixtures in %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	want := collectExpectations(t, dir)
	for _, d := range diags {
		if !matchExpectation(want, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding containing %q, got none", w.file, w.line, w.substr)
		}
	}
	return diags
}

func collectExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	// Diagnostics carry absolute filenames; walk the absolute tree so the
	// expectation positions compare equal.
	dir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []*expectation
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				want = append(want, &expectation{file: path, line: i + 1, substr: m[1]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return want
}

func matchExpectation(want []*expectation, d analysis.Diagnostic) bool {
	for _, w := range want {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if strings.Contains(d.Message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}
