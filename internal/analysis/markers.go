package analysis

import (
	"go/ast"
	"strings"
)

// Directive comments. Beyond //radiolint:ignore (see package doc), passes
// read declaration markers of the form
//
//	//radiolint:<name> [trailing note]
//
// attached to a declaration's doc comment (or, for struct fields, the
// field's doc or trailing comment). gofmt preserves //word:word comments
// verbatim, so the markers survive formatting. The markers in use:
//
//	//radiolint:hotpath        function must stay allocation-free (hotalloc)
//	//radiolint:mirror         type's members are engine/reference-mirrored (mirrorref)
//	//radiolint:mirror-exempt  member deliberately read by only one side (mirrorref)
//	//radiolint:scratch-owner  struct whose slice/map fields are reusable scratch (scratchreset)
//	//radiolint:scratch-rebuild block that must reset every scratch field (scratchreset)
const markerPrefix = "//radiolint:"

// HasMarker reports whether the comment group contains the directive
// //radiolint:<name>, exactly or followed by a space-separated note.
func HasMarker(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	directive := markerPrefix + name
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// FieldHasMarker reports whether a struct field carries the directive in
// either its doc comment or its trailing line comment.
func FieldHasMarker(f *ast.Field, name string) bool {
	return HasMarker(f.Doc, name) || HasMarker(f.Comment, name)
}
