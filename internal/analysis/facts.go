package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sync"
)

// A Fact is a typed datum an analyzer computes while analyzing one package
// and reads back while analyzing a downstream package. Facts are keyed by
// the types.Object they describe (a field, a method, a function); because
// the whole module is type-checked through one importer, the object
// identities are shared across packages, so a fact exported on
// fault.(*State).LinkDown while analyzing internal/fault is found again
// when internal/radio's selector expressions resolve to the same object.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (AFact
// marker method, ExportObjectFact/ImportObjectFact on the Pass, FactTypes
// registration on the Analyzer) so a future migration to the real
// multichecker stays mechanical. Unlike x/tools, misuse returns errors
// instead of panicking — the nopanic house rule applies to this package
// too.
//
// Run analyzes packages in dependency order (imports before importers), so
// by the time an analyzer sees a package, every fact its dependencies
// could export has been exported. Facts do not flow "sideways" between
// unrelated packages, and an analyzer only sees fact types it declared in
// FactTypes.
type Fact interface {
	// AFact is a marker method; fact types are identified by their dynamic
	// type, and the method documents intent at the definition site.
	AFact()
}

// factKey identifies one fact: the object it is attached to plus the
// concrete fact type, so one object can carry facts from several passes.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// factStore is the per-Run fact table. Packages are analyzed in dependency
// order, so every read of a dependency's facts happens after the goroutine
// that wrote them has finished (the scheduler's channel close is the
// happens-before edge); the mutex additionally makes the store safe for
// the same-package export-then-import pattern and for the race detector.
type factStore struct {
	mu sync.RWMutex
	m  map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: map[factKey]Fact{}}
}

// declaresFactType reports whether the analyzer registered fact's concrete
// type in FactTypes. Registration is mandatory (as in x/tools): it makes
// each pass's cross-package surface visible in its declaration.
func (p *Pass) declaresFactType(fact Fact) bool {
	t := reflect.TypeOf(fact)
	for _, ft := range p.Analyzer.FactTypes {
		if reflect.TypeOf(ft) == t {
			return true
		}
	}
	return false
}

// ExportObjectFact associates fact with obj for downstream packages. The
// object must belong to the package under analysis (facts describe your
// own declarations; a pass analyzing an importer must not rewrite history
// for its dependencies), and the fact's type must be registered in the
// analyzer's FactTypes. fact must be a non-nil pointer.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) error {
	if obj == nil || fact == nil {
		return fmt.Errorf("analysis: ExportObjectFact(%v, %v): nil argument", obj, fact)
	}
	if obj.Pkg() != p.Pkg.Types {
		return fmt.Errorf("analysis: %s: ExportObjectFact on %v, which belongs to %v, not the package under analysis",
			p.Analyzer.Name, obj, obj.Pkg())
	}
	if reflect.TypeOf(fact).Kind() != reflect.Pointer {
		return fmt.Errorf("analysis: %s: fact type %T is not a pointer", p.Analyzer.Name, fact)
	}
	if !p.declaresFactType(fact) {
		return fmt.Errorf("analysis: %s: fact type %T not declared in FactTypes", p.Analyzer.Name, fact)
	}
	key := factKey{obj: obj, typ: reflect.TypeOf(fact)}
	p.facts.mu.Lock()
	p.facts.m[key] = fact
	p.facts.mu.Unlock()
	return nil
}

// ImportObjectFact copies the fact of ptr's type previously exported on obj
// into *ptr and reports whether one was found. ptr must be a non-nil
// pointer of a type registered in the analyzer's FactTypes; lookups for
// unregistered or non-pointer types simply find nothing.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil || ptr == nil || !p.declaresFactType(ptr) {
		return false
	}
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return false
	}
	key := factKey{obj: obj, typ: reflect.TypeOf(ptr)}
	p.facts.mu.RLock()
	fact, ok := p.facts.m[key]
	p.facts.mu.RUnlock()
	if !ok {
		return false
	}
	rv.Elem().Set(reflect.ValueOf(fact).Elem())
	return true
}
