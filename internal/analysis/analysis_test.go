package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func TestHasSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"adhocradio/internal/core", "core", true},
		{"adhocradio/internal/core", "internal", true},
		{"adhocradio/internal/score", "core", false},
		{"core", "core", true},
		{"adhocradio/internal/core/sub", "core", true},
		{"adhocradio", "internal", false},
	}
	for _, c := range cases {
		if got := HasSegment(c.path, c.seg); got != c.want {
			t.Errorf("HasSegment(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}

func TestMalformedSuppressionsReported(t *testing.T) {
	pkgs, err := Load("testdata/malformed", "example.com/malformed")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 malformed-suppression findings, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "without a pass name") {
		t.Errorf("first finding = %v, want missing-pass report", diags[0])
	}
	if !strings.Contains(diags[1].Message, "without a justification") {
		t.Errorf("second finding = %v, want missing-reason report", diags[1])
	}
}

func TestSuppressionCoversOwnAndNextLine(t *testing.T) {
	pkgs, err := Load("testdata/malformed", "example.com/malformed")
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	var file string
	var line int
	for name, sups := range pkg.sups {
		for _, s := range sups {
			if len(s.passes) == 1 && s.passes[0] == "nopanic" {
				file, line = name, s.lines[0]
			}
		}
	}
	if file == "" {
		t.Fatal("no well-formed suppression parsed from fixture")
	}
	mk := func(l int) token.Position { return token.Position{Filename: file, Line: l} }
	if !pkg.suppressedAt(mk(line), "nopanic") {
		t.Error("suppression does not cover its own line")
	}
	if !pkg.suppressedAt(mk(line+1), "nopanic") {
		t.Error("standalone suppression does not cover the next line")
	}
	if pkg.suppressedAt(mk(line+2), "nopanic") {
		t.Error("suppression leaks two lines down")
	}
	if pkg.suppressedAt(mk(line), "detmaprange") {
		t.Error("suppression applies to a pass it does not name")
	}
}

func TestLoadRejectsMissingTree(t *testing.T) {
	if _, err := Load("testdata/does-not-exist", "x"); err == nil {
		t.Fatal("Load of a missing tree succeeded")
	}
}

// TestLoadHonorsBuildConstraints: the analyzed view must match the compiled
// view. The fixture declares PlatformSplit in two files under opposite
// //go:build constraints — loading both would be a redeclaration error, so
// a successful Load with one file filtered proves the selection works.
func TestLoadHonorsBuildConstraints(t *testing.T) {
	pkgs, err := Load("testdata/buildtags", "example.com/buildtags")
	if err != nil {
		t.Fatalf("Load failed (build-constrained twin not filtered?): %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 2 {
		t.Fatalf("loaded %d files, want 2 (kept.go + host.go, not skipped.go)", n)
	}
}

func TestHostTagEvaluation(t *testing.T) {
	for tag, want := range map[string]bool{
		"radiolint_fixture_tag": false, // unknown tags are false, like go build with no -tags
	} {
		if got := hostTag(tag); got != want {
			t.Errorf("hostTag(%q) = %v, want %v", tag, got, want)
		}
	}
	if !hostTag("linux") && !hostTag("windows") && !hostTag("darwin") {
		// One of the common GOOS values must be the host.
		t.Skip("unrecognized host GOOS; GOOS/GOARCH case covered elsewhere")
	}
	if !excludedByBuildConstraint([]byte("//go:build radiolint_fixture_tag\n\npackage p\n")) {
		t.Error("false constraint not excluded")
	}
	if excludedByBuildConstraint([]byte("//go:build !radiolint_fixture_tag\n\npackage p\n")) {
		t.Error("true constraint excluded")
	}
	if excludedByBuildConstraint([]byte("package p\n\n// go:build radiolint_fixture_tag\n")) {
		t.Error("non-directive comment after package clause treated as a constraint")
	}
}
