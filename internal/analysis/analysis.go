// Package analysis is a minimal, dependency-free static-analysis framework
// for the repository's own invariants. It exists because every result this
// repo reproduces depends on runs being bit-for-bit replayable from a single
// seed; the analyzers built on top of it (see cmd/radiolint) machine-check
// the determinism and simulator-contract rules documented in
// CONTRIBUTING.md.
//
// The framework deliberately mirrors a small slice of golang.org/x/tools'
// analysis API (Analyzer, Pass, Reportf) so that a future migration to the
// real multichecker is mechanical, but it is built only on the standard
// library's go/ast, go/parser, go/token and go/types, keeping the module
// dependency-free.
//
// # Suppression
//
// A finding is suppressed with a comment of the form
//
//	//radiolint:ignore <pass>[,<pass>...] <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The reason is mandatory: a suppression without one is
// itself reported as a diagnostic, so every silenced finding carries its
// justification in the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and suppression comments.
	// It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run executes the pass over one package, reporting findings through
	// the Pass. A returned error aborts the whole radiolint run (it means
	// the pass itself failed, not that it found something).
	Run func(*Pass) error
}

// A Diagnostic is one finding, located at a position in the analyzed tree.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressedAt(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over every package and returns the combined
// findings sorted by position. Malformed suppression comments (missing pass
// name or missing reason) are reported as findings of the pseudo-pass
// "suppress".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, bad := range pkg.malformed {
			diags = append(diags, Diagnostic{
				Pos:      bad.pos,
				Analyzer: "suppress",
				Message:  bad.reason,
			})
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// HasSegment reports whether the slash-separated import path contains seg as
// a whole segment (so HasSegment("a/internal/core", "core") is true but
// HasSegment("a/score", "core") is false).
func HasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// suppression is one parsed //radiolint:ignore comment.
type suppression struct {
	passes []string
	// lines the suppression covers: its own line, plus the next line when
	// the comment stands alone.
	lines [2]int
}

type malformedSuppression struct {
	pos    token.Position
	reason string
}

const ignorePrefix = "//radiolint:ignore"

// parseSuppressions scans a file's comments for //radiolint:ignore markers.
// src is the file's source, used to decide whether a comment stands alone on
// its line (and therefore also covers the next line).
func parseSuppressions(fset *token.FileSet, f *ast.File, src []byte) (sups []suppression, malformed []malformedSuppression) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				malformed = append(malformed, malformedSuppression{
					pos:    pos,
					reason: "radiolint:ignore without a pass name; use //radiolint:ignore <pass> <reason>",
				})
				continue
			}
			if len(fields) < 2 {
				malformed = append(malformed, malformedSuppression{
					pos:    pos,
					reason: fmt.Sprintf("radiolint:ignore %s without a justification; a reason is mandatory", fields[0]),
				})
				continue
			}
			s := suppression{passes: strings.Split(fields[0], ",")}
			s.lines[0] = pos.Line
			if standaloneComment(src, pos) {
				s.lines[1] = pos.Line + 1
			}
			sups = append(sups, s)
		}
	}
	return sups, malformed
}

// standaloneComment reports whether only whitespace precedes the comment on
// its line, i.e. the comment is not trailing a statement.
func standaloneComment(src []byte, pos token.Position) bool {
	if pos.Offset > len(src) {
		return false
	}
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // start of file
}
