// Package analysis is a minimal, dependency-free static-analysis framework
// for the repository's own invariants. It exists because every result this
// repo reproduces depends on runs being bit-for-bit replayable from a single
// seed; the analyzers built on top of it (see cmd/radiolint) machine-check
// the determinism and simulator-contract rules documented in
// CONTRIBUTING.md.
//
// The framework deliberately mirrors a small slice of golang.org/x/tools'
// analysis API (Analyzer, Pass, Reportf) so that a future migration to the
// real multichecker is mechanical, but it is built only on the standard
// library's go/ast, go/parser, go/token and go/types, keeping the module
// dependency-free.
//
// # Suppression
//
// A finding is suppressed with a comment of the form
//
//	//radiolint:ignore <pass>[,<pass>...] <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The reason is mandatory: a suppression without one is
// itself reported as a diagnostic, so every silenced finding carries its
// justification in the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and suppression comments.
	// It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run executes the pass over one package, reporting findings through
	// the Pass. A returned error aborts the whole radiolint run (it means
	// the pass itself failed, not that it found something).
	Run func(*Pass) error
	// FactTypes declares the fact types this pass exports or imports
	// (see facts.go). Each entry is a typed nil pointer, e.g.
	// []Fact{(*MirrorFact)(nil)}. Passes that use no facts leave it nil.
	FactTypes []Fact
}

// A Diagnostic is one finding, located at a position in the analyzed tree.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
	facts *factStore
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressedAt(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over every package and returns the combined
// findings sorted by position. Malformed suppression comments (missing pass
// name or missing reason) are reported as findings of the pseudo-pass
// "suppress".
//
// Packages are analyzed concurrently, one goroutine per package, but each
// package waits for its intra-module imports to finish first, so facts
// (facts.go) always flow from a dependency to its importers. The final
// diagnostic order is deterministic regardless of scheduling: findings are
// accumulated per package and merged with a total order over (file, line,
// column, pass, message).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := newFactStore()
	index := make(map[*types.Package]int, len(pkgs))
	for i, pkg := range pkgs {
		index[pkg.Types] = i
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	done := make([]chan struct{}, len(pkgs))
	for i := range done {
		done[i] = make(chan struct{})
	}

	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer close(done[i])
			// Imports() lists direct dependencies only; transitive ones are
			// covered because each direct dependency waits for its own.
			// Go forbids import cycles, so this cannot deadlock.
			for _, imp := range pkg.Types.Imports() {
				if j, ok := index[imp]; ok {
					<-done[j]
				}
			}
			perPkg[i], errs[i] = analyzePackage(pkg, analyzers, facts)
		}(i, pkg)
	}
	wg.Wait()

	// pkgs arrive sorted by import path, so returning the first error by
	// package index keeps failures deterministic too.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool { return diagLess(diags[i], diags[j]) })
	return diags, nil
}

// analyzePackage runs the full analyzer battery over one package,
// collecting findings locally (no cross-goroutine sharing).
func analyzePackage(pkg *Package, analyzers []*Analyzer, facts *factStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, bad := range pkg.malformed {
		diags = append(diags, Diagnostic{
			Pos:      bad.pos,
			Analyzer: "suppress",
			Message:  bad.reason,
		})
	}
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, facts: facts}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// diagLess is the total order on diagnostics: position, then pass, then
// message, so ties cannot flip between runs.
func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

// HasSegment reports whether the slash-separated import path contains seg as
// a whole segment (so HasSegment("a/internal/core", "core") is true but
// HasSegment("a/score", "core") is false).
func HasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// suppression is one parsed //radiolint:ignore comment.
type suppression struct {
	passes []string
	// lines the suppression covers: its own line, plus the next line when
	// the comment stands alone.
	lines [2]int
}

type malformedSuppression struct {
	pos    token.Position
	reason string
}

const ignorePrefix = "//radiolint:ignore"

// parseSuppressions scans a file's comments for //radiolint:ignore markers.
// src is the file's source, used to decide whether a comment stands alone on
// its line (and therefore also covers the next line).
func parseSuppressions(fset *token.FileSet, f *ast.File, src []byte) (sups []suppression, malformed []malformedSuppression) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				malformed = append(malformed, malformedSuppression{
					pos:    pos,
					reason: "radiolint:ignore without a pass name; use //radiolint:ignore <pass> <reason>",
				})
				continue
			}
			if len(fields) < 2 {
				malformed = append(malformed, malformedSuppression{
					pos:    pos,
					reason: fmt.Sprintf("radiolint:ignore %s without a justification; a reason is mandatory", fields[0]),
				})
				continue
			}
			passes := strings.Split(fields[0], ",")
			empty := false
			for _, name := range passes {
				if name == "" {
					empty = true
				}
			}
			if empty {
				malformed = append(malformed, malformedSuppression{
					pos:    pos,
					reason: fmt.Sprintf("radiolint:ignore %s has an empty pass name; write the list without spaces or trailing commas, e.g. //radiolint:ignore a,b <reason>", fields[0]),
				})
				continue
			}
			s := suppression{passes: passes}
			s.lines[0] = pos.Line
			if standaloneComment(src, pos) {
				s.lines[1] = pos.Line + 1
			}
			sups = append(sups, s)
		}
	}
	return sups, malformed
}

// standaloneComment reports whether only whitespace precedes the comment on
// its line, i.e. the comment is not trailing a statement.
func standaloneComment(src []byte, pos token.Position) bool {
	if pos.Offset > len(src) {
		return false
	}
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // start of file
}
