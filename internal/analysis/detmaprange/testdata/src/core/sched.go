// Package core is a detmaprange fixture modelling a determinism-critical
// package: map iteration order must never leak into outputs.
package core

// BuildOrder appends map keys in iteration order — the classic schedule
// replay breaker.
func BuildOrder(weights map[int]int) []int {
	var order []int
	for v := range weights { // want "range over map"
		order = append(order, v)
	}
	return order
}

// FirstPair leaks both key and value of whichever entry iterates first.
func FirstPair(weights map[int]int) (int, int) {
	for k, v := range weights { // want "range over map"
		return k, v
	}
	return 0, 0
}

// SumAll folds integer values; the fold is order-insensitive, so the
// finding is suppressed with that justification.
func SumAll(weights map[int]int) int {
	total := 0
	//radiolint:ignore detmaprange integer summation is order-insensitive
	for _, w := range weights {
		total += w
	}
	return total
}

// Count iterates only for the count; a bare `for range` never observes
// element order and is always allowed.
func Count(weights map[int]int) int {
	n := 0
	for range weights {
		n++
	}
	return n
}

// Positions ranges over a slice, which is ordered and always fine.
func Positions(xs []int) int {
	total := 0
	for i, x := range xs {
		total += i * x
	}
	return total
}
