// Package stats is not on the determinism-critical list, so detmaprange
// leaves its map iteration alone.
package stats

// Keys may iterate in randomized order here; reporting packages sort their
// own output where it matters.
func Keys(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
