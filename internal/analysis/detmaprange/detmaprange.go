// Package detmaprange flags range statements over maps in the
// determinism-critical packages of the simulator.
//
// Go randomizes map iteration order on purpose. In packages that build
// transmission schedules, adversary constructions or anything else a replay
// must reproduce exactly (radio, core, det, sequences, lowerbound,
// selective, graph, exact — all under internal/), an ordered use of a map
// range silently breaks the single-seed replayability the paper's results
// depend on. The pass flags every `for k := range m` and `for k, v := range
// m` over a map in those packages; a loop whose body is genuinely
// order-insensitive (an accumulation into a set, a min/max fold) is
// suppressed with //radiolint:ignore detmaprange <why the order cannot
// matter>. A bare `for range m` — iterating only for the count — is always
// allowed, since no element ever escapes the loop.
package detmaprange

import (
	"go/ast"
	"go/types"

	"adhocradio/internal/analysis"
)

// Analyzer is the detmaprange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmaprange",
	Doc:  "flag map iteration in determinism-critical packages",
	Run:  run,
}

// criticalSegments are the package names whose schedules and constructions
// must be replayable.
var criticalSegments = []string{
	"radio", "core", "det", "sequences", "lowerbound", "selective", "graph", "exact",
}

func inScope(path string) bool {
	if !analysis.HasSegment(path, "internal") {
		return false
	}
	for _, seg := range criticalSegments {
		if analysis.HasSegment(path, seg) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if rng.Key == nil && rng.Value == nil {
				return true // `for range m`: only the count is observed
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map %s: iteration order is randomized and breaks replayability; iterate over sorted keys, or suppress with a reason if the body is order-insensitive",
				typeString(tv.Type))
			return true
		})
	}
	return nil
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
