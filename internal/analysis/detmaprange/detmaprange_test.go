package detmaprange_test

import (
	"path/filepath"
	"testing"

	"adhocradio/internal/analysis/analysistest"
	"adhocradio/internal/analysis/detmaprange"
)

func TestFixtures(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", "adhocradio/internal", detmaprange.Analyzer)
	if len(diags) < 2 {
		t.Fatalf("want at least 2 true positives on the fixtures, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) != "sched.go" {
			t.Errorf("finding outside the critical fixture package: %s", d)
		}
	}
}
