package nopanic_test

import (
	"testing"

	"adhocradio/internal/analysis/analysistest"
	"adhocradio/internal/analysis/nopanic"
)

func TestFixtures(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", "example.com/fix", nopanic.Analyzer)
	if len(diags) < 2 {
		t.Fatalf("want at least 2 true positives on the fixtures, got %d: %v", len(diags), diags)
	}
}
