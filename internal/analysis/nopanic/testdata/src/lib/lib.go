// Package lib is a nopanic fixture for library code: panics must become
// errors, Must-helpers, or carry their invariant as a suppression.
package lib

// Parse panics on bad input instead of returning an error.
func Parse(s string) int {
	if s == "" {
		panic("lib: empty input") // want "panic in library function Parse"
	}
	return len(s)
}

// Table is a fixture type.
type Table struct{ rows int }

// Row panics on a bad index instead of returning an error.
func (t *Table) Row(i int) int {
	if i < 0 || i >= t.rows {
		panic("lib: row out of range") // want "panic in library function Row"
	}
	return i
}

// MustParse follows the regexp.MustCompile convention: panicking is its
// documented purpose, so the pass exempts Must-prefixed functions.
func MustParse(s string) int {
	if s == "" {
		panic("lib: empty input")
	}
	return len(s)
}

// double keeps a genuinely unreachable invariant panic, annotated with the
// invariant that makes it dead.
func double(n int) int {
	if n < 0 {
		//radiolint:ignore nopanic n is always a slice length here, never negative
		panic("lib: negative length")
	}
	return 2 * n
}

// Grow exercises double so the fixture has no dead code.
func Grow(xs []int) int { return double(len(xs)) }
