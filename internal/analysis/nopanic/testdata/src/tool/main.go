// Command tool shows that main packages are out of nopanic's scope:
// top-level tools may crash how they like.
package main

func main() {
	panic("tools may crash")
}
