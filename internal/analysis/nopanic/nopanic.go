// Package nopanic forbids panic in library code paths.
//
// The house rule (CONTRIBUTING.md) is that library packages return errors;
// panics are reserved for programmer errors on documented contracts. The
// pass flags every panic call in a non-main package, with two escape
// hatches:
//
//   - functions whose name starts with Must follow the standard library's
//     MustCompile convention — panicking is their documented purpose — and
//     are exempt;
//
//   - a genuinely unreachable invariant panic is kept but annotated with
//     //radiolint:ignore nopanic <why it is unreachable or a caller bug>,
//     so every remaining panic site carries its justification.
//
// Main packages (cmd/, examples/) are out of scope: top-level tools may
// crash how they like.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"adhocradio/internal/analysis"
)

// Analyzer is the nopanic pass.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic in library packages outside Must* helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Types.Name() == "main" {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasPrefix(fn.Name.Name, "Must") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ident, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.Pkg.Info.Uses[ident].(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		pass.Reportf(call.Pos(),
			"panic in library function %s: return an error, use a Must-prefixed name, or suppress with the invariant that makes it unreachable",
			fn.Name.Name)
		return true
	})
}
