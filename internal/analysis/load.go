package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the analyzed module.
type Package struct {
	// Path is the import path ("adhocradio/internal/core").
	Path string
	// Dir is the directory the sources were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	sups      map[string][]suppression // filename -> parsed suppressions
	malformed []malformedSuppression
}

func (p *Package) suppressedAt(pos token.Position, pass string) bool {
	for _, s := range p.sups[pos.Filename] {
		if s.lines[0] != pos.Line && s.lines[1] != pos.Line {
			continue
		}
		for _, name := range s.passes {
			if name == pass {
				return true
			}
		}
	}
	return false
}

// Load parses and type-checks every non-test package under root, returning
// them sorted by import path. modulePath overrides the module path; when
// empty it is read from root's go.mod. Directories named testdata or vendor
// and hidden directories are skipped.
func Load(root, modulePath string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if modulePath == "" {
		modulePath, err = readModulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	srcs, err := parseTree(fset, root, modulePath)
	if err != nil {
		return nil, err
	}

	order, err := toposort(srcs)
	if err != nil {
		return nil, err
	}

	checked := map[string]*types.Package{}
	imp := &moduleImporter{module: checked, std: importer.Default(), fset: fset}
	var pkgs []*Package
	for _, path := range order {
		s := srcs[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, s.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		checked[path] = tpkg
		pkg := &Package{
			Path:  path,
			Dir:   s.dir,
			Fset:  fset,
			Files: s.files,
			Types: tpkg,
			Info:  info,
			sups:  map[string][]suppression{},
		}
		for i, f := range s.files {
			name := fset.Position(f.Pos()).Filename
			sups, malformed := parseSuppressions(fset, f, s.srcs[i])
			pkg.sups[name] = sups
			pkg.malformed = append(pkg.malformed, malformed...)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// pkgSrc is a parsed-but-unchecked package.
type pkgSrc struct {
	dir     string
	files   []*ast.File
	srcs    [][]byte
	imports map[string]bool // module-internal imports only
}

func parseTree(fset *token.FileSet, root, modulePath string) (map[string]*pkgSrc, error) {
	srcs := map[string]*pkgSrc{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if excludedByBuildConstraint(src) {
			return nil
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		ipath := importPath(root, dir, modulePath)
		s := srcs[ipath]
		if s == nil {
			s = &pkgSrc{dir: dir, imports: map[string]bool{}}
			srcs[ipath] = s
		}
		s.files = append(s.files, f)
		s.srcs = append(s.srcs, src)
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p == modulePath || strings.HasPrefix(p, modulePath+"/") {
				s.imports[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", root)
	}
	return srcs, nil
}

// excludedByBuildConstraint reports whether a //go:build line excludes the
// file from the host platform's build. The analyzed view must match the
// compiled view: without this, platform-split files (cputime_unix.go /
// cputime_other.go declaring the same symbol under opposite constraints)
// would type-check as a redeclaration. Only //go:build constraints are
// honored — this module does not use legacy // +build lines or
// GOOS/GOARCH file-name suffixes.
func excludedByBuildConstraint(src []byte) bool {
	// A //go:build line is only valid before the package clause.
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return false // malformed: let the parser report it
			}
			return !expr.Eval(hostTag)
		}
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
	}
	return false
}

// unixGOOS mirrors go/build's definition of the "unix" build tag.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// hostTag evaluates one build tag for the host platform. Unknown tags are
// false, matching `go build` with no -tags flag.
func hostTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	return false
}

func importPath(root, dir, modulePath string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

// toposort orders packages so that every package follows its intra-module
// imports, failing on import cycles.
func toposort(srcs map[string]*pkgSrc) ([]string, error) {
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		state[p] = visiting
		deps := make([]string, 0, len(srcs[p].imports))
		for dep := range srcs[p].imports {
			deps = append(deps, dep)
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := srcs[dep]; !ok {
				return fmt.Errorf("analysis: %s imports %s, which is not in the analyzed tree", p, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter serves module-internal packages from the already-checked
// set and delegates everything else to the toolchain importer, falling back
// to type-checking standard-library source when no export data is
// available.
type moduleImporter struct {
	module map[string]*types.Package
	std    types.Importer
	src    types.Importer
	fset   *token.FileSet
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.module[path]; ok {
		return pkg, nil
	}
	pkg, err := m.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	if m.src == nil {
		m.src = importer.ForCompiler(m.fset, "source", nil)
	}
	pkg, srcErr := m.src.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("analysis: importing %s: %w (source fallback: %v)", path, err, srcErr)
	}
	return pkg, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (is the analysis root a module?)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
