// Package mirrorref enforces the mirror-in-reference rule from
// CONTRIBUTING.md ("Adding a fault model"): every piece of the fault and
// options surface the optimized engine consults must also be consulted by
// the naive reference simulator, because the two implementations agreeing
// is the only evidence the semantics are what we think they are.
//
// The rule is wired up with two annotations:
//
//   - //radiolint:mirror on a type declaration (fault.Plan, fault.State,
//     radio.Options, radio.Config) marks every exported field and method
//     of that type as part of the mirrored surface. While analyzing the
//     declaring package the pass exports a MirrorFact on each member, so
//     the check works across package boundaries (internal/fault's members
//     are found again from internal/radio via the shared type-checker
//     objects).
//
//   - //radiolint:mirror-exempt <why> on an individual field or method
//     removes it from the rule, for members that are deliberately
//     one-sided (an iteration accelerator like State.JammerNodes whose
//     semantics are covered by JamAt, or an engine-only Options feature
//     the reference's core model does not implement).
//
// In a package that contains both a file named engine.go and functions
// named RunReference*, the pass then compares: every mirrored member read
// (selected) anywhere in engine.go must also be read inside some
// RunReference* function. A member the engine consults but the reference
// ignores is exactly the silent-divergence bug the differential tests
// exist to catch — this reports it before a single trial runs.
package mirrorref

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"adhocradio/internal/analysis"
)

// MirrorFact marks one field or method as part of the engine/reference
// mirrored surface.
type MirrorFact struct {
	// Exempt is true for members annotated //radiolint:mirror-exempt:
	// still part of the surface, but deliberately one-sided.
	Exempt bool
}

// AFact marks MirrorFact as a cross-package fact.
func (*MirrorFact) AFact() {}

// Analyzer is the mirrorref pass.
var Analyzer = &analysis.Analyzer{
	Name:      "mirrorref",
	Doc:       "every //radiolint:mirror member read by engine.go must be read by RunReference*",
	Run:       run,
	FactTypes: []analysis.Fact{(*MirrorFact)(nil)},
}

func run(pass *analysis.Pass) error {
	if err := exportMirrorFacts(pass); err != nil {
		return err
	}
	return checkMirror(pass)
}

// exportMirrorFacts finds //radiolint:mirror types declared in this
// package and attaches a MirrorFact to each of their exported fields and
// methods.
func exportMirrorFacts(pass *analysis.Pass) error {
	marked := map[types.Object]bool{} // the marked type names
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// With one spec per decl the annotation usually sits on the
				// GenDecl; grouped specs carry their own docs.
				if !analysis.HasMarker(gd.Doc, "mirror") && !analysis.HasMarker(ts.Doc, "mirror") {
					continue
				}
				obj := pass.Pkg.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				marked[obj] = true
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					exempt := analysis.FieldHasMarker(field, "mirror-exempt")
					for _, name := range field.Names {
						if !name.IsExported() {
							continue
						}
						fobj := pass.Pkg.Info.Defs[name]
						if fobj == nil {
							continue
						}
						if err := pass.ExportObjectFact(fobj, &MirrorFact{Exempt: exempt}); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	if len(marked) == 0 {
		return nil
	}
	// Second sweep: methods whose receiver base type is marked.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 || !fn.Name.IsExported() {
				continue
			}
			if !marked[recvTypeObj(pass, fn.Recv.List[0].Type)] {
				continue
			}
			mobj := pass.Pkg.Info.Defs[fn.Name]
			if mobj == nil {
				continue
			}
			exempt := analysis.HasMarker(fn.Doc, "mirror-exempt")
			if err := pass.ExportObjectFact(mobj, &MirrorFact{Exempt: exempt}); err != nil {
				return err
			}
		}
	}
	return nil
}

// recvTypeObj resolves a receiver type expression (T or *T) to the type
// name's object.
func recvTypeObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Pkg.Info.Uses[id]
}

// read is one engine-side read of a mirrored member.
type read struct {
	obj types.Object
	pos token.Pos
}

// checkMirror runs in packages that have both sides: a file literally
// named engine.go and at least one RunReference* function.
func checkMirror(pass *analysis.Pass) error {
	var engineFiles []*ast.File
	var refFuncs []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		name := filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename)
		if name == "engine.go" {
			engineFiles = append(engineFiles, f)
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil &&
				fn.Recv == nil && strings.HasPrefix(fn.Name.Name, "RunReference") {
				refFuncs = append(refFuncs, fn)
			}
		}
	}
	if len(engineFiles) == 0 || len(refFuncs) == 0 {
		return nil
	}

	engineReads := map[types.Object]token.Pos{} // first read position
	for _, f := range engineFiles {
		collectReads(pass, f, func(obj types.Object, pos token.Pos) {
			if old, ok := engineReads[obj]; !ok || pos < old {
				engineReads[obj] = pos
			}
		})
	}
	refReads := map[types.Object]bool{}
	for _, fn := range refFuncs {
		collectReads(pass, fn.Body, func(obj types.Object, pos token.Pos) {
			refReads[obj] = true
		})
	}

	// Report in engine-read position order, one finding per member.
	var missing []read
	for obj, pos := range engineReads {
		var fact MirrorFact
		if !pass.ImportObjectFact(obj, &fact) {
			continue // not part of a mirrored surface
		}
		if fact.Exempt || refReads[obj] {
			continue
		}
		missing = append(missing, read{obj: obj, pos: pos})
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].pos < missing[j].pos })
	for _, m := range missing {
		pass.Reportf(m.pos, "mirror rule: %s is read in engine.go but by no RunReference* function; mirror it in the reference simulator or annotate the member //radiolint:mirror-exempt <why>",
			memberName(m.obj))
	}
	return nil
}

// memberName renders a member as pkg.Owner.Name when the owner is
// recoverable (methods carry their receiver; struct fields do not), else
// pkg.Name.
func memberName(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return obj.Pkg().Name() + "." + named.Obj().Name() + "." + obj.Name()
			}
		}
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// collectReads walks a subtree and calls fn for every selector expression
// resolving to a field or method object.
func collectReads(pass *analysis.Pass, root ast.Node, fn func(types.Object, token.Pos)) {
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.Pkg.Info.Selections[sel]; ok {
			fn(s.Obj(), sel.Sel.Pos())
		} else if obj := pass.Pkg.Info.Uses[sel.Sel]; obj != nil {
			// Package-qualified references (pkg.Member) have no Selection
			// entry; methods read through a qualified type alias etc. land
			// here.
			fn(obj, sel.Sel.Pos())
		}
		return true
	})
}
