// Package fault is the fixture's stand-in for internal/fault: a mirrored
// plan/state surface consumed by the sim package's engine and reference.
package fault

// Plan is consulted by both simulators.
//
//radiolint:mirror
type Plan struct {
	// Loss is read by both sides: clean.
	Loss float64
	// Jam is read only by the engine: the field true positive.
	Jam float64
	//radiolint:mirror-exempt engine-side accelerator; semantics covered by Loss
	Phase int
	// Unused is read by neither side and must never be reported.
	Unused int
}

// State is the compiled plan.
//
//radiolint:mirror
type State struct{ plan *Plan }

// Down is read by both sides: clean.
func (s *State) Down(t, v int) bool { return s.plan.Loss > 0 && t%2 == 0 && v >= 0 }

// Fast is read only by the engine: the method true positive.
func (s *State) Fast(t int) bool { return t%3 == 0 }
