package sim

import "example.com/mirror/fault"

// RunReference mirrors the engine naively: it reads Loss, Down and Max,
// but not Jam or Fast — which is exactly what the pass reports against
// engine.go.
func RunReference(p *fault.Plan, st *fault.State, o Options, t int) float64 {
	x := p.Loss
	if t > o.Max {
		return x
	}
	if st.Down(t, 0) {
		x++
	}
	return x
}
