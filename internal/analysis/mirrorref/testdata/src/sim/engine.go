package sim

import "example.com/mirror/fault"

// Options is a same-package mirrored surface (the radio.Options shape).
//
//radiolint:mirror
type Options struct {
	// Max is read by both sides: clean.
	Max int
	//radiolint:mirror-exempt engine-only tracing; the reference has no trace hook
	Trace bool
}

type runner struct{ st *fault.State }

func (r *runner) step(p *fault.Plan, o Options, t int) float64 {
	x := p.Loss
	x += p.Jam // want "fault.Jam is read in engine.go but by no RunReference"
	x += float64(p.Phase)
	if t > o.Max {
		return x
	}
	if o.Trace {
		x += 0.5
	}
	if r.st.Down(t, 1) {
		x++
	}
	if r.st.Fast(t) { // want "fault.State.Fast is read in engine.go but by no RunReference"
		x++
	}
	return x
}
