package mirrorref

import (
	"strings"
	"testing"

	"adhocradio/internal/analysis/analysistest"
)

func TestMirrorref(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", "example.com/mirror", Analyzer)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (one field, one method): %v", len(diags), diags)
	}
	// Both findings must anchor to engine.go — the place the asymmetric
	// read happens — not to the declaring package.
	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, "engine.go") {
			t.Errorf("finding not anchored to the engine read: %v", d)
		}
	}
}
