package trace

import (
	"fmt"
	"math"
	"strings"
)

// JainFairness returns Jain's fairness index of the per-node transmission
// counts: (Σx)² / (n·Σx²), in (0, 1], where 1 means perfectly even energy
// use. Nodes that never transmitted are excluded (leaf nodes of a token
// walk legitimately stay silent). Returns 0 when nothing was observed.
func (c *Collector) JainFairness() float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range c.txPerNode {
		f := float64(x)
		sum += f
		sumSq += f * f
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// LayerHeatmap renders, one row per BFS layer, when the layer's nodes were
// informed across the run: each column is a time bucket, and the glyph
// encodes the fraction of the layer informed during that bucket ('.' none,
// '█' all). It makes the diagonal front of a healthy broadcast — and the
// stalls of an unhealthy one — visible at a glance.
func LayerHeatmap(p *Progress, layers [][]int, informedAt []int, width int) string {
	if width < 4 {
		width = 40
	}
	steps := len(p.InformedByStep) - 1
	if steps < 1 {
		steps = 1
	}
	ramp := []rune(" ░▒▓█")
	var b strings.Builder
	for li, layer := range layers {
		counts := make([]int, width)
		for _, v := range layer {
			at := informedAt[v]
			if at < 0 {
				continue
			}
			col := 0
			if steps > 0 {
				col = (at - 1) * width / steps
			}
			if at == 0 {
				col = 0
			}
			if col < 0 {
				col = 0
			}
			if col >= width {
				col = width - 1
			}
			counts[col]++
		}
		fmt.Fprintf(&b, "L%-3d |", li)
		for _, cnt := range counts {
			frac := float64(cnt) / float64(len(layer))
			idx := int(math.Ceil(frac * float64(len(ramp)-1)))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteRune(ramp[idx])
		}
		fmt.Fprintf(&b, "| done at %d\n", p.LayerDone[li])
	}
	return b.String()
}
