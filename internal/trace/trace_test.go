package trace

import (
	"strings"
	"testing"

	"adhocradio/internal/det"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

func runWithCollector(t *testing.T, g *graph.Graph, p radio.Protocol) (*Collector, *radio.Result) {
	t.Helper()
	var c Collector
	res, err := radio.Run(g, p, radio.Config{}, radio.Options{Trace: c.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	return &c, res
}

func TestCollectorCountsMatchResult(t *testing.T) {
	g := graph.Path(12)
	c, res := runWithCollector(t, g, det.RoundRobin{})
	var total int64
	for s := 1; s <= c.Steps(); s++ {
		total += int64(c.TransmissionsAt(s))
	}
	if total != res.Transmissions {
		t.Fatalf("collector total %d, result %d", total, res.Transmissions)
	}
	if e := c.Energy(); e.Total != res.Transmissions {
		t.Fatalf("energy total %d, result %d", e.Total, res.Transmissions)
	}
}

func TestCollectorOutOfRange(t *testing.T) {
	var c Collector
	if c.TransmissionsAt(0) != 0 || c.TransmissionsAt(99) != 0 {
		t.Fatal("out-of-range steps must report 0")
	}
	if s, tx := c.BusiestStep(); s != 0 || tx != 0 {
		t.Fatal("empty collector busiest step")
	}
	if c.SilentSteps() != 0 {
		t.Fatal("empty collector silent steps")
	}
}

func TestBusiestAndSilent(t *testing.T) {
	g := graph.Star(6)
	// Round-robin on a star: source transmits at its slot; then every
	// leaf transmits in its own slot (all informed after source's slot).
	c, _ := runWithCollector(t, g, det.RoundRobin{})
	step, tx := c.BusiestStep()
	if tx < 1 || step < 1 {
		t.Fatalf("busiest = (%d, %d)", step, tx)
	}
	if c.SilentSteps() >= c.Steps() {
		t.Fatal("every step silent?")
	}
}

func TestEnergyPerNode(t *testing.T) {
	g := graph.Path(8)
	c, _ := runWithCollector(t, g, det.RoundRobin{})
	e := c.Energy()
	if e.Nodes == 0 || e.Mean <= 0 || e.Max <= 0 || e.MaxNode < 0 {
		t.Fatalf("energy %+v", e)
	}
	top := c.TopTransmitters(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0][1] < top[1][1] || top[1][1] < top[2][1] {
		t.Fatalf("top not sorted: %v", top)
	}
	if top[0][1] != e.Max {
		t.Fatalf("top[0]=%v, max=%d", top[0], e.Max)
	}
	if len(c.TopTransmitters(100)) > e.Nodes {
		t.Fatal("TopTransmitters exceeded node count")
	}
}

func TestAnalyzeProgressOnPath(t *testing.T) {
	g := graph.Path(6)
	_, res := runWithCollector(t, g, det.RoundRobin{})
	p, err := AnalyzeProgress(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if p.Radius != 5 || len(p.LayerDone) != 6 {
		t.Fatalf("progress %+v", p)
	}
	// Layer completion must be non-decreasing and start at 0.
	if p.LayerDone[0] != 0 {
		t.Fatalf("source layer done at %d", p.LayerDone[0])
	}
	for l := 1; l < len(p.LayerDone); l++ {
		if p.LayerDone[l] < p.LayerDone[l-1] {
			t.Fatalf("layer completion not monotone: %v", p.LayerDone)
		}
	}
	delays := p.PerLayerDelays()
	if len(delays) != 5 {
		t.Fatalf("delays %v", delays)
	}
	slowest, d := p.SlowestLayer()
	if slowest < 1 || d <= 0 {
		t.Fatalf("slowest = (%d, %d)", slowest, d)
	}
	// Final cumulative count equals n.
	if got := p.InformedByStep[len(p.InformedByStep)-1]; got != 6 {
		t.Fatalf("final informed %d", got)
	}
}

func TestProgressDisconnectedFails(t *testing.T) {
	g := graph.New(3, true)
	g.MustAddEdge(0, 1)
	if _, err := AnalyzeProgress(g, &radio.Result{InformedAt: []int{0, 1, -1}}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestTimelineRendering(t *testing.T) {
	g := graph.Path(10)
	_, res := runWithCollector(t, g, det.RoundRobin{})
	p, err := AnalyzeProgress(g, res)
	if err != nil {
		t.Fatal(err)
	}
	tl := p.Timeline(20)
	if !strings.Contains(tl, "10/10 informed") {
		t.Fatalf("timeline %q", tl)
	}
	// Width respected: 20 ramp runes between the pipes.
	inner := tl[strings.Index(tl, "|")+1 : strings.LastIndex(tl, "|")]
	if n := len([]rune(inner)); n != 20 {
		t.Fatalf("timeline width %d: %q", n, tl)
	}
	// Degenerate width falls back to the default.
	if !strings.Contains(p.Timeline(0), "informed") {
		t.Fatal("zero width broke timeline")
	}
}

func TestTimelineNoProgress(t *testing.T) {
	p := &Progress{InformedByStep: []int{0}}
	if p.Timeline(10) != "(no progress)" {
		t.Fatal("empty progress rendering")
	}
}

func TestPerLayerDelaysShort(t *testing.T) {
	p := &Progress{LayerDone: []int{0}}
	if p.PerLayerDelays() != nil {
		t.Fatal("radius-0 delays must be nil")
	}
	if l, d := p.SlowestLayer(); l != -1 || d != 0 {
		t.Fatalf("slowest on radius-0: (%d,%d)", l, d)
	}
}

// TestCollectorCountersMatchEngine: the collector's counter projection must
// agree with the engine's own ledger on every hook-visible field.
func TestCollectorCountersMatchEngine(t *testing.T) {
	g := graph.Grid(4, 5)
	var c Collector
	r := radio.NewRunner()
	res, err := r.Run(g, det.RoundRobin{}, radio.Config{}, radio.Options{Trace: c.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	hook, eng := c.Counters(), r.Counters()
	if hook.Steps != eng.Steps || hook.Transmissions != eng.Transmissions ||
		hook.Receptions != eng.Receptions || hook.SilentSteps != eng.SilentSteps {
		t.Fatalf("hook counters diverge from engine:\nhook   %+v\nengine %+v", hook, eng)
	}
	if hook.Transmissions != res.Transmissions {
		t.Fatalf("hook transmissions %d, result %d", hook.Transmissions, res.Transmissions)
	}
	if hook.Collisions != 0 {
		t.Fatal("collisions are not hook-visible and must stay zero")
	}
}

// TestCollectorEmptyRun: a collector that never saw a hook call reports
// zeroes everywhere instead of panicking.
func TestCollectorEmptyRun(t *testing.T) {
	var c Collector
	if !c.Counters().IsZero() {
		t.Fatalf("empty collector counters: %+v", c.Counters())
	}
	if c.Steps() != 0 || c.SilentSteps() != 0 {
		t.Fatal("empty collector observed steps")
	}
	if e := c.Energy(); e.Total != 0 || e.Nodes != 0 || e.MaxNode != -1 {
		t.Fatalf("empty collector energy: %+v", e)
	}
	if top := c.TopTransmitters(3); len(top) != 0 {
		t.Fatalf("empty collector top transmitters: %v", top)
	}
}

// TestCollectorSingleNode: an n=1 broadcast finishes before step 1, so the
// hook never fires; the collector and AnalyzeProgress must both cope.
func TestCollectorSingleNode(t *testing.T) {
	g := graph.Path(1)
	c, res := runWithCollector(t, g, det.RoundRobin{})
	if !res.Completed || res.StepsSimulated != 0 {
		t.Fatalf("n=1 result: %+v", res)
	}
	if c.Steps() != 0 || !c.Counters().IsZero() {
		t.Fatalf("n=1 collector saw events: %+v", c.Counters())
	}
	p, err := AnalyzeProgress(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if p.Radius != 0 || len(p.LayerDone) != 1 || p.LayerDone[0] != 0 {
		t.Fatalf("n=1 progress: %+v", p)
	}
	if layer, delay := p.SlowestLayer(); layer != -1 || delay != 0 {
		t.Fatalf("n=1 slowest layer = (%d, %d)", layer, delay)
	}
	if got := p.Timeline(10); !strings.Contains(got, "1/1 informed after 0 steps") {
		t.Fatalf("n=1 timeline: %q", got)
	}
}

// TestCollectorStepGaps: a sparse trace (hook invoked for step 3 only) pads
// the unseen steps as silent, and the padding stays consistent across the
// accessors and the counter projection.
func TestCollectorStepGaps(t *testing.T) {
	var c Collector
	hook := c.Hook()
	hook(3, []int{4, 7}, []radio.Message{{From: 4}})
	if c.Steps() != 3 {
		t.Fatalf("steps = %d, want 3 (padded)", c.Steps())
	}
	if c.TransmissionsAt(1) != 0 || c.TransmissionsAt(2) != 0 || c.TransmissionsAt(3) != 2 {
		t.Fatal("padding misplaced the observation")
	}
	if c.SilentSteps() != 2 {
		t.Fatalf("silent steps = %d, want 2", c.SilentSteps())
	}
	k := c.Counters()
	if k.Steps != 3 || k.Transmissions != 2 || k.Receptions != 1 || k.SilentSteps != 2 {
		t.Fatalf("gap counters: %+v", k)
	}
	// A later in-order call extends the arrays past the gap.
	hook(5, []int{1}, nil)
	if c.Steps() != 5 || c.SilentSteps() != 3 {
		t.Fatalf("after second gap: steps=%d silent=%d", c.Steps(), c.SilentSteps())
	}
}
