package trace

import (
	"strings"
	"testing"

	"adhocradio/internal/det"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

func TestJainFairness(t *testing.T) {
	// Perfectly even counts: index 1.
	c := &Collector{txPerNode: map[int]int{1: 4, 2: 4, 3: 4}}
	if f := c.JainFairness(); f < 0.999 {
		t.Fatalf("even counts fairness %f", f)
	}
	// One dominant transmitter: index near 1/n.
	c = &Collector{txPerNode: map[int]int{1: 100, 2: 1, 3: 1, 4: 1}}
	if f := c.JainFairness(); f > 0.5 {
		t.Fatalf("skewed counts fairness %f", f)
	}
	// Empty collector.
	if f := (&Collector{}).JainFairness(); f != 0 {
		t.Fatalf("empty fairness %f", f)
	}
}

func TestJainFairnessFromRun(t *testing.T) {
	// Round-robin gives every node roughly equal slots on a path.
	g := graph.Path(10)
	var c Collector
	if _, err := radio.Run(g, det.RoundRobin{}, radio.Config{}, radio.Options{Trace: c.Hook()}); err != nil {
		t.Fatal(err)
	}
	if f := c.JainFairness(); f < 0.3 {
		t.Fatalf("round-robin fairness %f unexpectedly low", f)
	}
}

func TestLayerHeatmap(t *testing.T) {
	g := graph.Path(6)
	res, err := radio.Run(g, det.RoundRobin{}, radio.Config{}, radio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := AnalyzeProgress(g, res)
	if err != nil {
		t.Fatal(err)
	}
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	hm := LayerHeatmap(p, layers, res.InformedAt, 20)
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("heatmap has %d rows, want 6:\n%s", len(lines), hm)
	}
	if !strings.HasPrefix(lines[0], "L0 ") || !strings.Contains(lines[5], "done at") {
		t.Fatalf("heatmap format:\n%s", hm)
	}
	// The last layer's block must appear in a later column than the
	// first's: verify the diagonal by comparing the column of the first
	// non-empty glyph.
	col := func(line string) int {
		inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
		for i, r := range []rune(inner) {
			if r != ' ' {
				return i
			}
		}
		return -1
	}
	if c0, c5 := col(lines[1]), col(lines[5]); c0 < 0 || c5 < 0 || c5 < c0 {
		t.Fatalf("no diagonal front: cols %d, %d\n%s", c0, c5, hm)
	}
	// Degenerate width falls back.
	if !strings.Contains(LayerHeatmap(p, layers, res.InformedAt, 0), "done at") {
		t.Fatal("zero width broke heatmap")
	}
}
