// Package trace turns raw simulation results into the derived views the
// tools and experiments report: how the informed front advanced through the
// BFS layers, how transmissions were distributed over nodes (energy), and
// an ASCII timeline of broadcast progress.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"adhocradio/internal/graph"
	"adhocradio/internal/obs"
	"adhocradio/internal/radio"
)

// Collector accumulates per-step statistics through the simulator's Trace
// hook. The zero value is ready to use.
type Collector struct {
	txPerStep []int
	txPerNode map[int]int
	rxPerStep []int
}

// Hook returns the TraceFunc to pass in radio.Options.
func (c *Collector) Hook() radio.TraceFunc {
	return func(step int, transmitters []int, receptions []radio.Message) {
		if c.txPerNode == nil {
			c.txPerNode = map[int]int{}
		}
		for len(c.txPerStep) < step {
			c.txPerStep = append(c.txPerStep, 0)
			c.rxPerStep = append(c.rxPerStep, 0)
		}
		c.txPerStep[step-1] = len(transmitters)
		c.rxPerStep[step-1] = len(receptions)
		for _, v := range transmitters {
			c.txPerNode[v]++
		}
	}
}

// Steps returns the number of steps observed.
func (c *Collector) Steps() int { return len(c.txPerStep) }

// Counters projects the observations into the engine's obs.Counters shape,
// so hook-derived views and the engine's own ledger speak one vocabulary.
// Only hook-visible events appear: the TraceFunc reports transmitters and
// successful receptions, so Collisions and the fault counters stay zero
// here (read those from radio.Runner.Counters). Steps the hook never saw
// but that padding implies (a sparse trace) count as silent, matching
// SilentSteps.
func (c *Collector) Counters() obs.Counters {
	var k obs.Counters
	k.Steps = int64(len(c.txPerStep))
	for i, tx := range c.txPerStep {
		k.Transmissions += int64(tx)
		k.Receptions += int64(c.rxPerStep[i])
		if tx == 0 {
			k.SilentSteps++
		}
	}
	return k
}

// TransmissionsAt returns the number of transmitters in step t (1-based).
func (c *Collector) TransmissionsAt(t int) int {
	if t < 1 || t > len(c.txPerStep) {
		return 0
	}
	return c.txPerStep[t-1]
}

// BusiestStep returns the step with the most transmitters and its count
// (0, 0 when nothing was observed).
func (c *Collector) BusiestStep() (step, tx int) {
	for i, n := range c.txPerStep {
		if n > tx {
			step, tx = i+1, n
		}
	}
	return step, tx
}

// SilentSteps counts steps in which nobody transmitted. It is the
// SilentSteps field of Counters, kept as a method for the existing
// call sites.
func (c *Collector) SilentSteps() int {
	return int(c.Counters().SilentSteps)
}

// Energy summarizes per-node transmission counts: what a battery budget
// cares about.
type Energy struct {
	Total   int64
	Nodes   int // nodes that transmitted at least once
	Max     int
	MaxNode int
	Mean    float64
}

// Energy aggregates the per-node transmission counts observed so far.
func (c *Collector) Energy() Energy {
	e := Energy{MaxNode: -1}
	for v, n := range c.txPerNode {
		e.Total += int64(n)
		e.Nodes++
		if n > e.Max || (n == e.Max && (e.MaxNode == -1 || v < e.MaxNode)) {
			e.Max, e.MaxNode = n, v
		}
	}
	if e.Nodes > 0 {
		e.Mean = float64(e.Total) / float64(e.Nodes)
	}
	return e
}

// Progress describes how a broadcast moved through the network's BFS
// layers.
type Progress struct {
	// LayerDone[l] is the step at which the last node of layer l was
	// informed (0 for the source layer).
	LayerDone []int
	// InformedByStep[t] is the cumulative number of informed nodes after
	// step t; index 0 holds the initial state (the source).
	InformedByStep []int
	// Radius is the network radius.
	Radius int
}

// AnalyzeProgress derives layer completion times from a finished run.
func AnalyzeProgress(g *graph.Graph, res *radio.Result) (*Progress, error) {
	layers, err := g.Layers()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	p := &Progress{Radius: len(layers) - 1}
	for _, layer := range layers {
		done := 0
		for _, v := range layer {
			at := res.InformedAt[v]
			if at < 0 {
				at = res.StepsSimulated + 1 // never informed: censored
			}
			if at > done {
				done = at
			}
		}
		p.LayerDone = append(p.LayerDone, done)
	}

	// Cumulative informed counts.
	steps := res.StepsSimulated
	counts := make([]int, steps+1)
	for _, at := range res.InformedAt {
		if at >= 0 && at <= steps {
			counts[at]++
		}
	}
	total := 0
	p.InformedByStep = make([]int, steps+1)
	for t := 0; t <= steps; t++ {
		total += counts[t]
		p.InformedByStep[t] = total
	}
	return p, nil
}

// PerLayerDelays returns LayerDone[l] - LayerDone[l-1]: the steps each
// layer crossing cost.
func (p *Progress) PerLayerDelays() []int {
	if len(p.LayerDone) < 2 {
		return nil
	}
	out := make([]int, 0, len(p.LayerDone)-1)
	for l := 1; l < len(p.LayerDone); l++ {
		out = append(out, p.LayerDone[l]-p.LayerDone[l-1])
	}
	return out
}

// SlowestLayer returns the layer index whose crossing cost the most steps
// and that cost (layer 0 never qualifies). Returns (-1, 0) for radius 0.
func (p *Progress) SlowestLayer() (layer, delay int) {
	layer = -1
	for l, d := range p.PerLayerDelays() {
		if d > delay {
			layer, delay = l+1, d
		}
	}
	return layer, delay
}

// Timeline renders an ASCII chart (width columns) of the informed fraction
// over time, like:
//
//	|▁▂▃▅▇█| 100% after 57 steps
func (p *Progress) Timeline(width int) string {
	if width < 1 {
		width = 40
	}
	n := p.InformedByStep[len(p.InformedByStep)-1]
	if n == 0 {
		return "(no progress)"
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	b.WriteByte('|')
	last := len(p.InformedByStep) - 1
	for col := 0; col < width; col++ {
		t := (col + 1) * last / width
		frac := float64(p.InformedByStep[t]) / float64(n)
		idx := int(frac*float64(len(ramp))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	fmt.Fprintf(&b, "| %d/%d informed after %d steps", n, n, last)
	return b.String()
}

// TopTransmitters returns the k nodes that transmitted most, busiest first
// (ties broken by label).
func (c *Collector) TopTransmitters(k int) [][2]int {
	type pair struct{ node, n int }
	pairs := make([]pair, 0, len(c.txPerNode))
	for v, n := range c.txPerNode {
		pairs = append(pairs, pair{v, n})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		return pairs[i].node < pairs[j].node
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([][2]int, k)
	for i := 0; i < k; i++ {
		out[i] = [2]int{pairs[i].node, pairs[i].n}
	}
	return out
}
