package det

import "adhocradio/internal/radio"

// SelectAndSend is Algorithm Select-and-Send (Section 4.2): a DFS traversal
// by a token carrying the source message, where the next unvisited neighbor
// is found with Procedure Echo and Algorithm Binary-Selection. Broadcasting
// completes in O(n log n) steps on any n-node undirected network.
//
// Part 1: in step 1 the source orders its neighbor with label i to transmit
// in step 2i; after the first reply (step 2j, from the lowest-labelled
// neighbor j) it stops the procedure in step 2j+1 and sends the token to j.
// Part 2: the token holder v wakes its neighborhood, runs Echo(parent(v), S)
// over the unvisited neighbors S, and then either returns the token (S
// empty), forwards it to the unique member, or selects one member via
// doubling echoes and Binary-Selection.
type SelectAndSend struct{}

var _ radio.DeterministicProtocol = SelectAndSend{}

// Name implements radio.Protocol.
func (SelectAndSend) Name() string { return "select-and-send" }

// Deterministic implements radio.DeterministicProtocol.
func (SelectAndSend) Deterministic() bool { return true }

// NewNode implements radio.Protocol.
func (SelectAndSend) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	n := &ssNode{
		label:      label,
		r:          cfg.LabelBound(),
		parent:     -1,
		firstChild: -1,
		initAt:     -1,
		tokenAt:    -1,
		resp:       responder{label: label},
	}
	if label == 0 {
		n.visited = true
	}
	return n
}

type ssNode struct {
	label      int
	r          int
	visited    bool
	parent     int // DFS parent; -1 until the token first arrives
	firstChild int // source only: the node j found in part 1
	halted     bool

	// Part-1 state.
	initAt   int // step at which to transmit the init reply; -1 none
	initDone bool
	tokenAt  int // source: step at which to transmit the first token; -1 none

	resp  responder
	coord *coordinator
}

// Act implements radio.NodeProgram.
func (n *ssNode) Act(t int) (bool, any) {
	// Source bootstrap: part 1 of the algorithm.
	if n.label == 0 && t == 1 {
		return true, initCmd{}
	}
	if n.label == 0 && n.tokenAt == t {
		n.tokenAt = -1
		return true, tokenCmd{From: 0, To: n.firstChild, StopInit: true}
	}

	if n.coord != nil {
		tx, payload := n.coord.act(t)
		if n.coord.done {
			return n.finishVisit(t)
		}
		return tx, payload
	}

	// Scheduled init reply (part 1 responder).
	if n.initAt == t && !n.initDone {
		n.initDone = true
		return true, echoReply{Label: n.label}
	}

	return n.resp.act(t, n.inSet)
}

// finishVisit emits the token transfer decided by the completed visit.
func (n *ssNode) finishVisit(t int) (bool, any) {
	c := n.coord
	n.coord = nil
	if c.sEmpty {
		if n.label == 0 {
			// DFS complete: the source stops.
			n.halted = true
			return false, nil
		}
		// "v sends the token to parent(v) and stops."
		return true, tokenCmd{From: n.label, To: n.parent}
	}
	return true, tokenCmd{From: n.label, To: c.selected}
}

// inSet implements the membership predicate for echo commands: S is the set
// of unvisited neighbors of the coordinator.
func (n *ssNode) inSet(cmd *echoCmd) bool {
	return cmd.Mode == modeUnvisited && !n.visited
}

// Deliver implements radio.NodeProgram.
func (n *ssNode) Deliver(t int, msg radio.Message) {
	switch payload := msg.Payload.(type) {
	case echoCmd:
		n.resp.hear(payload)
	case initCmd:
		// "neighbor with label i transmits in step 2i" (labels i > 0).
		if n.label > 0 {
			n.initAt = 2 * n.label
		}
	case tokenCmd:
		if payload.StopInit {
			n.initAt = -1
		}
		if payload.To != n.label {
			return
		}
		if !n.visited {
			n.visited = true
			n.parent = payload.From
		}
		w := n.parent
		if n.label == 0 {
			w = n.firstChild
		}
		n.coord = newCoordinator(n.label, n.r, w, modeUnvisited, t+1)
	case echoReply:
		if n.coord != nil {
			n.coord.deliver(t, msg)
			return
		}
		// Source in part 1: first reply arrives at step 2j from neighbor j.
		if n.label == 0 && n.firstChild == -1 {
			n.firstChild = payload.Label
			n.tokenAt = t + 1
		}
	}
}
