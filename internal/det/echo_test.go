package det

import (
	"testing"
	"testing/quick"

	"adhocradio/internal/radio"
)

// driveCoordinator runs a coordinator against an ideal radio channel over
// responder set S (labels > 0) with distinguished node w, emulating the
// collision rule exactly: the coordinator hears a reply iff exactly one
// responder transmits. It returns the selected label (-1 when S empty) and
// the number of steps consumed.
func driveCoordinator(t *testing.T, r int, w int, s map[int]bool, maxSteps int) (int, int) {
	t.Helper()
	c := newCoordinator(99, r, w, modeUnvisited, 1)
	var lastCmd echoCmd
	for step := 1; step <= maxSteps; step++ {
		tx, payload := c.act(step)
		if c.done {
			if c.sEmpty {
				return -1, step
			}
			return c.selected, step
		}
		if tx {
			cmd, ok := payload.(echoCmd)
			if !ok {
				t.Fatalf("coordinator transmitted %T", payload)
			}
			lastCmd = cmd
			continue
		}
		// Emulate the channel at echo steps.
		responders := make([]int, 0, len(s)+1)
		if step == lastCmd.Step1 || step == lastCmd.Step2 {
			for label := range s {
				if label >= lastCmd.Lo && label <= lastCmd.Hi {
					responders = append(responders, label)
				}
			}
			if step == lastCmd.Step2 && w > 0 && !containsInt(responders, w) {
				responders = append(responders, w)
			}
		}
		if len(responders) == 1 {
			c.deliver(step, radio.Message{From: responders[0], Payload: echoReply{Label: responders[0]}})
		}
	}
	t.Fatalf("coordinator did not finish within %d steps (S=%v)", maxSteps, s)
	return 0, 0
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestCoordinatorEmptySet(t *testing.T) {
	sel, steps := driveCoordinator(t, 63, 7, map[int]bool{}, 100)
	if sel != -1 {
		t.Fatalf("selected %d from empty set", sel)
	}
	if steps != 4 {
		t.Fatalf("empty-set visit took %d steps, want 4 (cmd+echo+echo+decide)", steps)
	}
}

func TestCoordinatorSingleton(t *testing.T) {
	sel, steps := driveCoordinator(t, 63, 7, map[int]bool{13: true}, 100)
	if sel != 13 {
		t.Fatalf("selected %d, want 13", sel)
	}
	if steps != 4 {
		t.Fatalf("singleton visit took %d steps", steps)
	}
}

func TestCoordinatorPair(t *testing.T) {
	sel, _ := driveCoordinator(t, 63, 7, map[int]bool{3: true, 40: true}, 200)
	if sel != 3 && sel != 40 {
		t.Fatalf("selected %d not in S", sel)
	}
}

func TestCoordinatorAdjacentLabels(t *testing.T) {
	// The size-1 Binary-Selection range case: both x and x+1 present.
	for base := 1; base < 20; base++ {
		s := map[int]bool{base: true, base + 1: true}
		sel, _ := driveCoordinator(t, 63, 50, s, 300)
		if !s[sel] {
			t.Fatalf("base %d: selected %d not in S", base, sel)
		}
	}
}

func TestCoordinatorSelectsFromAnySet(t *testing.T) {
	// Property: for any non-empty S ⊆ [1, r], the selected node is in S and
	// the visit takes O(log r) echoes.
	f := func(bits uint16, seed uint8) bool {
		const r = 127
		s := map[int]bool{}
		// Spread up to 16 members over [1, r] pseudo-randomly.
		x := int(seed)%r + 1
		for i := 0; i < 16; i++ {
			if bits&(1<<i) != 0 {
				s[(x*(i+3))%r+1] = true
			}
		}
		w := r // distinguished responder outside typical member range
		sel, steps := driveCoordinator(t, r, w, s, 1000)
		if len(s) == 0 {
			return sel == -1
		}
		if !s[sel] {
			return false
		}
		// 3 steps per echo; first echo + ≤ log r doubling + ≤ log r binsel
		// + decide: generous bound 3·(2·7+2)+4.
		return steps <= 3*16+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorWInSet(t *testing.T) {
	// The distinguished node w can itself be in the label range; step 2
	// then has |A|+1 transmitters. Selection must still land in S.
	s := map[int]bool{2: true, 3: true, 5: true}
	sel, _ := driveCoordinator(t, 63, 3, s, 300)
	if !s[sel] {
		t.Fatalf("selected %d not in S", sel)
	}
}

func TestResponderIgnoresWithoutCommand(t *testing.T) {
	r := responder{label: 5}
	if tx, _ := r.act(10, func(*echoCmd) bool { return true }); tx {
		t.Fatal("responder transmitted without a command")
	}
}

func TestResponderFollowsSchedule(t *testing.T) {
	r := responder{label: 5}
	r.hear(echoCmd{W: 9, Lo: 1, Hi: 6, Step1: 11, Step2: 12, Mode: modeUnvisited})
	in := func(*echoCmd) bool { return true }
	out := func(*echoCmd) bool { return false }

	if tx, _ := r.act(10, in); tx {
		t.Fatal("transmitted before Step1")
	}
	tx, payload := r.act(11, in)
	if !tx || payload.(echoReply).Label != 5 {
		t.Fatal("member did not reply at Step1")
	}
	if tx, _ := r.act(11, out); tx {
		t.Fatal("non-member replied at Step1")
	}
	if tx, _ := r.act(12, in); !tx {
		t.Fatal("member did not reply at Step2")
	}
	if tx, _ := r.act(13, in); tx {
		t.Fatal("transmitted after Step2")
	}

	// Out-of-range label never replies.
	r2 := responder{label: 50}
	r2.hear(echoCmd{W: 9, Lo: 1, Hi: 6, Step1: 11, Step2: 12})
	if tx, _ := r2.act(11, in); tx {
		t.Fatal("out-of-range label replied")
	}

	// The distinguished node replies at Step2 even when outside the range
	// or the set.
	rw := responder{label: 9}
	rw.hear(echoCmd{W: 9, Lo: 1, Hi: 6, Step1: 11, Step2: 12})
	if tx, _ := rw.act(12, out); !tx {
		t.Fatal("distinguished node silent at Step2")
	}
	if tx, _ := rw.act(11, out); tx {
		t.Fatal("distinguished node replied at Step1")
	}
}

func TestEchoReplyIsLabelOnly(t *testing.T) {
	var p any = echoReply{Label: 3}
	c, ok := p.(radio.SourceCarrier)
	if !ok || c.CarriesSourceMessage() {
		t.Fatal("echoReply must declare it does not carry the source message")
	}
}
