package det

import (
	"math"
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

func TestDFSNeighborhoodLinearOnPath(t *testing.T) {
	// On a path the token walks straight down: node v informed at step v.
	g := graph.Path(16)
	res := mustRun(t, g, DFSNeighborhood{})
	for v, at := range res.InformedAt {
		if at != v {
			t.Fatalf("InformedAt[%d] = %d", v, at)
		}
	}
	if res.Collisions != 0 {
		t.Fatalf("%d collisions in a single-transmitter protocol", res.Collisions)
	}
}

func TestDFSNeighborhoodWithinTwoN(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		graph.Clique(60),
		graph.Grid(8, 9),
		graph.GNPConnected(150, 0.04, src),
		graph.RandomTree(150, src),
		graph.Star(80),
		graph.Caterpillar(20, 3),
	}
	for _, g := range graphs {
		res := mustRun(t, g, DFSNeighborhood{})
		if res.BroadcastTime > 2*g.N() {
			t.Fatalf("n=%d: time %d exceeds 2n", g.N(), res.BroadcastTime)
		}
	}
}

func TestDFSNeighborhoodBeatsSelectAndSendByLogFactor(t *testing.T) {
	// The whole point of the stronger model: a ~log n advantage.
	src := rng.New(2)
	g := graph.RandomTree(400, src)
	dfs := mustRun(t, g, DFSNeighborhood{})
	ss := mustRun(t, g, SelectAndSend{})
	ratio := float64(ss.BroadcastTime) / float64(dfs.BroadcastTime)
	if ratio < 2 {
		t.Fatalf("select-and-send/dfs ratio %.2f; expected a clear log-factor gap", ratio)
	}
	if ratio > 20*math.Log2(400) {
		t.Fatalf("ratio %.2f implausibly large", ratio)
	}
}

func TestDFSNeighborhoodDeterministicMarker(t *testing.T) {
	var p radio.Protocol = DFSNeighborhood{}
	if _, ok := p.(radio.NeighborAwareProtocol); !ok {
		t.Fatal("DFSNeighborhood must declare neighborhood awareness")
	}
	d, ok := p.(radio.DeterministicProtocol)
	if !ok || !d.Deterministic() {
		t.Fatal("DFSNeighborhood must declare determinism")
	}
}

func TestDFSNeighborhoodStallsWithoutNeighborKnowledge(t *testing.T) {
	// Built through plain NewNode (no neighbor lists) the source has no
	// token bootstrap: nothing ever transmits.
	prog := DFSNeighborhood{}.NewNode(0, radio.Config{N: 4})
	for step := 1; step <= 10; step++ {
		if tx, _ := prog.Act(step); tx {
			t.Fatal("neighbor-blind program transmitted")
		}
	}
}

func TestDFSTokenVisitedSharingIsSafe(t *testing.T) {
	// The token's visited set must not be mutated by a node after it was
	// transmitted onward (Clone on extension). Walk a star: the center
	// keeps receiving tokens back; each leaf's token must contain exactly
	// the leaves visited so far.
	g := graph.Star(6)
	var tokens []dfsToken
	trace := func(step int, tx []int, rx []radio.Message) {
		for _, m := range rx {
			if tok, ok := m.Payload.(dfsToken); ok {
				tokens = append(tokens, tok)
			}
		}
	}
	_, err := radio.Run(g, DFSNeighborhood{}, radio.Config{},
		radio.Options{Trace: trace, MaxSteps: 100, RunToMaxSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	// Visited sets along the walk must be non-decreasing in size.
	prev := 0
	for i, tok := range tokens {
		l := tok.Visited.Len()
		if l < prev {
			t.Fatalf("token %d shrank the visited set: %d < %d", i, l, prev)
		}
		prev = l
	}
	if prev != 6 {
		t.Fatalf("final visited set has %d of 6 nodes", prev)
	}
}
