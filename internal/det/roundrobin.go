package det

import "adhocradio/internal/radio"

// RoundRobin is the classic deterministic baseline mentioned in Section 4.2:
// the informed node with label v transmits exactly at steps t with
// t ≡ v (mod R+1). Each round of R+1 steps gives every informed node one
// collision-free slot, so the front advances at least one layer per round:
// broadcasting completes within O(nD) steps (more precisely (R+1)·D).
type RoundRobin struct{}

var _ radio.DeterministicProtocol = RoundRobin{}

// Name implements radio.Protocol.
func (RoundRobin) Name() string { return "round-robin" }

// Deterministic implements radio.DeterministicProtocol.
func (RoundRobin) Deterministic() bool { return true }

// NewNode implements radio.Protocol.
func (RoundRobin) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	return &rrNode{label: label, period: cfg.LabelBound() + 1}
}

type rrNode struct {
	label  int
	period int
}

// rrPayload is the round-robin broadcast message (carries the source
// message).
type rrPayload struct{}

// Act implements radio.NodeProgram.
func (n *rrNode) Act(t int) (bool, any) {
	if t%n.period == n.label%n.period {
		return true, rrPayload{}
	}
	return false, nil
}

// Deliver implements radio.NodeProgram.
func (n *rrNode) Deliver(t int, msg radio.Message) {}
