package det

import "adhocradio/internal/radio"

// CompleteLayered is Algorithm Complete-Layered (Section 4.3): broadcasting
// in O(n + D log n) steps on undirected complete layered networks, refuting
// the claimed Ω(n log D) lower bound of [10] for the undirected case.
//
// Phase 1 is the same bootstrap as Select-and-Send part 1 and selects a
// leader v_1 in layer 1. In phase k+1 the leader v_k transmits the source
// message (waking the whole layer L_{k+1} at once — in a complete layered
// network every L_{k+1} node neighbors every L_k node), then runs
// Echo(v_{k-1}, S) over S = {neighbors first informed by that wake
// transmission} = L_{k+1}, selecting the next leader v_{k+1} by doubling
// echoes and Binary-Selection. An empty S means k = D and the algorithm
// stops. Phase 1 costs O(n); each of the D-1 later phases costs O(log n).
type CompleteLayered struct{}

var _ radio.DeterministicProtocol = CompleteLayered{}

// Name implements radio.Protocol.
func (CompleteLayered) Name() string { return "complete-layered" }

// Deterministic implements radio.DeterministicProtocol.
func (CompleteLayered) Deterministic() bool { return true }

// NewNode implements radio.Protocol.
func (CompleteLayered) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	n := &clNode{
		label:      label,
		r:          cfg.LabelBound(),
		layer:      -1,
		informedAt: -1,
		initAt:     -1,
		tokenAt:    -1,
		firstChild: -1,
		resp:       responder{label: label},
	}
	if label == 0 {
		n.layer = 0
		n.informedAt = 0
	}
	return n
}

type clNode struct {
	label      int
	r          int
	layer      int
	informedAt int
	halted     bool

	// Phase-1 state (mirrors Select-and-Send part 1).
	initAt     int
	initDone   bool
	tokenAt    int
	firstChild int

	prev  int // v_{k-1}, learned when appointed leader
	resp  responder
	coord *coordinator
}

// Act implements radio.NodeProgram.
func (n *clNode) Act(t int) (bool, any) {
	if n.halted {
		return false, nil
	}
	if n.label == 0 && t == 1 {
		return true, initCmd{}
	}
	if n.label == 0 && n.tokenAt == t {
		n.tokenAt = -1
		// Appoint v_1 := j; v_1 knows v_0 = 0 from the From field.
		return true, tokenCmd{From: 0, To: n.firstChild, StopInit: true, Layer: 1}
	}

	if n.coord != nil {
		tx, payload := n.coord.act(t)
		if n.coord.done {
			return n.finishPhase(t)
		}
		return tx, payload
	}

	if n.initAt == t && !n.initDone {
		n.initDone = true
		return true, echoReply{Label: n.label}
	}

	return n.resp.act(t, n.inSet)
}

// finishPhase emits the leader appointment (or the terminal stop order).
func (n *clNode) finishPhase(t int) (bool, any) {
	c := n.coord
	n.coord = nil
	if c.sEmpty {
		// |S| = 0: this is the last layer (D = k); order everyone to stop.
		n.halted = true
		return true, stopCmd{}
	}
	return true, tokenCmd{From: n.label, To: c.selected, Layer: n.layer + 1}
}

// inSet reports membership in S: first informed exactly at the leader's
// wake transmission.
func (n *clNode) inSet(cmd *echoCmd) bool {
	return cmd.Mode == modeWokenAt && n.informedAt == cmd.WakeStep
}

// Deliver implements radio.NodeProgram.
func (n *clNode) Deliver(t int, msg radio.Message) {
	if n.informedAt == -1 {
		n.informedAt = t
	}
	switch payload := msg.Payload.(type) {
	case echoCmd:
		n.resp.hear(payload)
	case initCmd:
		if n.label > 0 {
			n.initAt = 2 * n.label
			n.layer = 1
		}
	case tokenCmd:
		if payload.StopInit {
			n.initAt = -1
		}
		if payload.To != n.label {
			return
		}
		n.layer = payload.Layer
		n.prev = payload.From
		// Phase k+1: the first command doubles as the wake transmission.
		n.coord = newCoordinator(n.label, n.r, n.prev, modeWokenAt, t+1)
	case echoReply:
		if n.coord != nil {
			n.coord.deliver(t, msg)
			return
		}
		if n.label == 0 && n.firstChild == -1 {
			n.firstChild = payload.Label
			n.tokenAt = t + 1
		}
	case stopCmd:
		n.halted = true
	}
}
