package det

import (
	"fmt"

	"adhocradio/internal/radio"
	"adhocradio/internal/sequences"
)

// ObliviousDecay is a deterministic, oblivious transmission schedule in the
// spirit of the derandomized Decay protocols for directed networks
// (Section 1.1's references [8,9,14] build such schedules from selective
// families): whether the node with label v transmits in step t is a fixed
// function of (v, t) — here, a seeded hash selecting v with "probability"
// 2^{-(t mod k)} where k is the ladder length. Informed nodes follow the
// schedule; nobody adapts to what they hear.
//
// Such schedules broadcast on any (directed or undirected) network in
// O((D + log n)·polylog n) steps for most seeds, need no feedback — and,
// being oblivious, are the natural victims of the directed layered
// adversary (lowerbound.BuildDirectedLayered).
type ObliviousDecay struct {
	// Seed fixes the schedule. Two instances with the same seed are the
	// same deterministic protocol.
	Seed uint64
}

var _ radio.DeterministicProtocol = ObliviousDecay{}

// Name implements radio.Protocol.
func (o ObliviousDecay) Name() string { return fmt.Sprintf("oblivious-decay(%d)", o.Seed) }

// Deterministic implements radio.DeterministicProtocol: the schedule is a
// fixed function of (label, step); the simulation seed is ignored.
func (o ObliviousDecay) Deterministic() bool { return true }

// NewNode implements radio.Protocol.
func (o ObliviousDecay) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	return &oblNode{
		label:  label,
		ladder: sequences.CeilLog2(cfg.LabelBound()+1) + 1,
		seed:   o.Seed,
	}
}

type oblNode struct {
	label  int
	ladder int
	seed   uint64
}

// inSchedule reports whether label v is selected at step t: a hash of
// (seed, t, v) must land in the lowest 2^{64-l} fraction, i.e. have l
// leading zero bits, where l = t mod ladder.
func inSchedule(seed uint64, t, v, ladder int) bool {
	l := uint(t % ladder)
	if l == 0 {
		return true
	}
	h := hash3(seed, uint64(t), uint64(v))
	return h>>(64-l) == 0
}

// hash3 mixes three words SplitMix-style.
func hash3(a, b, c uint64) uint64 {
	x := a ^ 0x9e3779b97f4a7c15
	x = (x ^ b) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 31) ^ c) * 0x94d049bb133111eb
	return x ^ (x >> 29)
}

// Act implements radio.NodeProgram.
func (n *oblNode) Act(t int) (bool, any) {
	if inSchedule(n.seed, t, n.label, n.ladder) {
		return true, oblPayload{}
	}
	return false, nil
}

// Deliver implements radio.NodeProgram: oblivious schedules ignore
// receptions (beyond the informing effect the simulator handles).
func (n *oblNode) Deliver(t int, msg radio.Message) {}

// oblPayload is the broadcast message (carries the source message).
type oblPayload struct{}
