package det

import (
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

func TestSpontaneousLinearWithinThreeN(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		graph.Path(40),
		graph.Star(40),
		graph.Clique(30),
		graph.Grid(6, 7),
		graph.RandomTree(100, src),
		graph.GNPConnected(100, 0.05, src),
	}
	for _, g := range graphs {
		res := mustRun(t, g, SpontaneousLinear{})
		bound := (g.N() - 1 + 1) + 2*g.N() // (R+1) + 2n
		if res.BroadcastTime > bound {
			t.Fatalf("n=%d: time %d exceeds (R+1)+2n = %d", g.N(), res.BroadcastTime, bound)
		}
	}
}

func TestSpontaneousLinearLinearScaling(t *testing.T) {
	src := rng.New(2)
	t1 := mustRun(t, graph.RandomTree(200, src), SpontaneousLinear{}).BroadcastTime
	t2 := mustRun(t, graph.RandomTree(400, src), SpontaneousLinear{}).BroadcastTime
	ratio := float64(t2) / float64(t1)
	if ratio > 2.6 {
		t.Fatalf("doubling n scaled time by %.2f; not linear", ratio)
	}
}

func TestSpontaneousLinearBeatsSelectAndSend(t *testing.T) {
	// The point of the model variant: O(n) beats Θ(n log n).
	src := rng.New(3)
	g := graph.RandomTree(500, src)
	sp := mustRun(t, g, SpontaneousLinear{}).BroadcastTime
	ss := mustRun(t, g, SelectAndSend{}).BroadcastTime
	if sp >= ss {
		t.Fatalf("spontaneous %d not faster than select-and-send %d", sp, ss)
	}
}

func TestSpontaneousNeighborDiscoveryExact(t *testing.T) {
	// After phase 1, each node's discovered neighbor set must equal the
	// graph's adjacency. Inspect the programs through a capturing protocol.
	g := graph.Grid(4, 4)
	nodes := map[int]*spontNode{}
	capturing := capturingProtocol{
		inner: SpontaneousLinear{},
		hook: func(label int, prog radio.NodeProgram) {
			nodes[label] = prog.(*spontNode)
		},
	}
	if _, err := radio.Run(g, capturing, radio.Config{}, radio.Options{}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		prog := nodes[v]
		if prog == nil {
			t.Fatalf("no program for %d", v)
		}
		want := map[int]bool{}
		for _, u := range g.Out(v) {
			want[u] = true
		}
		if len(prog.neighbors) != len(want) {
			t.Fatalf("node %d discovered %v, want %v", v, prog.neighbors, g.Out(v))
		}
		for _, u := range prog.neighbors {
			if !want[u] {
				t.Fatalf("node %d discovered non-neighbor %d", v, u)
			}
		}
	}
}

// capturingProtocol exposes the programs the simulator builds. It forwards
// the Spontaneous marker so Run treats it like the inner protocol.
type capturingProtocol struct {
	inner radio.Protocol
	hook  func(label int, prog radio.NodeProgram)
}

func (c capturingProtocol) Name() string { return c.inner.Name() }
func (c capturingProtocol) Spontaneous() bool {
	sp, ok := c.inner.(radio.SpontaneousProtocol)
	return ok && sp.Spontaneous()
}
func (c capturingProtocol) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	prog := c.inner.NewNode(label, cfg)
	c.hook(label, prog)
	return prog
}

func TestSpontaneousInformednessIsFaithful(t *testing.T) {
	// Phase-1 announcements from non-source nodes must not inform anyone:
	// on a path, node v's informed step is governed by the source's
	// announcement (neighbors of 0) and then the DFS walk, never by a
	// plain label announcement.
	g := graph.Path(10)
	res := mustRun(t, g, SpontaneousLinear{})
	if res.InformedAt[1] != 1 {
		t.Fatalf("neighbor of source informed at %d, want 1 (source announcement)", res.InformedAt[1])
	}
	// Node 2 hears node 1's announcement at step 2, which must NOT inform
	// it; it waits for the phase-2 token.
	if res.InformedAt[2] <= g.N() {
		t.Fatalf("node 2 informed at %d, before phase 2", res.InformedAt[2])
	}
}

func TestSpontaneousMarkers(t *testing.T) {
	var p radio.Protocol = SpontaneousLinear{}
	sp, ok := p.(radio.SpontaneousProtocol)
	if !ok || !sp.Spontaneous() {
		t.Fatal("SpontaneousLinear must declare spontaneity")
	}
	d, ok := p.(radio.DeterministicProtocol)
	if !ok || !d.Deterministic() {
		t.Fatal("SpontaneousLinear must declare determinism")
	}
}
