package det

import (
	"fmt"

	"adhocradio/internal/radio"
)

// Interleaved alternates two broadcasting protocols on odd and even steps,
// the Section 4.2 trick: "Interleaving both algorithms, we get broadcasting
// in time O(n·min(D, log n))". Protocol A owns odd steps (its virtual step
// s runs at global step 2s-1), protocol B owns even steps (virtual step s
// at global step 2s). Each sub-program sees only its own virtual clock, so
// any step-addressed scheduling inside the sub-protocols keeps working.
//
// A node's first reception is forwarded to both sub-programs (the source
// message is shared knowledge); every later reception goes only to the
// owner of its step parity. Sub-programs must ignore payloads they do not
// recognize, which all protocols in this repository do.
type Interleaved struct {
	A, B radio.Protocol
}

var _ radio.Protocol = Interleaved{}

// NewInterleaved combines two protocols; the canonical instance is
// NewInterleaved(RoundRobin{}, SelectAndSend{}).
func NewInterleaved(a, b radio.Protocol) Interleaved {
	return Interleaved{A: a, B: b}
}

// Name implements radio.Protocol.
func (p Interleaved) Name() string {
	return fmt.Sprintf("interleave(%s,%s)", p.A.Name(), p.B.Name())
}

// Deterministic implements radio.DeterministicProtocol when both halves are
// deterministic.
func (p Interleaved) Deterministic() bool {
	da, okA := p.A.(radio.DeterministicProtocol)
	db, okB := p.B.(radio.DeterministicProtocol)
	return okA && okB && da.Deterministic() && db.Deterministic()
}

// NewNode implements radio.Protocol.
func (p Interleaved) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	return &ilNode{
		a: p.A.NewNode(label, cfg),
		b: p.B.NewNode(label, cfg),
	}
}

type ilNode struct {
	a, b      radio.NodeProgram
	delivered bool
}

// Act implements radio.NodeProgram.
func (n *ilNode) Act(t int) (bool, any) {
	if t%2 == 1 {
		return n.a.Act((t + 1) / 2)
	}
	return n.b.Act(t / 2)
}

// Deliver implements radio.NodeProgram.
func (n *ilNode) Deliver(t int, msg radio.Message) {
	if t%2 == 1 {
		n.a.Deliver((t+1)/2, msg)
		if !n.delivered {
			// First contact: the other half is informed too. Its virtual
			// clock has completed t/2 steps; deliver there so it starts
			// participating (payload will be foreign and ignored beyond
			// the informing effect). Virtual step 0 is impossible, so
			// clamp to 1 for a reception on global step 1.
			vb := t / 2
			if vb < 1 {
				vb = 1
			}
			n.b.Deliver(vb, msg)
		}
	} else {
		n.b.Deliver(t/2, msg)
		if !n.delivered {
			n.a.Deliver(t/2, msg)
		}
	}
	n.delivered = true
}
