package det

import (
	"adhocradio/internal/bitset"
	"adhocradio/internal/radio"
)

// DFSNeighborhood is the linear-time broadcasting algorithm of Section
// 1.1's stronger knowledge model (reference [3], following Awerbuch's
// distributed DFS [2]): every node knows its neighbors' labels a priori. A
// token carrying the source message and the set of already-visited nodes
// walks the network depth-first; each hop is a single collision-free
// transmission, so broadcasting completes within 2n steps. Comparing it to
// Select-and-Send quantifies what the Θ(log n) Echo/Binary-Selection
// machinery pays for not knowing the neighborhood.
type DFSNeighborhood struct{}

var (
	_ radio.DeterministicProtocol = DFSNeighborhood{}
	_ radio.NeighborAwareProtocol = DFSNeighborhood{}
)

// Name implements radio.Protocol.
func (DFSNeighborhood) Name() string { return "dfs-neighborhood" }

// Deterministic implements radio.DeterministicProtocol.
func (DFSNeighborhood) Deterministic() bool { return true }

// NewNode implements radio.Protocol. DFSNeighborhood is only meaningful
// with neighborhood knowledge; a node built without it stays silent (and a
// simulation would rightly fail its step budget).
func (DFSNeighborhood) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	return &dfsNode{label: label}
}

// NewNodeWithNeighbors implements radio.NeighborAwareProtocol.
func (DFSNeighborhood) NewNodeWithNeighbors(label int, neighbors []int, cfg radio.Config) radio.NodeProgram {
	n := &dfsNode{label: label, neighbors: neighbors, parent: -1}
	if label == 0 {
		n.visited = bitset.New(cfg.LabelBound() + 1)
		n.visited.Add(0)
		n.holdsToken = true
		n.tokenAt = 1
	}
	return n
}

// dfsToken is the token message: it carries the source message, the target
// of this hop, and the global visited set. The radio model places no bound
// on message size (messages may carry whole histories, cf. Section 3), so
// shipping the visited set is legitimate.
type dfsToken struct {
	To      int
	From    int
	Visited *bitset.Set
}

type dfsNode struct {
	label     int
	neighbors []int
	parent    int

	holdsToken bool
	tokenAt    int // step at which to transmit the token onward
	visited    *bitset.Set
	done       bool
}

// Act implements radio.NodeProgram.
func (n *dfsNode) Act(t int) (bool, any) {
	if !n.holdsToken || n.done || t != n.tokenAt {
		return false, nil
	}
	// Pick the lowest-labelled unvisited neighbor; if none, return the
	// token to the parent (or stop at the source).
	next := -1
	for _, w := range n.neighbors {
		if !n.visited.Contains(w) && (next == -1 || w < next) {
			next = w
		}
	}
	n.holdsToken = false
	if next == -1 {
		if n.label == 0 {
			n.done = true
			return false, nil
		}
		return true, dfsToken{To: n.parent, From: n.label, Visited: n.visited}
	}
	v := n.visited.Clone()
	v.Add(next)
	return true, dfsToken{To: next, From: n.label, Visited: v}
}

// Deliver implements radio.NodeProgram.
func (n *dfsNode) Deliver(t int, msg radio.Message) {
	tok, ok := msg.Payload.(dfsToken)
	if !ok || tok.To != n.label {
		return
	}
	if n.parent == -1 && n.label != 0 {
		n.parent = tok.From
	}
	n.holdsToken = true
	n.tokenAt = t + 1
	n.visited = tok.Visited
}
