package det

import (
	"math"
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

func mustRun(t *testing.T, g *graph.Graph, p radio.Protocol) *radio.Result {
	t.Helper()
	res, err := radio.Run(g, p, radio.Config{}, radio.Options{})
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if !res.Completed {
		t.Fatalf("%s: incomplete", p.Name())
	}
	return res
}

func TestRoundRobinExactOnSmallPath(t *testing.T) {
	// Path 0-1-2, R=2, period 3. Node 0 transmits at t=3 (informing 1),
	// node 1 at t=4 (informing 2).
	res := mustRun(t, graph.Path(3), RoundRobin{})
	if res.BroadcastTime != 4 {
		t.Fatalf("BroadcastTime = %d, want 4", res.BroadcastTime)
	}
}

func TestRoundRobinWithinNDBound(t *testing.T) {
	for _, n := range []int{8, 32, 100} {
		g := graph.Path(n)
		res := mustRun(t, g, RoundRobin{})
		if res.BroadcastTime > n*(n-1) {
			t.Fatalf("n=%d: time %d exceeds (R+1)·D", n, res.BroadcastTime)
		}
	}
}

func TestRoundRobinOnVariedTopologies(t *testing.T) {
	src := rng.New(1)
	graphs := []*graph.Graph{
		graph.Star(40),
		graph.Clique(30),
		graph.Grid(6, 7),
		graph.GNPConnected(80, 0.05, src),
		graph.RandomTree(80, src),
	}
	for _, g := range graphs {
		mustRun(t, g, RoundRobin{})
	}
}

func TestSelectAndSendSmallestCases(t *testing.T) {
	// n=2: source informs node 1 at step 1.
	res := mustRun(t, graph.Path(2), SelectAndSend{})
	if res.BroadcastTime != 1 {
		t.Fatalf("n=2: BroadcastTime = %d", res.BroadcastTime)
	}
	// Star: the very first init transmission informs every leaf.
	res = mustRun(t, graph.Star(30), SelectAndSend{})
	if res.BroadcastTime != 1 {
		t.Fatalf("star: BroadcastTime = %d", res.BroadcastTime)
	}
}

func TestSelectAndSendPath(t *testing.T) {
	// Every path node must be woken by the token walking down the path.
	res := mustRun(t, graph.Path(20), SelectAndSend{})
	// Monotone wake order along the path.
	for v := 1; v < 20; v++ {
		if res.InformedAt[v] <= res.InformedAt[v-1] {
			t.Fatalf("path wake order broken at %d: %v", v, res.InformedAt[:v+1])
		}
	}
}

func TestSelectAndSendVariedTopologies(t *testing.T) {
	src := rng.New(2)
	graphs := map[string]*graph.Graph{
		"clique":  graph.Clique(40),
		"grid":    graph.Grid(7, 9),
		"gnp":     graph.GNPConnected(120, 0.04, src),
		"tree":    graph.RandomTree(150, src),
		"cat":     graph.Caterpillar(20, 3),
		"chain":   graph.StarChain(5, 9),
		"layered": mustLayered(t, 90, 9),
	}
	for name, g := range graphs {
		res := mustRun(t, g, SelectAndSend{})
		n := float64(g.N())
		bound := 40 * n * math.Log2(n)
		if float64(res.BroadcastTime) > bound {
			t.Fatalf("%s: time %d far above c·n·log n (%f)", name, res.BroadcastTime, bound)
		}
	}
}

func mustLayered(t *testing.T, n, d int) *graph.Graph {
	t.Helper()
	g, err := graph.UniformCompleteLayered(n, d)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSelectAndSendScalesNLogN(t *testing.T) {
	// Doubling n on random trees should grow time by ~2·(1+o(1)), far
	// below the ~4x of a quadratic algorithm.
	src := rng.New(3)
	avg := func(n int) float64 {
		total := 0
		const trials = 3
		for i := 0; i < trials; i++ {
			g := graph.RandomTree(n, src)
			total += mustRun(t, g, SelectAndSend{}).BroadcastTime
		}
		return float64(total) / trials
	}
	t1, t2 := avg(200), avg(400)
	ratio := t2 / t1
	if ratio > 3.0 {
		t.Fatalf("doubling n scaled time by %.2f; too superlinear for O(n log n)", ratio)
	}
}

func TestCompleteLayeredOnPaths(t *testing.T) {
	// A path is a complete layered network with singleton layers.
	res := mustRun(t, graph.Path(12), CompleteLayered{})
	if res.BroadcastTime <= 0 {
		t.Fatal("no progress")
	}
}

func TestCompleteLayeredOnLayeredNetworks(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{40, 4}, {101, 10}, {200, 8}, {64, 63}, {33, 2}} {
		g := mustLayered(t, tc.n, tc.d)
		res := mustRun(t, g, CompleteLayered{})
		// Sanity: all of layer k informed when leader v_{k-1} wakes it, so
		// nodes of the same layer share their informed step.
		layers, err := g.Layers()
		if err != nil {
			t.Fatal(err)
		}
		for k, layer := range layers {
			if k == 0 {
				continue
			}
			for _, v := range layer[1:] {
				if res.InformedAt[v] != res.InformedAt[layer[0]] {
					t.Fatalf("n=%d d=%d layer %d informed at differing steps", tc.n, tc.d, k)
				}
			}
		}
	}
}

func TestCompleteLayeredTimeBound(t *testing.T) {
	// O(n + D log n): phase 1 is ~2·(lowest layer-1 label), later phases
	// O(log n) each. Compare against a generous constant.
	for _, tc := range []struct{ n, d int }{{256, 16}, {256, 64}, {512, 32}} {
		g := mustLayered(t, tc.n, tc.d)
		res := mustRun(t, g, CompleteLayered{})
		bound := 20.0 * (float64(tc.n) + float64(tc.d)*math.Log2(float64(tc.n)))
		if float64(res.BroadcastTime) > bound {
			t.Fatalf("n=%d d=%d: time %d above c(n + D log n) = %f", tc.n, tc.d, res.BroadcastTime, bound)
		}
	}
}

func TestCompleteLayeredIrregularLayerSizes(t *testing.T) {
	g, err := graph.CompleteLayered([]int{7, 1, 13, 2, 1, 9})
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, g, CompleteLayered{})
}

func TestInterleavedCompletesEverywhere(t *testing.T) {
	src := rng.New(4)
	p := NewInterleaved(RoundRobin{}, SelectAndSend{})
	if !p.Deterministic() {
		t.Fatal("interleave of deterministic protocols not deterministic")
	}
	graphs := []*graph.Graph{
		graph.Path(30),
		graph.Star(30),
		graph.Clique(25),
		graph.GNPConnected(100, 0.05, src),
		graph.RandomTree(100, src),
	}
	for _, g := range graphs {
		mustRun(t, g, p)
	}
}

func TestInterleavedNoSlowerThanTwiceBest(t *testing.T) {
	// On a short-diameter dense graph, round-robin wins; on a long path,
	// select-and-send's token wins for large n... here we just check the
	// structural guarantee: interleaved time <= 2·min(t_A, t_B) + O(1).
	src := rng.New(5)
	for _, g := range []*graph.Graph{
		graph.Star(60),
		graph.Path(40),
		graph.GNPConnected(80, 0.1, src),
	} {
		tA := mustRun(t, g, RoundRobin{}).BroadcastTime
		tB := mustRun(t, g, SelectAndSend{}).BroadcastTime
		ti := mustRun(t, g, NewInterleaved(RoundRobin{}, SelectAndSend{})).BroadcastTime
		best := tA
		if tB < best {
			best = tB
		}
		if ti > 2*best+2 {
			t.Fatalf("interleaved %d > 2·min(%d,%d)+2", ti, tA, tB)
		}
	}
}

func TestDeterministicMarkers(t *testing.T) {
	for _, p := range []radio.DeterministicProtocol{RoundRobin{}, SelectAndSend{}, CompleteLayered{}} {
		if !p.Deterministic() {
			t.Fatalf("%s does not declare determinism", p.Name())
		}
	}
}

func TestSelectAndSendIsReplayIdentical(t *testing.T) {
	src := rng.New(6)
	g := graph.GNPConnected(90, 0.06, src)
	a := mustRun(t, g, SelectAndSend{})
	b := mustRun(t, g, SelectAndSend{})
	if a.BroadcastTime != b.BroadcastTime || a.Transmissions != b.Transmissions {
		t.Fatal("deterministic protocol diverged across runs")
	}
}

func TestNoCollisionsDuringSelectAndSendCommands(t *testing.T) {
	// Commands and token transfers must be collision-free; collisions may
	// only happen during echo steps. We verify the stronger property that
	// the source's part-1 schedule works: node j = lowest-labelled neighbor
	// of 0 is the first token holder, i.e. the first non-source node whose
	// InformedAt advances... simpler: on a clique the token's first hop is
	// to label 1.
	g := graph.Clique(10)
	var tokenTo []int
	trace := func(step int, tx []int, rx []radio.Message) {
		for _, m := range rx {
			if tc, ok := m.Payload.(tokenCmd); ok {
				tokenTo = append(tokenTo, tc.To)
			}
		}
	}
	_, err := radio.Run(g, SelectAndSend{}, radio.Config{},
		radio.Options{Trace: trace, MaxSteps: 400, RunToMaxSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tokenTo) == 0 || tokenTo[0] != 1 {
		t.Fatalf("first token went to %v, want label 1 first", tokenTo)
	}
}
