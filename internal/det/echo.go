// Package det implements the paper's deterministic broadcasting algorithms
// (Section 4): the collision-detection simulation Echo and Algorithm
// Binary-Selection (4.1), Algorithm Select-and-Send (4.2), the round-robin
// baseline and the O(n·min(D, log n)) interleaving (4.2), and Algorithm
// Complete-Layered (4.3).
//
// All algorithms are genuinely distributed: a coordinator (the token holder
// or the current layer leader) embeds absolute step-addressed commands in
// its transmissions, and listeners obey only commands they actually
// received, exactly like the paper's "orders its neighbor with label i to
// transmit in step 2i". At any step, the only transmitters are the single
// active coordinator or the responders its latest command scheduled, so
// command steps are always collision-free.
package det

import "adhocradio/internal/radio"

// membershipMode says which listeners count as the echo set S.
type membershipMode int

const (
	// modeUnvisited selects listeners never visited by the DFS token
	// (Select-and-Send: S = neighbors of v outside V).
	modeUnvisited membershipMode = iota + 1
	// modeWokenAt selects listeners first informed exactly at WakeStep
	// (Complete-Layered: S = neighbors which obtained the source message in
	// the previous step).
	modeWokenAt
)

// echoCmd is a coordinator's order to run procedure Echo(w, A) where
// A = {listeners matching Mode with label in [Lo, Hi]}:
//
//	Step1: every node in A transmits its label.
//	Step2: every node in A, and also node W, transmits its label.
//
// The command itself carries the source message (it wakes listeners).
type echoCmd struct {
	Coordinator int
	W           int // distinguished responder of step 2; -1 for none
	Lo, Hi      int
	Step1       int
	Step2       int
	Mode        membershipMode
	WakeStep    int // for modeWokenAt: the step of the waking transmission
}

// initCmd is the source's step-1 order of Select-and-Send part 1 and of
// Complete-Layered phase 1: "neighbor with label i transmits in step 2i".
type initCmd struct{}

// tokenCmd transfers coordination to node To. For Select-and-Send it is the
// DFS token; for Complete-Layered it appoints the next layer leader.
// StopInit cancels a pending initCmd schedule ("ordering to stop this
// procedure"). It carries the source message.
type tokenCmd struct {
	From     int
	To       int
	StopInit bool
	// Layer tells the appointee its layer number (Complete-Layered).
	Layer int
}

// stopCmd ends Algorithm Complete-Layered ("ordering all of its neighbors
// to stop").
type stopCmd struct{}

// echoReply is a responder's transmission during an echo step: just its
// label, NOT the source message.
type echoReply struct{ Label int }

// CarriesSourceMessage implements radio.SourceCarrier: echo replies carry
// only a label, so they cannot inform a node.
func (echoReply) CarriesSourceMessage() bool { return false }

var _ radio.SourceCarrier = echoReply{}

// echoOutcome classifies the three possible effects of Procedure Echo at
// the initiating node (Section 4.1).
type echoOutcome int

const (
	echoOne   echoOutcome = iota + 1 // |A| == 1, label known
	echoEmpty                        // |A| == 0
	echoMany                         // |A| >= 2
)

// coordinator drives one "visit": the first full echo over S, then — when
// |S| > 1 — the doubling echoes Echo(w, S ∩ [1, 2^k]) and Algorithm
// Binary-Selection, ending with a selected node (or the discovery that S is
// empty). It is a passive state machine advanced by the owning node
// program: act(t) yields the coordinator's transmission for step t, and
// deliver records what the coordinator heard.
type coordinator struct {
	self     int
	r        int // label bound
	w        int // distinguished echo responder (parent / previous leader)
	mode     membershipMode
	wakeStep int

	// Script position: the current operation transmitted its command at
	// step cmdStep, listens at cmdStep+1 and cmdStep+2, and decides at
	// cmdStep+3.
	cmdStep int
	op      coordOp
	k       int // doubling exponent
	lo, hi  int // Binary-Selection range

	heard1 int // label heard at Step1, -1 if none
	heard2 bool

	// Outcome: exactly one of the following is set when done.
	done     bool
	selected int // label of the selected node, -1 when S was empty
	sEmpty   bool
}

type coordOp int

const (
	opFirstEcho coordOp = iota + 1 // Echo(w, S)
	opDoubling                     // Echo(w, S ∩ [1..2^k])
	opBinSel                       // Binary-Selection segment on [lo..hi]
)

// newCoordinator prepares a visit whose first command goes out at step
// start. For Complete-Layered the first command is also the wake
// transmission, so wakeStep = start.
func newCoordinator(self, r, w int, mode membershipMode, start int) *coordinator {
	return &coordinator{
		self:     self,
		r:        r,
		w:        w,
		mode:     mode,
		wakeStep: start,
		cmdStep:  start,
		op:       opFirstEcho,
		heard1:   -1,
		selected: -1,
	}
}

// act returns the coordinator's transmission at step t, if any, advancing
// the script. The owning program must call it every step while the visit is
// live, with strictly increasing t.
func (c *coordinator) act(t int) (bool, any) {
	if c.done {
		return false, nil
	}
	switch t {
	case c.cmdStep:
		return true, c.command()
	case c.cmdStep + 1, c.cmdStep + 2:
		return false, nil // listening to the echo
	case c.cmdStep + 3:
		// Decide on the finished echo; unless the visit is over, the next
		// command goes out in this very step (no responder is scheduled
		// here, so it is collision-free).
		c.decide()
		if c.done {
			return false, nil // the owner transmits the token in this step
		}
		c.cmdStep = t
		return true, c.command()
	default:
		return false, nil
	}
}

// command builds the echoCmd of the current operation.
func (c *coordinator) command() echoCmd {
	cmd := echoCmd{
		Coordinator: c.self,
		W:           c.w,
		Step1:       c.cmdStep + 1,
		Step2:       c.cmdStep + 2,
		Mode:        c.mode,
		WakeStep:    c.wakeStep,
	}
	switch c.op {
	case opFirstEcho:
		cmd.Lo, cmd.Hi = 1, c.r
	case opDoubling:
		cmd.Lo, cmd.Hi = 1, 1<<c.k
	case opBinSel:
		cmd.Lo, cmd.Hi = c.lo, c.hi
	}
	return cmd
}

// deliver records a message heard during the echo steps.
func (c *coordinator) deliver(t int, msg radio.Message) {
	reply, ok := msg.Payload.(echoReply)
	if !ok {
		return
	}
	switch t {
	case c.cmdStep + 1:
		c.heard1 = reply.Label
	case c.cmdStep + 2:
		c.heard2 = true
	}
}

// outcome classifies the last echo per Section 4.1.
func (c *coordinator) outcome() echoOutcome {
	switch {
	case c.heard1 >= 0:
		return echoOne
	case c.heard2:
		return echoEmpty
	default:
		return echoMany
	}
}

// decide advances the script after an echo completes.
func (c *coordinator) decide() {
	out := c.outcome()
	label := c.heard1
	c.heard1, c.heard2 = -1, false

	switch c.op {
	case opFirstEcho:
		switch out {
		case echoOne:
			c.finish(label)
		case echoEmpty:
			c.done, c.sEmpty = true, true
		case echoMany:
			c.k = 1
			c.op = opDoubling
		}
	case opDoubling:
		switch out {
		case echoOne:
			c.finish(label)
		case echoEmpty:
			// S ∩ [1..2^k] empty: double the range.
			c.k++
			if 1<<c.k > 2*c.r { // cannot happen for a correct run; stop growing
				c.k--
			}
		case echoMany:
			// |S ∩ [1..2^k]| >= 2: Binary-Selection on [1..2^k], first
			// range the lower half.
			m := 1 << c.k
			c.op = opBinSel
			c.lo, c.hi = 1, m/2
			if c.hi < 1 {
				c.hi = 1
			}
		}
	case opBinSel:
		s := c.hi - c.lo + 1
		switch out {
		case echoOne:
			c.finish(label)
		case echoEmpty:
			// R := {y+1, ..., y+(y-x+1)/2}.
			half := s / 2
			if half < 1 {
				half = 1 // defensive: the invariant rules this out at s==1
			}
			c.lo, c.hi = c.hi+1, c.hi+half
		case echoMany:
			// R := {x, ..., (y+x-1)/2}.
			c.hi = c.lo + s/2 - 1
			if c.hi < c.lo {
				c.hi = c.lo
			}
		}
	}
}

func (c *coordinator) finish(label int) {
	c.done = true
	c.selected = label
}

// responder tracks the latest echo command a listener received and answers
// it. membership is supplied by the owning program (visited flag or wake
// step match).
type responder struct {
	label int
	cmd   *echoCmd
}

// hear records a command addressed to this listener's neighborhood.
func (r *responder) hear(cmd echoCmd) {
	c := cmd
	r.cmd = &c
}

// act returns the responder's transmission at step t. inSet reports whether
// this node currently satisfies the command's membership mode.
func (r *responder) act(t int, inSet func(cmd *echoCmd) bool) (bool, any) {
	if r.cmd == nil {
		return false, nil
	}
	cmd := r.cmd
	switch t {
	case cmd.Step1:
		if r.label >= cmd.Lo && r.label <= cmd.Hi && inSet(cmd) {
			return true, echoReply{Label: r.label}
		}
	case cmd.Step2:
		if r.label == cmd.W {
			return true, echoReply{Label: r.label}
		}
		if r.label >= cmd.Lo && r.label <= cmd.Hi && inSet(cmd) {
			return true, echoReply{Label: r.label}
		}
	}
	return false, nil
}
