package det

import "adhocradio/internal/radio"

// SpontaneousLinear is an O(n)-time deterministic broadcast in the
// spontaneous-transmission model of Section 1.1's reference [7] (where a
// matching Ω(n) lower bound holds even at constant radius, per [15]). The
// paper cites the O(n) result to contrast with its own Theorem 2 bound for
// the standard model; this implementation realizes the same two-phase idea:
//
//	Phase 1 (steps 1..R+1): node with label v transmits its label in step
//	v+1 — spontaneously, before holding the source message. Each step has
//	exactly one transmitter network-wide, so every node receives exactly
//	the announcements of its neighbors: after R+1 steps everyone knows its
//	neighborhood. The source's announcement carries the source message.
//
//	Phase 2 (steps R+2..R+1+2n): with neighborhoods known, the linear-time
//	DFS token walk of DFSNeighborhood finishes the broadcast.
//
// Total time (R+1) + 2n = O(n).
type SpontaneousLinear struct{}

var (
	_ radio.DeterministicProtocol = SpontaneousLinear{}
	_ radio.SpontaneousProtocol   = SpontaneousLinear{}
)

// Name implements radio.Protocol.
func (SpontaneousLinear) Name() string { return "spontaneous-linear" }

// Deterministic implements radio.DeterministicProtocol.
func (SpontaneousLinear) Deterministic() bool { return true }

// Spontaneous implements radio.SpontaneousProtocol.
func (SpontaneousLinear) Spontaneous() bool { return true }

// NewNode implements radio.Protocol.
func (SpontaneousLinear) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	return &spontNode{label: label, r: cfg.LabelBound(), cfg: cfg}
}

// announce is the phase-1 payload: the transmitter's label. Only the
// source's announcement carries the source message.
type announce struct {
	Label      int
	FromSource bool
}

// CarriesSourceMessage implements radio.SourceCarrier.
func (a announce) CarriesSourceMessage() bool { return a.FromSource }

type spontNode struct {
	label     int
	r         int
	cfg       radio.Config
	neighbors []int
	dfs       radio.NodeProgram // phase-2 program, built after discovery
}

// phase1End returns the last step of the discovery phase.
func (n *spontNode) phase1End() int { return n.r + 1 }

// Act implements radio.NodeProgram.
func (n *spontNode) Act(t int) (bool, any) {
	if t <= n.phase1End() {
		if t == n.label+1 {
			return true, announce{Label: n.label, FromSource: n.label == 0}
		}
		return false, nil
	}
	if n.dfs == nil {
		n.dfs = DFSNeighborhood{}.NewNodeWithNeighbors(n.label, n.neighbors, n.cfg)
	}
	return n.dfs.Act(t - n.phase1End())
}

// Deliver implements radio.NodeProgram.
func (n *spontNode) Deliver(t int, msg radio.Message) {
	if t <= n.phase1End() {
		if a, ok := msg.Payload.(announce); ok {
			n.neighbors = append(n.neighbors, a.Label)
		}
		return
	}
	if n.dfs == nil {
		n.dfs = DFSNeighborhood{}.NewNodeWithNeighbors(n.label, n.neighbors, n.cfg)
	}
	n.dfs.Deliver(t-n.phase1End(), msg)
}
