// Package stats provides the small statistical toolkit the experiment
// harness uses: summaries of repeated trials and least-squares fits of
// measured broadcast times against the paper's model curves.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Std    float64
	Min    float64
	Max    float64
	P90    float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	total := 0.0
	for _, x := range xs {
		total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = total / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 0.5)
	s.P90 = Percentile(sorted, 0.9)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending sorted
// sample using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// SummarizeInts is Summarize over integer measurements.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f median=%.1f std=%.1f min=%.0f max=%.0f",
		s.N, s.Mean, s.Median, s.Std, s.Min, s.Max)
}

// FitThroughOrigin fits y ≈ c·x by least squares and returns the
// coefficient and the R² of the fit. Used to test claims like
// "t grows as n·log n": fit measured times against the model values and
// check the residuals stay small.
func FitThroughOrigin(xs, ys []float64) (c, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: mismatched or empty samples (%d, %d)", len(xs), len(ys))
	}
	var sxy, sxx float64
	for i := range xs {
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	c = sxy / sxx
	meanY := 0.0
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range xs {
		r := ys[i] - c*xs[i]
		ssRes += r * r
		d := ys[i] - meanY
		ssTot += d * d
	}
	if ssTot == 0 {
		// All y equal: fit is perfect iff residuals vanish.
		if ssRes == 0 {
			return c, 1, nil
		}
		return c, 0, nil
	}
	return c, 1 - ssRes/ssTot, nil
}

// GrowthRatios returns ys[i+1]/ys[i] — the empirical growth factors used to
// compare against a model's predicted factors when an input doubles.
func GrowthRatios(ys []float64) []float64 {
	if len(ys) < 2 {
		return nil
	}
	out := make([]float64, 0, len(ys)-1)
	for i := 1; i < len(ys); i++ {
		if ys[i-1] == 0 {
			out = append(out, math.Inf(1))
			continue
		}
		out = append(out, ys[i]/ys[i-1])
	}
	return out
}

// Model curves for fits: the paper's complexity expressions.

// ModelKP is D·log2(n/D) + log2²(n), the optimal randomized bound (Thm 1).
func ModelKP(n, d float64) float64 {
	l := math.Log2(n)
	return d*math.Log2(math.Max(n/d, 2)) + l*l
}

// ModelBGI is D·log2(n) + log2²(n), the Bar-Yehuda–Goldreich–Itai bound.
func ModelBGI(n, d float64) float64 {
	l := math.Log2(n)
	return d*l + l*l
}

// ModelNLogN is n·log2 n, Select-and-Send's bound (Thm 3).
func ModelNLogN(n float64) float64 { return n * math.Log2(math.Max(n, 2)) }

// ModelCompleteLayered is n + D·log2 n, Algorithm Complete-Layered's bound
// (Thm 4).
func ModelCompleteLayered(n, d float64) float64 { return n + d*math.Log2(math.Max(n, 2)) }

// ModelDetLB is n·log2(n) / log2(n/D), the deterministic lower bound
// (Thm 2).
func ModelDetLB(n, d float64) float64 {
	den := math.Log2(math.Max(n/d, 2))
	return n * math.Log2(math.Max(n, 2)) / den
}

// ModelRoundRobin is n·D, the round-robin baseline.
func ModelRoundRobin(n, d float64) float64 { return n * d }
