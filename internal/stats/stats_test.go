package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5)) {
		t.Fatalf("std %f", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 || s.P90 != 7 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%.2f) = %f, want %f", c.p, got, c.want)
		}
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if !almost(s.Mean, 4) {
		t.Fatalf("mean %f", s.Mean)
	}
}

func TestFitThroughOriginExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 6, 9, 12}
	c, r2, err := FitThroughOrigin(xs, ys)
	if err != nil || !almost(c, 3) || !almost(r2, 1) {
		t.Fatalf("c=%f r2=%f err=%v", c, r2, err)
	}
}

func TestFitThroughOriginNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	c, r2, err := FitThroughOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if c < 1.8 || c > 2.2 || r2 < 0.98 {
		t.Fatalf("c=%f r2=%f", c, r2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, _, err := FitThroughOrigin([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched samples accepted")
	}
	if _, _, err := FitThroughOrigin(nil, nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, _, err := FitThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitQuickNeverNaN(t *testing.T) {
	f := func(seed uint8) bool {
		xs := make([]float64, 5)
		ys := make([]float64, 5)
		for i := range xs {
			xs[i] = float64((int(seed)+i)%7 + 1)
			ys[i] = float64((int(seed)*3+i*2)%11 + 1)
		}
		c, r2, err := FitThroughOrigin(xs, ys)
		return err == nil && !math.IsNaN(c) && !math.IsNaN(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthRatios(t *testing.T) {
	rs := GrowthRatios([]float64{2, 4, 12})
	if len(rs) != 2 || !almost(rs[0], 2) || !almost(rs[1], 3) {
		t.Fatalf("ratios %v", rs)
	}
	if GrowthRatios([]float64{1}) != nil {
		t.Fatal("short input must give nil")
	}
	rs = GrowthRatios([]float64{0, 5})
	if !math.IsInf(rs[0], 1) {
		t.Fatalf("zero base ratio %v", rs)
	}
}

func TestModelCurves(t *testing.T) {
	// Spot values and qualitative relations the experiments rely on.
	if ModelKP(1024, 512) >= ModelBGI(1024, 512) {
		t.Fatal("KP model must beat BGI at large D")
	}
	// Small D: both dominated by log² n, nearly equal.
	small := ModelBGI(1<<20, 2) / ModelKP(1<<20, 2)
	if small > 1.2 {
		t.Fatalf("small-D gap %f too large", small)
	}
	if ModelNLogN(1024) != 1024*10 {
		t.Fatalf("ModelNLogN = %f", ModelNLogN(1024))
	}
	if ModelCompleteLayered(1000, 10) != 1000+10*math.Log2(1000) {
		t.Fatal("ModelCompleteLayered wrong")
	}
	if ModelDetLB(1024, 64) != 1024*10/4 {
		t.Fatalf("ModelDetLB = %f", ModelDetLB(1024, 64))
	}
	if ModelRoundRobin(100, 7) != 700 {
		t.Fatal("ModelRoundRobin wrong")
	}
}
