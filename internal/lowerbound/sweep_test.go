package lowerbound

import (
	"testing"

	"adhocradio/internal/det"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

// TestAdversarySweep property-checks the Theorem 2 construction across a
// randomized sweep of parameters and victims: every build must validate,
// satisfy the executable Lemma 9, and exceed its certified bound. This is
// the broad-net test that catches consistency bugs the targeted tests miss.
func TestAdversarySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes a few seconds")
	}
	src := rng.New(31337)
	victims := []radio.DeterministicProtocol{
		det.RoundRobin{},
		det.SelectAndSend{},
		det.NewInterleaved(det.RoundRobin{}, det.SelectAndSend{}),
		det.ObliviousDecay{Seed: 9},
	}
	for trial := 0; trial < 8; trial++ {
		d := 2 * (4 + src.Intn(15)) // even D in [8, 36]
		n := d * (16 + src.Intn(10))
		p := victims[trial%len(victims)]
		c, err := Build(p, Params{N: n, D: d, Force: true})
		if err != nil {
			t.Fatalf("trial %d (%s, n=%d, D=%d): %v", trial, p.Name(), n, d, err)
		}
		if err := c.G.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r, err := c.G.Radius(); err != nil || r != d {
			t.Fatalf("trial %d: radius %d (%v), want %d", trial, r, err, d)
		}
		res, err := VerifyRealRun(p, c, 0)
		if err != nil {
			t.Fatalf("trial %d (%s, n=%d, D=%d): %v", trial, p.Name(), n, d, err)
		}
		if res.BroadcastTime < c.LowerBoundSteps() {
			t.Fatalf("trial %d: time %d below bound %d", trial, res.BroadcastTime, c.LowerBoundSteps())
		}
	}
}

// TestDirectedAdversarySweep is the analogous sweep for the directed game.
func TestDirectedAdversarySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes a few seconds")
	}
	src := rng.New(424242)
	victims := []radio.DeterministicProtocol{
		det.RoundRobin{},
		det.ObliviousDecay{Seed: 1},
		det.ObliviousDecay{Seed: 2},
	}
	for trial := 0; trial < 6; trial++ {
		d := 3 + src.Intn(8)
		n := d * (10 + src.Intn(20))
		p := victims[trial%len(victims)]
		c, err := BuildDirectedLayered(p, DirectedParams{N: n, D: d})
		if err != nil {
			t.Fatalf("trial %d (%s, n=%d, D=%d): %v", trial, p.Name(), n, d, err)
		}
		if err := c.G.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := VerifyDirectedRealRun(p, c, 0); err != nil {
			t.Fatalf("trial %d (%s, n=%d, D=%d): %v", trial, p.Name(), n, d, err)
		}
	}
}

func TestConstructionReport(t *testing.T) {
	c, err := Build(det.RoundRobin{}, Params{N: 256, D: 16, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	for _, want := range []string{"radius 16", "k=4", "certified", "odd layers: 8", "jamming answers"} {
		if !contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
	if c.JamSilent+c.JamSingle+c.JamCollision != c.LMax*c.D/2 {
		t.Fatalf("jam answers %d+%d+%d do not cover %d jamming steps",
			c.JamSilent, c.JamSingle, c.JamCollision, c.LMax*c.D/2)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestAdversaryRespectsProgramContract drives both adversaries with
// contract-checked victims: the builders' abstract replay must obey the
// same Act/Deliver discipline as the real simulator (once per step,
// increasing steps, no delivery to transmitters, no act-before-informed).
func TestAdversaryRespectsProgramContract(t *testing.T) {
	var violations []error
	report := func(err error) { violations = append(violations, err) }

	wrapped, ok := radio.WithContractChecks(det.SelectAndSend{}, report).(radio.DeterministicProtocol)
	if !ok {
		t.Fatal("contract wrapper lost determinism marker")
	}
	if _, err := Build(wrapped, Params{N: 256, D: 16, Force: true}); err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("Theorem 2 builder violated the program contract: %v", violations[0])
	}

	violations = nil
	wrappedRR, ok := radio.WithContractChecks(det.RoundRobin{}, report).(radio.DeterministicProtocol)
	if !ok {
		t.Fatal("contract wrapper lost determinism marker")
	}
	if _, err := BuildDirectedLayered(wrappedRR, DirectedParams{N: 128, D: 4}); err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Fatalf("directed builder violated the program contract: %v", violations[0])
	}
}
