package lowerbound

import (
	"errors"
	"testing"

	"adhocradio/internal/det"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

func TestLayerGameInvariant(t *testing.T) {
	// Script a game directly: candidates 1..6, target 2. A singleton step
	// must trigger removal; a later removal must cascade when it would
	// expose a past singleton.
	g := newLayerGame([]int{1, 2, 3, 4, 5, 6}, 2)

	txSet := func(members ...int) func(int) bool {
		m := map[int]bool{}
		for _, v := range members {
			m[v] = true
		}
		return func(v int) bool { return m[v] }
	}

	// Step 1: {1,2} transmit — no singleton.
	if _, crossed, removed := g.observe(txSet(1, 2)); crossed || removed != 0 {
		t.Fatal("pair step mishandled")
	}
	// Step 2: {2} transmits — singleton: removing 2 exposes step 1's
	// remaining transmitter 1, so both must go (cascade).
	_, crossed, removed := g.observe(txSet(2))
	if crossed || removed != 2 {
		t.Fatalf("cascade removed %d (crossed=%v), want 2", removed, crossed)
	}
	if g.live[1] || g.live[2] {
		t.Fatal("cascade left 1 or 2 alive")
	}
	// Step 3: {3} — singleton, plain removal (no history for 3).
	if _, crossed, removed := g.observe(txSet(3)); crossed || removed != 1 {
		t.Fatalf("plain removal failed (removed=%d)", removed)
	}
	// live = {4,5,6}, target 2: one more removal allowed.
	if _, crossed, removed := g.observe(txSet(4)); crossed || removed != 1 {
		t.Fatalf("removal to target failed (removed=%d)", removed)
	}
	// live = {5,6}: the next singleton must stand.
	inf, crossed, _ := g.observe(txSet(5))
	if !crossed || inf != 5 {
		t.Fatalf("crossing not detected: inf=%d crossed=%v", inf, crossed)
	}
	if got := g.frozen(); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("frozen = %v", got)
	}
}

func TestLayerGameAbortsCascadeBelowTarget(t *testing.T) {
	// candidates {1,2,3}, target 2. Step 1: {1,2}. Step 2: {2}: removing 2
	// would cascade to 1 (step 1 singleton), leaving only {3} < target —
	// so the singleton must stand instead.
	g := newLayerGame([]int{1, 2, 3}, 2)
	tx := func(members ...int) func(int) bool {
		m := map[int]bool{}
		for _, v := range members {
			m[v] = true
		}
		return func(v int) bool { return m[v] }
	}
	if _, crossed, _ := g.observe(tx(1, 2)); crossed {
		t.Fatal("unexpected cross")
	}
	inf, crossed, removed := g.observe(tx(2))
	if !crossed || inf != 2 || removed != 0 {
		t.Fatalf("abort failed: inf=%d crossed=%v removed=%d", inf, crossed, removed)
	}
	if len(g.live) != 3 {
		t.Fatal("abort mutated the live set")
	}
}

func TestBuildDirectedLayeredRoundRobin(t *testing.T) {
	c, err := BuildDirectedLayered(det.RoundRobin{}, DirectedParams{N: 256, D: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, err := c.G.Radius(); err != nil || r != 8 {
		t.Fatalf("radius %d (%v)", r, err)
	}
	if len(c.Layers) != 8 {
		t.Fatalf("%d layers", len(c.Layers))
	}
	total := 0
	for _, l := range c.Layers {
		total += len(l)
	}
	if total != 256 {
		t.Fatalf("layers cover %d labels, want 256", total)
	}
	if c.Removed == 0 {
		t.Fatal("adversary never pruned anything; game inert")
	}
	// Crossing steps strictly increase.
	for i := 1; i < len(c.CrossAt); i++ {
		if c.CrossAt[i] <= c.CrossAt[i-1] {
			t.Fatalf("CrossAt not increasing: %v", c.CrossAt)
		}
	}
}

func TestDirectedEquivalenceRoundRobin(t *testing.T) {
	c, err := BuildDirectedLayered(det.RoundRobin{}, DirectedParams{N: 256, D: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := VerifyDirectedRealRun(det.RoundRobin{}, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("real run incomplete")
	}
	if res.BroadcastTime < c.CrossAt[len(c.CrossAt)-2] {
		t.Fatalf("broadcast %d before the last layer's informing step %d",
			res.BroadcastTime, c.CrossAt[len(c.CrossAt)-2])
	}
}

func TestDirectedEquivalenceObliviousDecay(t *testing.T) {
	p := det.ObliviousDecay{Seed: 3}
	c, err := BuildDirectedLayered(p, DirectedParams{N: 192, D: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDirectedRealRun(p, c, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedAdversarySlowsObliviousDecay(t *testing.T) {
	// The point: adversarial label placement must cost the oblivious
	// schedule far more than a benign placement of the same shape.
	p := det.ObliviousDecay{Seed: 5}
	const n, d = 256, 8
	c, err := BuildDirectedLayered(p, DirectedParams{N: n, D: d})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := VerifyDirectedRealRun(p, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	benign, err := graph.UniformCompleteLayered(n+1, d)
	if err != nil {
		t.Fatal(err)
	}
	// Benign version must be directed too for a fair comparison: rebuild
	// as a directed layered graph with the same layer sizes.
	bres, err := radio.Run(directedVersion(benign, t), p, radio.Config{}, radio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if adv.BroadcastTime <= bres.BroadcastTime {
		t.Fatalf("adversarial %d not slower than benign %d", adv.BroadcastTime, bres.BroadcastTime)
	}
	t.Logf("oblivious decay: adversarial %d vs benign %d (%.1fx)",
		adv.BroadcastTime, bres.BroadcastTime, float64(adv.BroadcastTime)/float64(bres.BroadcastTime))
}

// directedVersion converts an undirected complete layered graph into its
// directed (forward arcs only) counterpart.
func directedVersion(g *graph.Graph, t *testing.T) *graph.Graph {
	t.Helper()
	layers, err := g.Layers()
	if err != nil {
		t.Fatal(err)
	}
	dg := graph.New(g.N(), false)
	for i := 0; i+1 < len(layers); i++ {
		for _, u := range layers[i] {
			for _, v := range layers[i+1] {
				dg.MustAddEdge(u, v)
			}
		}
	}
	return dg
}

func TestBuildDirectedRejectsUnsuitableProtocols(t *testing.T) {
	if _, err := BuildDirectedLayered(det.DFSNeighborhood{}, DirectedParams{N: 64, D: 4}); err == nil {
		t.Fatal("neighbor-aware protocol accepted")
	}
	if _, err := BuildDirectedLayered(det.SpontaneousLinear{}, DirectedParams{N: 64, D: 4}); err == nil {
		t.Fatal("spontaneous protocol accepted")
	}
	if _, err := BuildDirectedLayered(det.RoundRobin{}, DirectedParams{N: 4, D: 4}); err == nil {
		t.Fatal("tiny n accepted")
	}
}

func TestBuildDirectedDetectsDeadlockedFeedbackProtocols(t *testing.T) {
	// Select-and-Send needs back-edges for its echoes; on a directed
	// layered network the source waits forever for a reply.
	_, err := BuildDirectedLayered(det.SelectAndSend{}, DirectedParams{N: 64, D: 4, MaxWaitSteps: 2000})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}
