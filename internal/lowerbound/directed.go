package lowerbound

import (
	"fmt"
	"sort"

	"adhocradio/internal/bitset"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

// DirectedParams configures BuildDirectedLayered.
type DirectedParams struct {
	// N is the largest label (N+1 nodes, source 0).
	N int
	// D is the number of layers (radius of the directed network).
	D int
	// MaxWaitSteps caps the per-layer delay game (0 = generous default).
	MaxWaitSteps int
}

// DirectedConstruction is the output of BuildDirectedLayered: a directed
// complete layered network adversarially composed for one protocol.
type DirectedConstruction struct {
	G *graph.Graph
	// Layers[i] is the label set of layer i+1 (layer 0 is the source).
	Layers [][]int
	// CrossAt[i] is the step at which layer i+1 was informed.
	CrossAt []int
	// InformedAt records construction-time informed steps; the equivalence
	// check replays the real run against it.
	InformedAt map[int]int
	// Removed counts candidates discarded across all delay games.
	Removed int
}

// Delay returns the total delay the adversary achieved: the step at which
// the last layer was informed.
func (c *DirectedConstruction) Delay() int {
	if len(c.CrossAt) == 0 {
		return 0
	}
	return c.CrossAt[len(c.CrossAt)-1]
}

// layerGame tracks one layer's delay game: the live candidate set, and for
// every game step the live members that transmitted, so that removals can
// be checked (and cascaded) against the whole past. The invariant is that
// no past step has exactly one transmitter among the CURRENT live set —
// sound because in a directed layered network nobody can observe a layer's
// transmissions until the next layer exists.
type layerGame struct {
	live    map[int]bool
	target  int
	records [][]int       // per game step: live members that transmitted
	counts  []int         // per game step: |live ∩ Y| under current live
	stepsOf map[int][]int // member -> indices into records
}

func newLayerGame(candidates []int, target int) *layerGame {
	g := &layerGame{
		live:    make(map[int]bool, len(candidates)),
		target:  target,
		stepsOf: map[int][]int{},
	}
	for _, c := range candidates {
		g.live[c] = true
	}
	return g
}

// observe records this step's transmitters (within the live set) and
// returns (informer, true) when a singleton must stand — either because the
// live set is already at the target size, or because removing it would
// cascade below the target. Otherwise it prunes (possibly cascading) and
// returns (removedCount, false info) via the second return being false.
func (g *layerGame) observe(transmitting func(label int) bool) (informer int, crossed bool, removed int) {
	y := make([]int, 0, 4)
	for _, c := range sortedLabels(g.live) {
		if transmitting(c) {
			y = append(y, c)
		}
	}
	idx := len(g.records)
	g.records = append(g.records, y)
	g.counts = append(g.counts, len(y))
	for _, m := range y {
		g.stepsOf[m] = append(g.stepsOf[m], idx)
	}
	if len(y) != 1 {
		return 0, false, 0
	}
	// Tentative batch removal with cascade.
	batch := map[int]bool{y[0]: true}
	queue := []int{y[0]}
	tmpCounts := map[int]int{} // record index -> tentative count override
	countOf := func(i int) int {
		if c, ok := tmpCounts[i]; ok {
			return c
		}
		return g.counts[i]
	}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, i := range g.stepsOf[m] {
			c := countOf(i) - 1
			tmpCounts[i] = c
			if c != 1 {
				continue
			}
			// Exactly one live, un-batched transmitter remains at step i:
			// it must go too.
			for _, cand := range g.records[i] {
				if g.live[cand] && !batch[cand] {
					batch[cand] = true
					queue = append(queue, cand)
					break
				}
			}
		}
	}
	if len(g.live)-len(batch) < g.target {
		// Cannot prune without dropping below the target: the singleton
		// stands and the layer crosses now. Roll back this step's record so
		// the frozen set's history is exactly the steps before the cross.
		return y[0], true, 0
	}
	// Commit the batch. Removal and count decrements commute, but iterate
	// in sorted order anyway so the whole game trace is order-independent.
	for _, m := range sortedLabels(batch) {
		delete(g.live, m)
		for _, i := range g.stepsOf[m] {
			g.counts[i]--
		}
		delete(g.stepsOf, m)
	}
	return 0, false, len(batch)
}

// frozen returns the final layer, sorted.
func (g *layerGame) frozen() []int {
	return sortedLabels(g.live)
}

// BuildDirectedLayered plays the Clementi–Monti–Silvestri-style game of
// reference [10] (the directed Ω(n log D) bound the paper contrasts with in
// Section 4.3): the adversary commits the composition of each layer of a
// directed complete layered network only after watching the algorithm run.
//
// Layer i+1's candidates are all unplaced labels; they are all informed by
// layer i's standing singleton transmission and then simulated live.
// Whenever exactly one live candidate transmits — which would inform the
// next layer — the adversary removes it (cascading removals that would
// retroactively create earlier singletons for the remaining set), which is
// consistent because in a directed network nobody can yet observe the
// layer's transmissions. When pruning would shrink the layer below its
// target size, the singleton stands and the front advances.
//
// Feedback-based algorithms (Select-and-Send, Complete-Layered) deadlock on
// directed layered networks — their Echo needs the back-edges whose absence
// is exactly why the paper's undirected refutation of [10]'s claim does not
// carry over to directed graphs. Attack oblivious or forward-only
// protocols (round-robin, oblivious decay schedules).
func BuildDirectedLayered(p radio.DeterministicProtocol, params DirectedParams) (*DirectedConstruction, error) {
	if !p.Deterministic() {
		return nil, fmt.Errorf("lowerbound: protocol %s does not declare determinism", p.Name())
	}
	if _, ok := radio.Protocol(p).(radio.NeighborAwareProtocol); ok {
		return nil, fmt.Errorf("lowerbound: protocol %s requires neighborhood knowledge", p.Name())
	}
	if sp, ok := radio.Protocol(p).(radio.SpontaneousProtocol); ok && sp.Spontaneous() {
		return nil, fmt.Errorf("lowerbound: protocol %s uses spontaneous transmissions", p.Name())
	}
	n, d := params.N, params.D
	if d < 1 || n < 2*d {
		return nil, fmt.Errorf("lowerbound: need D >= 1 and n >= 2D (got n=%d, D=%d)", n, d)
	}
	maxWait := params.MaxWaitSteps
	if maxWait == 0 {
		maxWait = 64 * n * (2 + intLog2(n))
	}

	cfg := radio.Config{N: n + 1, R: n}
	cons := &DirectedConstruction{
		G:          graph.New(n+1, false),
		InformedAt: map[int]int{0: 0},
	}
	programs := map[int]radio.NodeProgram{0: p.NewNode(0, cfg)}

	pool := bitset.New(n + 1)
	for lbl := 1; lbl <= n; lbl++ {
		pool.Add(lbl)
	}

	t := 0
	actions := map[int]any{}
	step := func() {
		t++
		clear(actions)
		for _, lbl := range sortedLabels(programs) {
			if tx, payload := programs[lbl].Act(t); tx {
				actions[lbl] = payload
			}
		}
	}
	transmitting := func(lbl int) bool {
		_, ok := actions[lbl]
		return ok
	}
	singletonOf := func(members []int) (int, bool) {
		found, count := -1, 0
		for _, m := range members {
			if transmitting(m) {
				found = m
				count++
				if count > 1 {
					return -1, false
				}
			}
		}
		return found, count == 1
	}
	// deliverFixed feeds every frozen layer from its predecessor.
	deliverFixed := func() {
		prev := []int{0}
		for _, layer := range cons.Layers {
			if w, ok := singletonOf(prev); ok {
				for _, v := range layer {
					if !transmitting(v) {
						programs[v].Deliver(t, radio.Message{From: w, Payload: actions[w]})
					}
				}
			}
			prev = layer
		}
	}

	// pendingInformer carries the standing singleton that ended the
	// previous game: it is the transmission that informs the next layer,
	// and it happened at the current step t.
	pendingInformer := -1
	prevLayer := []int{0}

	for i := 1; i <= d; i++ {
		remaining := d - i + 1
		// Reserve one label for every later layer: a cascade-forced
		// crossing can freeze the whole candidate set into this layer, and
		// the reserved labels guarantee the remaining layers stay
		// non-empty.
		reserve := remaining - 1
		avail := pool.Len() - reserve
		if avail < 1 {
			return nil, fmt.Errorf("lowerbound: pool exhausted at layer %d", i)
		}
		target := pool.Len() / remaining
		if target < 1 {
			target = 1
		}
		if target > avail {
			target = avail
		}

		informer := pendingInformer
		if informer == -1 {
			// Bootstrap (layer 1): wait for the source's first
			// transmission.
			waited := 0
			for {
				step()
				waited++
				if waited > maxWait {
					return nil, fmt.Errorf("lowerbound: %w (layer %d, %d steps, protocol %s)",
						ErrStalled, i, maxWait, p.Name())
				}
				deliverFixed()
				if w, ok := singletonOf(prevLayer); ok {
					informer = w
					break
				}
			}
		}
		cons.CrossAt = append(cons.CrossAt, t)

		// Inform all candidates with the standing singleton's payload (the
		// reserved highest labels sit out of this game).
		candidates := pool.Elements()
		candidates = candidates[:len(candidates)-reserve]
		for _, c := range candidates {
			prog := p.NewNode(c, cfg)
			prog.Deliver(t, radio.Message{From: informer, Payload: actions[informer]})
			programs[c] = prog
			cons.InformedAt[c] = t
		}

		game := newLayerGame(candidates, target)
		pendingInformer = -1
		for {
			step()
			if t > maxWait*(i+1) {
				return nil, fmt.Errorf("lowerbound: %w (game %d, protocol %s)", ErrStalled, i, p.Name())
			}
			deliverFixed()
			// Live candidates hear the previous layer's singletons.
			if w, ok := singletonOf(prevLayer); ok {
				for _, c := range sortedLabels(game.live) {
					if !transmitting(c) {
						programs[c].Deliver(t, radio.Message{From: w, Payload: actions[w]})
					}
				}
			}
			inf, crossed, removed := game.observe(transmitting)
			if removed > 0 {
				cons.Removed += removed
			}
			if crossed {
				pendingInformer = inf
				break
			}
		}

		// Freeze layer i; pruned candidates return to the pool with reset
		// histories.
		layer := game.frozen()
		keep := make(map[int]bool, len(layer))
		for _, v := range layer {
			keep[v] = true
			pool.Remove(v)
		}
		for _, c := range candidates {
			if !keep[c] {
				delete(programs, c)
				delete(cons.InformedAt, c)
			}
		}
		for _, u := range prevLayer {
			for _, v := range layer {
				cons.G.MustAddEdge(u, v)
			}
		}
		cons.Layers = append(cons.Layers, layer)
		prevLayer = layer
	}
	// The final pending singleton is the step at which a (D+1)-th layer
	// would be informed; record it as the total delay.
	cons.CrossAt = append(cons.CrossAt, t)

	// Any leftover labels join the last layer; they have no out-edges, so
	// the simulated histories of everyone else are unaffected.
	if leftovers := pool.Elements(); len(leftovers) > 0 {
		prev := []int{0}
		if len(cons.Layers) >= 2 {
			prev = cons.Layers[len(cons.Layers)-2]
		}
		last := cons.Layers[len(cons.Layers)-1]
		for _, v := range leftovers {
			for _, u := range prev {
				cons.G.MustAddEdge(u, v)
			}
			last = append(last, v)
			pool.Remove(v)
		}
		sort.Ints(last)
		cons.Layers[len(cons.Layers)-1] = last
	}
	return cons, cons.G.Validate()
}

// VerifyDirectedRealRun replays the protocol on the constructed directed
// network and checks the construction's informed-times against reality
// (this construction's analogue of the executable Lemma 9).
func VerifyDirectedRealRun(p radio.DeterministicProtocol, c *DirectedConstruction, maxSteps int) (*radio.Result, error) {
	res, err := radio.Run(c.G, p, radio.Config{N: c.G.N(), R: c.G.N() - 1}, radio.Options{MaxSteps: maxSteps})
	if err != nil {
		return res, fmt.Errorf("lowerbound: directed real run: %w", err)
	}
	for _, v := range sortedLabels(c.InformedAt) {
		if want := c.InformedAt[v]; res.InformedAt[v] != want {
			return res, fmt.Errorf("lowerbound: directed equivalence violated: node %d informed at %d, construction says %d",
				v, res.InformedAt[v], want)
		}
	}
	return res, nil
}
