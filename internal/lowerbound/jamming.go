// Package lowerbound implements the Section 3 adversary: given any
// deterministic broadcasting algorithm A, it constructs an n-node network
// G_A of radius Θ(D) on which A needs Ω(n·log n / log(n/D)) steps, by
// combining the jamming function over shrinking candidate blocks with a
// witness that the observed transmit-set family is not selective.
package lowerbound

import (
	"fmt"
	"sort"

	"adhocradio/internal/bitset"
)

// jamAnswer is the value of function (i+1)-Jamming_l(Y_l): either no
// candidate transmits (jamSilent), exactly one does (jamSingle, with the
// node), or at least two do (jamCollision).
type jamAnswer int

const (
	jamSilent jamAnswer = iota + 1
	jamSingle
	jamCollision
)

func (a jamAnswer) String() string {
	switch a {
	case jamSilent:
		return "0"
	case jamSingle:
		return "v"
	case jamCollision:
		return "⊥"
	default:
		return "?"
	}
}

// jammer maintains the blocks B_l(p) of one stage and evaluates the jamming
// function step by step. Blocks only ever shrink, and every block keeps at
// least two elements; blocks of size >= k form the active set A_l.
type jammer struct {
	k      int
	blocks []*bitset.Set
	steps  int
}

// newJammer partitions the candidate pool into k/2 balanced blocks
// ({B(p)}, |B(p)| ≈ 2m/k).
func newJammer(candidates []int, k int) (*jammer, error) {
	numBlocks := k / 2
	if numBlocks < 1 {
		return nil, fmt.Errorf("lowerbound: k=%d leaves no blocks", k)
	}
	if len(candidates) < 2*numBlocks {
		return nil, fmt.Errorf("lowerbound: %d candidates cannot fill %d blocks with >= 2 elements",
			len(candidates), numBlocks)
	}
	sorted := append([]int(nil), candidates...)
	sort.Ints(sorted)
	j := &jammer{k: k, blocks: make([]*bitset.Set, numBlocks)}
	for p := range j.blocks {
		j.blocks[p] = bitset.New(0)
	}
	for idx, c := range sorted {
		j.blocks[idx%numBlocks].Add(c)
	}
	return j, nil
}

// active reports whether block p is in A_l (|B_l(p)| >= k).
func (j *jammer) active(p int) bool { return j.blocks[p].Len() >= j.k }

// shrinkToTwo replaces block p by its two smallest elements, per "we choose
// two elements v, w ∈ B_l(p) and set B_l(p) := {v, w}".
func (j *jammer) shrinkToTwo(p int) {
	b := j.blocks[p]
	first := b.Min()
	rest := -1
	b.ForEach(func(e int) bool {
		if e != first {
			rest = e
			return false
		}
		return true
	})
	nb := bitset.New(0)
	nb.Add(first)
	if rest >= 0 {
		nb.Add(rest)
	}
	j.blocks[p] = nb
}

// step evaluates (i+1)-Jamming_l(Y_l), mutating the blocks, and returns the
// answer (with the single transmitter when the answer is jamSingle).
func (j *jammer) step(y *bitset.Set) (jamAnswer, int) {
	j.steps++
	// Case 2.A: some active block is hit in more than a 2/k fraction.
	for p := range j.blocks {
		if !j.active(p) {
			continue
		}
		b := j.blocks[p]
		hit := b.IntersectionCount(y)
		if hit*j.k > 2*b.Len() {
			b.Intersect(y)
			if b.Len() < j.k {
				j.shrinkToTwo(p)
			}
			return jamCollision, -1
		}
	}
	// Case 2.B: remove Y from every active block...
	for p := range j.blocks {
		if !j.active(p) {
			continue
		}
		j.blocks[p].Subtract(y)
		if j.blocks[p].Len() < j.k {
			j.shrinkToTwo(p)
		}
	}
	// ...then answer from the union of the now-inactive blocks.
	var single int
	count := 0
	for p := range j.blocks {
		if j.active(p) {
			continue
		}
		j.blocks[p].ForEach(func(e int) bool {
			if y.Contains(e) {
				count++
				single = e
			}
			return count < 2
		})
		if count >= 2 {
			break
		}
	}
	switch {
	case count == 0:
		return jamSilent, -1
	case count == 1:
		return jamSingle, single
	default:
		return jamCollision, -1
	}
}

// largestBlock returns the index and size of the largest block.
func (j *jammer) largestBlock() (int, int) {
	best, size := -1, -1
	for p, b := range j.blocks {
		if l := b.Len(); l > size {
			best, size = p, l
		}
	}
	return best, size
}

// pickTwo returns the two smallest elements of block p.
func (j *jammer) pickTwo(p int) [2]int {
	var out [2]int
	i := 0
	j.blocks[p].ForEach(func(e int) bool {
		out[i] = e
		i++
		return i < 2
	})
	return out
}
