package lowerbound

import (
	"errors"
	"strings"
	"testing"

	"adhocradio/internal/bitset"
	"adhocradio/internal/det"
	"adhocradio/internal/radio"
)

func setOf(elements ...int) *bitset.Set {
	s := bitset.New(0)
	for _, e := range elements {
		s.Add(e)
	}
	return s
}

func TestJammerBlockSetup(t *testing.T) {
	cands := make([]int, 40)
	for i := range cands {
		cands[i] = i + 10
	}
	j, err := newJammer(cands, 8) // 4 blocks of 10
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p, b := range j.blocks {
		if b.Len() != 10 {
			t.Fatalf("block %d size %d", p, b.Len())
		}
		total += b.Len()
	}
	if total != 40 {
		t.Fatalf("blocks cover %d elements", total)
	}
}

func TestJammerRejectsTinyPools(t *testing.T) {
	if _, err := newJammer([]int{1, 2, 3}, 8); err == nil {
		t.Fatal("tiny pool accepted")
	}
	if _, err := newJammer([]int{1, 2}, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestJammerSilentAndSingle(t *testing.T) {
	cands := make([]int, 16)
	for i := range cands {
		cands[i] = i
	}
	j, err := newJammer(cands, 4) // 2 blocks of 8
	if err != nil {
		t.Fatal(err)
	}
	// Empty Y: case 2.B, nothing removed, no inactive blocks yet -> silent.
	ans, _ := j.step(bitset.New(16))
	if ans != jamSilent {
		t.Fatalf("empty Y answered %v", ans)
	}
	// A heavy hit on block 0 (> 2/k = 1/2 of it): case 2.A -> collision,
	// block intersected with Y.
	y := setOf(0, 2, 4, 6, 8) // block 0 holds even labels 0..14
	ans, _ = j.step(y)
	if ans != jamCollision {
		t.Fatalf("heavy hit answered %v", ans)
	}
	if j.blocks[0].Len() != 5 {
		t.Fatalf("block 0 size %d after intersect", j.blocks[0].Len())
	}
	// Now block 0 has 5 >= k=4 elements {0,2,4,6,8}. A light hit that
	// removes two of them (2/5 <= 1/2) shrinks it below k -> becomes {x,y}.
	ans, _ = j.step(setOf(0, 2))
	if ans != jamCollision && ans != jamSilent {
		// After removal block 0 = {4,6,8} < k -> shrink to two smallest
		// {4,6}; Y ∩ inactive blocks = {0,2} ∩ {4,6} = ∅ -> silent.
		t.Fatalf("light hit answered %v", ans)
	}
	if j.blocks[0].Len() != 2 {
		t.Fatalf("block 0 not shrunk to 2: %v", j.blocks[0])
	}
	// A transmission by exactly one member of the now-inactive block is
	// reported as the single transmitter.
	member := j.blocks[0].Min()
	ans, v := j.step(setOf(member))
	if ans != jamSingle || v != member {
		t.Fatalf("singleton answered %v/%d", ans, v)
	}
}

func TestJammerBlocksNeverBelowTwo(t *testing.T) {
	cands := make([]int, 64)
	for i := range cands {
		cands[i] = i
	}
	j, err := newJammer(cands, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Adversarial Y sequence: hammer everything repeatedly.
	for step := 0; step < 50; step++ {
		y := bitset.New(64)
		for e := step % 3; e < 64; e += 2 {
			y.Add(e)
		}
		j.step(y)
		for p, b := range j.blocks {
			if b.Len() < 2 {
				t.Fatalf("step %d: block %d shrank to %d", step, p, b.Len())
			}
		}
	}
}

func TestBuildParameterValidation(t *testing.T) {
	rr := det.RoundRobin{}
	cases := []struct {
		params Params
		want   string
	}{
		{Params{N: 512, D: 33}, "even"},
		{Params{N: 512, D: 2}, "even and >= 4"},
		{Params{N: 20, D: 16}, "too small"},
		{Params{N: 512, D: 32}, "outside the window"},
	}
	for _, c := range cases {
		_, err := Build(rr, c.params)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Build(%+v) err = %v, want containing %q", c.params, err, c.want)
		}
	}
}

func TestBuildRejectsRandomized(t *testing.T) {
	_, err := Build(fakeDet{deterministic: false}, Params{N: 512, D: 32, Force: true})
	if err == nil {
		t.Fatal("non-deterministic protocol accepted")
	}
}

// fakeDet is a protocol whose source never transmits; Build must detect the
// stall.
type fakeDet struct{ deterministic bool }

func (fakeDet) Name() string          { return "silent" }
func (f fakeDet) Deterministic() bool { return f.deterministic }
func (fakeDet) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	return silentNode{}
}

type silentNode struct{}

func (silentNode) Act(t int) (bool, any)          { return false, nil }
func (silentNode) Deliver(t int, m radio.Message) {}

func TestBuildDetectsStall(t *testing.T) {
	_, err := Build(fakeDet{deterministic: true}, Params{N: 256, D: 16, Force: true, MaxWaitSteps: 200})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func buildFor(t *testing.T, p radio.DeterministicProtocol, n, d int) *Construction {
	t.Helper()
	c, err := Build(p, Params{N: n, D: d, Force: true})
	if err != nil {
		t.Fatalf("Build vs %s: %v", p.Name(), err)
	}
	return c
}

func TestBuildAgainstRoundRobinStructure(t *testing.T) {
	const n, d = 512, 32
	c := buildFor(t, det.RoundRobin{}, n, d)

	if err := c.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.G.N() != n+1 {
		t.Fatalf("graph has %d nodes", c.G.N())
	}
	r, err := c.G.Radius()
	if err != nil {
		t.Fatal(err)
	}
	if r != d {
		t.Fatalf("radius %d, want %d", r, d)
	}
	if len(c.Layers) != d/2 {
		t.Fatalf("%d odd layers, want %d", len(c.Layers), d/2)
	}
	for i, layer := range c.Layers {
		if len(layer.Star) == 0 || len(layer.Star) > c.K {
			t.Fatalf("layer %d: |L*| = %d", i, len(layer.Star))
		}
		if len(layer.Prime) != c.K-2 {
			t.Fatalf("layer %d: |L'| = %d, want k-2 = %d", i, len(layer.Prime), c.K-2)
		}
	}
	if len(c.LastLayer) == 0 {
		t.Fatal("empty last layer")
	}

	// Layer structure: node i connects to all of L_{2i+1}; only L* connects
	// onward.
	for i, layer := range c.Layers {
		for _, w := range append(append([]int(nil), layer.Prime...), layer.Star...) {
			if !c.G.HasEdge(i, w) {
				t.Fatalf("missing edge (%d,%d)", i, w)
			}
		}
		if i+1 < d/2 {
			for _, w := range layer.Star {
				if !c.G.HasEdge(w, i+1) {
					t.Fatalf("missing forward edge (%d,%d)", w, i+1)
				}
			}
			for _, w := range layer.Prime {
				if c.G.HasEdge(w, i+1) {
					t.Fatalf("L' node %d wrongly connected forward", w)
				}
			}
		}
	}
}

func TestBuildJammingDelaysEveryStage(t *testing.T) {
	c := buildFor(t, det.RoundRobin{}, 512, 32)
	if len(c.TBound) != c.D/2 {
		t.Fatalf("TBound has %d entries", len(c.TBound))
	}
	for i := 1; i < len(c.TBound); i++ {
		if c.TBound[i] < c.TBound[i-1]+c.LMax {
			t.Fatalf("stage %d advanced too fast: t_%d=%d t_%d=%d lmax=%d",
				i, i-1, c.TBound[i-1], i, c.TBound[i], c.LMax)
		}
	}
	if c.TBound[len(c.TBound)-1] < c.LowerBoundSteps() {
		t.Fatalf("final bound %d below guaranteed %d", c.TBound[len(c.TBound)-1], c.LowerBoundSteps())
	}
}

func TestLemma9RoundRobin(t *testing.T) {
	c := buildFor(t, det.RoundRobin{}, 512, 32)
	res, err := VerifyRealRun(det.RoundRobin{}, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("real run incomplete")
	}
	if res.BroadcastTime < c.LowerBoundSteps() {
		t.Fatalf("real broadcast time %d below the constructed bound %d",
			res.BroadcastTime, c.LowerBoundSteps())
	}
}

func TestLemma9SelectAndSend(t *testing.T) {
	c := buildFor(t, det.SelectAndSend{}, 512, 32)
	res, err := VerifyRealRun(det.SelectAndSend{}, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("real run incomplete")
	}
	if res.BroadcastTime < c.LowerBoundSteps() {
		t.Fatalf("real broadcast time %d below the constructed bound %d",
			res.BroadcastTime, c.LowerBoundSteps())
	}
}

func TestLemma9Interleaved(t *testing.T) {
	p := det.NewInterleaved(det.RoundRobin{}, det.SelectAndSend{})
	c := buildFor(t, p, 384, 24)
	if _, err := VerifyRealRun(p, c, 0); err != nil {
		t.Fatal(err)
	}
}

func TestAdversaryIsProtocolSpecific(t *testing.T) {
	// The network built against round-robin should (usually) differ from
	// the one built against select-and-send: the adversary adapts.
	a := buildFor(t, det.RoundRobin{}, 384, 24)
	b := buildFor(t, det.SelectAndSend{}, 384, 24)
	same := true
	for i := range a.Layers {
		if len(a.Layers[i].Star) != len(b.Layers[i].Star) {
			same = false
			break
		}
		for j := range a.Layers[i].Star {
			if a.Layers[i].Star[j] != b.Layers[i].Star[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("warning: adversarial networks coincide for both protocols (possible, but suspicious)")
	}
}

func TestLowerBoundSlowsDownVersusBenign(t *testing.T) {
	// The whole point: the adversarial network must be much slower for the
	// attacked algorithm than a benign network of the same n and D.
	const n, d = 512, 32
	c := buildFor(t, det.RoundRobin{}, n, d)
	adv, err := VerifyRealRun(det.RoundRobin{}, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Benign comparison: a complete layered network with the same n, D.
	// Round-robin completes it in about D rounds of length R+1... both are
	// Θ(nD) for round-robin, so compare select-and-send instead, which is
	// O(n log n) benign but forced above (D/2-1)·LMax here.
	cs := buildFor(t, det.SelectAndSend{}, n, d)
	advSS, err := VerifyRealRun(det.SelectAndSend{}, cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if advSS.BroadcastTime < cs.LowerBoundSteps() {
		t.Fatalf("select-and-send beat the bound: %d < %d", advSS.BroadcastTime, cs.LowerBoundSteps())
	}
	_ = adv
}
