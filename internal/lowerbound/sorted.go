package lowerbound

import "sort"

// sortedLabels returns m's integer keys in ascending order. The adversary
// constructions must be replayable, so every walk over a label-keyed map
// goes through this helper instead of Go's randomized map iteration.
func sortedLabels[V any](m map[int]V) []int {
	labels := make([]int, 0, len(m))
	//radiolint:ignore detmaprange keys are sorted before return
	for lbl := range m {
		labels = append(labels, lbl)
	}
	sort.Ints(labels)
	return labels
}
