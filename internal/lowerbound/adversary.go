package lowerbound

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"adhocradio/internal/bitset"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/selective"
)

// Params configures the adversarial construction of Theorem 2.
type Params struct {
	// N is the largest label: the network has N+1 nodes labelled 0..N
	// ("the graph contains all nodes from 0 to n").
	N int
	// D is the target radius (even; the paper handles odd D by building
	// for D-1 and appending one node).
	D int
	// Force builds outside the formal validity window n^{3/4} < D <= n/16.
	// The machinery still runs (blocks, jamming, witnesses); only the
	// guarantees proved for large n may degrade, and VerifyRealRun can
	// check the result empirically.
	Force bool
	// MaxWaitSteps caps how long the construction waits for the next even
	// node to transmit (part 4). A protocol that never advances the token
	// would otherwise stall the builder. 0 selects a generous default.
	MaxWaitSteps int
}

// OddLayer records one constructed odd layer L_{2i+1} = Prime ∪ Star:
// Prime (the paper's L') connects only back to node i; Star (L*) also
// connects forward to node i+1.
type OddLayer struct {
	Prime []int
	Star  []int
}

// Construction is the adversary's output: the network G_A plus everything
// needed to check the lower bound.
type Construction struct {
	G *graph.Graph
	// N, D, K, LMax echo the parameters: K = ⌈n/4D⌉ (clamped to >= 4) and
	// LMax = ⌈k·log(n/4)/(8·log k)⌉, the per-stage jamming length.
	N, D, K, LMax int
	// TBound[i] is t_i: node i's first transmission happens at step t_i+1.
	TBound []int
	// Layers[i] is L_{2i+1}.
	Layers []OddLayer
	// LastLayer is L_D: every label not placed elsewhere, attached to all
	// of L*_{D-1}.
	LastLayer []int
	// InformedAt records, for every node informed during the construction,
	// the step of its first (source-message-carrying) reception. Used by
	// VerifyRealRun to confirm abstract and real histories coincide
	// (executable Lemma 9).
	InformedAt map[int]int
	// StepsSimulated is the total number of abstract steps the
	// construction played.
	StepsSimulated int
	// JamSilent, JamSingle and JamCollision count the jamming function's
	// answers across all stages (the adversary's answer distribution).
	JamSilent, JamSingle, JamCollision int
	// Forced reports the construction ran outside the formal window.
	Forced bool
}

// LowerBoundSteps returns the guaranteed delay of Theorem 2's proof: node
// D/2−1 does not transmit before step (D/2−1)·LMax, which is
// Ω(n·log n / log(n/D)).
func (c *Construction) LowerBoundSteps() int {
	return (c.D/2 - 1) * c.LMax
}

// ErrStalled is wrapped in errors returned when the attacked algorithm
// never made the next even node transmit: the algorithm cannot finish
// broadcasting on the network built so far, an even stronger failure than
// the lower bound.
var ErrStalled = errors.New("lowerbound: algorithm stalled; next even node never transmitted")

// Build runs the Section 3 construction against protocol p.
func Build(p radio.DeterministicProtocol, params Params) (*Construction, error) {
	if !p.Deterministic() {
		return nil, fmt.Errorf("lowerbound: protocol %s does not declare determinism", p.Name())
	}
	if _, ok := radio.Protocol(p).(radio.NeighborAwareProtocol); ok {
		return nil, fmt.Errorf("lowerbound: protocol %s requires neighborhood knowledge; the construction cannot attack that model", p.Name())
	}
	n, d := params.N, params.D
	if d%2 != 0 || d < 4 {
		return nil, fmt.Errorf("lowerbound: D=%d must be even and >= 4", d)
	}
	if n < 2*d {
		return nil, fmt.Errorf("lowerbound: n=%d too small for D=%d", n, d)
	}
	window := float64(d) > math.Pow(float64(n), 0.75) && d <= n/16
	if !window && !params.Force {
		return nil, fmt.Errorf("lowerbound: (n=%d, D=%d) outside the window n^{3/4} < D <= n/16; set Force to build anyway", n, d)
	}
	k := (n + 4*d - 1) / (4 * d) // ⌈n/4D⌉
	if k < 4 {
		if !params.Force {
			return nil, fmt.Errorf("lowerbound: k=⌈n/4D⌉=%d < 4", k)
		}
		k = 4
	}
	if k%2 != 0 {
		k++ // keep k/2 blocks well-defined; the paper assumes k even
	}
	logN4 := math.Log2(float64(n) / 4)
	lmax := int(math.Ceil(float64(k) * logN4 / (8 * math.Log2(float64(k)))))
	if lmax < 1 {
		lmax = 1
	}
	maxWait := params.MaxWaitSteps
	if maxWait == 0 {
		maxWait = 64 * n * (2 + intLog2(n)) // far above any O(n log n) algorithm's need
	}

	b := &builder{
		proto:    p,
		cfg:      radio.Config{N: n + 1, R: n},
		n:        n,
		d:        d,
		k:        k,
		lmax:     lmax,
		maxWait:  maxWait,
		programs: map[int]radio.NodeProgram{},
		cons: &Construction{
			G:          graph.New(n+1, true),
			N:          n,
			D:          d,
			K:          k,
			LMax:       lmax,
			InformedAt: map[int]int{},
			Forced:     !window,
		},
	}
	if err := b.run(); err != nil {
		return nil, err
	}
	return b.cons, nil
}

// builder carries the live state of the construction.
type builder struct {
	proto   radio.DeterministicProtocol
	cfg     radio.Config
	n, d    int
	k, lmax int
	maxWait int

	cons *Construction

	// programs holds a live node program for every node with non-empty
	// abstract history. Candidates not chosen at part 3 are deleted
	// (their histories are reset to empty, construction point 6).
	programs map[int]radio.NodeProgram
	// constructed lists nodes already wired into G_A, sorted.
	constructed []int
	// used marks labels assigned to a layer (or reserved for even layers).
	used []bool

	// Per-stage state.
	candidates []int
	jam        *jammer
	ySets      []*bitset.Set

	// Per-step action buffers.
	txLabels   []int
	txPayloads map[int]any
}

// run drives the whole construction.
func (b *builder) run() error {
	n, d := b.n, b.d
	b.used = make([]bool, n+1)
	for i := 0; i < d/2; i++ {
		b.used[i] = true // reserved for the even layers L_{2i} = {i}
	}
	b.programs[0] = b.proto.NewNode(0, b.cfg)
	b.cons.InformedAt[0] = 0
	b.constructed = []int{0}
	b.txPayloads = map[int]any{}

	t := 0
	for i := 0; i < d/2; i++ {
		// Part 4 of the previous stage (bootstrap for i = 0): play steps
		// until node i transmits; that step becomes l=1 of stage i+1.
		var err error
		t, err = b.waitForEven(i, t)
		if err != nil {
			return err
		}
		// t is now the step at which node i transmitted first; TBound is
		// the step before it.
		b.cons.TBound = append(b.cons.TBound, t-1)
		t, err = b.jamStage(i, t)
		if err != nil {
			return err
		}
	}
	b.attachLastLayer()
	b.cons.StepsSimulated = t
	return b.cons.G.Validate()
}

// collectActions calls Act(t) on every live program (in ascending label
// order, for determinism) and records transmitters and payloads.
func (b *builder) collectActions(t int) {
	b.txLabels = b.txLabels[:0]
	clear(b.txPayloads)
	for _, lbl := range sortedLabels(b.programs) {
		if tx, payload := b.programs[lbl].Act(t); tx {
			b.txLabels = append(b.txLabels, lbl)
			b.txPayloads[lbl] = payload
		}
	}
}

func (b *builder) transmitted(lbl int) bool {
	_, ok := b.txPayloads[lbl]
	return ok
}

// deliverConstructed applies procedure Radio to every constructed node
// except `skip` (the node whose reception the jamming answer dictates):
// a listening node receives iff exactly one of its graph neighbors
// transmitted.
func (b *builder) deliverConstructed(t int, skip int) {
	for _, v := range b.constructed {
		if v == skip || b.transmitted(v) {
			continue
		}
		from, count := -1, 0
		for _, u := range b.cons.G.Out(v) {
			if b.transmitted(u) {
				from, count = u, count+1
				if count > 1 {
					break
				}
			}
		}
		if count == 1 {
			b.deliver(v, t, from)
		}
	}
}

// deliver hands a message to node v's program, creating it on first
// contact (unless the payload is label-only, which cannot inform).
func (b *builder) deliver(v, t, from int) {
	payload := b.txPayloads[from]
	prog, ok := b.programs[v]
	if !ok {
		if c, isCarrier := payload.(radio.SourceCarrier); isCarrier && !c.CarriesSourceMessage() {
			return
		}
		prog = b.proto.NewNode(v, b.cfg)
		b.programs[v] = prog
		b.cons.InformedAt[v] = t
	}
	prog.Deliver(t, radio.Message{From: from, Payload: payload})
}

// waitForEven plays steps after t0 until node i's program transmits,
// returning the step at which it did. All constructed nodes evolve by
// procedure Radio; nodes outside the constructed prefix hear nothing.
func (b *builder) waitForEven(i, t0 int) (int, error) {
	for t := t0 + 1; t <= t0+b.maxWait; t++ {
		b.collectActions(t)
		if b.transmitted(i) {
			return t, nil
		}
		b.deliverConstructed(t, -1)
	}
	return 0, fmt.Errorf("lowerbound: %w (node %d, %d steps, protocol %s)",
		ErrStalled, i, b.maxWait, b.proto.Name())
}

// jamStage plays part 2 of stage i+1: lmax jamming steps starting at step
// tFirst (at which node i has already been observed transmitting — actions
// for tFirst are already collected), then part 3: fixing L_{2i+1}. It
// returns the last step played.
func (b *builder) jamStage(i, tFirst int) (int, error) {
	// R_{i+1}: all labels not yet used.
	b.candidates = b.candidates[:0]
	for lbl := 0; lbl <= b.n; lbl++ {
		if !b.used[lbl] {
			b.candidates = append(b.candidates, lbl)
		}
	}
	jam, err := newJammer(b.candidates, b.k)
	if err != nil {
		return 0, err
	}
	b.jam = jam
	b.ySets = b.ySets[:0]

	// L*_{2i-1}: node i's already-wired neighbors (for i = 0 there are
	// none). Needed for the special delivery rule at node i.
	starPrev := append([]int(nil), b.cons.G.Out(i)...)

	t := tFirst
	for l := 1; l <= b.lmax; l++ {
		if l > 1 {
			t++
			b.collectActions(t)
		}
		// Y_l: abstract transmitters among the candidates.
		y := bitset.New(b.n + 1)
		for _, c := range b.candidates {
			if b.transmitted(c) {
				y.Add(c)
			}
		}
		b.ySets = append(b.ySets, y)
		answer, single := jam.step(y)
		switch answer {
		case jamSilent:
			b.cons.JamSilent++
		case jamSingle:
			b.cons.JamSingle++
		case jamCollision:
			b.cons.JamCollision++
		}

		// Candidates: hear node i when it transmits and they do not.
		if b.transmitted(i) {
			for _, c := range b.candidates {
				if !b.transmitted(c) {
					b.deliver(c, t, i)
				}
			}
		}
		// Node i: the jamming answer combined with L*_{2i-1}.
		if !b.transmitted(i) {
			starTx, starCount := -1, 0
			for _, w := range starPrev {
				if b.transmitted(w) {
					starTx, starCount = w, starCount+1
				}
			}
			switch {
			case answer == jamSilent && starCount == 1:
				b.deliver(i, t, starTx)
			case answer == jamSingle && starCount == 0:
				b.deliver(i, t, single)
			}
		}
		// Everyone else constructed: procedure Radio.
		b.deliverConstructed(t, i)
	}

	return t, b.fixLayer(i)
}

// fixLayer is part 3: choose p*, X' (two elements of every other block) and
// X* (a non-selectivity witness inside B(p*)), wire the edges, and reset
// the histories of unchosen candidates.
func (b *builder) fixLayer(i int) error {
	pStar, size := b.jam.largestBlock()
	if size < b.k {
		return fmt.Errorf("lowerbound: stage %d: largest block has %d < k=%d elements", i, size, b.k)
	}
	mApprox := float64(len(b.candidates))
	if threshold := float64(b.k) * math.Pow(mApprox, 0.25); float64(size) < threshold && !b.cons.Forced {
		return fmt.Errorf("lowerbound: stage %d: largest block %d below k·m^{1/4}=%.1f", i, size, threshold)
	}

	var prime []int
	for p := range b.jam.blocks {
		if p == pStar {
			continue
		}
		two := b.jam.pickTwo(p)
		prime = append(prime, two[0], two[1])
	}

	star := selective.Witness(b.ySets, b.jam.blocks[pStar].Elements(), b.k)
	if star == nil {
		return fmt.Errorf("lowerbound: stage %d: no non-selectivity witness in B(p*) (|B|=%d, k=%d, %d Y-sets); the observed family is selective",
			i, size, b.k, len(b.ySets))
	}

	layer := OddLayer{Prime: prime, Star: star}
	b.cons.Layers = append(b.cons.Layers, layer)

	// Wire the edges: node i to all of L_{2i+1}; L* forward to node i+1
	// (when it exists).
	for _, w := range prime {
		b.cons.G.MustAddEdge(i, w)
		b.used[w] = true
	}
	for _, w := range star {
		b.cons.G.MustAddEdge(i, w)
		b.used[w] = true
		if i+1 < b.d/2 {
			b.cons.G.MustAddEdge(w, i+1)
		}
	}
	b.constructed = append(b.constructed, prime...)
	b.constructed = append(b.constructed, star...)
	if i+1 < b.d/2 {
		b.constructed = append(b.constructed, i+1)
		// Node i+1 has an empty history; its program is created on its
		// first reception (part 4).
	}
	sort.Ints(b.constructed)

	// Point 6: unchosen candidates' histories are reset to empty.
	for _, c := range b.candidates {
		if !b.used[c] {
			delete(b.programs, c)
			delete(b.cons.InformedAt, c)
		}
	}
	return nil
}

// attachLastLayer wires every remaining label into L_D, adjacent to all of
// L*_{D-1}.
func (b *builder) attachLastLayer() {
	lastStar := b.cons.Layers[len(b.cons.Layers)-1].Star
	for lbl := 0; lbl <= b.n; lbl++ {
		if b.used[lbl] {
			continue
		}
		b.cons.LastLayer = append(b.cons.LastLayer, lbl)
		for _, w := range lastStar {
			b.cons.G.MustAddEdge(w, lbl)
		}
	}
}

func intLog2(x int) int {
	l := 0
	for 1<<uint(l+1) <= x {
		l++
	}
	return l
}

// Report renders a human-readable summary of the construction.
func (c *Construction) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adversarial network: n=%d (labels 0..%d), radius %d\n", c.G.N(), c.N, c.D)
	fmt.Fprintf(&b, "parameters: k=%d, lmax=%d jamming steps/stage, forced=%v\n", c.K, c.LMax, c.Forced)
	fmt.Fprintf(&b, "certified: node %d silent before step %d\n", c.D/2-1, c.LowerBoundSteps())
	starTotal, primeTotal := 0, 0
	minStar, maxStar := 1<<30, 0
	for _, l := range c.Layers {
		starTotal += len(l.Star)
		primeTotal += len(l.Prime)
		if len(l.Star) < minStar {
			minStar = len(l.Star)
		}
		if len(l.Star) > maxStar {
			maxStar = len(l.Star)
		}
	}
	fmt.Fprintf(&b, "odd layers: %d (dead-ends %d, forwarders %d, |L*| in [%d,%d])\n",
		len(c.Layers), primeTotal, starTotal, minStar, maxStar)
	fmt.Fprintf(&b, "last layer: %d nodes; construction played %d abstract steps\n",
		len(c.LastLayer), c.StepsSimulated)
	fmt.Fprintf(&b, "jamming answers: silent %d, single %d, collision %d\n",
		c.JamSilent, c.JamSingle, c.JamCollision)
	for i, tb := range c.TBound {
		if i < 3 || i >= len(c.TBound)-1 {
			fmt.Fprintf(&b, "  t_%d = %d\n", i, tb)
		} else if i == 3 {
			fmt.Fprintf(&b, "  ...\n")
		}
	}
	return b.String()
}

// VerifyRealRun replays protocol p on the constructed network with the real
// simulator and checks the executable version of Lemma 9: every node the
// construction informed is informed at the same step in the real run, and
// node D/2−1 stays uninformed until at least its construction-time step —
// which yields the Ω(n log n / log(n/D)) bound. It returns the real run's
// result for further measurement.
func VerifyRealRun(p radio.DeterministicProtocol, c *Construction, maxSteps int) (*radio.Result, error) {
	res, err := radio.Run(c.G, p, radio.Config{N: c.N + 1, R: c.N}, radio.Options{MaxSteps: maxSteps})
	if err != nil {
		return res, fmt.Errorf("lowerbound: real run: %w", err)
	}
	for _, v := range sortedLabels(c.InformedAt) {
		if want := c.InformedAt[v]; res.InformedAt[v] != want {
			return res, fmt.Errorf("lowerbound: Lemma 9 violated: node %d informed at %d in the real run, %d in the construction",
				v, res.InformedAt[v], want)
		}
	}
	return res, nil
}
