package experiment

import (
	"context"
	"errors"
	"fmt"

	"adhocradio/internal/core"
	"adhocradio/internal/decay"
	"adhocradio/internal/det"
	"adhocradio/internal/experiment/pool"
	"adhocradio/internal/fault"
	"adhocradio/internal/graph"
	"adhocradio/internal/obs"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

// The fault experiments (E15-E17) measure how the paper's algorithms degrade
// when the model's clean assumptions — reliable links, live nodes, no
// external interference — are relaxed through internal/fault. Every fault
// stream is derived from (cfg.Seed, point/trial index) via rng.NewStream, so
// the tables obey the same bit-identical-under--parallel contract as E1-E14.

// faultSummary aggregates one (protocol, fault level) measurement point.
type faultSummary struct {
	meanTime float64 // broadcast time, censored at the step budget
	done     float64 // fraction of trials that completed
	informed float64 // mean informed fraction at the end of the run
}

// faultTrials runs `trials` independent simulations of p under per-trial
// fault plans and summarizes them. Trial i derives its topology stream from
// (base, i), its protocol seed from base+1000+i, and its fault seed from
// rng.NewStream(base, 5000+i) — a pure function of the indices, as
// CONTRIBUTING.md requires. Runs that exhaust the budget are censored at it
// (faulty runs may legitimately never complete).
func faultTrials(ctx context.Context, cfg Config, trials int, base uint64, budget int,
	build func(src *rng.Source) (*graph.Graph, error),
	p func() radio.Protocol,
	plan func(trial int, g *graph.Graph, fseed uint64) *fault.Plan) (faultSummary, error) {

	type out struct {
		time     int
		done     bool
		informed float64
	}
	results, trialNS, err := pool.CollectMetered(ctx, cfg.workers(), trials, func(_ context.Context, i int) (out, error) {
		src := rng.NewStream(base, uint64(i))
		g, err := build(src)
		if err != nil {
			return out{}, err
		}
		fseed := rng.NewStream(base, uint64(5000+i)).Uint64()
		res, err := simulate(g, p(), radio.Config{Seed: base + uint64(1000+i)},
			radio.Options{MaxSteps: budget, Fault: plan(i, g, fseed)})
		if err != nil && !errors.Is(err, radio.ErrStepLimit) {
			return out{}, err
		}
		o := out{time: budget, done: res.Completed}
		if res.Completed {
			o.time = res.BroadcastTime
		}
		informed := 0
		for _, at := range res.InformedAt {
			if at >= 0 {
				informed++
			}
		}
		o.informed = float64(informed) / float64(g.N())
		return o, nil
	})
	if err != nil {
		return faultSummary{}, err
	}
	obs.Default.ObserveTrials(trialNS)
	var s faultSummary
	for _, o := range results {
		s.meanTime += float64(o.time)
		if o.done {
			s.done++
		}
		s.informed += o.informed
	}
	k := float64(len(results))
	s.meanTime /= k
	s.done /= k
	s.informed /= k
	return s, nil
}

// E15: broadcast-time degradation under per-step link loss. The randomized
// KP algorithm retries probabilistically forever, so loss costs it a
// graceful slowdown; Select-and-Send's Echo handshakes assume reliable
// delivery and pay much more steeply.
func E15(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Degradation under per-step link loss: KP vs Select-and-Send",
		Columns: []string{"loss", "n", "t_KP", "done_KP", "t_SS", "done_SS"},
		Notes: []string{
			"fault extension: each directed arc independently drops each transmission with prob. `loss`",
			"times are means censored at the step budget; done = fraction of trials completing",
			"randomized retrying degrades smoothly; the deterministic Echo machinery is brittle",
		},
	}
	n := 512
	if cfg.Quick {
		n = 128
	}
	budget := 100 * n
	trials := cfg.trials(5)
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3}
	err := runPoints(ctx, cfg, t, len(losses), func(ctx context.Context, i int) ([][]any, error) {
		loss := losses[i]
		base := cfg.Seed + 15000*uint64(i+1)
		build := func(src *rng.Source) (*graph.Graph, error) {
			return graph.GNPConnected(n, 4.0/float64(n), src), nil
		}
		plan := func(_ int, _ *graph.Graph, fseed uint64) *fault.Plan {
			if loss == 0 {
				return nil
			}
			return &fault.Plan{Seed: fseed, LinkLoss: loss}
		}
		kp, err := faultTrials(ctx, cfg, trials, base, budget, build,
			func() radio.Protocol { return core.New() }, plan)
		if err != nil {
			return nil, fmt.Errorf("E15 kp loss=%.2f: %w", loss, err)
		}
		ss, err := faultTrials(ctx, cfg, trials, base, budget, build,
			func() radio.Protocol { return det.SelectAndSend{} }, plan)
		if err != nil {
			return nil, fmt.Errorf("E15 ss loss=%.2f: %w", loss, err)
		}
		return [][]any{{loss, n, kp.meanTime, kp.done, ss.meanTime, ss.done}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E16: broadcast-time degradation under adversarial jamming — the Section 3
// adversary made kinetic. n/16 noise devices sit at random nodes and each
// transmits with probability `jam` per step, turning single receptions in
// their shadow into collisions.
func E16(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Degradation under random jammers: KP vs Select-and-Send",
		Columns: []string{"jam", "n", "jammers", "t_KP", "done_KP", "t_SS", "done_SS"},
		Notes: []string{
			"fault extension: n/16 jammer devices at per-trial random hosts; noise reaches the host's out-neighbors",
			"jam noise over a single legitimate transmission is a collision; over silence it is silence",
			"times are means censored at the step budget; done = fraction of trials completing",
		},
	}
	n := 512
	if cfg.Quick {
		n = 128
	}
	budget := 100 * n
	trials := cfg.trials(5)
	jams := []float64{0, 0.2, 0.4, 0.6, 0.8}
	numJam := n / 16
	err := runPoints(ctx, cfg, t, len(jams), func(ctx context.Context, i int) ([][]any, error) {
		jam := jams[i]
		base := cfg.Seed + 16000*uint64(i+1)
		build := func(src *rng.Source) (*graph.Graph, error) {
			return graph.GNPConnected(n, 4.0/float64(n), src), nil
		}
		plan := func(trial int, g *graph.Graph, fseed uint64) *fault.Plan {
			if jam == 0 {
				return nil
			}
			// Sample distinct jammer hosts from [1, n) off a dedicated
			// substream so the host set is a pure function of the indices.
			jsrc := rng.NewStream(base, uint64(9000+trial))
			taken := make([]bool, g.N())
			hosts := make([]int, 0, numJam)
			for len(hosts) < numJam {
				v := 1 + jsrc.Intn(g.N()-1)
				if !taken[v] {
					taken[v] = true
					hosts = append(hosts, v)
				}
			}
			return &fault.Plan{Seed: fseed, Jammers: hosts, JamProb: jam}
		}
		kp, err := faultTrials(ctx, cfg, trials, base, budget, build,
			func() radio.Protocol { return core.New() }, plan)
		if err != nil {
			return nil, fmt.Errorf("E16 kp jam=%.1f: %w", jam, err)
		}
		ss, err := faultTrials(ctx, cfg, trials, base, budget, build,
			func() radio.Protocol { return det.SelectAndSend{} }, plan)
		if err != nil {
			return nil, fmt.Errorf("E16 ss jam=%.1f: %w", jam, err)
		}
		return [][]any{{jam, n, numJam, kp.meanTime, kp.done, ss.meanTime, ss.done}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E17: crash-tolerance of the DFS token vs Decay flooding. The linear-time
// DFS broadcast of the neighbor-aware model carries its progress in a single
// token: one crash of the holder kills the whole broadcast. Decay has no
// distinguished state — every informed node keeps running the ladder — so
// it routes around crashed nodes and keeps informing whoever is reachable.
func E17(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Crash-tolerance: DFS token vs Decay flooding",
		Columns: []string{"crash", "n", "inf_DFS", "done_DFS", "inf_Decay", "done_Decay"},
		Notes: []string{
			"fault extension: a `crash` fraction of nodes halts forever at a uniform step in [1, n]",
			"inf_* = mean fraction of nodes informed when the run ends (crashed nodes count as uninformed)",
			"the token is a single point of failure; the memoryless ladder degrades with the crashed fraction only",
		},
	}
	n := 512
	if cfg.Quick {
		n = 128
	}
	budget := 100 * n
	trials := cfg.trials(5)
	crashes := []float64{0, 0.05, 0.1, 0.2, 0.3}
	err := runPoints(ctx, cfg, t, len(crashes), func(ctx context.Context, i int) ([][]any, error) {
		crash := crashes[i]
		base := cfg.Seed + 17000*uint64(i+1)
		build := func(src *rng.Source) (*graph.Graph, error) {
			// Enough redundancy that crashed nodes rarely disconnect the
			// survivors: what stalls must be the algorithm, not the topology.
			return graph.GNPConnected(n, 6.0/float64(n), src), nil
		}
		plan := func(_ int, _ *graph.Graph, fseed uint64) *fault.Plan {
			if crash == 0 {
				return nil
			}
			return &fault.Plan{Seed: fseed, CrashFrac: crash, CrashWindow: n}
		}
		dfs, err := faultTrials(ctx, cfg, trials, base, budget, build,
			func() radio.Protocol { return det.DFSNeighborhood{} }, plan)
		if err != nil {
			return nil, fmt.Errorf("E17 dfs crash=%.2f: %w", crash, err)
		}
		dec, err := faultTrials(ctx, cfg, trials, base, budget, build,
			func() radio.Protocol { return decay.New() }, plan)
		if err != nil {
			return nil, fmt.Errorf("E17 decay crash=%.2f: %w", crash, err)
		}
		return [][]any{{crash, n, dfs.informed, dfs.done, dec.informed, dec.done}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
