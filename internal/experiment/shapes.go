package experiment

import (
	"fmt"
	"strconv"
)

// ShapeCheck verifies that a full-scale experiment table exhibits the
// qualitative behaviour the paper predicts — the executable form of the
// verdicts in EXPERIMENTS.md. Checks are written for full-scale tables;
// quick-mode sizes may legitimately fail them.
type ShapeCheck func(*Table) error

// ShapeChecks maps experiment IDs to their claim checks.
func ShapeChecks() map[string]ShapeCheck {
	return map[string]ShapeCheck{
		"E1":  checkE1,
		"E2":  checkE2,
		"E3":  checkE3,
		"E4":  checkE4,
		"E5":  checkE5,
		"E6":  checkE6,
		"E7":  checkE7,
		"E8":  checkE8,
		"E9":  checkE9,
		"E10": checkE10,
		"E11": checkE11,
		"E12": checkE12,
		"E13": checkE13,
		"E14": checkE14,
		"E15": checkE15,
		"E16": checkE16,
		"E17": checkE17,
	}
}

// quickUnsafeIDs lists experiments whose qualitative claims only emerge at
// full scale; `radiobench -quick -verify` (CI's bench-smoke gate) records
// them as skipped instead of enforcing them. Every current check was
// validated to hold at Quick sizes across several seeds — and the gate runs
// a fixed seed, so it is deterministic, not flaky — hence the set is empty
// today. A new experiment whose claim needs full-scale sizes adds its ID
// here with the reason.
var quickUnsafeIDs = map[string]bool{}

// QuickSafe reports whether id's shape check is meaningful at Quick sizes.
func QuickSafe(id string) bool {
	return !quickUnsafeIDs[id]
}

// cell parses the table cell at (row, column name) as a float.
func cell(t *Table, row int, col string) (float64, error) {
	for ci, c := range t.Columns {
		if c != col {
			continue
		}
		if row < 0 || row >= len(t.Rows) || ci >= len(t.Rows[row]) {
			return 0, fmt.Errorf("%s: row %d out of range", t.ID, row)
		}
		v, err := strconv.ParseFloat(t.Rows[row][ci], 64)
		if err != nil {
			return 0, fmt.Errorf("%s: cell (%d, %s) = %q not numeric", t.ID, row, col, t.Rows[row][ci])
		}
		return v, nil
	}
	return 0, fmt.Errorf("%s: no column %q", t.ID, col)
}

// column parses a whole column.
func column(t *Table, col string) ([]float64, error) {
	out := make([]float64, len(t.Rows))
	for i := range t.Rows {
		v, err := cell(t, i, col)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// checkE1: the known-D speedup exceeds 1 everywhere and grows with n.
func checkE1(t *Table) error {
	s, err := column(t, "speedup_knownD")
	if err != nil {
		return err
	}
	for i, v := range s {
		if v <= 1.0 {
			return fmt.Errorf("E1: speedup_knownD row %d = %.2f, want > 1", i, v)
		}
	}
	if s[len(s)-1] <= s[0] {
		return fmt.Errorf("E1: speedup_knownD not growing with n (%.2f -> %.2f)", s[0], s[len(s)-1])
	}
	return nil
}

// checkE2: small-D ratios stay near 1 (no unbounded gap).
func checkE2(t *Table) error {
	rs, err := column(t, "ratio")
	if err != nil {
		return err
	}
	for i, v := range rs {
		if v < 0.7 || v > 2.5 {
			return fmt.Errorf("E2: ratio row %d = %.2f outside [0.7, 2.5]", i, v)
		}
	}
	return nil
}

// checkE3: complete layered at least as hard as random layered once D is
// large enough for the D·log(n/D) term to dominate.
func checkE3(t *Table) error {
	for i := range t.Rows {
		d, err := cell(t, i, "D")
		if err != nil {
			return err
		}
		if d < 32 {
			continue
		}
		h, err := cell(t, i, "hardness")
		if err != nil {
			return err
		}
		if h < 0.95 {
			return fmt.Errorf("E3: hardness %.2f < 0.95 at D=%.0f", h, d)
		}
	}
	return nil
}

// checkE4: measured time exceeds the certified bound on every row (the
// experiment itself errors otherwise, but assert the table agrees), and the
// bound grows with n within each protocol block.
func checkE4(t *Table) error {
	ratios, err := column(t, "t/bound")
	if err != nil {
		return err
	}
	for i, v := range ratios {
		if v < 1 {
			return fmt.Errorf("E4: t/bound row %d = %.2f < 1", i, v)
		}
	}
	bounds, err := column(t, "bound")
	if err != nil {
		return err
	}
	ns, err := column(t, "n")
	if err != nil {
		return err
	}
	for i := 1; i < len(bounds); i++ {
		if ns[i] > ns[i-1] && bounds[i] < bounds[i-1] {
			return fmt.Errorf("E4: bound fell from %.0f to %.0f as n grew", bounds[i-1], bounds[i])
		}
	}
	return nil
}

// checkE5: per topology, the normalized time varies by at most 2x across
// the n sweep (flat up to constants).
func checkE5(t *Table) error {
	byTopo := map[string][]float64{}
	for i, row := range t.Rows {
		v, err := cell(t, i, "t/(n log n)")
		if err != nil {
			return err
		}
		byTopo[row[0]] = append(byTopo[row[0]], v)
	}
	for topo, vs := range byTopo {
		mn, mx := vs[0], vs[0]
		for _, v := range vs {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if mx > 2*mn {
			return fmt.Errorf("E5: %s normalized time spans [%.2f, %.2f] (> 2x)", topo, mn, mx)
		}
	}
	return nil
}

// checkE6: t/(n + D log n) bounded; t/(n log D) falls as n grows.
func checkE6(t *Table) error {
	mid, err := column(t, "t/(n+D log n)")
	if err != nil {
		return err
	}
	for i, v := range mid {
		if v > 6 {
			return fmt.Errorf("E6: t/(n+D log n) row %d = %.2f too large", i, v)
		}
	}
	last, err := column(t, "t/(n log D)")
	if err != nil {
		return err
	}
	if last[len(last)-1] >= last[0] {
		return fmt.Errorf("E6: t/(n log D) did not fall (%.2f -> %.2f)", last[0], last[len(last)-1])
	}
	return nil
}

// checkE7: round-robin wins somewhere in the middle, Select-and-Send wins
// at the largest D, and the interleaving is never far above the better.
func checkE7(t *Table) error {
	var rrWins, ssWinsAtLargeD bool
	for i, row := range t.Rows {
		winner := row[len(row)-1]
		if winner == "round-robin" {
			rrWins = true
		}
		d, err := cell(t, i, "D")
		if err != nil {
			return err
		}
		if i == len(t.Rows)-1 && d >= 64 && winner == "select-and-send" {
			ssWinsAtLargeD = true
		}
		rr, err := cell(t, i, "t_rr")
		if err != nil {
			return err
		}
		ss, err := cell(t, i, "t_ss")
		if err != nil {
			return err
		}
		inter, err := cell(t, i, "t_inter")
		if err != nil {
			return err
		}
		best := rr
		if ss < best {
			best = ss
		}
		if inter > 2.5*best+16 {
			return fmt.Errorf("E7: interleaving %.0f above 2.5x best %.0f at D=%.0f", inter, best, d)
		}
	}
	if !rrWins {
		return fmt.Errorf("E7: round-robin never won")
	}
	if !ssWinsAtLargeD {
		return fmt.Errorf("E7: select-and-send did not win at the largest D")
	}
	return nil
}

// checkE8: the ablated variant pays at least 5x on every fan-in.
func checkE8(t *Table) error {
	ps, err := column(t, "penalty")
	if err != nil {
		return err
	}
	for i, v := range ps {
		if v < 5 {
			return fmt.Errorf("E8: penalty row %d = %.1f < 5", i, v)
		}
	}
	return nil
}

// checkE9: round-robin uses the fewest transmissions; the randomized
// algorithms are the fastest.
func checkE9(t *Table) error {
	tx := map[string]float64{}
	times := map[string]float64{}
	for i, row := range t.Rows {
		v, err := cell(t, i, "transmissions")
		if err != nil {
			return err
		}
		tx[row[0]] = v
		tm, err := cell(t, i, "time")
		if err != nil {
			return err
		}
		times[row[0]] = tm
	}
	for name, v := range tx {
		if name != "round-robin" && v <= tx["round-robin"] {
			return fmt.Errorf("E9: %s used %.0f transmissions, not more than round-robin's %.0f", name, v, tx["round-robin"])
		}
	}
	if times["kp-optimal"] >= times["round-robin"] {
		return fmt.Errorf("E9: kp-optimal (%.0f) not faster than round-robin (%.0f)", times["kp-optimal"], times["round-robin"])
	}
	return nil
}

// checkE10: the Select-and-Send/DFS ratio grows with n and stays within a
// constant of log2 n.
func checkE10(t *Table) error {
	rs, err := column(t, "ratio")
	if err != nil {
		return err
	}
	logs, err := column(t, "log2 n")
	if err != nil {
		return err
	}
	if rs[len(rs)-1] <= rs[0] {
		return fmt.Errorf("E10: ratio not growing (%.2f -> %.2f)", rs[0], rs[len(rs)-1])
	}
	for i := range rs {
		if rs[i] < 0.3*logs[i] || rs[i] > 3*logs[i] {
			return fmt.Errorf("E10: ratio %.2f not within [0.3, 3]·log2 n (%.2f)", rs[i], logs[i])
		}
	}
	return nil
}

// checkE11: both stronger models stay linear; the standard model stays
// n log n.
func checkE11(t *Table) error {
	sp, err := column(t, "spont/n")
	if err != nil {
		return err
	}
	ss, err := column(t, "ss/(n log n)")
	if err != nil {
		return err
	}
	for i := range sp {
		if sp[i] < 0.5 || sp[i] > 5 {
			return fmt.Errorf("E11: spont/n row %d = %.2f outside [0.5, 5]", i, sp[i])
		}
		if ss[i] < 0.5 || ss[i] > 5 {
			return fmt.Errorf("E11: ss/(n log n) row %d = %.2f outside [0.5, 5]", i, ss[i])
		}
	}
	return nil
}

// checkE12: the directed adversary costs the oblivious schedule at least 5x
// over the benign placement.
func checkE12(t *Table) error {
	sl, err := column(t, "slowdown")
	if err != nil {
		return err
	}
	for i, v := range sl {
		if v < 5 {
			return fmt.Errorf("E12: slowdown row %d = %.1f < 5", i, v)
		}
	}
	return nil
}

// checkE13: directed and undirected times agree within 25%.
func checkE13(t *Table) error {
	rs, err := column(t, "ratio")
	if err != nil {
		return err
	}
	for i, v := range rs {
		if v < 0.75 || v > 1.25 {
			return fmt.Errorf("E13: ratio row %d = %.2f outside [0.75, 1.25]", i, v)
		}
	}
	return nil
}

// checkE14: the bigger the stage budget, the earlier (and slower-staged)
// the completing phase: t_factor16 <= t_factor128 <= t_paper4660 up to 15%
// noise, and the paper configuration lands within 35% of BGI.
func checkE14(t *Table) error {
	f16, err := column(t, "t_factor16")
	if err != nil {
		return err
	}
	f128, err := column(t, "t_factor128")
	if err != nil {
		return err
	}
	paper, err := column(t, "t_paper4660")
	if err != nil {
		return err
	}
	bgi, err := column(t, "t_BGI")
	if err != nil {
		return err
	}
	for i := range f16 {
		if f16[i] > 1.15*f128[i] || f128[i] > 1.15*paper[i] {
			return fmt.Errorf("E14 row %d: times not increasing with budget (%.0f, %.0f, %.0f)",
				i, f16[i], f128[i], paper[i])
		}
		ratio := paper[i] / bgi[i]
		if ratio < 0.65 || ratio > 1.35 {
			return fmt.Errorf("E14 row %d: paper-constants time %.0f not BGI-like (%.0f)", i, paper[i], bgi[i])
		}
	}
	return nil
}

// checkE15: the fault sweep separates graceful from brittle. The randomized
// KP algorithm completes at every loss level (mild loss can even speed it
// up — dropped arcs thin out collisions, acting like extra Decay), while
// Select-and-Send's Echo handshake pays at least double at the heaviest
// level (in practice it is censored at the budget).
func checkE15(t *Table) error {
	return checkFaultBrittleness(t, "t_KP", "done_KP", "t_SS", "done_SS")
}

// checkE16: same graceful-vs-brittle shape for the jamming sweep.
func checkE16(t *Table) error {
	return checkFaultBrittleness(t, "t_KP", "done_KP", "t_SS", "done_SS")
}

// checkFaultBrittleness: the first row is the fault-free baseline (both
// algorithms complete every trial); the graceful algorithm (A) completes on
// every row, and at the heaviest fault level the brittle one (B) is at
// least twice as slow as A.
func checkFaultBrittleness(t *Table, tA, doneA, tB, doneB string) error {
	for _, done := range []string{doneA, doneB} {
		v, err := cell(t, 0, done)
		if err != nil {
			return err
		}
		if v != 1 {
			return fmt.Errorf("%s: %s = %.2f on the fault-free baseline, want 1", t.ID, done, v)
		}
	}
	dA, err := column(t, doneA)
	if err != nil {
		return err
	}
	for i, v := range dA {
		if v != 1 {
			return fmt.Errorf("%s: %s = %.2f at row %d, want completion at every fault level", t.ID, doneA, v, i)
		}
	}
	last := len(t.Rows) - 1
	a, err := cell(t, last, tA)
	if err != nil {
		return err
	}
	b, err := cell(t, last, tB)
	if err != nil {
		return err
	}
	if b < 2*a {
		return fmt.Errorf("%s: %s (%.0f) not clearly brittler than %s (%.0f) at max fault", t.ID, tB, b, tA, a)
	}
	return nil
}

// checkE17: without crashes both algorithms inform everyone; at the heaviest
// crash rate the single-token DFS has lost nodes the memoryless Decay ladder
// still reaches.
func checkE17(t *Table) error {
	for _, col := range []string{"inf_DFS", "inf_Decay"} {
		v, err := cell(t, 0, col)
		if err != nil {
			return err
		}
		if v != 1 {
			return fmt.Errorf("E17: %s = %.3f at zero crash rate, want 1", col, v)
		}
	}
	last := len(t.Rows) - 1
	dfs, err := cell(t, last, "inf_DFS")
	if err != nil {
		return err
	}
	dec, err := cell(t, last, "inf_Decay")
	if err != nil {
		return err
	}
	if dfs >= 1 {
		return fmt.Errorf("E17: DFS token survived the max crash rate (inf_DFS = %.3f)", dfs)
	}
	if dec <= dfs {
		return fmt.Errorf("E17: Decay (%.3f) not more crash-tolerant than the DFS token (%.3f)", dec, dfs)
	}
	return nil
}
