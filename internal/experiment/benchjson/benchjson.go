// Package benchjson defines the stable, machine-readable schema for
// radiobench runs: the BENCH_<id>.json files that record the repository's
// performance trajectory (archived by CI on every push).
//
// The schema separates the deterministic payload — seed, configuration,
// and every experiment table cell, which must be bit-identical across
// worker counts for a fixed seed — from the timing observations, which are
// inherently nondeterministic. Canonical returns the projection with all
// timing stripped; two runs of the same seed and sizes must produce
// byte-identical Canonical encodings whatever their -parallel setting (the
// determinism tests assert exactly that).
//
// Schema evolution rule: additions are backward-compatible (new optional
// fields); any change to the meaning or encoding of an existing field bumps
// SchemaVersion.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"adhocradio/internal/experiment"
	"adhocradio/internal/obs"
)

// SchemaVersion identifies the encoding; see the package comment for the
// evolution rule.
//
// v2: the run environment moved from loose top-level fields (go_version,
// gomaxprocs) into an explicit Manifest, and experiments gained aggregated
// engine Counters (deterministic, kept by Canonical) and per-trial wall-time
// TrialStats (observational, stripped like Timing).
const SchemaVersion = 2

// Manifest records the provenance of a run: the toolchain, the host shape,
// the build's VCS state, and the effective command-line flags. Everything in
// it describes the environment, not the workload, so Canonical strips it
// whole.
type Manifest struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// VCSRevision is the vcs.revision build setting (empty for builds
	// without embedded VCS info, e.g. `go run` from a dirty cache).
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSModified reports vcs.modified: the working tree was dirty.
	VCSModified bool `json:"vcs_modified,omitempty"`
	// Flags is the resolved flag set of the producing command. Go's JSON
	// encoder sorts map keys, so the encoding stays deterministic.
	Flags map[string]string `json:"flags,omitempty"`
}

// NewManifest captures the current process environment. VCS fields come
// from debug.ReadBuildInfo — no git subprocess, so this works in containers
// without git and in test binaries (where the fields simply stay empty).
func NewManifest(flags map[string]string) *Manifest {
	m := &Manifest{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Flags:      flags,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// TrialStats summarizes the per-trial wall-time histogram of one experiment:
// how long individual pool trials took, independent of the worker count that
// interleaved them. Like Timing it is observational and stripped by
// Canonical.
type TrialStats struct {
	Trials  int64 `json:"trials"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
	MeanNS  int64 `json:"mean_ns"`
	// P50NS and P95NS are log2-bucket upper bounds (see obs.Hist), not
	// exact order statistics.
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
}

// TrialStatsFrom projects an obs.Hist into the schema form (nil when the
// histogram is empty, so quiet experiments carry no field at all).
func TrialStatsFrom(h obs.Hist) *TrialStats {
	if h.Count == 0 {
		return nil
	}
	return &TrialStats{
		Trials:  h.Count,
		TotalNS: h.TotalNS,
		MinNS:   h.MinNS,
		MaxNS:   h.MaxNS,
		MeanNS:  h.MeanNS(),
		P50NS:   h.ApproxQuantileNS(0.50),
		P95NS:   h.ApproxQuantileNS(0.95),
	}
}

// Timing records wall-clock and CPU time for a run or a single experiment.
// Timing is observational: it never participates in determinism checks and
// is stripped by Canonical.
type Timing struct {
	WallMS int64 `json:"wall_ms"`
	// CPUMS is the process CPU time consumed (user+system); 0 when the
	// platform does not report it or the caller did not measure it.
	CPUMS int64 `json:"cpu_ms,omitempty"`
}

// Experiment is one experiment's table plus its per-experiment
// observations.
type Experiment struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// ShapeCheck is "" (not run), "pass", or "fail: <reason>" — the result
	// of the experiment's qualitative-claim check under -verify.
	ShapeCheck string `json:"shape_check,omitempty"`
	// Counters is the sum of engine counters over every simulation the
	// experiment ran. The totals are a deterministic function of (seed,
	// sizes) — integer addition commutes across the worker schedule — so
	// Canonical keeps them: a counter drift across -parallel values is a
	// determinism bug, and the canonical-encoding tests will catch it.
	Counters *obs.Counters `json:"counters,omitempty"`
	// TrialStats aggregates per-trial wall times (observational).
	TrialStats *TrialStats `json:"trial_stats,omitempty"`
	Timing     *Timing     `json:"timing,omitempty"`
}

// Run is the top-level BENCH_<id>.json document.
type Run struct {
	Schema int `json:"schema"`
	// ID names the run; the conventional file name is Filename(ID).
	ID   string `json:"id"`
	Seed uint64 `json:"seed"`
	// Quick records whether reduced problem sizes were used.
	Quick bool `json:"quick"`
	// Trials is the configured trials-per-point override (0 = defaults).
	Trials int `json:"trials"`
	// Parallel is the configured worker count (0 = all cores).
	Parallel int `json:"parallel"`
	// Workers is the resolved worker count actually used.
	Workers int `json:"workers,omitempty"`
	// Manifest describes the producing environment (schema v2; stripped by
	// Canonical).
	Manifest *Manifest `json:"manifest,omitempty"`
	// Interrupted is true when the run was cancelled (SIGINT) and the
	// document holds only the experiments completed before cancellation.
	Interrupted bool         `json:"interrupted,omitempty"`
	Experiments []Experiment `json:"experiments"`
	Timing      *Timing      `json:"timing,omitempty"`
}

// FromTable converts a rendered experiment table into its schema form.
func FromTable(t *experiment.Table) Experiment {
	e := Experiment{
		ID:      t.ID,
		Title:   t.Title,
		Columns: append([]string(nil), t.Columns...),
		Rows:    make([][]string, len(t.Rows)),
		Notes:   append([]string(nil), t.Notes...),
	}
	for i, row := range t.Rows {
		e.Rows[i] = append([]string(nil), row...)
	}
	return e
}

// Canonical returns a deep copy of r with every nondeterministic field
// (timing, trial-time statistics, the environment manifest, the resolved
// worker count, and the configured parallelism itself) zeroed: the
// projection that must be byte-identical across -parallel settings for a
// fixed seed. Engine counters survive the projection on purpose — they are
// part of the deterministic payload.
func (r *Run) Canonical() *Run {
	c := *r
	c.Parallel = 0
	c.Workers = 0
	c.Manifest = nil
	c.Timing = nil
	c.Experiments = make([]Experiment, len(r.Experiments))
	for i, e := range r.Experiments {
		e.Timing = nil
		e.TrialStats = nil
		c.Experiments[i] = e
	}
	return &c
}

// Encode writes r as stable, indented JSON. Field order follows the struct
// declarations, so the byte stream is a deterministic function of the
// document.
func Encode(w io.Writer, r *Run) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	return nil
}

// Decode reads a document produced by Encode and validates its schema
// version.
func Decode(rd io.Reader) (*Run, error) {
	var r Run
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchjson: schema %d, this build reads %d", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Filename returns the conventional file name for a run id.
func Filename(id string) string {
	return "BENCH_" + id + ".json"
}
