// Package benchjson defines the stable, machine-readable schema for
// radiobench runs: the BENCH_<id>.json files that record the repository's
// performance trajectory (archived by CI on every push).
//
// The schema separates the deterministic payload — seed, configuration,
// and every experiment table cell, which must be bit-identical across
// worker counts for a fixed seed — from the timing observations, which are
// inherently nondeterministic. Canonical returns the projection with all
// timing stripped; two runs of the same seed and sizes must produce
// byte-identical Canonical encodings whatever their -parallel setting (the
// determinism tests assert exactly that).
//
// Schema evolution rule: additions are backward-compatible (new optional
// fields); any change to the meaning or encoding of an existing field bumps
// SchemaVersion.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"

	"adhocradio/internal/experiment"
)

// SchemaVersion identifies the encoding; see the package comment for the
// evolution rule.
const SchemaVersion = 1

// Timing records wall-clock and CPU time for a run or a single experiment.
// Timing is observational: it never participates in determinism checks and
// is stripped by Canonical.
type Timing struct {
	WallMS int64 `json:"wall_ms"`
	// CPUMS is the process CPU time consumed (user+system); 0 when the
	// platform does not report it or the caller did not measure it.
	CPUMS int64 `json:"cpu_ms,omitempty"`
}

// Experiment is one experiment's table plus its per-experiment
// observations.
type Experiment struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// ShapeCheck is "" (not run), "pass", or "fail: <reason>" — the result
	// of the experiment's qualitative-claim check under -verify.
	ShapeCheck string  `json:"shape_check,omitempty"`
	Timing     *Timing `json:"timing,omitempty"`
}

// Run is the top-level BENCH_<id>.json document.
type Run struct {
	Schema int `json:"schema"`
	// ID names the run; the conventional file name is Filename(ID).
	ID   string `json:"id"`
	Seed uint64 `json:"seed"`
	// Quick records whether reduced problem sizes were used.
	Quick bool `json:"quick"`
	// Trials is the configured trials-per-point override (0 = defaults).
	Trials int `json:"trials"`
	// Parallel is the configured worker count (0 = all cores).
	Parallel int `json:"parallel"`
	// Workers is the resolved worker count actually used.
	Workers    int    `json:"workers,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	// Interrupted is true when the run was cancelled (SIGINT) and the
	// document holds only the experiments completed before cancellation.
	Interrupted bool         `json:"interrupted,omitempty"`
	Experiments []Experiment `json:"experiments"`
	Timing      *Timing      `json:"timing,omitempty"`
}

// FromTable converts a rendered experiment table into its schema form.
func FromTable(t *experiment.Table) Experiment {
	e := Experiment{
		ID:      t.ID,
		Title:   t.Title,
		Columns: append([]string(nil), t.Columns...),
		Rows:    make([][]string, len(t.Rows)),
		Notes:   append([]string(nil), t.Notes...),
	}
	for i, row := range t.Rows {
		e.Rows[i] = append([]string(nil), row...)
	}
	return e
}

// Canonical returns a deep copy of r with every nondeterministic field
// (timing, environment description, resolved worker count, and the
// configured parallelism itself) zeroed: the projection that must be
// byte-identical across -parallel settings for a fixed seed.
func (r *Run) Canonical() *Run {
	c := *r
	c.Parallel = 0
	c.Workers = 0
	c.GoVersion = ""
	c.GOMAXPROCS = 0
	c.Timing = nil
	c.Experiments = make([]Experiment, len(r.Experiments))
	for i, e := range r.Experiments {
		e.Timing = nil
		c.Experiments[i] = e
	}
	return &c
}

// Encode writes r as stable, indented JSON. Field order follows the struct
// declarations, so the byte stream is a deterministic function of the
// document.
func Encode(w io.Writer, r *Run) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	return nil
}

// Decode reads a document produced by Encode and validates its schema
// version.
func Decode(rd io.Reader) (*Run, error) {
	var r Run
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchjson: schema %d, this build reads %d", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Filename returns the conventional file name for a run id.
func Filename(id string) string {
	return "BENCH_" + id + ".json"
}
