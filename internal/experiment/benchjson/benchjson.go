// Package benchjson defines the stable, machine-readable schema for
// radiobench runs: the BENCH_<id>.json files that record the repository's
// performance trajectory (archived by CI on every push).
//
// The schema separates the deterministic payload — seed, configuration,
// and every experiment table cell, which must be bit-identical across
// worker counts for a fixed seed — from the timing observations, which are
// inherently nondeterministic. Canonical returns the projection with all
// timing stripped; two runs of the same seed and sizes must produce
// byte-identical Canonical encodings whatever their -parallel setting (the
// determinism tests assert exactly that).
//
// Schema evolution rule: additions are backward-compatible (new optional
// fields); any change to the meaning or encoding of an existing field bumps
// SchemaVersion.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"

	"adhocradio/internal/experiment"
	"adhocradio/internal/obs"
)

// SchemaVersion identifies the encoding; see the package comment for the
// evolution rule.
//
// v2: the run environment moved from loose top-level fields (go_version,
// gomaxprocs) into an explicit Manifest, and experiments gained aggregated
// engine Counters (deterministic, kept by Canonical) and per-trial wall-time
// TrialStats (observational, stripped like Timing).
const SchemaVersion = 2

// Manifest records the provenance of a run: the toolchain, the host shape,
// the build's VCS state, and the effective command-line flags. Everything in
// it describes the environment, not the workload, so Canonical strips it
// whole.
type Manifest struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// VCSRevision is the vcs.revision build setting (empty for builds
	// without embedded VCS info, e.g. `go run` from a dirty cache).
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSModified reports vcs.modified: the working tree was dirty.
	VCSModified bool `json:"vcs_modified,omitempty"`
	// Flags is the resolved flag set of the producing command. Go's JSON
	// encoder sorts map keys, so the encoding stays deterministic.
	Flags map[string]string `json:"flags,omitempty"`
}

// NewManifest captures the current process environment. VCS fields come
// from debug.ReadBuildInfo — no git subprocess, so this works in containers
// without git and in test binaries (where the fields simply stay empty).
func NewManifest(flags map[string]string) *Manifest {
	m := &Manifest{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Flags:      flags,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// TrialStats summarizes the per-trial wall-time histogram of one experiment:
// how long individual pool trials took, independent of the worker count that
// interleaved them. Like Timing it is observational and stripped by
// Canonical.
type TrialStats struct {
	Trials  int64 `json:"trials"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
	MeanNS  int64 `json:"mean_ns"`
	// P50NS and P95NS are log2-bucket upper bounds (see obs.Hist), not
	// exact order statistics.
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
}

// TrialStatsFrom projects an obs.Hist into the schema form (nil when the
// histogram is empty, so quiet experiments carry no field at all).
func TrialStatsFrom(h obs.Hist) *TrialStats {
	if h.Count == 0 {
		return nil
	}
	return &TrialStats{
		Trials:  h.Count,
		TotalNS: h.TotalNS,
		MinNS:   h.MinNS,
		MaxNS:   h.MaxNS,
		MeanNS:  h.MeanNS(),
		P50NS:   h.ApproxQuantileNS(0.50),
		P95NS:   h.ApproxQuantileNS(0.95),
	}
}

// Timing records wall-clock and CPU time for a run or a single experiment.
// Timing is observational: it never participates in determinism checks and
// is stripped by Canonical.
type Timing struct {
	WallMS int64 `json:"wall_ms"`
	// CPUMS is the process CPU time consumed (user+system); 0 when the
	// platform does not report it or the caller did not measure it.
	CPUMS int64 `json:"cpu_ms,omitempty"`
}

// Experiment is one experiment's table plus its per-experiment
// observations.
type Experiment struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// ShapeCheck is "" (not run), "pass", or "fail: <reason>" — the result
	// of the experiment's qualitative-claim check under -verify.
	ShapeCheck string `json:"shape_check,omitempty"`
	// Counters is the sum of engine counters over every simulation the
	// experiment ran. The totals are a deterministic function of (seed,
	// sizes) — integer addition commutes across the worker schedule — so
	// Canonical keeps them: a counter drift across -parallel values is a
	// determinism bug, and the canonical-encoding tests will catch it.
	Counters *obs.Counters `json:"counters,omitempty"`
	// TrialStats aggregates per-trial wall times (observational).
	TrialStats *TrialStats `json:"trial_stats,omitempty"`
	Timing     *Timing     `json:"timing,omitempty"`
	// Points maps Rows back to measurement points (campaign runs only):
	// span j covers the next span.Rows rows, produced by point span.Index.
	// cmd/benchmerge uses it to re-interleave shard outputs in point order.
	// Provenance, not payload — stripped by Canonical.
	Points []PointSpan `json:"points,omitempty"`
	// TrialHist is the full per-trial wall-time histogram (campaign runs
	// only, so shard histograms can be merged into one TrialStats).
	// Observational, stripped by Canonical like TrialStats.
	TrialHist *obs.Hist `json:"trial_hist,omitempty"`
}

// PointSpan ties a contiguous slice of an experiment's Rows to the
// measurement point that produced it.
type PointSpan struct {
	Index int `json:"index"`
	Rows  int `json:"rows"`
}

// Run is the top-level BENCH_<id>.json document.
type Run struct {
	Schema int `json:"schema"`
	// ID names the run; the conventional file name is Filename(ID).
	ID   string `json:"id"`
	Seed uint64 `json:"seed"`
	// Quick records whether reduced problem sizes were used.
	Quick bool `json:"quick"`
	// Trials is the configured trials-per-point override (0 = defaults).
	Trials int `json:"trials"`
	// Parallel is the configured worker count (0 = all cores).
	Parallel int `json:"parallel"`
	// Workers is the resolved worker count actually used.
	Workers int `json:"workers,omitempty"`
	// Manifest describes the producing environment (schema v2; stripped by
	// Canonical).
	Manifest *Manifest `json:"manifest,omitempty"`
	// ShardIndex/ShardCount identify a campaign shard (1-based; both 0 when
	// the run is not sharded). A shard document holds only the points its
	// shard owns; cmd/benchmerge combines the full set. They survive
	// Canonical — which slice of the point space a document holds is part of
	// its deterministic identity, and both are 0 on merged and unsharded
	// documents alike.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// Interrupted is true when the run was cancelled (SIGINT) and the
	// document holds only the experiments completed before cancellation.
	Interrupted bool         `json:"interrupted,omitempty"`
	Experiments []Experiment `json:"experiments"`
	Timing      *Timing      `json:"timing,omitempty"`
}

// FromTable converts a rendered experiment table into its schema form.
func FromTable(t *experiment.Table) Experiment {
	e := Experiment{
		ID:      t.ID,
		Title:   t.Title,
		Columns: append([]string(nil), t.Columns...),
		Rows:    make([][]string, len(t.Rows)),
		Notes:   append([]string(nil), t.Notes...),
	}
	for i, row := range t.Rows {
		e.Rows[i] = append([]string(nil), row...)
	}
	return e
}

// Canonical returns a deep copy of r with every nondeterministic field
// (timing, trial-time statistics, the environment manifest, the resolved
// worker count, and the configured parallelism itself) zeroed: the
// projection that must be byte-identical across -parallel settings for a
// fixed seed. Engine counters survive the projection on purpose — they are
// part of the deterministic payload.
func (r *Run) Canonical() *Run {
	c := *r
	c.Parallel = 0
	c.Workers = 0
	c.Manifest = nil
	c.Timing = nil
	c.Experiments = make([]Experiment, len(r.Experiments))
	for i, e := range r.Experiments {
		e.Timing = nil
		e.TrialStats = nil
		e.TrialHist = nil
		e.Points = nil
		c.Experiments[i] = e
	}
	return &c
}

// Encode writes r as stable, indented JSON. Field order follows the struct
// declarations, so the byte stream is a deterministic function of the
// document.
func Encode(w io.Writer, r *Run) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	return nil
}

// Decode reads a document produced by Encode and validates its schema
// version.
func Decode(rd io.Reader) (*Run, error) {
	var r Run
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchjson: schema %d, this build reads %d", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Filename returns the conventional file name for a run id.
func Filename(id string) string {
	return "BENCH_" + id + ".json"
}

// WriteFileAtomic writes r to path via a temp file in the same directory
// plus rename, so a crash, a second SIGINT, or a full disk can never leave
// a truncated document — or a stray .tmp file — behind. The single deferred
// cleanup covers every error path (encode, close, rename) including panics,
// which is why all writers route through here instead of hand-rolling the
// temp/rename dance.
func WriteFileAtomic(path string, r *Run) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*.tmp")
	if err != nil {
		return fmt.Errorf("benchjson: writing %s: %w", path, err)
	}
	name := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(name)
		}
	}()
	if err := Encode(tmp, r); err != nil {
		return fmt.Errorf("benchjson: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("benchjson: writing %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		return fmt.Errorf("benchjson: writing %s: %w", path, err)
	}
	committed = true
	return nil
}

// ReadFile decodes the document at path.
func ReadFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	defer f.Close()
	r, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return r, nil
}

// MergeOptions configures Merge.
type MergeOptions struct {
	// ID names the merged run. Empty derives it from the inputs by
	// stripping each shard's "_shard<i>of<k>" suffix (which must then agree
	// across inputs).
	ID string
	// Force skips the environment-manifest equality check (toolchain, OS,
	// architecture). Seeds and workload shape are always enforced — those
	// mismatches change bytes, not just provenance.
	Force bool
}

// Merge combines the complete shard documents of one campaign into a single
// document that is canonically byte-identical to an unsharded run of the
// same workload. It refuses partial input: every shard 1..k must be
// present exactly once, none may be interrupted (resume it first), and all
// must agree on seed, workload shape, and (unless Force) environment. Rows
// are re-interleaved in measurement-point order using each experiment's
// PointSpan provenance; counters are summed (integer addition commutes, so
// the totals match the unsharded run exactly) and trial histograms are
// merged into one TrialStats. A single already-complete unsharded document
// passes through (with provenance fields dropped), which is what lets one
// merge pipeline serve both sharded and merely-resumed campaigns.
func Merge(runs []*Run, opt MergeOptions) (*Run, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("benchjson: merge: no input documents")
	}
	first := runs[0]
	for _, r := range runs {
		if r.Schema != SchemaVersion {
			return nil, fmt.Errorf("benchjson: merge: %s: schema %d, this build merges %d", r.ID, r.Schema, SchemaVersion)
		}
		if r.Interrupted {
			return nil, fmt.Errorf("benchjson: merge: %s is interrupted — resume it to completion first", r.ID)
		}
		if r.Seed != first.Seed || r.Quick != first.Quick || r.Trials != first.Trials {
			return nil, fmt.Errorf("benchjson: merge: workload mismatch: %s is seed=%d quick=%v trials=%d, %s is seed=%d quick=%v trials=%d",
				first.ID, first.Seed, first.Quick, first.Trials, r.ID, r.Seed, r.Quick, r.Trials)
		}
		if !opt.Force && r.Manifest != nil && first.Manifest != nil {
			a, b := first.Manifest, r.Manifest
			if a.GoVersion != b.GoVersion || a.GOOS != b.GOOS || a.GOARCH != b.GOARCH {
				return nil, fmt.Errorf("benchjson: merge: environment mismatch: %s built with %s/%s/%s, %s with %s/%s/%s (use -force to override)",
					first.ID, a.GoVersion, a.GOOS, a.GOARCH, r.ID, b.GoVersion, b.GOOS, b.GOARCH)
			}
		}
	}
	k := first.ShardCount
	if k == 0 {
		if len(runs) != 1 {
			return nil, fmt.Errorf("benchjson: merge: %s is not a shard document but %d inputs were given", first.ID, len(runs))
		}
	} else {
		seen := make([]bool, k+1)
		for _, r := range runs {
			if r.ShardCount != k {
				return nil, fmt.Errorf("benchjson: merge: %s says %d shards, %s says %d", first.ID, k, r.ID, r.ShardCount)
			}
			if r.ShardIndex < 1 || r.ShardIndex > k {
				return nil, fmt.Errorf("benchjson: merge: %s has shard index %d of %d", r.ID, r.ShardIndex, k)
			}
			if seen[r.ShardIndex] {
				return nil, fmt.Errorf("benchjson: merge: shard %d/%d appears twice", r.ShardIndex, k)
			}
			seen[r.ShardIndex] = true
		}
		if len(runs) != k {
			return nil, fmt.Errorf("benchjson: merge: have %d of %d shards", len(runs), k)
		}
	}
	id := opt.ID
	if id == "" {
		for _, r := range runs {
			base := strings.TrimSuffix(r.ID, fmt.Sprintf("_shard%dof%d", r.ShardIndex, r.ShardCount))
			if id == "" {
				id = base
			} else if id != base {
				return nil, fmt.Errorf("benchjson: merge: inputs derive different run ids (%q vs %q); pass an explicit id", id, base)
			}
		}
	}
	for _, r := range runs[1:] {
		if len(r.Experiments) != len(first.Experiments) {
			return nil, fmt.Errorf("benchjson: merge: %s has %d experiments, %s has %d",
				first.ID, len(first.Experiments), r.ID, len(r.Experiments))
		}
	}

	out := &Run{
		Schema: SchemaVersion,
		ID:     id,
		Seed:   first.Seed,
		Quick:  first.Quick,
		Trials: first.Trials,
	}
	out.Experiments = make([]Experiment, 0, len(first.Experiments))
	for e := range first.Experiments {
		me, err := mergeExperiment(runs, e)
		if err != nil {
			return nil, err
		}
		out.Experiments = append(out.Experiments, me)
	}
	return out, nil
}

// mergeExperiment interleaves experiment position e of every input in
// point order, validating the PointSpan provenance covers each document's
// rows exactly and that the union of points is contiguous from 0.
func mergeExperiment(runs []*Run, e int) (Experiment, error) {
	ref := runs[0].Experiments[e]
	type part struct {
		point int
		rows  [][]string
	}
	var (
		parts    []part
		counters obs.Counters
		hist     obs.Hist
		haveHist bool
	)
	for _, r := range runs {
		exp := r.Experiments[e]
		if exp.ID != ref.ID || exp.Title != ref.Title {
			return Experiment{}, fmt.Errorf("benchjson: merge: experiment %d is %s in %s but %s in %s",
				e, ref.ID, runs[0].ID, exp.ID, r.ID)
		}
		if !slicesEqual(exp.Columns, ref.Columns) || !slicesEqual(exp.Notes, ref.Notes) {
			return Experiment{}, fmt.Errorf("benchjson: merge: %s: columns/notes differ between %s and %s", exp.ID, runs[0].ID, r.ID)
		}
		// ShapeCheck survives Canonical, so it must survive the merge too.
		// Shards never run -verify (it is refused pre-merge), so the inputs
		// always agree in legitimate use; a disagreement means the inputs
		// are not parts of one campaign.
		if exp.ShapeCheck != ref.ShapeCheck {
			return Experiment{}, fmt.Errorf("benchjson: merge: %s: shape-check results differ between %s and %s", exp.ID, runs[0].ID, r.ID)
		}
		if r.ShardCount == 0 {
			// Pass-through of a complete unsharded document: its rows are
			// already in point order.
			parts = append(parts, part{point: 0, rows: exp.Rows})
		} else {
			off := 0
			for _, sp := range exp.Points {
				if sp.Rows < 0 || off+sp.Rows > len(exp.Rows) {
					return Experiment{}, fmt.Errorf("benchjson: merge: %s in %s: point spans overrun the rows", exp.ID, r.ID)
				}
				parts = append(parts, part{point: sp.Index, rows: exp.Rows[off : off+sp.Rows]})
				off += sp.Rows
			}
			if off != len(exp.Rows) {
				return Experiment{}, fmt.Errorf("benchjson: merge: %s in %s: %d of %d rows not covered by point spans — not a campaign document?",
					exp.ID, r.ID, len(exp.Rows)-off, len(exp.Rows))
			}
		}
		if exp.Counters != nil {
			counters.Add(*exp.Counters)
		}
		if exp.TrialHist != nil {
			if err := hist.MergeChecked(*exp.TrialHist); err != nil {
				return Experiment{}, fmt.Errorf("benchjson: merge: %s in %s: %w", exp.ID, r.ID, err)
			}
			haveHist = true
		}
	}
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].point < parts[j].point })
	if runs[0].ShardCount != 0 {
		for j, p := range parts {
			if p.point != j {
				return Experiment{}, fmt.Errorf("benchjson: merge: %s: point coverage broken at %d (duplicate or gap)", ref.ID, j)
			}
		}
	}
	rows := make([][]string, 0)
	for _, p := range parts {
		rows = append(rows, p.rows...)
	}
	me := Experiment{
		ID:         ref.ID,
		Title:      ref.Title,
		Columns:    append([]string(nil), ref.Columns...),
		Rows:       rows,
		Notes:      append([]string(nil), ref.Notes...),
		ShapeCheck: ref.ShapeCheck,
	}
	if !counters.IsZero() {
		c := counters
		me.Counters = &c
	}
	if haveHist {
		me.TrialStats = TrialStatsFrom(hist)
	} else if runs[0].ShardCount == 0 && ref.TrialStats != nil {
		// Pass-through of a complete document: nothing to recompute, so the
		// observational stats are carried rather than dropped.
		ts := *ref.TrialStats
		me.TrialStats = &ts
	}
	return me, nil
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
