package benchjson

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocradio/internal/experiment"
	"adhocradio/internal/obs"
)

func sampleRun() *Run {
	tab := &experiment.Table{
		ID:      "E1",
		Title:   "demo",
		Columns: []string{"n", "t"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1024, 385.25)
	e := FromTable(tab)
	e.ShapeCheck = "pass"
	e.Timing = &Timing{WallMS: 1234, CPUMS: 2345}
	e.Counters = &obs.Counters{Steps: 100, Transmissions: 700, Receptions: 650, Collisions: 50}
	e.TrialStats = &TrialStats{Trials: 5, TotalNS: 5000, MinNS: 800, MaxNS: 1400, MeanNS: 1000, P50NS: 1024, P95NS: 1400}
	return &Run{
		Schema:   SchemaVersion,
		ID:       "quick_seed1",
		Seed:     1,
		Quick:    true,
		Parallel: 8,
		Workers:  8,
		Manifest: &Manifest{
			GoVersion:   "go1.22",
			GOOS:        "linux",
			GOARCH:      "amd64",
			NumCPU:      4,
			GOMAXPROCS:  4,
			VCSRevision: "abc123",
			Flags:       map[string]string{"quick": "true", "seed": "1"},
		},
		Experiments: []Experiment{e},
		Timing:      &Timing{WallMS: 5000},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleRun()
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != r.ID || got.Seed != r.Seed || len(got.Experiments) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	e := got.Experiments[0]
	if e.ID != "E1" || e.Rows[0][1] != "385.25" || e.ShapeCheck != "pass" {
		t.Fatalf("experiment mangled: %+v", e)
	}
	if e.Timing == nil || e.Timing.WallMS != 1234 {
		t.Fatalf("timing lost: %+v", e.Timing)
	}
	if e.Counters == nil || e.Counters.Transmissions != 700 {
		t.Fatalf("counters lost: %+v", e.Counters)
	}
	if e.TrialStats == nil || e.TrialStats.Trials != 5 {
		t.Fatalf("trial stats lost: %+v", e.TrialStats)
	}
	if got.Manifest == nil || got.Manifest.VCSRevision != "abc123" || got.Manifest.Flags["seed"] != "1" {
		t.Fatalf("manifest lost: %+v", got.Manifest)
	}
}

func TestEncodeIsStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := Encode(&a, sampleRun()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, sampleRun()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same document differ")
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Fatal("encoding not newline-terminated")
	}
}

func TestCanonicalStripsNondeterminism(t *testing.T) {
	r := sampleRun()
	c := r.Canonical()
	if c.Timing != nil || c.Experiments[0].Timing != nil {
		t.Fatal("Canonical kept timing")
	}
	if c.Parallel != 0 || c.Workers != 0 || c.Manifest != nil {
		t.Fatalf("Canonical kept environment fields: %+v", c)
	}
	if c.Experiments[0].TrialStats != nil {
		t.Fatal("Canonical kept trial stats")
	}
	if c.Experiments[0].Counters == nil || c.Experiments[0].Counters.Transmissions != 700 {
		t.Fatalf("Canonical dropped the deterministic counters: %+v", c.Experiments[0].Counters)
	}
	// The original must be untouched (deep copy).
	if r.Timing == nil || r.Experiments[0].Timing == nil || r.Parallel != 8 || r.Manifest == nil ||
		r.Experiments[0].TrialStats == nil {
		t.Fatal("Canonical mutated its receiver")
	}
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"wall_ms", "go_version", "trial_stats", "vcs_revision"} {
		if strings.Contains(buf.String(), leak) {
			t.Fatalf("canonical encoding leaks %q:\n%s", leak, buf.String())
		}
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema": 99, "id": "x"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNewManifestCapturesEnvironment(t *testing.T) {
	m := NewManifest(map[string]string{"quick": "true"})
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Fatalf("incomplete manifest: %+v", m)
	}
	if m.Flags["quick"] != "true" {
		t.Fatalf("flags lost: %+v", m.Flags)
	}
}

func TestTrialStatsFrom(t *testing.T) {
	var h obs.Hist
	if TrialStatsFrom(h) != nil {
		t.Fatal("empty histogram produced stats")
	}
	for _, ns := range []int64{800, 1000, 1200} {
		h.Observe(ns)
	}
	s := TrialStatsFrom(h)
	if s == nil || s.Trials != 3 || s.TotalNS != 3000 || s.MinNS != 800 || s.MaxNS != 1200 || s.MeanNS != 1000 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.P50NS < 800 || s.P95NS > 2*1200 {
		t.Fatalf("quantiles out of range: %+v", s)
	}
}

func TestFilename(t *testing.T) {
	if got := Filename("quick_seed1"); got != "BENCH_quick_seed1.json" {
		t.Fatalf("Filename = %q", got)
	}
}

// shardPair builds the two shard documents of a small campaign (one
// experiment, 3 measurement points split by parity) plus the document an
// unsharded run of the same workload would produce.
func shardPair() (s1, s2, unsharded *Run) {
	mkRun := func(id string, idx, cnt int) *Run {
		return &Run{
			Schema:     SchemaVersion,
			ID:         id,
			Seed:       7,
			Quick:      true,
			ShardIndex: idx,
			ShardCount: cnt,
			Manifest:   &Manifest{GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64"},
		}
	}
	base := Experiment{
		ID:      "E1",
		Title:   "demo",
		Columns: []string{"n", "t"},
		Notes:   []string{"a note"},
	}

	var h1 obs.Hist
	h1.Observe(100)
	h1.Observe(200)
	e1 := base
	e1.Rows = [][]string{{"p0", "1"}, {"p2", "1"}}
	e1.Points = []PointSpan{{Index: 0, Rows: 1}, {Index: 2, Rows: 1}}
	e1.Counters = &obs.Counters{Steps: 10}
	e1.TrialHist = &h1
	s1 = mkRun("camp_shard1of2", 1, 2)
	s1.Experiments = []Experiment{e1}

	var h2 obs.Hist
	h2.Observe(400)
	e2 := base
	e2.Rows = [][]string{{"p1", "a"}, {"p1", "b"}}
	e2.Points = []PointSpan{{Index: 1, Rows: 2}}
	e2.Counters = &obs.Counters{Steps: 5}
	e2.TrialHist = &h2
	s2 = mkRun("camp_shard2of2", 2, 2)
	s2.Experiments = []Experiment{e2}

	eu := base
	eu.Rows = [][]string{{"p0", "1"}, {"p1", "a"}, {"p1", "b"}, {"p2", "1"}}
	eu.Counters = &obs.Counters{Steps: 15}
	unsharded = mkRun("camp", 0, 0)
	unsharded.Experiments = []Experiment{eu}
	return s1, s2, unsharded
}

func canonBytes(t *testing.T, r *Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, r.Canonical()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeInterleavesShards: the merged document is canonically
// byte-identical to the unsharded run — rows back in point order, counters
// summed, run id derived by stripping the shard suffix.
func TestMergeInterleavesShards(t *testing.T) {
	s1, s2, want := shardPair()
	for _, order := range [][]*Run{{s1, s2}, {s2, s1}} {
		got, err := Merge(order, MergeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != "camp" {
			t.Fatalf("derived id = %q, want camp", got.ID)
		}
		if !bytes.Equal(canonBytes(t, got), canonBytes(t, want)) {
			t.Fatalf("merged canonical differs from unsharded:\n%s\nvs\n%s",
				canonBytes(t, got), canonBytes(t, want))
		}
		ts := got.Experiments[0].TrialStats
		if ts == nil || ts.Trials != 3 || ts.MinNS != 100 || ts.MaxNS != 400 {
			t.Fatalf("merged trial stats = %+v, want 3 trials spanning [100,400]", ts)
		}
		if len(got.Experiments[0].Points) != 0 || got.Experiments[0].TrialHist != nil {
			t.Fatal("merged document kept shard provenance")
		}
		if got.ShardIndex != 0 || got.ShardCount != 0 {
			t.Fatal("merged document still claims to be a shard")
		}
	}
	// An explicit id overrides derivation.
	got, err := Merge([]*Run{s1, s2}, MergeOptions{ID: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "other" {
		t.Fatalf("id = %q, want other", got.ID)
	}
}

// TestMergePassThroughSingleComplete: one complete unsharded document (a
// merely-resumed campaign) merges to itself, minus provenance.
func TestMergePassThroughSingleComplete(t *testing.T) {
	_, _, un := shardPair()
	// Give the input the fields only complete non-campaign documents carry:
	// a shape-check verdict (canonical) and observational trial stats (not
	// canonical, but pass-through must not discard them either).
	un.Experiments[0].ShapeCheck = "pass"
	un.Experiments[0].TrialStats = &TrialStats{Trials: 4, TotalNS: 100, MinNS: 10, MaxNS: 40, MeanNS: 25}
	got, err := Merge([]*Run{un}, MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonBytes(t, got), canonBytes(t, un)) {
		t.Fatal("pass-through changed the canonical document")
	}
	if got.Experiments[0].ShapeCheck != "pass" {
		t.Fatalf("pass-through dropped the shape-check verdict: %+v", got.Experiments[0])
	}
	if ts := got.Experiments[0].TrialStats; ts == nil || ts.Trials != 4 {
		t.Fatalf("pass-through dropped the trial stats: %+v", got.Experiments[0])
	}
}

func TestMergeValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(s1, s2 *Run) []*Run
		opt  MergeOptions
		want string
	}{
		{"no-inputs", func(s1, s2 *Run) []*Run { return nil }, MergeOptions{}, "no input"},
		{"interrupted", func(s1, s2 *Run) []*Run { s2.Interrupted = true; return []*Run{s1, s2} }, MergeOptions{}, "resume it"},
		{"seed-mismatch", func(s1, s2 *Run) []*Run { s2.Seed = 8; return []*Run{s1, s2} }, MergeOptions{}, "workload mismatch"},
		{"quick-mismatch", func(s1, s2 *Run) []*Run { s2.Quick = false; return []*Run{s1, s2} }, MergeOptions{}, "workload mismatch"},
		{"trials-mismatch", func(s1, s2 *Run) []*Run { s2.Trials = 9; return []*Run{s1, s2} }, MergeOptions{}, "workload mismatch"},
		{"manifest-mismatch", func(s1, s2 *Run) []*Run { s2.Manifest.GoVersion = "go1.23"; return []*Run{s1, s2} }, MergeOptions{}, "environment mismatch"},
		{"shapecheck-mismatch", func(s1, s2 *Run) []*Run { s2.Experiments[0].ShapeCheck = "pass"; return []*Run{s1, s2} }, MergeOptions{}, "shape-check results differ"},
		{"missing-shard", func(s1, s2 *Run) []*Run { return []*Run{s1} }, MergeOptions{}, "have 1 of 2"},
		{"duplicate-shard", func(s1, s2 *Run) []*Run { return []*Run{s1, s1} }, MergeOptions{}, "appears twice"},
		{"count-mismatch", func(s1, s2 *Run) []*Run { s2.ShardCount = 3; return []*Run{s1, s2} }, MergeOptions{}, "says"},
		{"index-out-of-range", func(s1, s2 *Run) []*Run { s2.ShardIndex = 5; return []*Run{s1, s2} }, MergeOptions{}, "shard index"},
		{"schema-mismatch", func(s1, s2 *Run) []*Run { s2.Schema = 1; return []*Run{s1, s2} }, MergeOptions{}, "schema"},
		{"multi-non-shard", func(s1, s2 *Run) []*Run {
			s1.ShardIndex, s1.ShardCount = 0, 0
			s2.ShardIndex, s2.ShardCount = 0, 0
			return []*Run{s1, s2}
		}, MergeOptions{}, "not a shard document"},
		{"spans-overrun", func(s1, s2 *Run) []*Run {
			s2.Experiments[0].Points[0].Rows = 99
			return []*Run{s1, s2}
		}, MergeOptions{}, "overrun"},
		{"spans-undercover", func(s1, s2 *Run) []*Run {
			s2.Experiments[0].Points[0].Rows = 1
			return []*Run{s1, s2}
		}, MergeOptions{}, "not covered"},
		{"duplicate-point", func(s1, s2 *Run) []*Run {
			s2.Experiments[0].Points[0].Index = 0 // collides with shard 1's point 0
			return []*Run{s1, s2}
		}, MergeOptions{}, "duplicate or gap"},
		{"columns-differ", func(s1, s2 *Run) []*Run {
			s2.Experiments[0].Columns = []string{"x"}
			return []*Run{s1, s2}
		}, MergeOptions{}, "columns"},
		{"experiment-id-differs", func(s1, s2 *Run) []*Run {
			s2.Experiments[0].ID = "E2"
			return []*Run{s1, s2}
		}, MergeOptions{}, "is E1"},
		{"experiment-count-differs", func(s1, s2 *Run) []*Run {
			s2.Experiments = nil
			return []*Run{s1, s2}
		}, MergeOptions{}, "experiments"},
		{"id-derivation-conflict", func(s1, s2 *Run) []*Run {
			s2.ID = "zcamp_shard2of2"
			return []*Run{s1, s2}
		}, MergeOptions{}, "different run ids"},
		{"corrupt-trial-hist", func(s1, s2 *Run) []*Run {
			s2.Experiments[0].TrialHist.Count = 99
			return []*Run{s1, s2}
		}, MergeOptions{}, "buckets sum"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s1, s2, _ := shardPair()
			if _, err := Merge(c.mut(s1, s2), c.opt); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
	// -force waives exactly the environment check.
	s1, s2, _ := shardPair()
	s2.Manifest.GoVersion = "go1.23"
	if _, err := Merge([]*Run{s1, s2}, MergeOptions{Force: true}); err != nil {
		t.Fatalf("Force did not waive the manifest check: %v", err)
	}
}

// TestCanonicalStripsCampaignProvenance: Points and TrialHist are shard
// provenance/observation, not payload.
func TestCanonicalStripsCampaignProvenance(t *testing.T) {
	s1, _, _ := shardPair()
	c := s1.Canonical()
	if c.Experiments[0].Points != nil || c.Experiments[0].TrialHist != nil {
		t.Fatal("Canonical kept campaign provenance")
	}
	if c.ShardIndex != 1 || c.ShardCount != 2 {
		t.Fatal("Canonical dropped the shard identity (it is deterministic)")
	}
	if s1.Experiments[0].Points == nil || s1.Experiments[0].TrialHist == nil {
		t.Fatal("Canonical mutated its receiver")
	}
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	if err := WriteFileAtomic(path, sampleRun()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "quick_seed1" || len(got.Experiments) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileAtomicErrorLeavesNoTemp: every failure path must remove the
// temp file. Failing before the fix: cmd/radiobench's hand-rolled writer
// could leak .tmp files when an error path was missed. The rename failure
// here is forced by making the target path a directory.
func TestWriteFileAtomicErrorLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "BENCH_x.json")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(target, sampleRun()); err == nil {
		t.Fatal("rename onto a directory succeeded")
	}
	assertNoTempFiles(t, dir)

	// A missing parent directory fails at temp creation; nothing to leak.
	if err := WriteFileAtomic(filepath.Join(dir, "missing", "x.json"), sampleRun()); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
