package benchjson

import (
	"bytes"
	"strings"
	"testing"

	"adhocradio/internal/experiment"
)

func sampleRun() *Run {
	tab := &experiment.Table{
		ID:      "E1",
		Title:   "demo",
		Columns: []string{"n", "t"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1024, 385.25)
	e := FromTable(tab)
	e.ShapeCheck = "pass"
	e.Timing = &Timing{WallMS: 1234, CPUMS: 2345}
	return &Run{
		Schema:      SchemaVersion,
		ID:          "quick_seed1",
		Seed:        1,
		Quick:       true,
		Parallel:    8,
		Workers:     8,
		GoVersion:   "go1.22",
		GOMAXPROCS:  4,
		Experiments: []Experiment{e},
		Timing:      &Timing{WallMS: 5000},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleRun()
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != r.ID || got.Seed != r.Seed || len(got.Experiments) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	e := got.Experiments[0]
	if e.ID != "E1" || e.Rows[0][1] != "385.25" || e.ShapeCheck != "pass" {
		t.Fatalf("experiment mangled: %+v", e)
	}
	if e.Timing == nil || e.Timing.WallMS != 1234 {
		t.Fatalf("timing lost: %+v", e.Timing)
	}
}

func TestEncodeIsStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := Encode(&a, sampleRun()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, sampleRun()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same document differ")
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Fatal("encoding not newline-terminated")
	}
}

func TestCanonicalStripsNondeterminism(t *testing.T) {
	r := sampleRun()
	c := r.Canonical()
	if c.Timing != nil || c.Experiments[0].Timing != nil {
		t.Fatal("Canonical kept timing")
	}
	if c.Parallel != 0 || c.Workers != 0 || c.GoVersion != "" || c.GOMAXPROCS != 0 {
		t.Fatalf("Canonical kept environment fields: %+v", c)
	}
	// The original must be untouched (deep copy).
	if r.Timing == nil || r.Experiments[0].Timing == nil || r.Parallel != 8 {
		t.Fatal("Canonical mutated its receiver")
	}
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "wall_ms") || strings.Contains(buf.String(), "go_version") {
		t.Fatalf("canonical encoding leaks nondeterministic fields:\n%s", buf.String())
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema": 99, "id": "x"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFilename(t *testing.T) {
	if got := Filename("quick_seed1"); got != "BENCH_quick_seed1.json" {
		t.Fatalf("Filename = %q", got)
	}
}
