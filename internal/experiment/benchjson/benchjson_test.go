package benchjson

import (
	"bytes"
	"strings"
	"testing"

	"adhocradio/internal/experiment"
	"adhocradio/internal/obs"
)

func sampleRun() *Run {
	tab := &experiment.Table{
		ID:      "E1",
		Title:   "demo",
		Columns: []string{"n", "t"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1024, 385.25)
	e := FromTable(tab)
	e.ShapeCheck = "pass"
	e.Timing = &Timing{WallMS: 1234, CPUMS: 2345}
	e.Counters = &obs.Counters{Steps: 100, Transmissions: 700, Receptions: 650, Collisions: 50}
	e.TrialStats = &TrialStats{Trials: 5, TotalNS: 5000, MinNS: 800, MaxNS: 1400, MeanNS: 1000, P50NS: 1024, P95NS: 1400}
	return &Run{
		Schema:   SchemaVersion,
		ID:       "quick_seed1",
		Seed:     1,
		Quick:    true,
		Parallel: 8,
		Workers:  8,
		Manifest: &Manifest{
			GoVersion:   "go1.22",
			GOOS:        "linux",
			GOARCH:      "amd64",
			NumCPU:      4,
			GOMAXPROCS:  4,
			VCSRevision: "abc123",
			Flags:       map[string]string{"quick": "true", "seed": "1"},
		},
		Experiments: []Experiment{e},
		Timing:      &Timing{WallMS: 5000},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := sampleRun()
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != r.ID || got.Seed != r.Seed || len(got.Experiments) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	e := got.Experiments[0]
	if e.ID != "E1" || e.Rows[0][1] != "385.25" || e.ShapeCheck != "pass" {
		t.Fatalf("experiment mangled: %+v", e)
	}
	if e.Timing == nil || e.Timing.WallMS != 1234 {
		t.Fatalf("timing lost: %+v", e.Timing)
	}
	if e.Counters == nil || e.Counters.Transmissions != 700 {
		t.Fatalf("counters lost: %+v", e.Counters)
	}
	if e.TrialStats == nil || e.TrialStats.Trials != 5 {
		t.Fatalf("trial stats lost: %+v", e.TrialStats)
	}
	if got.Manifest == nil || got.Manifest.VCSRevision != "abc123" || got.Manifest.Flags["seed"] != "1" {
		t.Fatalf("manifest lost: %+v", got.Manifest)
	}
}

func TestEncodeIsStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := Encode(&a, sampleRun()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, sampleRun()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same document differ")
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Fatal("encoding not newline-terminated")
	}
}

func TestCanonicalStripsNondeterminism(t *testing.T) {
	r := sampleRun()
	c := r.Canonical()
	if c.Timing != nil || c.Experiments[0].Timing != nil {
		t.Fatal("Canonical kept timing")
	}
	if c.Parallel != 0 || c.Workers != 0 || c.Manifest != nil {
		t.Fatalf("Canonical kept environment fields: %+v", c)
	}
	if c.Experiments[0].TrialStats != nil {
		t.Fatal("Canonical kept trial stats")
	}
	if c.Experiments[0].Counters == nil || c.Experiments[0].Counters.Transmissions != 700 {
		t.Fatalf("Canonical dropped the deterministic counters: %+v", c.Experiments[0].Counters)
	}
	// The original must be untouched (deep copy).
	if r.Timing == nil || r.Experiments[0].Timing == nil || r.Parallel != 8 || r.Manifest == nil ||
		r.Experiments[0].TrialStats == nil {
		t.Fatal("Canonical mutated its receiver")
	}
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"wall_ms", "go_version", "trial_stats", "vcs_revision"} {
		if strings.Contains(buf.String(), leak) {
			t.Fatalf("canonical encoding leaks %q:\n%s", leak, buf.String())
		}
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema": 99, "id": "x"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestNewManifestCapturesEnvironment(t *testing.T) {
	m := NewManifest(map[string]string{"quick": "true"})
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Fatalf("incomplete manifest: %+v", m)
	}
	if m.Flags["quick"] != "true" {
		t.Fatalf("flags lost: %+v", m.Flags)
	}
}

func TestTrialStatsFrom(t *testing.T) {
	var h obs.Hist
	if TrialStatsFrom(h) != nil {
		t.Fatal("empty histogram produced stats")
	}
	for _, ns := range []int64{800, 1000, 1200} {
		h.Observe(ns)
	}
	s := TrialStatsFrom(h)
	if s == nil || s.Trials != 3 || s.TotalNS != 3000 || s.MinNS != 800 || s.MaxNS != 1200 || s.MeanNS != 1000 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.P50NS < 800 || s.P95NS > 2*1200 {
		t.Fatalf("quantiles out of range: %+v", s)
	}
}

func TestFilename(t *testing.T) {
	if got := Filename("quick_seed1"); got != "BENCH_quick_seed1.json" {
		t.Fatalf("Filename = %q", got)
	}
}
