package experiment

import (
	"context"
	"strings"
	"testing"
)

func TestShapeChecksCoverEveryExperiment(t *testing.T) {
	checks := ShapeChecks()
	for _, e := range Registry() {
		if _, ok := checks[e.ID]; !ok {
			t.Errorf("no shape check for %s", e.ID)
		}
	}
	if len(checks) != len(Registry()) {
		t.Errorf("%d checks for %d experiments", len(checks), len(Registry()))
	}
}

func TestCellParsing(t *testing.T) {
	tab := &Table{ID: "T", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	if v, err := cell(tab, 0, "b"); err != nil || v != 2.5 {
		t.Fatalf("cell = %v, %v", v, err)
	}
	if _, err := cell(tab, 0, "zzz"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := cell(tab, 5, "a"); err == nil {
		t.Fatal("row out of range accepted")
	}
	tab.AddRow("notanumber", 1)
	if _, err := cell(tab, 1, "a"); err == nil {
		t.Fatal("non-numeric cell accepted")
	}
	col, err := column(tab, "b")
	if err != nil || len(col) != 2 {
		t.Fatalf("column = %v, %v", col, err)
	}
}

func TestShapeCheckRejectsBadTables(t *testing.T) {
	// A hand-built E1 table with a speedup below 1 must fail.
	tab := &Table{ID: "E1", Columns: []string{"n", "D", "t_KP_knownD", "t_KP", "t_BGI", "speedup_knownD", "speedup", "model_speedup"}}
	tab.AddRow(1024, 64, 500.0, 600.0, 450.0, 0.9, 0.75, 2.0)
	err := checkE1(tab)
	if err == nil || !strings.Contains(err.Error(), "want > 1") {
		t.Fatalf("bad E1 accepted: %v", err)
	}
}

// TestFullScaleShapes runs every experiment at FULL scale and asserts the
// paper's qualitative claims hold — the executable form of EXPERIMENTS.md.
// Takes about a minute; skipped under -short.
func TestFullScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiments take ~1 minute")
	}
	checks := ShapeChecks()
	// Parallel workers cut the wall time on multi-core runners; by the
	// engine's determinism invariant the tables are identical either way.
	cfg := Config{Seed: 1, Parallel: 8}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: row %d has %d cells for %d columns", e.ID, i, len(row), len(tab.Columns))
				}
			}
			if err := checks[e.ID](tab); err != nil {
				t.Errorf("shape violated: %v", err)
			}
		})
	}
}
