package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestZeroJobs(t *testing.T) {
	called := false
	err := Run(context.Background(), 4, 0, func(context.Context, int) error {
		called = true
		return nil
	})
	if err != nil || called {
		t.Fatalf("zero jobs: err=%v called=%v", err, called)
	}
	out, err := Collect(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("zero-job Collect: out=%v err=%v", out, err)
	}
}

func TestEveryJobRunsOnce(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 7, 64, 200} {
		var counts [n]int64
		err := Run(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestCollectOrdersResults(t *testing.T) {
	const n = 50
	for _, workers := range []int{1, 8} {
		out, err := Collect(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestLowestIndexErrorWins: whatever the schedule, the reported error must
// be the one a sequential loop would have stopped on.
func TestLowestIndexErrorWins(t *testing.T) {
	const n = 40
	failAt := map[int]bool{7: true, 23: true, 39: true}
	for _, workers := range []int{1, 2, 8} {
		err := Run(context.Background(), workers, n, func(_ context.Context, i int) error {
			if failAt[i] {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: err = %v, want job 7's", workers, err)
		}
	}
}

func TestErrorStopsDispatch(t *testing.T) {
	var started int64
	boom := errors.New("boom")
	err := Run(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		atomic.AddInt64(&started, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s := atomic.LoadInt64(&started); s == 1000 {
		t.Fatal("dispatch did not stop after the failure")
	}
}

func TestPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Run(context.Background(), workers, 10, func(_ context.Context, i int) error {
			if i == 3 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not surfaced", workers)
		}
		if !strings.Contains(err.Error(), "job 3 panicked: kaboom") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if !strings.Contains(err.Error(), "pool_test.go") {
			t.Fatalf("workers=%d: no stack in %v", workers, err)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int64
		err := Run(ctx, workers, 1000, func(_ context.Context, i int) error {
			if atomic.AddInt64(&ran, 1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if r := atomic.LoadInt64(&ran); r == 1000 {
			t.Fatalf("workers=%d: cancellation did not stop dispatch", workers)
		}
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Run(ctx, 1, 10, func(context.Context, int) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) || called {
		t.Fatalf("pre-cancelled: err=%v called=%v", err, called)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if w := Workers(0, 100); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d", w)
	}
	if w := Workers(-3, 100); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3, 100) = %d", w)
	}
	if w := Workers(16, 4); w != 4 {
		t.Fatalf("Workers(16, 4) = %d", w)
	}
	if w := Workers(3, 100); w != 3 {
		t.Fatalf("Workers(3, 100) = %d", w)
	}
}

// TestCollectDeterministic is the pool-level form of the engine's
// replayability invariant: per-index derivation makes the assembled result
// independent of the worker count.
func TestCollectDeterministic(t *testing.T) {
	derive := func(_ context.Context, i int) (uint64, error) {
		x := uint64(i) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		return x, nil
	}
	seq, err := Collect(context.Background(), 1, 200, derive)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 32} {
		par, err := Collect(context.Background(), workers, 200, derive)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: result %d differs", workers, i)
			}
		}
	}
}

// TestCollectMeteredMatchesCollect: the metered variant returns the same
// results as Collect for every worker count, with one nonnegative duration
// per index.
func TestCollectMeteredMatchesCollect(t *testing.T) {
	fn := func(_ context.Context, i int) (int, error) { return i * i, nil }
	want, err := Collect(context.Background(), 1, 25, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, ns, err := CollectMetered(context.Background(), workers, 25, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) || len(ns) != len(want) {
			t.Fatalf("workers=%d: lengths %d/%d, want %d", workers, len(got), len(ns), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
			if ns[i] < 0 {
				t.Fatalf("workers=%d: negative duration ns[%d] = %d", workers, i, ns[i])
			}
		}
	}
}

// TestCollectMeteredError: errors propagate exactly like Collect's, and both
// returned slices are nil on failure.
func TestCollectMeteredError(t *testing.T) {
	boom := errors.New("boom")
	out, ns, err := CollectMetered(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if out != nil || ns != nil {
		t.Fatalf("failure returned partial data: %v %v", out, ns)
	}
}

// TestCancellationNeverMasksRealError: when a genuine job failure and the
// resulting (or a concurrent) context cancellation race, Run must report
// the genuine error on every schedule. Before the fix, the lowest-index
// error won unconditionally: a job at index 0 that merely observed the
// cancellation (returning a wrapped ctx.Err()) could mask the real failure
// at a higher index, so the reported error depended on which jobs happened
// to be in flight. Run under -race in `make race`, many rounds to give the
// schedule room to vary.
func TestCancellationNeverMasksRealError(t *testing.T) {
	boom := errors.New("boom")
	for round := 0; round < 200; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		err := Run(ctx, 4, 8, func(ctx context.Context, i int) error {
			switch i {
			case 0:
				// Long-running low-index job: observes the cancellation and
				// relays it, wrapped, as its own failure.
				<-ctx.Done()
				return fmt.Errorf("job 0 gave up: %w", ctx.Err())
			case 5:
				// The genuine failure, which also triggers cancellation the
				// way cmd/radiobench's signal context would.
				cancel()
				return boom
			default:
				return nil
			}
		})
		if !errors.Is(err, boom) {
			cancel()
			t.Fatalf("round %d: err = %v, want the genuine job error", round, err)
		}
		cancel()
	}
}

// TestPureCancellationStillReported: with no genuine failure, a
// cancellation-derived job error is still surfaced (lowest index first),
// and errors.Is sees the context error through it.
func TestPureCancellationStillReported(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	err := Run(ctx, 4, 8, func(ctx context.Context, i int) error {
		once.Do(cancel)
		if ctx.Err() != nil {
			return fmt.Errorf("job %d cancelled: %w", i, ctx.Err())
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled", err)
	}
}
