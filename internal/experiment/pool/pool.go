// Package pool provides the deterministic worker pool behind the parallel
// experiment engine.
//
// The pool's contract is structural determinism: work is expressed as n
// independent, indexed jobs, each of which derives everything it needs
// (seeds, sizes, protocols) from its index alone and writes its result into
// caller-owned, per-index storage. Because no job reads another job's state
// and results are assembled in index order, the outcome is bit-identical
// whatever the worker count or goroutine schedule — running with 8 workers
// replays exactly like running with 1. This is the same replayability
// invariant radiolint enforces on the simulator itself, lifted to the
// harness level: parallelism may only change wall-clock time, never bytes.
//
// Error handling is deterministic too. Jobs are dispatched in ascending
// index order; after the first failure no new jobs start, already-running
// jobs finish, and Run reports the error of the lowest failing index — the
// same error a sequential loop would have stopped on (every index below the
// lowest failing one runs to completion in both schedules). A panicking job
// is contained and converted into an error carrying its stack, so one bad
// trial cannot take down the whole run.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Workers normalizes a worker-count setting: values below 1 select
// GOMAXPROCS (use every core), and the result is clamped to n so no idle
// goroutines are spawned.
func Workers(workers, n int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes jobs 0..n-1 on up to workers goroutines (workers < 1 means
// GOMAXPROCS). job must be safe to call concurrently from multiple
// goroutines and must confine its effects to per-index state.
//
// Jobs are dispatched in ascending index order. The first job error stops
// dispatch of further jobs; jobs already started run to completion, and Run
// returns the error of the lowest failing index. If ctx is cancelled, Run
// stops dispatching and returns a cancellation error — but a genuine job
// failure always beats a cancellation-derived one, whatever their indices:
// when cancellation and a real error race, job errors that merely wrap
// ctx.Err() (jobs that observed the cancellation mid-flight) never mask the
// real failure, so the reported error is deterministic across goroutine
// schedules. A job panic is recovered and reported as an error for its
// index.
func Run(ctx context.Context, workers, n int, job func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)

	if workers == 1 {
		// Sequential fast path: same dispatch rule, no goroutines.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runJob(ctx, i, job); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next int64 = -1 // next job index, claimed via atomic increment
		stop atomic.Bool
		errs = make([]error, n) // per-index, no cross-job writes
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := runJob(ctx, i, job); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: the lowest GENUINELY failing index
	// wins, exactly as a sequential loop would have reported it. Errors
	// that merely relay the context's cancellation are set aside first:
	// which jobs happen to observe a cancellation depends on the goroutine
	// schedule, so letting a lower-index ctx-derived error win the scan
	// would mask a real failure at a higher index on some schedules and
	// report it on others. If every recorded error is ctx-derived, the
	// lowest of them is returned (it wraps ctx.Err() and may carry useful
	// job context); with none at all, plain ctx.Err() covers the
	// cancelled-before-dispatch case.
	ctxErr := ctx.Err()
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if ctxErr != nil && errors.Is(err, ctxErr) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	if cancelled != nil {
		return cancelled
	}
	return ctxErr
}

// runJob invokes job(i) with panic containment.
func runJob(ctx context.Context, i int, job func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool: job %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return job(ctx, i)
}

// Collect runs fn for every index 0..n-1 under Run's scheduling contract
// and returns the results in index order. fn's result for index i must
// depend only on i (and immutable captured state); under that contract the
// returned slice is identical for every worker count.
func Collect[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CollectMetered is Collect additionally reporting each job's wall-clock
// duration in nanoseconds, index-aligned with the results. The results obey
// Collect's bit-identity contract untouched; the durations are the one
// deliberately nondeterministic output — observability data for timing
// histograms, never an input to anything deterministic (benchjson.Canonical
// strips every consumer of them). That is why the wall-clock reads below
// are a justified exception to the norandtime rule.
func CollectMetered[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, []int64, error) {
	out := make([]T, n)
	ns := make([]int64, n)
	err := Run(ctx, workers, n, func(ctx context.Context, i int) error {
		//radiolint:ignore norandtime trial timing is observational and stripped from every determinism surface
		start := time.Now()
		v, err := fn(ctx, i)
		//radiolint:ignore norandtime trial timing is observational and stripped from every determinism surface
		ns[i] = int64(time.Since(start))
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, ns, nil
}
