package experiment_test

import (
	"bytes"
	"context"
	"testing"

	"adhocradio/internal/experiment"
	"adhocradio/internal/experiment/benchjson"
	"adhocradio/internal/obs"
)

// renderAll runs every registered experiment (or the -short subset) at
// Quick scale with the given worker count and returns the concatenated
// rendered tables plus the canonical (timing-stripped) benchjson encoding.
// Per-experiment engine counters are drained from obs.Default into the
// record, so the bit-identity assertion also gates counter determinism:
// a counter total that depends on the worker schedule would show up as a
// canonical-JSON divergence.
func renderAll(t *testing.T, parallel int, ids map[string]bool) (tables, canonical []byte) {
	t.Helper()
	cfg := experiment.Config{Seed: 1, Quick: true, Parallel: parallel}
	var tabBuf bytes.Buffer
	record := &benchjson.Run{Schema: benchjson.SchemaVersion, ID: "determinism", Seed: cfg.Seed, Quick: true, Parallel: parallel}
	obs.Default.Take() // discard counters other tests fed the shared recorder
	for _, e := range experiment.Registry() {
		if ids != nil && !ids[e.ID] {
			continue
		}
		tab, err := e.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s (parallel=%d): %v", e.ID, parallel, err)
		}
		if err := tab.Render(&tabBuf); err != nil {
			t.Fatal(err)
		}
		je := benchjson.FromTable(tab)
		counters, hist := obs.Default.Take()
		if !counters.IsZero() {
			je.Counters = &counters
		}
		je.TrialStats = benchjson.TrialStatsFrom(hist)
		record.Experiments = append(record.Experiments, je)
	}
	var jsonBuf bytes.Buffer
	if err := benchjson.Encode(&jsonBuf, record.Canonical()); err != nil {
		t.Fatal(err)
	}
	return tabBuf.Bytes(), jsonBuf.Bytes()
}

// TestParallelBitIdentical is the engine's core invariant, exercised under
// the race detector by `make race`: for a fixed seed, -parallel=8 must
// produce byte-identical tables and canonical JSON to -parallel=1. Every
// random stream is derived from (seed, point/trial index), so the worker
// count may change wall-clock time only, never a single byte.
func TestParallelBitIdentical(t *testing.T) {
	// Under -short keep a representative subset so the race-detector run
	// stays fast: E2 (pooled trials via meanTime), E5 (multi-row points),
	// E7 (sequential graph prologue + parallel measurements), E9 (shared
	// read-only graph), E12 (adversary construction in workers), E15
	// (fault-injected trials: the fault streams must be worker-independent
	// too).
	ids := map[string]bool{"E2": true, "E5": true, "E7": true, "E9": true, "E12": true, "E15": true}
	if !testing.Short() {
		ids = nil // every experiment
	}
	seqTables, seqJSON := renderAll(t, 1, ids)
	for _, workers := range []int{2, 8} {
		parTables, parJSON := renderAll(t, workers, ids)
		if !bytes.Equal(seqTables, parTables) {
			t.Errorf("parallel=%d: rendered tables differ from sequential\nseq:\n%s\npar:\n%s",
				workers, seqTables, parTables)
		}
		if !bytes.Equal(seqJSON, parJSON) {
			t.Errorf("parallel=%d: canonical JSON differs from sequential\nseq:\n%s\npar:\n%s",
				workers, seqJSON, parJSON)
		}
	}
}

// TestParallelCancellation: a cancelled context stops a run promptly with
// context.Canceled instead of hanging or panicking, whatever the worker
// count.
func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []int{1, 8} {
		cfg := experiment.Config{Seed: 1, Quick: true, Parallel: parallel}
		if _, err := experiment.E1(ctx, cfg); err == nil {
			t.Errorf("parallel=%d: cancelled run returned no error", parallel)
		}
	}
}
