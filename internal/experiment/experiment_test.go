package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"adhocradio/internal/decay"
	"adhocradio/internal/graph"
	"adhocradio/internal/obs"
	"adhocradio/internal/radio"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E4")
	if err != nil || e.ID != "E4" {
		t.Fatalf("ByID(E4) = %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "longcolumn"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("xyz", "w")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: demo ==", "longcolumn", "2.50", "xyz", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"x", "y"}}
	tab.AddRow(1, "a,b")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x,y\n1,\"a,b\"\n" {
		t.Fatalf("csv = %q", got)
	}
}

// Run every experiment in Quick mode: this is the end-to-end check that the
// whole reproduction pipeline holds together.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	cfg := Config{Seed: 1, Quick: true}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			t.Log("\n" + buf.String())
		})
	}
}

func TestTrialsDefaulting(t *testing.T) {
	if (Config{}).trials(5) != 5 {
		t.Fatal("default trials wrong")
	}
	if (Config{Trials: 2}).trials(5) != 2 {
		t.Fatal("explicit trials ignored")
	}
	if (Config{Quick: true}).trials(7) != 3 {
		t.Fatal("quick trials not reduced")
	}
	if (Config{Quick: true}).trials(2) != 2 {
		t.Fatal("quick should not raise small defaults")
	}
}

// TestSimulateFeedsRecorder: every simulation routed through simulate()
// drains its engine-counter window into obs.Default, and the totals restate
// the Results exactly (the recorder tap must not distort the ledger).
func TestSimulateFeedsRecorder(t *testing.T) {
	obs.Default.Take() // isolate from other tests sharing the recorder
	g := graph.Path(16)
	var wantTx, wantRx int64
	for i := 0; i < 3; i++ {
		res, err := simulate(g, decay.New(), radio.Config{Seed: uint64(i + 1)}, radio.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantTx += res.Transmissions
		wantRx += res.Receptions
	}
	c, _ := obs.Default.Take()
	if c.Transmissions != wantTx || c.Receptions != wantRx {
		t.Fatalf("recorder totals %+v do not restate the results (tx=%d rx=%d)", c, wantTx, wantRx)
	}
	if c.Steps == 0 {
		t.Fatal("no steps recorded")
	}
	if again, _ := obs.Default.Take(); !again.IsZero() {
		t.Fatalf("Take did not drain: %+v", again)
	}
}
