// Package experiment defines the reproduction experiments E1–E17 of
// DESIGN.md: each regenerates one theorem/figure of the paper as a table of
// measurements next to the model curve it is checked against.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes explain what the paper predicts and how to read the table.
	Notes []string
}

// AddRow appends a row, formatting every cell with formatCells.
func (t *Table) AddRow(cells ...any) {
	t.Rows = append(t.Rows, formatCells(cells))
}

// formatCells renders one row's cells to the table's string form: %.2f for
// float64, %v otherwise. The campaign checkpoint stores rows through this
// same function, so a replayed point's cells are byte-identical to the
// strings a fresh run would have produced.
func formatCells(cells []any) []string {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	return row
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table as CSV (header + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
