package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"adhocradio/internal/obs"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		in      string
		want    Shard
		wantErr bool
	}{
		{"1/1", Shard{1, 1}, false},
		{"1/2", Shard{1, 2}, false},
		{"2/2", Shard{2, 2}, false},
		{"3/7", Shard{3, 7}, false},
		{"", Shard{}, true},
		{"2", Shard{}, true},
		{"0/2", Shard{}, true},
		{"3/2", Shard{}, true},
		{"1/0", Shard{}, true},
		{"-1/2", Shard{}, true},
		{"a/2", Shard{}, true},
		{"1/b", Shard{}, true},
		{"1/2/3", Shard{}, true},
	}
	for _, c := range cases {
		got, err := ParseShard(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseShard(%q) accepted, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShard(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseShard(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestShardPartition: for any k, every point is owned by exactly one shard.
func TestShardPartition(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for p := 0; p < 37; p++ {
			owners := 0
			for i := 1; i <= k; i++ {
				if (Shard{Index: i, Count: k}).Owns(p) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("k=%d point %d owned by %d shards", k, p, owners)
			}
		}
	}
}

func TestShardSuffix(t *testing.T) {
	if got := Single().Suffix(); got != "" {
		t.Errorf("Single().Suffix() = %q", got)
	}
	if got := (Shard{Index: 2, Count: 3}).Suffix(); got != "_shard2of3" {
		t.Errorf("Suffix() = %q", got)
	}
	if got := (Shard{Index: 2, Count: 3}).String(); got != "2/3" {
		t.Errorf("String() = %q", got)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	rec := Record{
		Schema:   RecordSchema,
		Run:      "r1",
		Exp:      "E5",
		Point:    3,
		Rows:     [][]string{{"a", "1.00"}, {"b", "2.50"}},
		Counters: obs.Counters{Steps: 7, Transmissions: 3},
	}
	line, err := seal(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unseal(line[:len(line)-1]) // strip the newline like parseAll does
	if err != nil {
		t.Fatal(err)
	}
	rec.Sum = got.Sum
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip changed the record:\n got %+v\nwant %+v", got, rec)
	}
	// Any flipped byte in the payload must fail the checksum.
	mut := append([]byte(nil), line...)
	mut[len(mut)/2] ^= 0x01
	if _, err := unseal(mut[:len(mut)-1]); err == nil {
		t.Fatal("corrupted line passed its checksum")
	}
}

// runAll drives a synthetic 5-point experiment through RunPoints, returning
// emitted rows and the set of freshly simulated points.
func runAll(t *testing.T, s *State, exp string, fail map[int]error) (rows [][]string, fresh []int, replayedCounters obs.Counters, err error) {
	t.Helper()
	err = s.RunPoints(context.Background(), exp, 5,
		func(_ context.Context, i int) ([][]string, obs.Counters, error) {
			if e := fail[i]; e != nil {
				return nil, obs.Counters{}, e
			}
			fresh = append(fresh, i)
			return [][]string{{exp, fmt.Sprint(i)}}, obs.Counters{Steps: int64(i + 1)}, nil
		},
		func(r [][]string) { rows = append(rows, r...) },
		func(c obs.Counters) { replayedCounters.Add(c) })
	return rows, fresh, replayedCounters, err
}

func TestCheckpointResumeSkipsCompletedPoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	hdr := Header{Seed: 42, Quick: true, Trials: 3, Only: "E5"}

	s, err := Create(path, "run", Single(), hdr)
	if err != nil {
		t.Fatal(err)
	}
	// First pass fails at point 3: points 0-2 are committed.
	boom := errors.New("boom")
	rows, fresh, _, err := runAll(t, s, "E5", map[int]error{3: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(rows) != 3 || len(fresh) != 3 {
		t.Fatalf("partial pass: rows=%v fresh=%v", rows, fresh)
	}
	if s.Checkpointed() != 3 {
		t.Fatalf("Checkpointed() = %d, want 3", s.Checkpointed())
	}

	// Resume: 0-2 replay from the record, 3-4 run fresh.
	r, err := Resume(path, "run", hdr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shard != Single() {
		t.Fatalf("resumed shard = %v", r.Shard)
	}
	rows, fresh, replayed, err := runAll(t, r, "E5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"E5", "0"}, {"E5", "1"}, {"E5", "2"}, {"E5", "3"}, {"E5", "4"}}; !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	if !reflect.DeepEqual(fresh, []int{3, 4}) {
		t.Fatalf("fresh = %v, want [3 4]", fresh)
	}
	// Replayed counter deltas are points 0..2: Steps 1+2+3.
	if replayed.Steps != 6 {
		t.Fatalf("replayed Steps = %d, want 6", replayed.Steps)
	}
	if r.Replayed() != 3 {
		t.Fatalf("Replayed() = %d, want 3", r.Replayed())
	}
	if want := []Span{{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}}; !reflect.DeepEqual(r.Spans("E5"), want) {
		t.Fatalf("Spans = %v, want %v", r.Spans("E5"), want)
	}
}

func TestShardOwnershipSkipsForeignPoints(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(filepath.Join(dir, "s2.ckpt"), "s2", Shard{Index: 2, Count: 2}, Header{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, fresh, _, err := runAll(t, s, "E2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, []int{1, 3}) {
		t.Fatalf("shard 2/2 ran points %v, want [1 3]", fresh)
	}
	if want := [][]string{{"E2", "1"}, {"E2", "3"}}; !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	if want := []Span{{1, 1}, {3, 1}}; !reflect.DeepEqual(s.Spans("E2"), want) {
		t.Fatalf("Spans = %v", s.Spans("E2"))
	}
}

func TestRunPointsTwiceRejected(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "x.ckpt"), "x", Single(), Header{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := runAll(t, s, "E1", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := runAll(t, s, "E1", nil); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("second entry err = %v, want 'twice'", err)
	}
}

func TestRunPointsStopsOnCancelledContext(t *testing.T) {
	s, err := Create(filepath.Join(t.TempDir(), "c.ckpt"), "c", Single(), Header{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err = s.RunPoints(ctx, "E1", 5,
		func(_ context.Context, i int) ([][]string, obs.Counters, error) {
			ran++
			if i == 1 {
				cancel() // the point itself completes; the NEXT point must not start
			}
			return [][]string{{"r"}}, obs.Counters{}, nil
		},
		func([][]string) {}, func(obs.Counters) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 2 {
		t.Fatalf("ran %d points after cancel, want 2", ran)
	}
	if s.Checkpointed() != 2 {
		t.Fatalf("Checkpointed() = %d, want 2 (completed points stay committed)", s.Checkpointed())
	}
}

func TestResumeTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ckpt")
	hdr := Header{Seed: 9}
	s, err := Create(path, "t", Single(), hdr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := runAll(t, s, "E1", map[int]error{2: errors.New("stop")}); err == nil {
		t.Fatal("expected induced failure")
	}
	// Simulate a torn final append: half a line, no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"run":"t","exp":"E1","po`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Resume(path, "t", hdr)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if r.Checkpointed() != 2 {
		t.Fatalf("Checkpointed() = %d, want 2 intact points", r.Checkpointed())
	}
}

func TestResumeMidFileCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	hdr := Header{Seed: 9}
	s, err := Create(path, "m", Single(), hdr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := runAll(t, s, "E1", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Alter a value inside the SECOND line (first point record), leaving the
	// JSON well-formed and later lines intact: mid-file corruption that only
	// the self-checksum can see.
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected checkpoint shape: %d lines", len(lines))
	}
	if !strings.Contains(lines[1], `"exp":"E1"`) {
		t.Fatalf("record line shape changed: %q", lines[1])
	}
	lines[1] = strings.Replace(lines[1], `"exp":"E1"`, `"exp":"E9"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(path, "m", hdr); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("mid-file corruption err = %v, want checksum mismatch", err)
	}
}

func TestResumeValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.ckpt")
	hdr := Header{Seed: 5, Quick: true, Trials: 2, Only: "E1,E2"}
	if _, err := Create(path, "v", Shard{Index: 1, Count: 2}, hdr); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		run  string
		hdr  Header
		want string
	}{
		{"wrong-run", "other", hdr, "belongs to run"},
		{"wrong-seed", "v", Header{Seed: 6, Quick: true, Trials: 2, Only: "E1,E2"}, "workload mismatch"},
		{"wrong-quick", "v", Header{Seed: 5, Quick: false, Trials: 2, Only: "E1,E2"}, "workload mismatch"},
		{"wrong-trials", "v", Header{Seed: 5, Quick: true, Trials: 9, Only: "E1,E2"}, "workload mismatch"},
		{"wrong-only", "v", Header{Seed: 5, Quick: true, Trials: 2, Only: "E3"}, "workload mismatch"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Resume(path, c.run, c.hdr); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
	// The matching header resumes fine and adopts the checkpoint's shard.
	r, err := Resume(path, "v", hdr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shard != (Shard{Index: 1, Count: 2}) {
		t.Fatalf("adopted shard = %v", r.Shard)
	}
	if r.Path() != path {
		t.Fatalf("Path() = %q", r.Path())
	}
}

func TestResumeMissingFile(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "nope.ckpt"), "x", Header{}); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestResumeEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.ckpt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(path, "e", Header{}); err == nil || !strings.Contains(err.Error(), "no intact records") {
		t.Fatalf("err = %v, want 'no intact records'", err)
	}
}

func TestCreateInvalidShard(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "b.ckpt"), "b", Shard{Index: 3, Count: 2}, Header{}); err == nil {
		t.Fatal("invalid shard accepted")
	}
}

func TestCreateUnwritableDirectory(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "missing", "x.ckpt"), "x", Single(), Header{}); err == nil {
		t.Fatal("checkpoint in a missing directory accepted")
	}
}

// TestCommitFailureRollsBack: a failed flush must not leave the in-memory
// log ahead of the durable file.
func TestCommitFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.ckpt")
	s, err := Create(path, "r", Single(), Header{})
	if err != nil {
		t.Fatal(err)
	}
	lines := len(s.lines)
	// Make the directory unwritable so CreateTemp fails.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	err = s.commit(Record{Schema: RecordSchema, Run: "r", Exp: "E1", Point: 0})
	if err == nil {
		t.Fatal("commit into an unwritable directory succeeded")
	}
	if len(s.lines) != lines {
		t.Fatalf("failed commit grew the in-memory log: %d -> %d", lines, len(s.lines))
	}
	if s.Checkpointed() != 0 {
		t.Fatalf("failed commit marked the point done")
	}
}

// TestAfterPointRunsAfterDurableCommit: the hook fires once per fresh point,
// after the record is already on disk (so a crash inside the hook still
// leaves the point resumable).
func TestAfterPointRunsAfterDurableCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.ckpt")
	hdr := Header{Seed: 3}
	s, err := Create(path, "h", Single(), hdr)
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	s.AfterPoint = func(exp string, point int) {
		fired = append(fired, point)
		r, err := Resume(path, "h", hdr)
		if err != nil {
			t.Fatalf("checkpoint unreadable inside hook: %v", err)
		}
		if r.Checkpointed() != len(fired) {
			t.Fatalf("hook at point %d sees %d committed points, want %d", point, r.Checkpointed(), len(fired))
		}
	}
	if _, _, _, err := runAll(t, s, "E1", nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fired, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("hook fired for %v", fired)
	}
	// Replayed points do not re-fire the hook.
	r, err := Resume(path, "h", hdr)
	if err != nil {
		t.Fatal(err)
	}
	r.AfterPoint = func(string, int) { t.Fatal("hook fired for a replayed point") }
	if _, _, _, err := runAll(t, r, "E1", nil); err != nil {
		t.Fatal(err)
	}
}
