// Package campaign makes experiment sweeps crash-safe and shardable.
//
// A campaign wraps the per-point loop of every experiment with two
// orthogonal mechanisms that both preserve the repository's bit-identity
// contract (every random stream is derived from (seed, point/trial index),
// so which process runs a point — or whether it runs at all on this shard —
// cannot change a single output byte):
//
//   - Sharding: Shard{i, k} owns exactly the points p with p % k == i-1,
//     for every experiment independently. The union of the k shard outputs,
//     re-interleaved in point order (cmd/benchmerge), is byte-identical to
//     an unsharded run.
//
//   - Checkpointing: after each completed point, its formatted rows and its
//     engine-counter delta are committed to <runid>.ckpt before the next
//     point starts. Each checkpoint line is canonical JSON carrying a CRC-32
//     self-checksum, and every append rewrites the file through a temp file
//     that is fsync'd and renamed into place — the same atomic discipline
//     the BENCH_*.json writer uses — so a crash or SIGKILL at any instant
//     leaves either the previous checkpoint or the new one, never a torn
//     file. Resume validates the header against the invoking workload,
//     replays committed points from the record (no re-simulation), and
//     re-enters the sweep mid-experiment with the exact per-trial
//     rng.NewStream(seed, index) derivation an uninterrupted run would use.
//
// The checkpoint stores formatted table cells, not raw measurements: the
// replayed rows are the very strings the table renderer would have
// produced, so resume cannot drift from a fresh run by a formatting change
// in flight. Counters are stored per point so the per-experiment totals in
// the JSON record come out identical whether a point was simulated or
// replayed (CONTRIBUTING.md: new experiment state must round-trip through
// the checkpoint record).
package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"adhocradio/internal/obs"
)

// RecordSchema identifies the checkpoint line encoding; bump on any
// incompatible change so a stale .ckpt is rejected instead of misread.
const RecordSchema = 1

// Shard is a 1-based slice of every experiment's point space: Shard{i, k}
// owns point p iff p % k == i-1. The zero value is not valid; use
// ParseShard or Single.
type Shard struct {
	Index int // 1-based shard number in [1, Count]
	Count int // total shards
}

// Single is the trivial shard that owns every point.
func Single() Shard { return Shard{Index: 1, Count: 1} }

// ParseShard parses the -shard flag syntax "i/k" (1-based, 1 <= i <= k).
func ParseShard(s string) (Shard, error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("campaign: shard %q: want i/k (e.g. 1/2)", s)
	}
	i, err := strconv.Atoi(a)
	if err != nil {
		return Shard{}, fmt.Errorf("campaign: shard %q: bad index: %v", s, err)
	}
	k, err := strconv.Atoi(b)
	if err != nil {
		return Shard{}, fmt.Errorf("campaign: shard %q: bad count: %v", s, err)
	}
	if k < 1 || i < 1 || i > k {
		return Shard{}, fmt.Errorf("campaign: shard %q: need 1 <= i <= k", s)
	}
	return Shard{Index: i, Count: k}, nil
}

// Owns reports whether this shard runs measurement point p. The unit of
// sharding is the point — all of a point's trials ride with it — because
// rows are emitted per point, so point-granular ownership is what lets the
// merged output interleave back byte-identically.
func (s Shard) Owns(p int) bool {
	if s.Count <= 1 {
		return true
	}
	return p%s.Count == s.Index-1
}

// Suffix returns the run-id suffix for this shard ("" for a single shard),
// e.g. "_shard1of2". cmd/benchmerge strips it to derive the merged run id.
func (s Shard) Suffix() string {
	if s.Count <= 1 {
		return ""
	}
	return fmt.Sprintf("_shard%dof%d", s.Index, s.Count)
}

func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// Header pins the workload identity of a checkpoint. Resume refuses a
// checkpoint whose header disagrees with the invoking flags: replaying
// points recorded under a different seed or trial count would silently
// splice two different experiments into one table.
type Header struct {
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	Trials     int    `json:"trials"`
	Only       string `json:"only,omitempty"`
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
}

// Record is one line of the <runid>.ckpt file. The first line carries the
// Header (Point == -1, no Exp); every later line is one completed
// measurement point with its formatted rows and its engine-counter delta.
type Record struct {
	Schema int    `json:"schema"`
	Run    string `json:"run"`
	// Header is set exactly on the first record of the file.
	Header *Header `json:"header,omitempty"`
	Exp    string  `json:"exp,omitempty"`
	// Point is the measurement-point index within Exp (-1 on the header).
	Point int `json:"point"`
	// Rows holds the point's formatted table cells, in emission order.
	Rows [][]string `json:"rows,omitempty"`
	// Counters is the engine-counter delta this point contributed; replayed
	// into the recorder on resume so merged totals match a fresh run.
	Counters obs.Counters `json:"counters"`
	// Sum is the IEEE CRC-32 (lowercase hex) of the record's canonical JSON
	// encoding with Sum itself set to "" — a self-checksum that detects torn
	// or corrupted lines independent of any filesystem guarantee.
	Sum string `json:"sum"`
}

// seal encodes r as a checksummed JSON line (newline-terminated).
func seal(r Record) ([]byte, error) {
	r.Sum = ""
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding checkpoint record: %w", err)
	}
	r.Sum = fmt.Sprintf("%08x", crc32.ChecksumIEEE(body))
	line, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding checkpoint record: %w", err)
	}
	return append(line, '\n'), nil
}

// unseal parses one checkpoint line and verifies its self-checksum. The
// re-marshal round-trips byte-identically because seal produced the line
// from the same struct encoding.
func unseal(line []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return Record{}, fmt.Errorf("campaign: corrupt checkpoint line: %w", err)
	}
	want := r.Sum
	r.Sum = ""
	body, err := json.Marshal(r)
	if err != nil {
		return Record{}, fmt.Errorf("campaign: re-encoding checkpoint line: %w", err)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)); got != want {
		return Record{}, fmt.Errorf("campaign: checkpoint line checksum mismatch (have %s, computed %s)", want, got)
	}
	r.Sum = want
	return r, nil
}

// Span ties a contiguous group of emitted rows back to the measurement
// point that produced them; the per-experiment span list is the provenance
// cmd/benchmerge needs to re-interleave shard outputs in point order.
type Span struct {
	Point int
	Rows  int
}

type pointKey struct {
	exp   string
	point int
}

// State is one campaign run's checkpoint, shard assignment, and replay
// cache. It is confined to the sequential experiment sweep (one experiment
// at a time, points within an experiment sequential too); it is not safe
// for concurrent use.
type State struct {
	// RunID names the run; it must match the checkpoint's on resume.
	RunID string
	// Shard is this process's slice of every experiment's point space.
	Shard Shard
	// Header is the workload identity committed to the checkpoint.
	Header Header
	// AfterPoint, when non-nil, runs after each freshly completed point has
	// been durably committed to the checkpoint — the hook the SIGINT test
	// and the campaign-smoke crash injection hang off.
	AfterPoint func(exp string, point int)

	path     string
	lines    [][]byte // sealed lines in file order, header first
	done     map[pointKey]Record
	spans    map[string][]Span
	started  map[string]bool
	replayed int
}

// Create starts a fresh checkpoint at path (overwriting any previous file)
// and commits the header record immediately, so even a run killed before
// its first point leaves a resumable checkpoint behind.
func Create(path, runID string, shard Shard, hdr Header) (*State, error) {
	if shard.Count < 1 || shard.Index < 1 || shard.Index > shard.Count {
		return nil, fmt.Errorf("campaign: invalid shard %d/%d", shard.Index, shard.Count)
	}
	hdr.ShardIndex, hdr.ShardCount = shard.Index, shard.Count
	s := newState(path, runID, shard, hdr)
	line, err := seal(Record{Schema: RecordSchema, Run: runID, Point: -1, Header: &hdr})
	if err != nil {
		return nil, err
	}
	s.lines = append(s.lines, line)
	if err := s.flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// Resume loads the checkpoint at path and validates it against the invoking
// workload: run id, schema, and every Header field must match (the shard is
// adopted from the checkpoint, so hdr's shard fields are ignored). A torn
// final line — possible only if the file was produced by something cruder
// than the atomic rewrite — is dropped; corruption anywhere else is a hard
// error, because silently skipping a mid-file point would resume the wrong
// workload.
func Resume(path, runID string, hdr Header) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: resume: %w", err)
	}
	recs, err := parseAll(data)
	if err != nil {
		return nil, fmt.Errorf("campaign: resume %s: %w", path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("campaign: resume %s: no intact records", path)
	}
	h := recs[0]
	if h.Point != -1 || h.Header == nil {
		return nil, fmt.Errorf("campaign: resume %s: first record is not a header", path)
	}
	if h.Schema != RecordSchema {
		return nil, fmt.Errorf("campaign: resume %s: checkpoint schema %d, this build writes %d", path, h.Schema, RecordSchema)
	}
	if h.Run != runID {
		return nil, fmt.Errorf("campaign: resume %s: checkpoint belongs to run %q, not %q", path, h.Run, runID)
	}
	loaded := *h.Header
	if hdr.Seed != loaded.Seed || hdr.Quick != loaded.Quick || hdr.Trials != loaded.Trials || hdr.Only != loaded.Only {
		return nil, fmt.Errorf("campaign: resume %s: workload mismatch: checkpoint was seed=%d quick=%v trials=%d only=%q, invoked with seed=%d quick=%v trials=%d only=%q",
			path, loaded.Seed, loaded.Quick, loaded.Trials, loaded.Only, hdr.Seed, hdr.Quick, hdr.Trials, hdr.Only)
	}
	shard := Shard{Index: loaded.ShardIndex, Count: loaded.ShardCount}
	if shard.Count < 1 || shard.Index < 1 || shard.Index > shard.Count {
		return nil, fmt.Errorf("campaign: resume %s: invalid shard %d/%d in header", path, shard.Index, shard.Count)
	}
	s := newState(path, runID, shard, loaded)
	for _, r := range recs {
		line, err := seal(r)
		if err != nil {
			return nil, err
		}
		s.lines = append(s.lines, line)
		if r.Point < 0 {
			continue
		}
		if r.Run != runID {
			return nil, fmt.Errorf("campaign: resume %s: record for foreign run %q", path, r.Run)
		}
		k := pointKey{r.Exp, r.Point}
		if _, dup := s.done[k]; dup {
			return nil, fmt.Errorf("campaign: resume %s: duplicate record for %s point %d", path, r.Exp, r.Point)
		}
		if !shard.Owns(r.Point) {
			return nil, fmt.Errorf("campaign: resume %s: point %d of %s is not owned by shard %s", path, r.Point, r.Exp, shard)
		}
		s.done[k] = r
	}
	return s, nil
}

func newState(path, runID string, shard Shard, hdr Header) *State {
	return &State{
		RunID:   runID,
		Shard:   shard,
		Header:  hdr,
		path:    path,
		done:    map[pointKey]Record{},
		spans:   map[string][]Span{},
		started: map[string]bool{},
	}
}

// parseAll splits the checkpoint into verified records, tolerating exactly
// one torn line at the very end of the file.
func parseAll(data []byte) ([]Record, error) {
	var recs []Record
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends in '\n', so the final split element is empty.
	for idx, ln := range lines {
		if len(bytes.TrimSpace(ln)) == 0 {
			continue
		}
		r, err := unseal(ln)
		if err != nil {
			if idx == len(lines)-1 || (idx == len(lines)-2 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0) {
				// Torn tail: the crash interrupted the final append. Drop it;
				// the point will simply be re-run.
				return recs, nil
			}
			return nil, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// flush rewrites the checkpoint atomically: temp file in the same
// directory, fsync, rename over the old file. The file is tiny (tens of
// lines), so the whole-file rewrite per point costs microseconds and buys a
// file that is always internally consistent.
func (s *State) flush() error {
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	name := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(name)
		}
	}()
	for _, ln := range s.lines {
		if _, err := tmp.Write(ln); err != nil {
			return fmt.Errorf("campaign: checkpoint %s: %w", s.path, err)
		}
	}
	// The fsync is the crash-safety guarantee: after commit returns, the
	// record survives a SIGKILL or power cut, not just a clean exit.
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("campaign: checkpoint %s: %w", s.path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: checkpoint %s: %w", s.path, err)
	}
	if err := os.Rename(name, s.path); err != nil {
		return fmt.Errorf("campaign: checkpoint %s: %w", s.path, err)
	}
	committed = true
	return nil
}

// commit durably appends one completed point to the checkpoint.
func (s *State) commit(rec Record) error {
	line, err := seal(rec)
	if err != nil {
		return err
	}
	s.lines = append(s.lines, line)
	if err := s.flush(); err != nil {
		// Roll the in-memory log back so a retried commit cannot duplicate
		// the line.
		s.lines = s.lines[:len(s.lines)-1]
		return err
	}
	s.done[pointKey{rec.Exp, rec.Point}] = rec
	return nil
}

// RunPoints drives one experiment's measurement points under the campaign
// contract: points this shard does not own are skipped, points already in
// the checkpoint are replayed (emit + replay, no simulation), and each
// fresh point is committed durably before the next one starts. run is
// called sequentially in ascending point order; emit receives the point's
// formatted rows (fresh or replayed, identical either way); replay receives
// a replayed point's counter delta so aggregated totals match a fresh run.
func (s *State) RunPoints(ctx context.Context, exp string, n int,
	run func(ctx context.Context, i int) ([][]string, obs.Counters, error),
	emit func(rows [][]string),
	replay func(c obs.Counters)) error {
	if s.started[exp] {
		return fmt.Errorf("campaign: experiment %s entered the campaign twice", exp)
	}
	s.started[exp] = true
	for i := 0; i < n; i++ {
		if !s.Shard.Owns(i) {
			continue
		}
		if rec, ok := s.done[pointKey{exp, i}]; ok {
			emit(rec.Rows)
			replay(rec.Counters)
			s.spans[exp] = append(s.spans[exp], Span{Point: i, Rows: len(rec.Rows)})
			s.replayed++
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		rows, counters, err := run(ctx, i)
		if err != nil {
			return err
		}
		rec := Record{Schema: RecordSchema, Run: s.RunID, Exp: exp, Point: i, Rows: rows, Counters: counters}
		if err := s.commit(rec); err != nil {
			return err
		}
		emit(rows)
		s.spans[exp] = append(s.spans[exp], Span{Point: i, Rows: len(rows)})
		if s.AfterPoint != nil {
			s.AfterPoint(exp, i)
		}
	}
	return nil
}

// Spans returns the (point, row-count) provenance of exp's emitted rows, in
// emission order. The returned slice is owned by the State.
func (s *State) Spans(exp string) []Span { return s.spans[exp] }

// Checkpointed returns how many measurement points the checkpoint holds.
func (s *State) Checkpointed() int { return len(s.done) }

// Replayed returns how many points this process served from the checkpoint
// instead of simulating.
func (s *State) Replayed() int { return s.replayed }

// Path returns the checkpoint file location.
func (s *State) Path() string { return s.path }
