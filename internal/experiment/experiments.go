package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"

	"adhocradio/internal/core"
	"adhocradio/internal/decay"
	"adhocradio/internal/det"
	"adhocradio/internal/experiment/campaign"
	"adhocradio/internal/experiment/pool"
	"adhocradio/internal/graph"
	"adhocradio/internal/lowerbound"
	"adhocradio/internal/obs"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
	"adhocradio/internal/stats"
	"adhocradio/internal/trace"
)

// Config scopes an experiment run.
type Config struct {
	// Seed drives all randomness (topologies and protocols).
	Seed uint64
	// Trials is the number of repetitions per randomized measurement
	// point; 0 selects a per-experiment default.
	Trials int
	// Quick shrinks problem sizes so the whole suite runs in seconds
	// (used by tests); the full sizes are used by cmd/radiobench and the
	// benchmarks.
	Quick bool
	// Parallel is the number of worker goroutines used for independent
	// measurement points and trials; 0 or 1 runs sequentially. Every
	// random stream is derived from (Seed, point/trial index), so the
	// resulting tables are bit-identical for every Parallel value — the
	// worker count may only change wall-clock time, never bytes.
	Parallel int
	// Campaign, when non-nil, makes the run crash-safe and shardable:
	// runPoints routes every measurement point through the campaign state,
	// which skips points owned by other shards, replays points already in
	// the checkpoint, and durably commits each fresh point before the next
	// one starts. Points then execute sequentially (trials inside a point
	// still fan out across Parallel workers); the bit-identity contract
	// makes that reordering invisible in the output.
	Campaign *campaign.State
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick && def > 3 {
		return 3
	}
	return def
}

// workers resolves the Parallel setting for the pool; the zero value keeps
// the historical sequential behaviour.
func (c Config) workers() int {
	if c.Parallel > 1 {
		return c.Parallel
	}
	return 1
}

// Experiment is a registered reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, cfg Config) (*Table, error)
}

// Registry lists all experiments in order.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "Randomized broadcasting at large radius: KP vs BGI (Thm 1)", E1},
		{"E2", "Randomized broadcasting at small radius: log²n regime (Thm 1)", E2},
		{"E3", "Complete layered networks are hardest for randomized broadcast", E3},
		{"E4", "Adversarial deterministic lower bound (Thm 2, Figs. 1-2)", E4},
		{"E5", "Select-and-Send runs in O(n log n) (Thm 3)", E5},
		{"E6", "Complete-Layered runs in O(n + D log n), refuting Ω(n log D) (Thm 4)", E6},
		{"E7", "Round-robin vs Select-and-Send vs interleaving crossover", E7},
		{"E8", "Ablation: the universal-sequence step of Stage(D,i)", E8},
		{"E9", "Extension: message complexity (energy) of every algorithm", E9},
		{"E10", "Extension: the price of not knowing the neighborhood ([3] model)", E10},
		{"E11", "Extension: the §1.1 model landscape (spontaneous transmissions)", E11},
		{"E12", "Extension: directed vs undirected layered hardness (§4.3 contrast)", E12},
		{"E13", "Randomized broadcasting on directed networks (§2 generality)", E13},
		{"E14", "Fidelity ablation: the paper's constants vs simulation constants", E14},
		{"E15", "Fault extension: broadcast-time degradation under link loss", E15},
		{"E16", "Fault extension: broadcast-time degradation under jamming", E16},
		{"E17", "Fault extension: crash-tolerance of the DFS token vs Decay", E17},
	}
}

// ErrUnknownExperiment is the sentinel wrapped by ByID (and everything
// delegating to it) when no registered experiment has the requested ID.
// Callers discriminate with errors.Is instead of matching message text.
var ErrUnknownExperiment = errors.New("experiment: unknown id")

// ByID returns the experiment with the given ID. The error wraps
// ErrUnknownExperiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w %q (registered: E1..E%d)", ErrUnknownExperiment, id, len(Registry()))
}

// runPoints evaluates n independent measurement points through the worker
// pool and appends their rows to t in point order. Each point must be a
// pure function of its index — it derives every random stream from
// (cfg.Seed, a stable identifier) and touches no state shared with other
// points — which is what makes the assembled table bit-identical for every
// cfg.Parallel value. This is the seed-derivation rule of CONTRIBUTING.md;
// new experiments must follow it.
func runPoints(ctx context.Context, cfg Config, t *Table, n int,
	point func(ctx context.Context, i int) ([][]any, error)) error {
	if c := cfg.Campaign; c != nil {
		// Campaign mode: points run sequentially (so the recorder's
		// snapshot-diff below attributes counters to exactly one point) and
		// every completed point is committed to the checkpoint before the
		// next one starts. Trials inside a point still use the pool.
		return c.RunPoints(ctx, t.ID, n,
			func(ctx context.Context, i int) ([][]string, obs.Counters, error) {
				before, _ := obs.Default.Snapshot()
				groups, err := point(ctx, i)
				if err != nil {
					return nil, obs.Counters{}, err
				}
				after, _ := obs.Default.Snapshot()
				rows := make([][]string, 0, len(groups))
				for _, cells := range groups {
					rows = append(rows, formatCells(cells))
				}
				return rows, after.Diff(before), nil
			},
			func(rows [][]string) { t.Rows = append(t.Rows, rows...) },
			func(c obs.Counters) { obs.Default.AddCounters(c) })
	}
	groups, err := pool.Collect(ctx, cfg.workers(), n, point)
	if err != nil {
		return err
	}
	for _, rows := range groups {
		for _, cells := range rows {
			t.AddRow(cells...)
		}
	}
	return nil
}

// meanTime runs protocol p on fresh topologies from build for the given
// number of trials and returns the mean and median broadcast time. Trials
// are sharded across the pool: trial i derives its topology stream from
// (seed, i) and its protocol stream from seed+1000+i, so the summary is
// identical whatever the worker count. Per-trial wall times feed the
// observability recorder; they never touch the returned summary.
func meanTime(ctx context.Context, cfg Config, build func(src *rng.Source) (*graph.Graph, error),
	p func() radio.Protocol, seed uint64, trials int) (stats.Summary, error) {
	times, trialNS, err := pool.CollectMetered(ctx, cfg.workers(), trials, func(_ context.Context, i int) (int, error) {
		src := rng.NewStream(seed, uint64(i))
		g, err := build(src)
		if err != nil {
			return 0, err
		}
		res, err := simulate(g, p(), radio.Config{Seed: seed + uint64(1000+i)}, radio.Options{})
		if err != nil {
			return 0, err
		}
		return res.BroadcastTime, nil
	})
	if err != nil {
		return stats.Summary{}, err
	}
	obs.Default.ObserveTrials(trialNS)
	return stats.SummarizeInts(times), nil
}

// E1: at D ∈ Θ(n/polylog n) the paper's algorithm wins over BGI by a factor
// approaching log n / log(n/D).
func E1(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "KP vs BGI on random layered networks, D = n/16",
		Columns: []string{"n", "D", "t_KP_knownD", "t_KP", "t_BGI", "speedup_knownD", "speedup", "model_speedup"},
		Notes: []string{
			"paper: KP = O(D log(n/D) + log²n) beats BGI = O(D log n + log²n) for D ∈ Θ(n/polylog n)",
			"t_KP_knownD runs procedure Randomized-Broadcasting(D) itself (what Lemma 6 analyzes);",
			"t_KP adds the doubling wrapper, whose early phases use longer stages — at finite n that",
			"costs an additive log(2c) per stage, so its speedup converges to the model only as n grows",
			"model_speedup = ModelBGI/ModelKP; speedup_knownD should track it",
		},
	}
	sizes := []int{1024, 2048, 4096}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	trials := cfg.trials(5)
	err := runPoints(ctx, cfg, t, len(sizes), func(ctx context.Context, i int) ([][]any, error) {
		n := sizes[i]
		d := n / 16
		build := func(src *rng.Source) (*graph.Graph, error) {
			return graph.RandomLayered(n, d, 0.3, src)
		}
		known, err := meanTime(ctx, cfg, build, func() radio.Protocol {
			return core.NewWithParams(core.Params{KnownRadius: d})
		}, cfg.Seed+uint64(n), trials)
		if err != nil {
			return nil, fmt.Errorf("E1 kp-known n=%d: %w", n, err)
		}
		kp, err := meanTime(ctx, cfg, build, func() radio.Protocol { return core.New() }, cfg.Seed+uint64(n), trials)
		if err != nil {
			return nil, fmt.Errorf("E1 kp n=%d: %w", n, err)
		}
		bgi, err := meanTime(ctx, cfg, build, func() radio.Protocol { return decay.New() }, cfg.Seed+uint64(n), trials)
		if err != nil {
			return nil, fmt.Errorf("E1 bgi n=%d: %w", n, err)
		}
		model := stats.ModelBGI(float64(n), float64(d)) / stats.ModelKP(float64(n), float64(d))
		return [][]any{{n, d, known.Mean, kp.Mean, bgi.Mean,
			bgi.Mean / known.Mean, bgi.Mean / kp.Mean, model}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E2: at constant D both algorithms are dominated by the log²n term and
// should be close.
func E2(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "KP vs BGI on complete layered networks, small D",
		Columns: []string{"n", "D", "t_KP", "t_BGI", "ratio"},
		Notes: []string{
			"paper: for small D both bounds collapse to Θ(log²n + D log n); expect ratio near 1",
		},
	}
	sizes := []int{1024, 4096}
	if cfg.Quick {
		sizes = []int{256}
	}
	trials := cfg.trials(5)
	type nd struct{ n, d int }
	var points []nd
	for _, n := range sizes {
		for _, d := range []int{2, 4, 8} {
			points = append(points, nd{n, d})
		}
	}
	err := runPoints(ctx, cfg, t, len(points), func(ctx context.Context, i int) ([][]any, error) {
		n, d := points[i].n, points[i].d
		build := func(src *rng.Source) (*graph.Graph, error) {
			return graph.UniformCompleteLayered(n, d)
		}
		kp, err := meanTime(ctx, cfg, build, func() radio.Protocol { return core.New() }, cfg.Seed+uint64(n*d), trials)
		if err != nil {
			return nil, fmt.Errorf("E2 kp n=%d d=%d: %w", n, d, err)
		}
		bgi, err := meanTime(ctx, cfg, build, func() radio.Protocol { return decay.New() }, cfg.Seed+uint64(n*d), trials)
		if err != nil {
			return nil, fmt.Errorf("E2 bgi n=%d d=%d: %w", n, d, err)
		}
		return [][]any{{n, d, kp.Mean, bgi.Mean, bgi.Mean / kp.Mean}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E3: Kushilevitz–Mansour's Ω(D log(n/D)) is proved on complete layered
// networks; KP should be no faster there than on random layered networks of
// the same n, D.
func E3(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "KP on complete layered vs random layered networks",
		Columns: []string{"n", "D", "t_complete", "t_random", "hardness"},
		Notes: []string{
			"paper (§1.2): complete layered networks are the most difficult for randomized broadcasting",
			"hardness = t_complete/t_random; expect >= ~1",
		},
	}
	n := 2048
	if cfg.Quick {
		n = 256
	}
	trials := cfg.trials(5)
	var ds []int
	for _, d := range []int{8, 32, 128} {
		if d < n/4 {
			ds = append(ds, d)
		}
	}
	err := runPoints(ctx, cfg, t, len(ds), func(ctx context.Context, i int) ([][]any, error) {
		d := ds[i]
		complete, err := meanTime(ctx, cfg, func(src *rng.Source) (*graph.Graph, error) {
			return graph.UniformCompleteLayered(n, d)
		}, func() radio.Protocol { return core.New() }, cfg.Seed+uint64(d), trials)
		if err != nil {
			return nil, fmt.Errorf("E3 complete d=%d: %w", d, err)
		}
		random, err := meanTime(ctx, cfg, func(src *rng.Source) (*graph.Graph, error) {
			return graph.RandomLayered(n, d, 0.2, src)
		}, func() radio.Protocol { return core.New() }, cfg.Seed+uint64(d), trials)
		if err != nil {
			return nil, fmt.Errorf("E3 random d=%d: %w", d, err)
		}
		return [][]any{{n, d, complete.Mean, random.Mean, complete.Mean / random.Mean}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E4: the Section 3 adversary. For each protocol we build G_A, verify
// Lemma 9 (abstract = real histories), and report the measured time next
// to the guaranteed bound and the Thm 2 model curve.
func E4(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Adversarial networks G_A (jamming + non-selective witness)",
		Columns: []string{"protocol", "n", "D", "k", "lmax", "bound", "t_adv", "t/bound", "model_LB"},
		Notes: []string{
			"paper (Thm 2): every deterministic algorithm needs Ω(n log n / log(n/D)) on some network",
			"bound = (D/2-1)·lmax is the delay the construction certifies; t_adv must exceed it (checked)",
			"Lemma 9 is verified on every row: the real run's informed-times equal the construction's",
			"built with Force outside the asymptotic window n^{3/4} < D <= n/16 (laptop-scale n)",
		},
	}
	sizes := [][2]int{{512, 32}, {1024, 64}, {2048, 128}}
	if cfg.Quick {
		sizes = [][2]int{{256, 16}}
	}
	protos := []radio.DeterministicProtocol{det.RoundRobin{}, det.SelectAndSend{}}
	type point struct {
		p    radio.DeterministicProtocol
		n, d int
	}
	var points []point
	for _, p := range protos {
		for _, sz := range sizes {
			points = append(points, point{p, sz[0], sz[1]})
		}
	}
	err := runPoints(ctx, cfg, t, len(points), func(_ context.Context, i int) ([][]any, error) {
		p, n, d := points[i].p, points[i].n, points[i].d
		c, err := lowerbound.Build(p, lowerbound.Params{N: n, D: d, Force: true})
		if err != nil {
			return nil, fmt.Errorf("E4 %s n=%d: %w", p.Name(), n, err)
		}
		res, err := lowerbound.VerifyRealRun(p, c, 0)
		if err != nil {
			return nil, fmt.Errorf("E4 %s n=%d: %w", p.Name(), n, err)
		}
		if res.BroadcastTime < c.LowerBoundSteps() {
			return nil, fmt.Errorf("E4 %s n=%d: time %d below bound %d", p.Name(), n, res.BroadcastTime, c.LowerBoundSteps())
		}
		return [][]any{{p.Name(), n, d, c.K, c.LMax, c.LowerBoundSteps(), res.BroadcastTime,
			float64(res.BroadcastTime) / float64(c.LowerBoundSteps()),
			stats.ModelDetLB(float64(n), float64(d))}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E5: Select-and-Send completes in O(n log n) on arbitrary networks; the
// normalized time t/(n log n) should stay near a constant as n grows.
func E5(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Select-and-Send on arbitrary networks",
		Columns: []string{"topology", "n", "t", "t/(n log n)"},
		Notes: []string{
			"paper (Thm 3): O(n log n) for every n-node undirected network",
			"the last column should be roughly flat in n for each topology",
		},
	}
	sizes := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{128, 256}
	}
	err := runPoints(ctx, cfg, t, len(sizes), func(_ context.Context, i int) ([][]any, error) {
		n := sizes[i]
		src := rng.NewStream(cfg.Seed, uint64(n))
		workloads := map[string]*graph.Graph{
			"gnp":  graph.GNPConnected(n, 4.0/float64(n), src),
			"tree": graph.RandomTree(n, src),
		}
		side := int(math.Sqrt(float64(n)))
		workloads["grid"] = graph.Grid(side, side)
		var rows [][]any
		for _, name := range []string{"gnp", "tree", "grid"} {
			g := workloads[name]
			res, err := simulate(g, det.SelectAndSend{}, radio.Config{}, radio.Options{})
			if err != nil {
				return nil, fmt.Errorf("E5 %s n=%d: %w", name, n, err)
			}
			nn := float64(g.N())
			rows = append(rows, []any{name, g.N(), res.BroadcastTime, float64(res.BroadcastTime) / stats.ModelNLogN(nn)})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E6: Algorithm Complete-Layered beats the (incorrectly) claimed Ω(n log D)
// for unbounded D ∈ o(n): the normalized t/(n + D log n) column must stay
// bounded while t/(n log D) falls as n grows. Worst-case label placement
// makes the additive Θ(n) bootstrap term real instead of accidental.
func E6(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Complete-Layered on worst-labelled complete layered networks",
		Columns: []string{"n", "D", "t", "t/(n+D log n)", "t/(n log D)"},
		Notes: []string{
			"paper (Thm 4 + §4.3): O(n + D log n), refuting the claimed Ω(n log D) of [10] for undirected graphs",
			"middle column bounded; last column falling with n (at D = √n ∈ o(n)) demonstrates the refutation",
		},
	}
	sizes := []int{512, 1024, 2048, 4096}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	err := runPoints(ctx, cfg, t, len(sizes), func(_ context.Context, i int) ([][]any, error) {
		n := sizes[i]
		ds := []int{intSqrt(n)}
		if n/32 != ds[0] {
			ds = append(ds, n/32)
		}
		var rows [][]any
		for _, d := range ds {
			if d < 2 || d > n/4 {
				continue
			}
			g, err := graph.WorstLabelCompleteLayered(n, d)
			if err != nil {
				return nil, err
			}
			res, err := simulate(g, det.CompleteLayered{}, radio.Config{}, radio.Options{})
			if err != nil {
				return nil, fmt.Errorf("E6 n=%d d=%d: %w", n, d, err)
			}
			nf, df := float64(n), float64(d)
			rows = append(rows, []any{n, d, res.BroadcastTime,
				float64(res.BroadcastTime) / stats.ModelCompleteLayered(nf, df),
				float64(res.BroadcastTime) / (nf * math.Log2(df))})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

func intSqrt(n int) int {
	return int(math.Sqrt(float64(n)))
}

// E7: round-robin is O(nD), Select-and-Send O(n log n); interleaving them
// gives O(n·min(D, log n)). The crossover should sit near D ≈ log n.
//
// The workload graphs are drawn from ONE sequential stream (each draw
// consumes randomness the next depends on), so generation stays a
// sequential prologue; only the measurements fan out.
func E7(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Round-robin vs Select-and-Send vs interleaving across D",
		Columns: []string{"n", "D", "t_rr", "t_ss", "t_inter", "winner"},
		Notes: []string{
			"paper (§4.2): interleaving gives O(n·min(D, log n)); round-robin wins for D below ~log n",
			"t_inter should track ~2x the better of the two columns",
		},
	}
	n := 1024
	if cfg.Quick {
		n = 256
	}
	src := rng.NewStream(cfg.Seed, 7)
	var (
		ds     []int
		graphs []*graph.Graph
	)
	for _, d := range []int{2, 4, 8, 16, 64, 256} {
		if d > n/4 {
			continue
		}
		g, err := graph.RandomLayered(n, d, 0.2, src)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
		graphs = append(graphs, g)
	}
	err := runPoints(ctx, cfg, t, len(ds), func(_ context.Context, i int) ([][]any, error) {
		d, g := ds[i], graphs[i]
		rr, err := simulate(g, det.RoundRobin{}, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E7 rr d=%d: %w", d, err)
		}
		ss, err := simulate(g, det.SelectAndSend{}, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E7 ss d=%d: %w", d, err)
		}
		inter, err := simulate(g, det.NewInterleaved(det.RoundRobin{}, det.SelectAndSend{}),
			radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E7 inter d=%d: %w", d, err)
		}
		winner := "round-robin"
		if ss.BroadcastTime < rr.BroadcastTime {
			winner = "select-and-send"
		}
		return [][]any{{n, d, rr.BroadcastTime, ss.BroadcastTime, inter.BroadcastTime, winner}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E8: remove the universal-sequence step from Stage(D, i) and watch
// high-in-degree fronts suffer — the paper's argument for why "trying to
// shorten procedure Decay would not work".
func E8(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Stage(D,i) with and without the universal-sequence step (StarChain fronts)",
		Columns: []string{"fanin", "n", "t_full", "t_ablated", "penalty"},
		Notes: []string{
			"paper (§2): the truncated ladder alone cannot inform nodes with more than r/D informed in-neighbors quickly",
			"t_* are medians over trials (censored at the step budget); the ablated variant pays orders of magnitude",
		},
	}
	fanins := []int{16, 64, 256}
	if cfg.Quick {
		fanins = []int{8, 32}
	}
	trials := cfg.trials(9)
	// Chain of 2 wide hops; the assumed radius is deliberately large so
	// that the ladder of Stage(D,i) stops at probability ~D/r, far above
	// 1/fan-in: exactly the "many informed in-neighbors" regime the
	// universal-sequence step exists for. The ablated variant can cross
	// such a front only by luck.
	const chain = 2
	const assumedRadius = 32
	const budget = 200_000
	err := runPoints(ctx, cfg, t, len(fanins), func(ctx context.Context, pi int) ([][]any, error) {
		w := fanins[pi]
		g := graph.StarChain(chain, w) // read-only, shared across trial workers
		run := func(p radio.Protocol, seed uint64) int {
			res, err := simulate(g, p, radio.Config{Seed: seed}, radio.Options{MaxSteps: budget})
			if err != nil {
				return budget // censored at budget
			}
			return res.BroadcastTime
		}
		pairs, trialNS, err := pool.CollectMetered(ctx, cfg.workers(), trials, func(_ context.Context, i int) ([2]int, error) {
			seed := cfg.Seed + uint64(100*w+i)
			return [2]int{
				run(core.NewWithParams(core.Params{KnownRadius: assumedRadius}), seed),
				run(core.NewWithParams(core.Params{KnownRadius: assumedRadius, DisableUniversalStep: true}), seed),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		obs.Default.ObserveTrials(trialNS)
		full := make([]int, 0, trials)
		ablated := make([]int, 0, trials)
		for _, pr := range pairs {
			full = append(full, pr[0])
			ablated = append(ablated, pr[1])
		}
		fs, as := stats.SummarizeInts(full), stats.SummarizeInts(ablated)
		return [][]any{{w, g.N(), fs.Median, as.Median, as.Median / fs.Median}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E9 is an extension beyond the paper: total transmissions (the energy a
// battery-powered deployment spends) for every algorithm on a common
// workload. The paper optimizes time only; this table shows the price each
// algorithm pays in messages, which the time bounds hide.
func E9(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Message complexity on a random layered network",
		Columns: []string{"protocol", "n", "D", "time", "transmissions", "tx/node", "fairness", "collisions"},
		Notes: []string{
			"extension (not a paper table): energy cost next to broadcast time",
			"token algorithms trade time for far fewer transmissions than Decay-style flooding",
		},
	}
	n, d := 1024, 32
	if cfg.Quick {
		n, d = 256, 8
	}
	src := rng.NewStream(cfg.Seed, 99)
	g, err := graph.RandomLayered(n, d, 0.3, src)
	if err != nil {
		return nil, err
	}
	protos := []radio.Protocol{
		core.New(),
		decay.New(),
		det.RoundRobin{},
		det.SelectAndSend{},
		det.NewInterleaved(det.RoundRobin{}, det.SelectAndSend{}),
	}
	err = runPoints(ctx, cfg, t, len(protos), func(_ context.Context, i int) ([][]any, error) {
		p := protos[i]
		var col trace.Collector
		res, err := simulate(g, p, radio.Config{Seed: cfg.Seed + 5}, radio.Options{Trace: col.Hook()})
		if err != nil {
			return nil, fmt.Errorf("E9 %s: %w", p.Name(), err)
		}
		return [][]any{{p.Name(), n, d, res.BroadcastTime, res.Transmissions,
			float64(res.Transmissions) / float64(n), col.JainFairness(), res.Collisions}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E10 is an extension quantifying Section 1.1's remark that with
// neighborhood knowledge (the model of [3]) "a simple linear-time
// broadcasting algorithm based on DFS follows from [2]": the DFS token
// finishes in <= 2n steps, while Select-and-Send — same DFS, but blind —
// pays the Θ(log n) Echo/Binary-Selection machinery per hop. The measured
// ratio should grow like log n.
func E10(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Neighborhood knowledge: [2]-style DFS vs Select-and-Send",
		Columns: []string{"n", "t_dfs", "t_ss", "ratio", "log2 n"},
		Notes: []string{
			"extension (Section 1.1 remark): knowing neighbor labels removes the selection overhead",
			"ratio should track Θ(log n)",
		},
	}
	sizes := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{128, 256}
	}
	err := runPoints(ctx, cfg, t, len(sizes), func(_ context.Context, i int) ([][]any, error) {
		n := sizes[i]
		src := rng.NewStream(cfg.Seed, uint64(n))
		g := graph.RandomTree(n, src)
		dfs, err := simulate(g, det.DFSNeighborhood{}, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E10 dfs n=%d: %w", n, err)
		}
		ss, err := simulate(g, det.SelectAndSend{}, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E10 ss n=%d: %w", n, err)
		}
		return [][]any{{n, dfs.BroadcastTime, ss.BroadcastTime,
			float64(ss.BroadcastTime) / float64(dfs.BroadcastTime), math.Log2(float64(n))}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E11 maps Section 1.1's model landscape on one workload: with spontaneous
// transmissions, deterministic broadcast is Θ(n) ([7], matching [15]'s
// lower bound); with neighborhood knowledge it is Θ(n) too ([2]); in the
// paper's standard model the best known deterministic algorithm is
// Select-and-Send's O(n log n) against Theorem 2's Ω(n log n / log(n/D)).
func E11(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Model landscape: spontaneous vs neighbor-aware vs standard",
		Columns: []string{"n", "t_spontaneous", "t_neighbor_dfs", "t_standard_ss", "spont/n", "ss/(n log n)"},
		Notes: []string{
			"extension (§1.1): both stronger models are linear in n; the standard model pays a log factor",
			"spont/n should stay flat (Θ(n)); the last column flat too (Θ(n log n))",
		},
	}
	sizes := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{128, 256}
	}
	err := runPoints(ctx, cfg, t, len(sizes), func(_ context.Context, i int) ([][]any, error) {
		n := sizes[i]
		src := rng.NewStream(cfg.Seed, uint64(3*n))
		g := graph.GNPConnected(n, 3.0/float64(n), src)
		spont, err := simulate(g, det.SpontaneousLinear{}, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E11 spontaneous n=%d: %w", n, err)
		}
		dfs, err := simulate(g, det.DFSNeighborhood{}, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E11 dfs n=%d: %w", n, err)
		}
		ss, err := simulate(g, det.SelectAndSend{}, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E11 ss n=%d: %w", n, err)
		}
		nf := float64(n)
		return [][]any{{n, spont.BroadcastTime, dfs.BroadcastTime, ss.BroadcastTime,
			float64(spont.BroadcastTime) / nf,
			float64(ss.BroadcastTime) / stats.ModelNLogN(nf)}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E12 completes the Section 4.3 story. For DIRECTED complete layered
// networks the adversarial Ω(n log D)-style hardness of [10] is real: a
// [10]-style game (lowerbound.BuildDirectedLayered) makes an oblivious
// deterministic schedule pay orders of magnitude over a benign label
// placement of the same shape. For UNDIRECTED networks the paper refutes
// the bound: Algorithm Complete-Layered exploits the back-edges (Echo
// feedback) and stays at O(n + D log n). Feedback algorithms deadlock on
// the directed instances — the refutation cannot carry over, exactly as
// the paper argues.
func E12(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Directed adversarial vs benign vs undirected feedback",
		Columns: []string{"n", "D", "t_dir_adversarial", "t_dir_benign", "slowdown", "t_undir_feedback"},
		Notes: []string{
			"extension (§4.3): victim = oblivious decay schedule; adversary = directed layer-composition game",
			"the undirected column runs Complete-Layered (O(n + D log n)) on the same layer shape with back-edges",
			"directed equivalence (construction = real run) is verified on every row",
		},
	}
	sizes := [][2]int{{512, 8}, {1024, 16}, {2048, 16}}
	if cfg.Quick {
		sizes = [][2]int{{256, 8}}
	}
	err := runPoints(ctx, cfg, t, len(sizes), func(_ context.Context, i int) ([][]any, error) {
		n, d := sizes[i][0], sizes[i][1]
		victim := det.ObliviousDecay{Seed: cfg.Seed + 1}
		c, err := lowerbound.BuildDirectedLayered(victim, lowerbound.DirectedParams{N: n, D: d})
		if err != nil {
			return nil, fmt.Errorf("E12 build n=%d: %w", n, err)
		}
		adv, err := lowerbound.VerifyDirectedRealRun(victim, c, 0)
		if err != nil {
			return nil, fmt.Errorf("E12 verify n=%d: %w", n, err)
		}
		benignU, err := graph.UniformCompleteLayered(n+1, d)
		if err != nil {
			return nil, err
		}
		layers, err := benignU.Layers()
		if err != nil {
			return nil, err
		}
		benignD := graph.New(benignU.N(), false)
		for li := 0; li+1 < len(layers); li++ {
			for _, u := range layers[li] {
				for _, v := range layers[li+1] {
					benignD.MustAddEdge(u, v)
				}
			}
		}
		bres, err := simulate(benignD, victim, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E12 benign n=%d: %w", n, err)
		}
		ures, err := simulate(benignU, det.CompleteLayered{}, radio.Config{}, radio.Options{})
		if err != nil {
			return nil, fmt.Errorf("E12 undirected n=%d: %w", n, err)
		}
		return [][]any{{n, d, adv.BroadcastTime, bres.BroadcastTime,
			float64(adv.BroadcastTime) / float64(bres.BroadcastTime), ures.BroadcastTime}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E13 checks Section 2's generality claim: "this particular result holds in
// the more general setting of directed graphs as well" — the analysis is
// even carried out for directed radius D. The measured times on directed
// layered networks must match the undirected ones of equal (n, D) in order
// of magnitude.
func E13(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "KP (known D) on directed vs undirected layered networks",
		Columns: []string{"n", "D", "t_directed", "t_undirected", "ratio"},
		Notes: []string{
			"paper (§2): Theorem 1 is proved for directed radius D; undirected is the special case",
			"the ratio should hover near 1",
		},
	}
	sizes := []int{512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{256}
	}
	trials := cfg.trials(5)
	err := runPoints(ctx, cfg, t, len(sizes), func(ctx context.Context, i int) ([][]any, error) {
		n := sizes[i]
		d := n / 16
		directed, err := meanTime(ctx, cfg, func(src *rng.Source) (*graph.Graph, error) {
			return graph.DirectedLayered(n, d, 0.3, src)
		}, func() radio.Protocol {
			return core.NewWithParams(core.Params{KnownRadius: d})
		}, cfg.Seed+uint64(2*n), trials)
		if err != nil {
			return nil, fmt.Errorf("E13 directed n=%d: %w", n, err)
		}
		undirected, err := meanTime(ctx, cfg, func(src *rng.Source) (*graph.Graph, error) {
			return graph.RandomLayered(n, d, 0.3, src)
		}, func() radio.Protocol {
			return core.NewWithParams(core.Params{KnownRadius: d})
		}, cfg.Seed+uint64(2*n), trials)
		if err != nil {
			return nil, fmt.Errorf("E13 undirected n=%d: %w", n, err)
		}
		return [][]any{{n, d, directed.Mean, undirected.Mean, directed.Mean / undirected.Mean}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E14 quantifies the one substitution this reproduction makes in the
// paper's algorithm: the per-phase stage budget (4660·D in Lemma 6, 16·D in
// simulation) and the 32·r^{2/3} BGI fallback. With the published
// constants, the doubling wrapper spends its entire time inside the first
// few phases (whose stages are log(r/2)+2 long), so at finite n the exact
// paper configuration behaves like BGI; the simulation constants let the
// wrapper reach the phase whose stage length actually matches D. Both
// complete reliably — the substitution trades none of the correctness, only
// finite-size speed.
func E14(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Doubling wrapper under different stage budgets",
		Columns: []string{"n", "D", "t_factor16", "t_factor128", "t_paper4660", "t_BGI"},
		Notes: []string{
			"fidelity ablation (DESIGN.md §6): larger stage budgets push completion into earlier phases",
			"with longer stages; at the published 4660 the wrapper is BGI-like at laptop scale",
		},
	}
	sizes := []int{1024, 2048}
	if cfg.Quick {
		sizes = []int{256}
	}
	trials := cfg.trials(5)
	err := runPoints(ctx, cfg, t, len(sizes), func(ctx context.Context, i int) ([][]any, error) {
		n := sizes[i]
		d := n / 16
		build := func(src *rng.Source) (*graph.Graph, error) {
			return graph.RandomLayered(n, d, 0.3, src)
		}
		measure := func(factor int) (stats.Summary, error) {
			return meanTime(ctx, cfg, build, func() radio.Protocol {
				return core.NewWithParams(core.Params{StageFactor: factor})
			}, cfg.Seed+uint64(n), trials)
		}
		f16, err := measure(16)
		if err != nil {
			return nil, fmt.Errorf("E14 f16 n=%d: %w", n, err)
		}
		f128, err := measure(128)
		if err != nil {
			return nil, fmt.Errorf("E14 f128 n=%d: %w", n, err)
		}
		paper, err := meanTime(ctx, cfg, build, func() radio.Protocol {
			return core.NewPaperExact()
		}, cfg.Seed+uint64(n), trials)
		if err != nil {
			return nil, fmt.Errorf("E14 paper n=%d: %w", n, err)
		}
		bgi, err := meanTime(ctx, cfg, build, func() radio.Protocol { return decay.New() }, cfg.Seed+uint64(n), trials)
		if err != nil {
			return nil, fmt.Errorf("E14 bgi n=%d: %w", n, err)
		}
		return [][]any{{n, d, f16.Mean, f128.Mean, paper.Mean, bgi.Mean}}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
