package experiment

import (
	"sync"

	"adhocradio/internal/graph"
	"adhocradio/internal/obs"
	"adhocradio/internal/radio"
)

// engines pools radio.Runner instances across the trial workers: a worker
// draws an engine, runs one trial, and parks it again, so steady-state
// trials reuse warm scratch instead of reallocating it per radio.Run call.
// Which physical engine serves which trial is scheduling-dependent, but a
// Runner carries no state a Result can observe between runs (pinned by the
// radiotest battery and TestParallelBitIdentical), so tables stay
// bit-identical for every worker count.
var engines = sync.Pool{New: func() any { return radio.NewRunner() }}

// simulate runs one trial through a pooled engine. Every simulation an
// experiment performs goes through here, so this is also where the
// observability layer taps in: the run's counter window drains into
// obs.Default. Counter totals stay identical for every worker count because
// each trial's window is a deterministic function of its inputs and integer
// addition commutes (TestParallelBitIdentical covers the assembled tables,
// TestSimulateFeedsRecorder the tap itself).
func simulate(g *graph.Graph, p radio.Protocol, cfg radio.Config, opt radio.Options) (*radio.Result, error) {
	r := engines.Get().(*radio.Runner)
	before := r.Counters()
	res, err := r.Run(g, p, cfg, opt)
	obs.Default.AddCounters(r.Counters().Diff(before))
	// Park only on normal return: if a protocol panicked, the unwind skips
	// this line and the mid-step engine is dropped for the GC instead of
	// being handed to the next trial.
	engines.Put(r)
	return res, err
}
