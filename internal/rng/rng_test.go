package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs out of 100", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	// Streams for consecutive ids must differ from each other and from the
	// base stream.
	base := New(7)
	s0 := NewStream(7, 0)
	s1 := NewStream(7, 1)
	eq01, eqB0 := 0, 0
	for i := 0; i < 200; i++ {
		v0, v1, vb := s0.Uint64(), s1.Uint64(), base.Uint64()
		if v0 == v1 {
			eq01++
		}
		if v0 == vb {
			eqB0++
		}
	}
	if eq01 > 0 || eqB0 > 0 {
		t.Fatalf("correlated streams: eq01=%d eqB0=%d", eq01, eqB0)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 8 buckets.
	s := New(99)
	const buckets = 8
	const samples = 80000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[s.Uint64n(buckets)]++
	}
	expect := float64(samples) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d too far from %f", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(11)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) fired")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) did not fire")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	s := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.25) {
			hits++
		}
	}
	mean := float64(hits) / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) empirical mean %f", mean)
	}
}

func TestCoinPow2(t *testing.T) {
	s := New(17)
	// k=0 always fires.
	for i := 0; i < 50; i++ {
		if !s.CoinPow2(0) {
			t.Fatal("CoinPow2(0) did not fire")
		}
		if !s.CoinPow2(-3) {
			t.Fatal("CoinPow2(-3) did not fire")
		}
	}
	// Empirical rate for k=3 should be near 1/8.
	const n = 80000
	hits := 0
	for i := 0; i < n; i++ {
		if s.CoinPow2(3) {
			hits++
		}
	}
	mean := float64(hits) / n
	if math.Abs(mean-0.125) > 0.01 {
		t.Fatalf("CoinPow2(3) empirical mean %f, want ~0.125", mean)
	}
}

func TestCoinPow2LargeK(t *testing.T) {
	// With k=128 the probability is 2^-128: it must never fire in a short
	// test, and must not loop forever or panic.
	s := New(19)
	for i := 0; i < 1000; i++ {
		if s.CoinPow2(128) {
			t.Fatal("CoinPow2(128) fired (astronomically unlikely); implementation bug")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(29)
	xs := []int{5, 5, 1, 2, 3, 9, 9, 9}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(xs)
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 || len(xs) != 8 {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestSampleProperties(t *testing.T) {
	s := New(31)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		out := s.Sample(n, k)
		if len(out) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestGeometricMean(t *testing.T) {
	s := New(37)
	const n = 50000
	total := 0
	for i := 0; i < n; i++ {
		total += s.Geometric(0.5)
	}
	mean := float64(total) / n
	// Mean of geometric(number of failures) with p=.5 is (1-p)/p = 1.
	if math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("Geometric(0.5) empirical mean %f, want ~1", mean)
	}
	if s.Geometric(1.0) != 0 {
		t.Fatal("Geometric(1) != 0")
	}
}

func TestStateRoundTrip(t *testing.T) {
	a := New(101)
	for i := 0; i < 10; i++ {
		a.Uint64()
	}
	st := a.State()
	b := NewFromState(st)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
}

func TestNewFromZeroState(t *testing.T) {
	s := NewFromState([4]uint64{})
	// Must not emit all zeros forever.
	var acc uint64
	for i := 0; i < 16; i++ {
		acc |= s.Uint64()
	}
	if acc == 0 {
		t.Fatal("zero-state source stuck at zero")
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkCoinPow2(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.CoinPow2(10)
	}
}
