// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator needs reproducible randomness: a broadcast run must be
// replayable from a single seed, and every node must own an independent
// stream derived from (master seed, node label) so that adding or removing
// nodes does not perturb the streams of the others. The standard library's
// math/rand does not guarantee a stable algorithm across Go releases, so we
// pin one: xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as its
// authors recommend.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New or NewFromState.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, never for the main stream.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via SplitMix64. Distinct seeds give
// independent-looking streams; the same seed always gives the same stream.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// NewStream returns a Source for a substream identified by id, derived from
// the master seed. It mixes the id through SplitMix64 so that consecutive
// ids (node labels, trial indices) do not produce correlated streams.
func NewStream(seed, id uint64) *Source {
	st := seed
	_ = splitMix64(&st) // decouple from New(seed)
	st ^= 0xd1342543de82ef95 * (id + 1)
	return New(splitMix64(&st))
}

// Reseed resets the generator state from seed.
func (s *Source) Reseed(seed uint64) {
	st := seed
	s.s0 = splitMix64(&st)
	s.s1 = splitMix64(&st)
	s.s2 = splitMix64(&st)
	s.s3 = splitMix64(&st)
	// xoshiro must not start in the all-zero state; SplitMix64 cannot emit
	// four consecutive zeros, but be defensive anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0, which
// always indicates a caller bug rather than a runtime condition.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0") //radiolint:ignore nopanic documented caller-bug contract, mirroring math/rand.Intn
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly random uint64 in [0, n) using Lemire's
// nearly-divisionless method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0") //radiolint:ignore nopanic documented caller-bug contract, mirroring math/rand.Intn
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly random float64 in [0, 1) with 53 bits of
// precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped: p <= 0 never fires, p >= 1 always fires.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// CoinPow2 returns true with probability 2^-k for k >= 0, using k random
// bits directly instead of a float comparison. This is the transmission
// coin used by Decay-style ladders: exact for every k up to 64 and cheaper
// than Float64. For k > 64 it consumes two words.
func (s *Source) CoinPow2(k int) bool {
	if k <= 0 {
		return true
	}
	for k > 64 {
		if s.Uint64() != 0 {
			return false
		}
		k -= 64
	}
	return s.Uint64()&(1<<uint(k)-1) == 0
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomly permutes xs in place (Fisher–Yates).
func (s *Source) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample called with k out of range") //radiolint:ignore nopanic documented caller-bug contract, mirroring math/rand.Perm
	}
	// Floyd's algorithm: O(k) expected, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	s.Shuffle(out)
	return out
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) process, i.e. a sample from the geometric distribution on
// {0,1,2,...}. p must be in (0, 1]; p >= 1 returns 0 and p <= 0 panics.
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0") //radiolint:ignore nopanic documented caller-bug contract: p is validated by every in-repo caller
	}
	n := 0
	for !s.Bernoulli(p) {
		n++
	}
	return n
}

// State returns the four words of internal state, for checkpointing.
func (s *Source) State() [4]uint64 {
	return [4]uint64{s.s0, s.s1, s.s2, s.s3}
}

// NewFromState reconstructs a Source from a checkpointed state.
func NewFromState(st [4]uint64) *Source {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		st[0] = 1
	}
	return &Source{s0: st[0], s1: st[1], s2: st[2], s3: st[3]}
}
