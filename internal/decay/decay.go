// Package decay implements the randomized broadcasting algorithm of
// Bar-Yehuda, Goldreich and Itai (reference [3] of the paper), the baseline
// the paper's Section 2 improves on.
//
// Time is divided into stages of k = ⌈log(R+1)⌉ + 1 steps. In step l of a
// stage (l = 0, ..., k-1) every participating node transmits the source
// message with probability 2^{-l} — the classic Decay ladder. A node starts
// participating at the first stage that begins after it was informed; the
// source participates from stage 1. Expected broadcast time is
// O(D log n + log² n).
package decay

import (
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
	"adhocradio/internal/sequences"
)

// Protocol is the BGI Decay broadcast. The zero value is ready to use.
type Protocol struct {
	// StageLength overrides the number of steps per stage (0 selects the
	// standard ⌈log(R+1)⌉+1). Experiment E8 uses short stages to show why
	// naive truncation of Decay fails.
	StageLength int
}

var _ radio.Protocol = (*Protocol)(nil)

// New returns the standard BGI Decay protocol.
func New() *Protocol { return &Protocol{} }

// Name implements radio.Protocol.
func (p *Protocol) Name() string { return "bgi-decay" }

// NewNode implements radio.Protocol.
func (p *Protocol) NewNode(label int, cfg radio.Config) radio.NodeProgram {
	k := p.StageLength
	if k <= 0 {
		k = sequences.CeilLog2(cfg.LabelBound()+1) + 1
	}
	return &node{
		stageLen: k,
		source:   label == 0,
		src:      rng.NewStream(cfg.Seed, uint64(label)),
	}
}

type node struct {
	stageLen   int
	source     bool
	src        *rng.Source
	firstStage int // first stage this node participates in; 0 = unset
}

// firstStageAfter returns the index (1-based) of the first stage whose first
// step is strictly after step t0, for stages of length k starting at step 1.
func firstStageAfter(t0, k int) int {
	// Stage s spans steps (s-1)k+1 .. sk; its start is after t0 iff
	// (s-1)k+1 > t0, i.e. s > t0/k + (1 if k divides t0 evenly... ).
	return t0/k + 1 + boolToInt(t0%k != 0)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Act implements radio.NodeProgram.
func (n *node) Act(t int) (bool, any) {
	if n.firstStage == 0 {
		// First Act call: the simulator only drives informed nodes, so for
		// the source this is step 1 (informed at step 0); for any other
		// node Deliver has already set firstStage.
		if !n.source {
			// Defensive: a non-source node must have been informed first.
			return false, nil
		}
		n.firstStage = 1
	}
	stage := (t-1)/n.stageLen + 1
	if stage < n.firstStage {
		return false, nil
	}
	pos := (t - 1) % n.stageLen
	if n.src.CoinPow2(pos) {
		return true, payload{}
	}
	return false, nil
}

// Deliver implements radio.NodeProgram.
func (n *node) Deliver(t int, msg radio.Message) {
	if n.firstStage == 0 {
		n.firstStage = firstStageAfter(t, n.stageLen)
	}
}

// payload is the (empty) broadcast message: every transmission implicitly
// carries the source message.
type payload struct{}
