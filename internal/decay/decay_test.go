package decay

import (
	"testing"

	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
)

func TestFirstStageAfter(t *testing.T) {
	cases := []struct{ t0, k, want int }{
		{0, 5, 1},  // source: participates from stage 1
		{1, 5, 2},  // informed mid-stage 1 -> stage 2
		{5, 5, 2},  // informed at last step of stage 1 -> stage 2
		{6, 5, 3},  // informed at first step of stage 2 -> stage 3
		{10, 5, 3}, // end of stage 2 -> stage 3
	}
	for _, c := range cases {
		if got := firstStageAfter(c.t0, c.k); got != c.want {
			t.Errorf("firstStageAfter(%d,%d) = %d, want %d", c.t0, c.k, got, c.want)
		}
	}
}

func runOn(t *testing.T, g *graph.Graph, seed uint64) *radio.Result {
	t.Helper()
	res, err := radio.Run(g, New(), radio.Config{Seed: seed}, radio.Options{})
	if err != nil {
		t.Fatalf("decay did not complete: %v", err)
	}
	return res
}

func TestCompletesOnPath(t *testing.T) {
	res := runOn(t, graph.Path(32), 1)
	if !res.Completed {
		t.Fatal("not completed")
	}
}

func TestCompletesOnStar(t *testing.T) {
	res := runOn(t, graph.Star(64), 2)
	if !res.Completed {
		t.Fatal("not completed")
	}
}

func TestCompletesOnCompleteLayered(t *testing.T) {
	g, err := graph.UniformCompleteLayered(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := runOn(t, g, 3)
	if !res.Completed {
		t.Fatal("not completed")
	}
}

func TestCompletesOnCliqueDespiteContention(t *testing.T) {
	// A clique forces every informed node to contend; Decay's ladder must
	// still get a singleton transmission through.
	res := runOn(t, graph.Clique(100), 4)
	if !res.Completed {
		t.Fatal("not completed")
	}
}

func TestCompletesOnRandomNetworks(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		g := graph.GNPConnected(200, 0.02, src)
		res := runOn(t, g, uint64(trial))
		if !res.Completed {
			t.Fatalf("trial %d not completed", trial)
		}
	}
}

func TestScalesLikeDLogN(t *testing.T) {
	// On a path (D = n-1, collision-free fronts are still slowed by the
	// ladder), time should be roughly proportional to D·log n: check that
	// doubling D roughly doubles time (within loose factors).
	avg := func(n int) float64 {
		total := 0
		const trials = 5
		for s := 0; s < trials; s++ {
			res := runOn(t, graph.Path(n), uint64(100+s))
			total += res.BroadcastTime
		}
		return float64(total) / trials
	}
	t256, t512 := avg(256), avg(512)
	ratio := t512 / t256
	if ratio < 1.4 || ratio > 3.2 {
		t.Fatalf("time ratio for doubled path length = %.2f, expected ~2", ratio)
	}
}

func TestTruncatedStageStillRunsButSlower(t *testing.T) {
	// A truncated ladder (stage length 3) cannot reach probabilities low
	// enough for high-degree fronts; on a star with many leaves... the star
	// informs leaves in one source transmission, so use a StarChain where
	// w leaves must funnel into one hub.
	g := graph.StarChain(2, 64)
	full, err := radio.Run(g, New(), radio.Config{Seed: 9}, radio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	short, err := radio.Run(g, &Protocol{StageLength: 3}, radio.Config{Seed: 9},
		radio.Options{MaxSteps: full.BroadcastTime * 50})
	if err != nil {
		// Acceptable outcome: truncation livelocks within the budget.
		return
	}
	if short.BroadcastTime < full.BroadcastTime {
		t.Logf("truncated decay was faster on this seed (%d < %d); tolerated, distributional claim checked in E8",
			short.BroadcastTime, full.BroadcastTime)
	}
}

func TestDeterministicReplay(t *testing.T) {
	g := graph.StarChain(3, 16)
	a := runOn(t, g, 42)
	b := runOn(t, g, 42)
	if a.BroadcastTime != b.BroadcastTime || a.Transmissions != b.Transmissions {
		t.Fatal("same seed produced different runs")
	}
}
