package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 1},
		{4, 2}, {7, 2}, {8, 3},
		{1 << 20, 20}, {1<<21 - 1, 20},
		{1 << (HistBuckets + 3), HistBuckets - 1}, // overflow clamps to the top bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistObserveSummaries(t *testing.T) {
	var h Hist
	if h.MeanNS() != 0 {
		t.Fatalf("empty MeanNS = %d", h.MeanNS())
	}
	for _, ns := range []int64{100, 300, 200} {
		h.Observe(ns)
	}
	if h.Count != 3 || h.TotalNS != 600 || h.MinNS != 100 || h.MaxNS != 300 {
		t.Fatalf("summaries wrong: %+v", h)
	}
	if h.MeanNS() != 200 {
		t.Fatalf("MeanNS = %d, want 200", h.MeanNS())
	}
	// 100 and 200, 300 land in log2 buckets 6 and 7, 8.
	if h.Buckets[6] != 1 || h.Buckets[7] != 1 || h.Buckets[8] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Buckets)
	}
}

func TestHistMergeIsOrderIndependent(t *testing.T) {
	var a, b Hist
	for _, ns := range []int64{5, 50, 500} {
		a.Observe(ns)
	}
	for _, ns := range []int64{1, 5000} {
		b.Observe(ns)
	}
	ab := a
	ab.Merge(b)
	ba := b
	ba.Merge(a)
	if ab != ba {
		t.Fatalf("merge not commutative:\nab %+v\nba %+v", ab, ba)
	}
	if ab.Count != 5 || ab.MinNS != 1 || ab.MaxNS != 5000 || ab.TotalNS != 5556 {
		t.Fatalf("merged summaries wrong: %+v", ab)
	}
	// Merging an empty histogram changes nothing (including Min).
	before := ab
	ab.Merge(Hist{})
	if ab != before {
		t.Fatalf("merging empty changed the histogram: %+v vs %+v", ab, before)
	}
	// Merging into an empty histogram copies it.
	var empty Hist
	empty.Merge(a)
	if empty != a {
		t.Fatalf("merge into empty = %+v, want %+v", empty, a)
	}
}

func TestHistApproxQuantile(t *testing.T) {
	var h Hist
	if h.ApproxQuantileNS(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 100) // 100ns .. 10µs
	}
	med := h.ApproxQuantileNS(0.5)
	if med < 100 || med > 20000 {
		t.Fatalf("median estimate %d outside sane range", med)
	}
	if got := h.ApproxQuantileNS(1); got != h.MaxNS {
		t.Fatalf("q=1 gave %d, want MaxNS %d", got, h.MaxNS)
	}
	if got := h.ApproxQuantileNS(-1); got <= 0 {
		t.Fatalf("clamped q<0 gave %d", got)
	}
	if got := h.ApproxQuantileNS(2); got != h.MaxNS {
		t.Fatalf("clamped q>1 gave %d, want %d", got, h.MaxNS)
	}
	// The estimate is an upper bound of the true quantile's bucket top.
	if h.ApproxQuantileNS(0.95) < med {
		t.Fatal("p95 below median")
	}
}

// TestHistQuantileEdgeCases: an empty histogram and a NaN quantile both
// return the defined value 0 — before the fix, NaN slipped past both range
// clamps (NaN comparisons are false) and int64(NaN * ...) produced a
// garbage rank.
func TestHistQuantileEdgeCases(t *testing.T) {
	var empty Hist
	for _, q := range []float64{0, 0.5, 1, -1, 2, math.NaN()} {
		if got := empty.ApproxQuantileNS(q); got != 0 {
			t.Errorf("empty.ApproxQuantileNS(%v) = %d, want 0", q, got)
		}
	}
	var h Hist
	h.Observe(100)
	h.Observe(200)
	if got := h.ApproxQuantileNS(math.NaN()); got != 0 {
		t.Errorf("ApproxQuantileNS(NaN) = %d, want 0", got)
	}
	// Out-of-range q still clamps rather than erroring.
	if got := h.ApproxQuantileNS(2); got != h.ApproxQuantileNS(1) {
		t.Errorf("q=2 (%d) != q=1 (%d)", got, h.ApproxQuantileNS(1))
	}
	if got := h.ApproxQuantileNS(-3); got != h.ApproxQuantileNS(0) {
		t.Errorf("q=-3 (%d) != q=0 (%d)", got, h.ApproxQuantileNS(0))
	}
}

// TestHistValidateAndMergeChecked: histograms of external provenance (a
// decoded shard document) must be rejected, not merged into garbage.
func TestHistValidateAndMergeChecked(t *testing.T) {
	var good Hist
	good.Observe(100)
	good.Observe(4000)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid histogram rejected: %v", err)
	}
	if err := (Hist{}).Validate(); err != nil {
		t.Fatalf("empty histogram rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Hist)
		want string
	}{
		{"count-bucket-mismatch", func(h *Hist) { h.Count += 5 }, "sum"},
		{"negative-count", func(h *Hist) { h.Count = -1; h.Buckets = [HistBuckets]int64{} }, "negative count"},
		{"negative-bucket", func(h *Hist) { h.Buckets[3] = -2; h.Buckets[4] = 2 }, "negative bucket"},
		{"min-above-max", func(h *Hist) { h.MinNS = h.MaxNS + 1 }, "min"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := good
			c.mut(&bad)
			if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want mention of %q", err, c.want)
			}
			dst := good
			if err := dst.MergeChecked(bad); err == nil {
				t.Fatal("MergeChecked accepted an invalid histogram")
			}
			if dst != good {
				t.Fatal("failed MergeChecked modified the destination")
			}
		})
	}

	// The checked merge agrees with the unchecked one on valid input.
	a, b := good, good
	var plain Hist
	plain.Merge(a)
	plain.Merge(b)
	var checked Hist
	if err := checked.MergeChecked(a); err != nil {
		t.Fatal(err)
	}
	if err := checked.MergeChecked(b); err != nil {
		t.Fatal(err)
	}
	if checked != plain {
		t.Fatalf("MergeChecked result differs from Merge:\n%+v\n%+v", checked, plain)
	}
}
