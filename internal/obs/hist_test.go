package obs

import "testing"

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 1},
		{4, 2}, {7, 2}, {8, 3},
		{1 << 20, 20}, {1<<21 - 1, 20},
		{1 << (HistBuckets + 3), HistBuckets - 1}, // overflow clamps to the top bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistObserveSummaries(t *testing.T) {
	var h Hist
	if h.MeanNS() != 0 {
		t.Fatalf("empty MeanNS = %d", h.MeanNS())
	}
	for _, ns := range []int64{100, 300, 200} {
		h.Observe(ns)
	}
	if h.Count != 3 || h.TotalNS != 600 || h.MinNS != 100 || h.MaxNS != 300 {
		t.Fatalf("summaries wrong: %+v", h)
	}
	if h.MeanNS() != 200 {
		t.Fatalf("MeanNS = %d, want 200", h.MeanNS())
	}
	// 100 and 200, 300 land in log2 buckets 6 and 7, 8.
	if h.Buckets[6] != 1 || h.Buckets[7] != 1 || h.Buckets[8] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Buckets)
	}
}

func TestHistMergeIsOrderIndependent(t *testing.T) {
	var a, b Hist
	for _, ns := range []int64{5, 50, 500} {
		a.Observe(ns)
	}
	for _, ns := range []int64{1, 5000} {
		b.Observe(ns)
	}
	ab := a
	ab.Merge(b)
	ba := b
	ba.Merge(a)
	if ab != ba {
		t.Fatalf("merge not commutative:\nab %+v\nba %+v", ab, ba)
	}
	if ab.Count != 5 || ab.MinNS != 1 || ab.MaxNS != 5000 || ab.TotalNS != 5556 {
		t.Fatalf("merged summaries wrong: %+v", ab)
	}
	// Merging an empty histogram changes nothing (including Min).
	before := ab
	ab.Merge(Hist{})
	if ab != before {
		t.Fatalf("merging empty changed the histogram: %+v vs %+v", ab, before)
	}
	// Merging into an empty histogram copies it.
	var empty Hist
	empty.Merge(a)
	if empty != a {
		t.Fatalf("merge into empty = %+v, want %+v", empty, a)
	}
}

func TestHistApproxQuantile(t *testing.T) {
	var h Hist
	if h.ApproxQuantileNS(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 100) // 100ns .. 10µs
	}
	med := h.ApproxQuantileNS(0.5)
	if med < 100 || med > 20000 {
		t.Fatalf("median estimate %d outside sane range", med)
	}
	if got := h.ApproxQuantileNS(1); got != h.MaxNS {
		t.Fatalf("q=1 gave %d, want MaxNS %d", got, h.MaxNS)
	}
	if got := h.ApproxQuantileNS(-1); got <= 0 {
		t.Fatalf("clamped q<0 gave %d", got)
	}
	if got := h.ApproxQuantileNS(2); got != h.MaxNS {
		t.Fatalf("clamped q>1 gave %d, want %d", got, h.MaxNS)
	}
	// The estimate is an upper bound of the true quantile's bucket top.
	if h.ApproxQuantileNS(0.95) < med {
		t.Fatal("p95 below median")
	}
}
