// Package obs is the simulator's observability layer: plain counter
// structs, a log-scale duration histogram, and a concurrency-safe recorder
// that aggregates both across trial workers.
//
// The paper's claims are claims about counts — broadcast rounds,
// transmissions, collisions — so the counters are first-class engine state,
// not a post-hoc trace product. Two design rules keep the layer
// zero-overhead and trustworthy:
//
//  1. No interfaces, no closures, no allocations. Counters is a plain
//     struct of int64 fields embedded by value in radio.Runner and
//     incremented inline in the hot loop, so the //radiolint:hotpath
//     hotalloc pass stays clean and BenchmarkSimulatorRunnerReuse stays at
//     0 allocs/op.
//
//  2. Every counter the optimized engine maintains is maintained
//     independently by the naive RunReference* oracle — the same
//     mirror-in-reference rule fault models follow (CONTRIBUTING.md). The
//     differential battery and FuzzRunVsReference assert engine/reference
//     counter equality exactly like Result equality, and the mirrorref
//     lint pass enforces the rule statically through the
//     //radiolint:mirror marker below.
//
// Counter totals are deterministic: each trial's counters are a pure
// function of (graph, protocol, seed, plan), and aggregation is integer
// addition, which is schedule-independent. Timing histograms are
// observational and never participate in determinism checks.
package obs

// Counters records what happened during one or more simulation runs. All
// fields are event counts; the zero value is an empty record. Counters is
// comparable with ==, which is how the differential tests assert
// engine/reference agreement in one shot.
//
// The fault-event counters follow the engine's accounting points exactly
// (and the reference mirrors them):
//
//   - LinksDropped counts transmissions destroyed by a link fault: one per
//     (step, arc) where an arc out of a transmitter was down, whether or
//     not the receiver could have heard it.
//   - JamNoise counts (step, jammer) noise transmissions — the attacker's
//     activity, not its victims (a noise burst over silence still counts).
//   - CrashSkips and SleepSkips count transmit opportunities lost to a down
//     node: steps in which a node holding a program was not consulted
//     because it had crashed (respectively: was asleep). A node that is
//     both crashed and in its sleep window counts as crashed. Receive-side
//     deafness is not re-counted — the two simulators probe receivers over
//     different node subsets, so only the transmit side has a
//     schedule-independent event set.
//
//radiolint:mirror
type Counters struct {
	// Steps is the number of simulation steps executed.
	Steps int64 `json:"steps"`
	// Transmissions counts (node, step) transmit events.
	Transmissions int64 `json:"transmissions"`
	// Receptions counts successful single-transmitter deliveries.
	Receptions int64 `json:"receptions"`
	// Collisions counts (listener, step) events where two or more
	// in-transmitters (or one plus jam noise) clashed.
	Collisions int64 `json:"collisions"`
	// SilentSteps counts steps in which no node transmitted.
	SilentSteps int64 `json:"silent_steps"`
	// LinksDropped counts transmissions destroyed by link loss or churn.
	LinksDropped int64 `json:"links_dropped,omitempty"`
	// JamNoise counts per-step noise transmissions by jammer devices.
	JamNoise int64 `json:"jam_noise,omitempty"`
	// CrashSkips counts transmit opportunities lost to crashed nodes.
	CrashSkips int64 `json:"crash_skips,omitempty"`
	// SleepSkips counts transmit opportunities lost to sleeping nodes.
	SleepSkips int64 `json:"sleep_skips,omitempty"`
}

// Add accumulates d into c.
func (c *Counters) Add(d Counters) {
	c.Steps += d.Steps
	c.Transmissions += d.Transmissions
	c.Receptions += d.Receptions
	c.Collisions += d.Collisions
	c.SilentSteps += d.SilentSteps
	c.LinksDropped += d.LinksDropped
	c.JamNoise += d.JamNoise
	c.CrashSkips += d.CrashSkips
	c.SleepSkips += d.SleepSkips
}

// Diff returns c - prev fieldwise: the events recorded since prev was
// snapshotted from the same accumulating source.
func (c Counters) Diff(prev Counters) Counters {
	return Counters{
		Steps:         c.Steps - prev.Steps,
		Transmissions: c.Transmissions - prev.Transmissions,
		Receptions:    c.Receptions - prev.Receptions,
		Collisions:    c.Collisions - prev.Collisions,
		SilentSteps:   c.SilentSteps - prev.SilentSteps,
		LinksDropped:  c.LinksDropped - prev.LinksDropped,
		JamNoise:      c.JamNoise - prev.JamNoise,
		CrashSkips:    c.CrashSkips - prev.CrashSkips,
		SleepSkips:    c.SleepSkips - prev.SleepSkips,
	}
}

// IsZero reports whether no event was recorded.
func (c Counters) IsZero() bool { return c == Counters{} }

// FaultEvents returns the total number of fault-injected events: the
// quick answer to "did faults actually fire in this run".
func (c Counters) FaultEvents() int64 {
	return c.LinksDropped + c.JamNoise + c.CrashSkips + c.SleepSkips
}
