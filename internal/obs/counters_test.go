package obs

import "testing"

// full returns a Counters with every field distinct and non-zero, so a
// field dropped from Add or Diff shows up as a mismatch.
func full(base int64) Counters {
	return Counters{
		Steps:         base + 1,
		Transmissions: base + 2,
		Receptions:    base + 3,
		Collisions:    base + 4,
		SilentSteps:   base + 5,
		LinksDropped:  base + 6,
		JamNoise:      base + 7,
		CrashSkips:    base + 8,
		SleepSkips:    base + 9,
	}
}

func TestCountersAddDiffRoundTrip(t *testing.T) {
	a, b := full(10), full(100)
	sum := a
	sum.Add(b)
	if got := sum.Diff(a); got != b {
		t.Fatalf("Diff(Add(a,b), a) = %+v, want %+v", got, b)
	}
	if got := sum.Diff(b); got != a {
		t.Fatalf("Diff(Add(a,b), b) = %+v, want %+v", got, a)
	}
}

func TestCountersAddCoversEveryField(t *testing.T) {
	var c Counters
	c.Add(full(0))
	if c != full(0) {
		t.Fatalf("Add into zero = %+v, want %+v", c, full(0))
	}
}

func TestCountersIsZero(t *testing.T) {
	var c Counters
	if !c.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	c.Steps = 1
	if c.IsZero() {
		t.Fatal("non-zero Counters reported IsZero")
	}
}

func TestCountersFaultEvents(t *testing.T) {
	c := Counters{LinksDropped: 1, JamNoise: 2, CrashSkips: 4, SleepSkips: 8, Steps: 100}
	if got := c.FaultEvents(); got != 15 {
		t.Fatalf("FaultEvents = %d, want 15", got)
	}
	if got := (Counters{Steps: 3, Transmissions: 9}).FaultEvents(); got != 0 {
		t.Fatalf("fault-free FaultEvents = %d, want 0", got)
	}
}
