package obs

import "sync"

// Recorder aggregates engine counters and per-trial wall timings from
// concurrent trial workers. All methods are safe for concurrent use; the
// counter totals are deterministic for a fixed workload because integer
// addition commutes — the worker schedule can change only the timing
// histogram, never a counter.
//
// The zero value is ready to use. Default is the process-wide recorder the
// experiment engine feeds; cmd/radiobench drains it per experiment with
// Take.
type Recorder struct {
	mu     sync.Mutex
	c      Counters
	trials Hist
}

// Default is the process-wide recorder: every simulation the experiment
// engine runs adds its engine counters here, and every metered pool trial
// adds its wall time.
var Default = &Recorder{}

// AddCounters accumulates one run's engine counters.
func (r *Recorder) AddCounters(c Counters) {
	if c.IsZero() {
		return
	}
	r.mu.Lock()
	r.c.Add(c)
	r.mu.Unlock()
}

// ObserveTrials records per-trial wall durations (nanoseconds), in the
// index order the caller assembled them. A single lock acquisition covers
// the whole batch, so metering a thousand-trial sweep costs one mutex
// round-trip, not a thousand.
func (r *Recorder) ObserveTrials(ns []int64) {
	if len(ns) == 0 {
		return
	}
	r.mu.Lock()
	for _, d := range ns {
		r.trials.Observe(d)
	}
	r.mu.Unlock()
}

// Snapshot returns the current totals without resetting them.
func (r *Recorder) Snapshot() (Counters, Hist) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c, r.trials
}

// Take returns the totals accumulated since the previous Take (or since
// process start) and resets the recorder: the per-experiment drain
// cmd/radiobench uses between sequential experiments.
func (r *Recorder) Take() (Counters, Hist) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, h := r.c, r.trials
	r.c = Counters{}
	r.trials = Hist{}
	return c, h
}
