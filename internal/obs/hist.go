package obs

import "math/bits"

// HistBuckets is the number of log2 duration buckets: bucket i holds
// observations with 2^i <= ns < 2^(i+1) (bucket 0 also absorbs 0 and
// negative inputs, the last bucket absorbs everything longer). 2^41 ns is
// about 37 minutes — far beyond any single trial this repository runs.
const HistBuckets = 42

// Hist is a log2-bucketed duration histogram with summary accumulators.
// The zero value is empty and ready to use. All fields are plain integers,
// so merging two histograms is commutative and associative: aggregated
// totals are identical for every worker count and completion order, the
// same schedule-independence contract the experiment pool gives counters.
type Hist struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// TotalNS is the sum of all observed durations.
	TotalNS int64 `json:"total_ns"`
	// MinNS and MaxNS are the extreme observations (Min is meaningless
	// while Count == 0).
	MinNS int64 `json:"min_ns"`
	MaxNS int64 `json:"max_ns"`
	// Buckets[i] counts observations with 2^i <= ns < 2^(i+1).
	Buckets [HistBuckets]int64 `json:"buckets"`
}

// bucketOf maps a duration to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one duration in nanoseconds.
func (h *Hist) Observe(ns int64) {
	if h.Count == 0 || ns < h.MinNS {
		h.MinNS = ns
	}
	if ns > h.MaxNS {
		h.MaxNS = ns
	}
	h.Count++
	h.TotalNS += ns
	h.Buckets[bucketOf(ns)]++
}

// Merge accumulates o into h.
func (h *Hist) Merge(o Hist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinNS < h.MinNS {
		h.MinNS = o.MinNS
	}
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
	h.Count += o.Count
	h.TotalNS += o.TotalNS
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// MeanNS returns the mean observed duration (0 when empty).
func (h Hist) MeanNS() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.TotalNS / h.Count
}

// ApproxQuantileNS returns an upper bound for the q-quantile (q in [0, 1])
// from the bucket boundaries: the exclusive top of the bucket holding the
// q-th observation, clamped to MaxNS. Good enough for "p95 trial time"
// reporting without retaining samples.
func (h Hist) ApproxQuantileNS(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count-1))
	seen := int64(0)
	for i, n := range h.Buckets {
		seen += n
		if seen > rank {
			top := int64(1) << uint(i+1)
			if top > h.MaxNS {
				top = h.MaxNS
			}
			return top
		}
	}
	return h.MaxNS
}
