package obs

import (
	"fmt"
	"math/bits"
)

// HistBuckets is the number of log2 duration buckets: bucket i holds
// observations with 2^i <= ns < 2^(i+1) (bucket 0 also absorbs 0 and
// negative inputs, the last bucket absorbs everything longer). 2^41 ns is
// about 37 minutes — far beyond any single trial this repository runs.
const HistBuckets = 42

// Hist is a log2-bucketed duration histogram with summary accumulators.
// The zero value is empty and ready to use. All fields are plain integers,
// so merging two histograms is commutative and associative: aggregated
// totals are identical for every worker count and completion order, the
// same schedule-independence contract the experiment pool gives counters.
type Hist struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// TotalNS is the sum of all observed durations.
	TotalNS int64 `json:"total_ns"`
	// MinNS and MaxNS are the extreme observations (Min is meaningless
	// while Count == 0).
	MinNS int64 `json:"min_ns"`
	MaxNS int64 `json:"max_ns"`
	// Buckets[i] counts observations with 2^i <= ns < 2^(i+1).
	Buckets [HistBuckets]int64 `json:"buckets"`
}

// bucketOf maps a duration to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one duration in nanoseconds.
func (h *Hist) Observe(ns int64) {
	if h.Count == 0 || ns < h.MinNS {
		h.MinNS = ns
	}
	if ns > h.MaxNS {
		h.MaxNS = ns
	}
	h.Count++
	h.TotalNS += ns
	h.Buckets[bucketOf(ns)]++
}

// Validate checks the histogram's internal consistency: non-negative
// counts, bucket totals that sum to Count, and ordered extremes when
// non-empty. A histogram decoded from an external document (a shard's
// BENCH_*.json, say) can violate any of these through truncation or
// corruption, and merging such a histogram would silently poison every
// downstream quantile — hence MergeChecked.
func (h Hist) Validate() error {
	if h.Count < 0 {
		return fmt.Errorf("obs: hist: negative count %d", h.Count)
	}
	var sum int64
	for i, n := range h.Buckets {
		if n < 0 {
			return fmt.Errorf("obs: hist: negative bucket %d (%d)", i, n)
		}
		sum += n
	}
	if sum != h.Count {
		return fmt.Errorf("obs: hist: buckets sum to %d but count is %d", sum, h.Count)
	}
	if h.Count > 0 && h.MinNS > h.MaxNS {
		return fmt.Errorf("obs: hist: min %d > max %d", h.MinNS, h.MaxNS)
	}
	return nil
}

// MergeChecked is Merge for histograms of external provenance: both sides
// are validated first and h is left untouched on error, so one malformed
// shard document cannot corrupt an aggregation that spans many.
func (h *Hist) MergeChecked(o Hist) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if err := h.Validate(); err != nil {
		return err
	}
	h.Merge(o)
	return nil
}

// Merge accumulates o into h.
func (h *Hist) Merge(o Hist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinNS < h.MinNS {
		h.MinNS = o.MinNS
	}
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
	h.Count += o.Count
	h.TotalNS += o.TotalNS
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// MeanNS returns the mean observed duration (0 when empty).
func (h Hist) MeanNS() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.TotalNS / h.Count
}

// ApproxQuantileNS returns an upper bound for the q-quantile (q in [0, 1])
// from the bucket boundaries: the exclusive top of the bucket holding the
// q-th observation, clamped to MaxNS. Good enough for "p95 trial time"
// reporting without retaining samples. Out-of-range q clamps; an empty
// histogram or a NaN q returns 0 (NaN compares false against both clamp
// bounds, so without its own check it would reach the rank computation and
// produce a garbage bucket index).
func (h Hist) ApproxQuantileNS(q float64) int64 {
	if h.Count == 0 || q != q {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count-1))
	seen := int64(0)
	for i, n := range h.Buckets {
		seen += n
		if seen > rank {
			top := int64(1) << uint(i+1)
			if top > h.MaxNS {
				top = h.MaxNS
			}
			return top
		}
	}
	return h.MaxNS
}
