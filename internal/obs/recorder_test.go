package obs

import (
	"sync"
	"testing"
)

func TestRecorderAccumulateSnapshotTake(t *testing.T) {
	var r Recorder
	r.AddCounters(Counters{Steps: 2, Transmissions: 5})
	r.AddCounters(Counters{Steps: 3, Collisions: 1})
	r.AddCounters(Counters{}) // zero adds are dropped without locking
	r.ObserveTrials([]int64{100, 200})
	r.ObserveTrials(nil)

	c, h := r.Snapshot()
	if c.Steps != 5 || c.Transmissions != 5 || c.Collisions != 1 {
		t.Fatalf("snapshot counters wrong: %+v", c)
	}
	if h.Count != 2 || h.TotalNS != 300 {
		t.Fatalf("snapshot hist wrong: %+v", h)
	}

	// Snapshot does not reset.
	c2, _ := r.Snapshot()
	if c2 != c {
		t.Fatalf("snapshot reset the recorder: %+v vs %+v", c2, c)
	}

	// Take drains and resets.
	tc, th := r.Take()
	if tc != c || th != h {
		t.Fatalf("take returned different totals than snapshot")
	}
	ec, eh := r.Take()
	if !ec.IsZero() || eh.Count != 0 {
		t.Fatalf("recorder not reset by Take: %+v %+v", ec, eh)
	}
}

// TestRecorderConcurrentTotals drives the recorder from many goroutines
// (run under -race by make race) and checks the totals are exact: the
// whole point of the design is that aggregation is schedule-independent.
func TestRecorderConcurrentTotals(t *testing.T) {
	var r Recorder
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.AddCounters(Counters{Steps: 1, Receptions: 2})
				r.ObserveTrials([]int64{int64(i + 1)})
			}
		}()
	}
	wg.Wait()
	c, h := r.Take()
	if c.Steps != workers*perWorker || c.Receptions != 2*workers*perWorker {
		t.Fatalf("concurrent counter totals wrong: %+v", c)
	}
	if h.Count != workers*perWorker || h.MinNS != 1 || h.MaxNS != perWorker {
		t.Fatalf("concurrent hist totals wrong: %+v", h)
	}
}

func TestDefaultRecorderExists(t *testing.T) {
	// Default is shared process state; exercise it non-destructively by
	// snapshotting (other tests must not depend on its contents).
	if Default == nil {
		t.Fatal("Default recorder is nil")
	}
	_, _ = Default.Snapshot()
}
