package adhocradio

import (
	"context"

	"adhocradio/internal/experiment"
	"adhocradio/internal/graph"
	"adhocradio/internal/radio"
)

// Typed errors. Callers discriminate failure modes with errors.Is and
// errors.As instead of matching message text; CONTRIBUTING.md makes this a
// rule for new public entry points.

// ErrBudgetExhausted is reported (wrapped) by Broadcast/BroadcastContext
// when the step budget (Options.MaxSteps, or the DefaultMaxSteps fallback)
// runs out before every node is informed. The partial Result accompanying
// the error is still meaningful: InformedAt, the counters and
// StepsSimulated describe the truncated run.
var ErrBudgetExhausted = radio.ErrStepLimit

// ErrUnknownExperiment is reported (wrapped) by RunExperiment and
// RunExperimentContext when the experiment ID is not registered.
var ErrUnknownExperiment = experiment.ErrUnknownExperiment

// ErrInvalidTopologySpec is reported (wrapped) by TopologySpec methods when
// a spec names an unknown kind or violates a generator's constraints.
var ErrInvalidTopologySpec = graph.ErrBadSpec

// ContractViolationError reports a breach of the simulator↔program calling
// contract observed by WithContractChecks; extract it with errors.As.
type ContractViolationError = radio.ContractViolationError

// TopologySpec is a canonical, serializable description of a generated
// topology: generator kind plus the parameters and seed that make
// construction deterministic. Build constructs the graph; Canonical returns
// the normalized cache key the radiosd compiled-graph cache is keyed by.
// Two specs with equal Canonical() keys build byte-identical graphs.
type TopologySpec = graph.Spec

// TopologyKinds lists every spec kind TopologySpec.Build understands.
func TopologyKinds() []string { return graph.Kinds() }

// BroadcastContext is Broadcast honoring ctx: cancellation is checked
// between simulation steps, so callers holding a request deadline (such as
// the radiosd service handlers) can abort an in-flight simulation. The
// returned error wraps ctx.Err(); a run that exhausts its step budget
// instead returns the partial Result alongside an error wrapping
// ErrBudgetExhausted.
func BroadcastContext(ctx context.Context, g *Graph, p Protocol, cfg Config, opt Options) (*Result, error) {
	return radio.RunContext(ctx, g, p, cfg, opt)
}
