// Package adhocradio is a faithful, executable reproduction of
//
//	Dariusz R. Kowalski, Andrzej Pelc:
//	"Broadcasting in undirected ad hoc radio networks", PODC 2003
//	(journal version: Distributed Computing 18:43–57, 2005).
//
// It provides the synchronous radio network model of the paper (collisions
// indistinguishable from silence, no collision detection, no spontaneous
// transmissions), every algorithm the paper introduces or depends on, and
// the Section 3 adversary that constructs hard networks for any
// deterministic algorithm:
//
//   - NewOptimalRandomized: the paper's main contribution, randomized
//     broadcast in expected time O(D log(n/D) + log²n) (Theorem 1), built
//     from universal sequences (Lemma 1) and the Stage procedure.
//   - NewDecay: the Bar-Yehuda–Goldreich–Itai baseline,
//     O(D log n + log²n).
//   - NewSelectAndSend: deterministic O(n log n) broadcast via a DFS token,
//     Echo and Binary-Selection (Theorem 3).
//   - NewRoundRobin and NewInterleaved: the O(nD) baseline and the
//     O(n·min(D, log n)) combination (Section 4.2).
//   - NewCompleteLayered: O(n + D log n) on complete layered networks,
//     refuting the claimed Ω(n log D) undirected lower bound (Theorem 4).
//   - BuildAdversarialNetwork: the Theorem 2 construction forcing
//     Ω(n log n / log(n/D)) on any deterministic algorithm.
//
// Topology generators (Path, Star, CompleteLayeredNetwork, RandomLayered,
// GNPConnected, RandomTree, Grid, UnitDisk, StarChain, ...) cover the
// workloads of the experiments E1–E17 described in DESIGN.md; RunExperiment
// regenerates any of their tables.
//
// A minimal session:
//
//	src := adhocradio.NewRand(1)
//	g, _ := adhocradio.RandomLayered(1024, 64, 0.3, src)
//	res, err := adhocradio.Broadcast(g, adhocradio.NewOptimalRandomized(),
//	    adhocradio.Config{Seed: 7}, adhocradio.Options{})
//	fmt.Println(res.BroadcastTime, err)
package adhocradio

import (
	"context"
	"io"

	"adhocradio/internal/core"
	"adhocradio/internal/decay"
	"adhocradio/internal/det"
	"adhocradio/internal/experiment"
	"adhocradio/internal/fault"
	"adhocradio/internal/graph"
	"adhocradio/internal/lowerbound"
	"adhocradio/internal/radio"
	"adhocradio/internal/rng"
	"adhocradio/internal/sequences"
	"adhocradio/internal/trace"
)

// Core model types, aliased from the internal packages so downstream users
// can hold and construct them through the public API.
type (
	// Graph is a radio network topology; node 0 is the broadcast source.
	Graph = graph.Graph
	// Config is the a-priori knowledge shared by all nodes (label bound R,
	// randomness seed).
	Config = radio.Config
	// Options controls a simulation run.
	Options = radio.Options
	// FaultPlan is a deterministic, composable fault-injection plan (link
	// loss, topology churn, jammers, crash and sleep-wake schedules);
	// attach one via Options.Fault. See internal/fault for the semantics.
	FaultPlan = fault.Plan
	// Result reports a completed broadcast simulation.
	Result = radio.Result
	// Message is a successful reception.
	Message = radio.Message
	// Protocol builds per-node programs.
	Protocol = radio.Protocol
	// NodeProgram is the state machine run at one node.
	NodeProgram = radio.NodeProgram
	// Runner is a reusable simulation engine: it owns all per-run scratch,
	// so a trial loop that reuses one allocates nothing in steady state.
	Runner = radio.Runner
	// CSR is a graph's compiled flat-array adjacency (see Graph.Compile).
	CSR = graph.CSR
	// DeterministicProtocol marks protocols the Section 3 adversary can
	// attack.
	DeterministicProtocol = radio.DeterministicProtocol
	// Rand is the deterministic random source used across the library.
	Rand = rng.Source
	// RandomizedParams configures the optimal randomized algorithm.
	RandomizedParams = core.Params
	// AdversaryParams configures the Theorem 2 construction.
	AdversaryParams = lowerbound.Params
	// AdversarialNetwork is the Theorem 2 construction's output.
	AdversarialNetwork = lowerbound.Construction
	// UniversalSequence is a Lemma 1 universal probability sequence.
	UniversalSequence = sequences.Universal
	// ExperimentConfig scopes a reproduction experiment run.
	ExperimentConfig = experiment.Config
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiment.Table
	// Collector accumulates per-step statistics from a simulation.
	Collector = trace.Collector
	// Progress describes how a broadcast advanced through the BFS layers.
	Progress = trace.Progress
	// Energy summarizes per-node transmission counts.
	Energy = trace.Energy
)

// NewCollector returns a fresh trace collector; pass its Hook as
// Options.Trace.
func NewCollector() *Collector { return &trace.Collector{} }

// AnalyzeProgress derives layer-completion times and the informed-fraction
// timeline from a finished run.
func AnalyzeProgress(g *Graph, res *Result) (*Progress, error) {
	return trace.AnalyzeProgress(g, res)
}

// LayerHeatmap renders a per-layer/time heatmap of when each BFS layer was
// informed (one row per layer).
func LayerHeatmap(p *Progress, layers [][]int, informedAt []int, width int) string {
	return trace.LayerHeatmap(p, layers, informedAt, width)
}

// NewRand returns a seeded deterministic random source.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Broadcast simulates protocol p on network g until every node holds the
// source message (or the step budget runs out, reported via
// ErrBudgetExhausted). It is BroadcastContext with a background context;
// use the context variant to cancel in-flight simulations.
func Broadcast(g *Graph, p Protocol, cfg Config, opt Options) (*Result, error) {
	return BroadcastContext(context.Background(), g, p, cfg, opt)
}

// NewRunner returns a reusable simulation engine. One Runner run at a time;
// hold one per goroutine (or pool them) for allocation-free trial loops:
//
//	r := adhocradio.NewRunner()
//	var res adhocradio.Result
//	for seed := uint64(1); seed <= trials; seed++ {
//	    if err := r.RunInto(&res, g, p, adhocradio.Config{Seed: seed}, opt); err != nil { ... }
//	    // consume res before the next RunInto overwrites it
//	}
func NewRunner() *Runner { return radio.NewRunner() }

// DefaultMaxSteps returns the default simulation budget for n nodes.
func DefaultMaxSteps(n int) int { return radio.DefaultMaxSteps(n) }

// WithContractChecks wraps a protocol so every node program asserts the
// simulator↔program calling contract at run time; violations go to report.
// Protocol authors run their implementations through this wrapper in tests.
func WithContractChecks(p Protocol, report func(error)) Protocol {
	return radio.WithContractChecks(p, report)
}

// Protocols.

// NewOptimalRandomized returns Algorithm Optimal-Randomized-Broadcasting
// (Section 2) with simulation-scale constants. Expected broadcast time
// O(D log(n/D) + log²n).
func NewOptimalRandomized() Protocol { return core.New() }

// NewOptimalRandomizedWithParams returns the Section 2 algorithm with
// explicit constants (use core.PaperStageFactor and
// core.PaperFallbackFactor via RandomizedParams for the paper's exact
// published constants).
func NewOptimalRandomizedWithParams(p RandomizedParams) Protocol {
	return core.NewWithParams(p)
}

// NewDecay returns the Bar-Yehuda–Goldreich–Itai randomized baseline.
func NewDecay() Protocol { return decay.New() }

// NewRoundRobin returns the deterministic O(nD) round-robin baseline.
func NewRoundRobin() DeterministicProtocol { return det.RoundRobin{} }

// NewSelectAndSend returns Algorithm Select-and-Send (Section 4.2),
// deterministic O(n log n).
func NewSelectAndSend() DeterministicProtocol { return det.SelectAndSend{} }

// NewCompleteLayered returns Algorithm Complete-Layered (Section 4.3),
// deterministic O(n + D log n) on complete layered networks.
func NewCompleteLayered() DeterministicProtocol { return det.CompleteLayered{} }

// NewInterleaved alternates two protocols on odd/even steps (Section 4.2);
// interleaving round-robin with Select-and-Send yields O(n·min(D, log n)).
func NewInterleaved(a, b Protocol) Protocol { return det.NewInterleaved(a, b) }

// NewDFSNeighborhood returns the linear-time DFS broadcast of the stronger
// knowledge model where nodes know their neighbors' labels (Section 1.1,
// following [2]); it completes within 2n steps on any network.
func NewDFSNeighborhood() DeterministicProtocol { return det.DFSNeighborhood{} }

// NewSpontaneousLinear returns the O(n) deterministic broadcast of the
// spontaneous-transmission model (Section 1.1, following [7]): one label
// announcement per step discovers every neighborhood, then a DFS token
// finishes within 2n further steps.
func NewSpontaneousLinear() DeterministicProtocol { return det.SpontaneousLinear{} }

// Topology generators. All label the source 0; all returned graphs are
// broadcastable.

// Path returns the n-node path.
func Path(n int) *Graph { return graph.Path(n) }

// Star returns the n-node star with the source at the center.
func Star(n int) *Graph { return graph.Star(n) }

// Clique returns the complete graph on n nodes.
func Clique(n int) *Graph { return graph.Clique(n) }

// Grid returns the rows×cols grid with the source at a corner.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// CompleteLayeredNetwork returns the complete layered network with the
// given layer sizes (layer 0 is the source alone).
func CompleteLayeredNetwork(sizes []int) (*Graph, error) { return graph.CompleteLayered(sizes) }

// UniformCompleteLayered returns an n-node complete layered network of
// radius d with near-equal layers.
func UniformCompleteLayered(n, d int) (*Graph, error) { return graph.UniformCompleteLayered(n, d) }

// RandomLayered returns a connected layered network with n nodes, radius
// exactly d, and extra edge density p.
func RandomLayered(n, d int, p float64, src *Rand) (*Graph, error) {
	return graph.RandomLayered(n, d, p, src)
}

// DirectedLayered returns a directed layered network (Section 2 setting).
func DirectedLayered(n, d int, p float64, src *Rand) (*Graph, error) {
	return graph.DirectedLayered(n, d, p, src)
}

// GNPConnected returns a connected Erdős–Rényi-style graph.
func GNPConnected(n int, p float64, src *Rand) *Graph { return graph.GNPConnected(n, p, src) }

// RandomTree returns a uniformly random labelled tree.
func RandomTree(n int, src *Rand) *Graph { return graph.RandomTree(n, src) }

// UnitDisk returns an ad hoc unit-disk deployment in the unit square,
// patched to be connected.
func UnitDisk(n int, radius float64, src *Rand) *Graph { return graph.UnitDisk(n, radius, src) }

// StarChain returns the wide-fan-in chain used by the universal-sequence
// ablation.
func StarChain(d, w int) *Graph { return graph.StarChain(d, w) }

// Caterpillar returns a spine of length d with legs leaves per spine node.
func Caterpillar(d, legs int) *Graph { return graph.Caterpillar(d, legs) }

// Cycle returns the n-node cycle (n >= 3).
func Cycle(n int) (*Graph, error) { return graph.Cycle(n) }

// Wheel returns the n-node wheel with the source at the hub (n >= 4).
func Wheel(n int) (*Graph, error) { return graph.Wheel(n) }

// CompleteBinaryTree returns the complete binary tree with the given number
// of levels (root = source).
func CompleteBinaryTree(levels int) (*Graph, error) { return graph.CompleteBinaryTree(levels) }

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) (*Graph, error) { return graph.Hypercube(dim) }

// Barbell returns two k-cliques joined by a path of bridge edges.
func Barbell(k, bridge int) (*Graph, error) { return graph.Barbell(k, bridge) }

// RandomRegular returns a connected random d-regular graph (n·d even).
func RandomRegular(n, d int, src *Rand) (*Graph, error) { return graph.RandomRegular(n, d, src) }

// WorstLabelCompleteLayered returns a complete layered network whose first
// layer carries the highest labels, making label-scanning bootstraps pay
// their Θ(n) worst case.
func WorstLabelCompleteLayered(n, d int) (*Graph, error) {
	return graph.WorstLabelCompleteLayered(n, d)
}

// The Theorem 2 adversary.

// BuildAdversarialNetwork runs the Section 3 construction against a
// deterministic protocol, returning a network on which it needs
// Ω(n log n / log(n/D)) steps.
func BuildAdversarialNetwork(p DeterministicProtocol, params AdversaryParams) (*AdversarialNetwork, error) {
	return lowerbound.Build(p, params)
}

// VerifyAdversarialNetwork replays the protocol on the constructed network
// and checks the executable Lemma 9 (abstract histories = real histories).
func VerifyAdversarialNetwork(p DeterministicProtocol, c *AdversarialNetwork, maxSteps int) (*Result, error) {
	return lowerbound.VerifyRealRun(p, c, maxSteps)
}

// DirectedAdversaryParams configures the directed layered adversary.
type DirectedAdversaryParams = lowerbound.DirectedParams

// DirectedAdversarialNetwork is the output of the directed layered game.
type DirectedAdversarialNetwork = lowerbound.DirectedConstruction

// BuildDirectedAdversarialNetwork plays the [10]-style layer-composition
// game against an oblivious or forward-only deterministic protocol,
// producing a directed complete layered network on which it is slow (the
// Section 4.3 contrast: the directed hardness is real, while undirected
// feedback algorithms escape it).
func BuildDirectedAdversarialNetwork(p DeterministicProtocol, params DirectedAdversaryParams) (*DirectedAdversarialNetwork, error) {
	return lowerbound.BuildDirectedLayered(p, params)
}

// VerifyDirectedAdversarialNetwork replays the protocol on the directed
// construction and checks its informed-times against reality.
func VerifyDirectedAdversarialNetwork(p DeterministicProtocol, c *DirectedAdversarialNetwork, maxSteps int) (*Result, error) {
	return lowerbound.VerifyDirectedRealRun(p, c, maxSteps)
}

// NewObliviousDecay returns the seeded deterministic Decay-style oblivious
// schedule: transmission is a fixed hash of (label, step). It needs no
// feedback, so it broadcasts on directed networks too.
func NewObliviousDecay(seed uint64) DeterministicProtocol { return det.ObliviousDecay{Seed: seed} }

// Universal sequences (Lemma 1).

// BuildUniversalSequence constructs the Lemma 1 sequence for label bound r
// and radius d (powers of two), exactly within the lemma's validity window.
func BuildUniversalSequence(r, d int) (*UniversalSequence, error) { return sequences.Build(r, d) }

// BuildUniversalSequenceRelaxed clamps out-of-window levels so small-scale
// parameters still yield a verified sequence.
func BuildUniversalSequenceRelaxed(r, d int) (*UniversalSequence, error) {
	return sequences.BuildRelaxed(r, d)
}

// Experiments E1–E17.

// Experiments lists the registered reproduction experiments.
func Experiments() []experiment.Experiment { return experiment.Registry() }

// RunExperiment runs one experiment by ID ("E1".."E17") and renders its
// table to w.
func RunExperiment(id string, cfg ExperimentConfig, w io.Writer) (*ExperimentTable, error) {
	return RunExperimentContext(context.Background(), id, cfg, w)
}

// RunExperimentContext is RunExperiment with cancellation: a cancelled ctx
// stops the run between measurement points. Set cfg.Parallel to shard
// independent points and trials across workers — the engine derives every
// random stream from (cfg.Seed, point/trial index), so the table is
// bit-identical for every worker count.
func RunExperimentContext(ctx context.Context, id string, cfg ExperimentConfig, w io.Writer) (*ExperimentTable, error) {
	e, err := experiment.ByID(id)
	if err != nil {
		return nil, err
	}
	tab, err := e.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return tab, nil
}
