module adhocradio

go 1.22
