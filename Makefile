# The repository's verification gate. `make check` is exactly what CI runs
# (.github/workflows/ci.yml), so a green local check means a green build.

GO ?= go

# Packages with concurrency-bearing code or parallel test harnesses; they
# run under the race detector on every check. The root package carries the
# soak tests, which -short skips; `make race-full` runs them raced too.
RACE_PKGS := ./internal/radio/... ./internal/experiment/... .

# Where `make bench-smoke` writes its BENCH_*.json record; CI uploads the
# same directory as a build artifact.
BENCH_DIR ?= bench-out

.PHONY: check build test vet radiolint race race-full fmt-check bench-smoke

check: build vet fmt-check radiolint test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

radiolint:
	$(GO) run ./cmd/radiolint ./...

race:
	$(GO) test -race -short $(RACE_PKGS)

race-full:
	$(GO) test -race $(RACE_PKGS)

# A quick-scale end-to-end run of the whole experiment registry: parallel
# across all cores, shape checks enforced (-verify exits non-zero on a
# qualitative-claim regression), machine-readable record left in BENCH_DIR.
bench-smoke:
	$(GO) run ./cmd/radiobench -quick -parallel 0 -verify -json $(BENCH_DIR)

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
