# The repository's verification gate. `make check` is exactly what CI runs
# (.github/workflows/ci.yml), so a green local check means a green build.

GO ?= go

# Packages with concurrency-bearing code or parallel test harnesses; they
# run under the race detector on every check. The root package carries the
# soak tests, which -short skips; `make race-full` runs them raced too.
# internal/analysis is here for its parallel per-package scheduler and the
# shared cross-package fact store.
RACE_PKGS := ./internal/radio/... ./internal/experiment/... ./internal/graph/... \
	./internal/fault/... ./internal/analysis/... ./internal/service/... .

# Where `make bench-smoke` writes its BENCH_*.json record; CI uploads the
# same directory as a build artifact.
BENCH_DIR ?= bench-out

# Simulator micro-benchmark comparison: `make bench-compare` reruns the
# internal/radio benchmarks and diffs them against the committed baseline
# with the stdlib-only delta printer (cmd/benchdelta — no benchstat dep).
# Refresh the baseline with `make bench-save` after a deliberate perf change
# and commit the new file alongside bench/BENCH_simcore.json.
# BENCHDELTA_FLAGS turns the report into a gate: CI's bench-regression
# workflow passes "-fail-over 10 -metric ns/step" so a >10% hot-loop
# slowdown fails the job.
BENCH_BASELINE ?= bench/simcore-baseline.txt
BENCH_COUNT ?= 5
BENCHDELTA_FLAGS ?=

# Coverage profile and the per-package floors CI enforces (cmd/covercheck).
# internal/obs is the observability layer every engine counter flows
# through; it stays thoroughly tested or the ledger cannot be trusted.
# internal/bitset and internal/graph carry the bit-parallel tally kernel's
# word ops and the cached bitmap adjacency it reads — a silently wrong bit
# there corrupts every dense trial, so both hold the same floor.
COVER_PROFILE ?= cover.out
# internal/experiment/campaign holds the crash-safety layer: an untested
# checkpoint writer is exactly the kind of code that corrupts a 10-hour
# campaign on the first real crash, so it holds the same floor.
# internal/service is the radiosd serving layer: admission control, the
# compiled-graph cache, and graceful drain are all concurrency edges whose
# failure modes (dropped jobs, poisoned cache, nondeterministic responses)
# only tests catch, so it holds the same floor.
COVER_FLOORS ?= adhocradio/internal/obs=85 adhocradio/internal/bitset=85 \
	adhocradio/internal/graph=85 adhocradio/internal/experiment/campaign=85 \
	adhocradio/internal/service=85

# Where `make campaign-smoke` stages its sharded/killed/resumed runs.
CAMPAIGN_DIR ?= campaign-out

.PHONY: check build test vet radiolint lint-baseline race race-full fmt-check \
	bench-smoke bench-compare bench-save bench-kernel fuzz-smoke cover \
	campaign-smoke service-smoke apisurface

check: build vet fmt-check radiolint test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

radiolint:
	$(GO) run ./cmd/radiolint ./...

# Regenerate the known-findings ledger (lint/baseline.json) from the
# current tree. Never edit the file by hand; run this, eyeball the diff,
# and justify any growth in review like you would a //radiolint:ignore.
lint-baseline:
	$(GO) run ./cmd/radiolint -write-baseline ./...

race:
	$(GO) test -race -short $(RACE_PKGS)

race-full:
	$(GO) test -race $(RACE_PKGS)

# A quick-scale end-to-end run of the whole experiment registry: parallel
# across all cores, shape checks enforced (-verify exits non-zero on a
# qualitative-claim regression), machine-readable record left in BENCH_DIR.
#
# The benchmark capture deliberately avoids `cmd | tee file`: in POSIX sh a
# pipeline's status is the LAST command's, so tee used to swallow go test
# failures and the targets went green on broken benchmarks. Redirect first,
# then cat — the file is still captured for the CI artifact, failures still
# print their output, and the exit status is go test's.
bench-smoke:
	@mkdir -p $(BENCH_DIR)
	$(GO) run ./cmd/radiobench -quick -parallel 0 -verify -json $(BENCH_DIR)
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/radio/... \
		> $(BENCH_DIR)/microbench-smoke.txt 2>&1 \
		|| { cat $(BENCH_DIR)/microbench-smoke.txt; exit 1; }
	@cat $(BENCH_DIR)/microbench-smoke.txt

bench-compare:
	@mkdir -p $(BENCH_DIR)
	$(GO) test -run=NONE -bench=. -count=$(BENCH_COUNT) ./internal/radio/ \
		> $(BENCH_DIR)/simcore-current.txt 2>&1 \
		|| { cat $(BENCH_DIR)/simcore-current.txt; exit 1; }
	@cat $(BENCH_DIR)/simcore-current.txt
	$(GO) run ./cmd/benchdelta $(BENCHDELTA_FLAGS) $(BENCH_BASELINE) $(BENCH_DIR)/simcore-current.txt

# The committed baseline stays stderr-free (stderr goes to the console), so
# a stray build warning can never pollute the comparison reference.
bench-save:
	@mkdir -p $(dir $(BENCH_BASELINE))
	$(GO) test -run=NONE -bench=. -count=$(BENCH_COUNT) ./internal/radio/ \
		> $(BENCH_BASELINE) \
		|| { cat $(BENCH_BASELINE); exit 1; }
	@cat $(BENCH_BASELINE)

# The isolated tally-kernel pair plus the degree sweep behind the
# bitsetArcFactor dispatch threshold (engine.go): run this when touching the
# tally paths or retuning the crossover, and update the DESIGN.md table from
# its output. -benchmem keeps the 0 allocs/op claim honest.
bench-kernel:
	$(GO) test -run=NONE -bench='BenchmarkTally' -benchmem ./internal/radio/

# Whole-repo coverage with per-package floors. The profile is left behind
# for the CI artifact; covercheck exits non-zero when a floor is missed.
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	$(GO) run ./cmd/covercheck -profile $(COVER_PROFILE) $(COVER_FLOORS)

# End-to-end gate for the crash-safe sharded campaign layer: an unsharded
# reference run, a 2-shard campaign whose first shard is deliberately killed
# after two checkpointed points (RADIOBENCH_CRASH_AFTER) and then resumed,
# and a benchmerge of the shard documents verified byte-identical against
# the reference. Binaries are built first instead of `go run` because the
# injected crash's exit status must reach the shell un-laundered.
campaign-smoke:
	@rm -rf $(CAMPAIGN_DIR) && mkdir -p $(CAMPAIGN_DIR)/ref $(CAMPAIGN_DIR)/shards
	$(GO) build -o $(CAMPAIGN_DIR)/radiobench ./cmd/radiobench
	$(GO) build -o $(CAMPAIGN_DIR)/benchmerge ./cmd/benchmerge
	$(CAMPAIGN_DIR)/radiobench -quick -only E2,E5 -seed 3 -runid smoke \
		-json $(CAMPAIGN_DIR)/ref
	@echo "campaign-smoke: shard 1/2 will be killed after 2 checkpointed points"
	@RADIOBENCH_CRASH_AFTER=2 $(CAMPAIGN_DIR)/radiobench -quick -only E2,E5 \
		-seed 3 -runid smoke -shard 1/2 -json $(CAMPAIGN_DIR)/shards; \
		st=$$?; if [ $$st -eq 0 ]; then \
			echo "campaign-smoke: crash injection did not fire"; exit 1; \
		fi; echo "campaign-smoke: shard 1/2 crashed as injected (exit $$st)"
	$(CAMPAIGN_DIR)/radiobench -quick -only E2,E5 -seed 3 \
		-resume smoke_shard1of2 -json $(CAMPAIGN_DIR)/shards
	$(CAMPAIGN_DIR)/radiobench -quick -only E2,E5 -seed 3 -runid smoke \
		-shard 2/2 -json $(CAMPAIGN_DIR)/shards
	$(CAMPAIGN_DIR)/benchmerge -o $(CAMPAIGN_DIR)/BENCH_smoke_merged.json \
		-against $(CAMPAIGN_DIR)/ref/BENCH_smoke.json \
		$(CAMPAIGN_DIR)/shards/BENCH_smoke_shard1of2.json \
		$(CAMPAIGN_DIR)/shards/BENCH_smoke_shard2of2.json

# A short differential-fuzzing pass over the optimized engine vs the naive
# reference, including fault-injected inputs. The committed corpus under
# internal/radio/testdata/fuzz/ always replays as part of `make test`; this
# target additionally mutates for a few seconds to probe fresh inputs. The
# second run mutates radiolint's suppression parser, which faces arbitrary
# source text and must never mis-anchor a suppression or crash.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzRunVsReference -fuzztime=10s ./internal/radio
	$(GO) test -run=NONE -fuzz=FuzzParseSuppressions -fuzztime=10s ./internal/analysis

# End-to-end gate for the radiosd serving layer, run under the race
# detector: a real daemon child process, concurrent clients mixing cached
# and uncached topologies, byte-identical responses for identical requests,
# a /metrics scrape, and a SIGTERM drain that leaves zero accepted jobs
# behind (the child exits non-zero otherwise).
service-smoke:
	$(GO) test -race -v -run TestServiceSmoke ./cmd/radiosd/

# Regenerate the exported-API golden (lint/apisurface.txt) after a
# deliberate public API change; TestAPISurfaceGolden (part of `make test`)
# fails until the committed golden matches the source again. Review the
# diff like you would any API change: CONTRIBUTING.md requires new entry
# points to take a context or offer a *Context variant.
apisurface:
	$(GO) test -run TestAPISurfaceGolden . -args -update-apisurface

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
