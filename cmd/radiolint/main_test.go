package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocradio/internal/analysis"
)

// writeTree materializes a throwaway module so the test can seed the exact
// regressions the gate exists to stop.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runGate(t *testing.T, root string) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := analysis.Load(root, "")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// runCLI drives the real entry point the way main does, capturing streams
// and the exit code.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestGateCatchesSeededRegressions seeds a math/rand import and a map range
// into an internal/core package and asserts the full analyzer battery
// fails, which is the acceptance bar for the whole gate.
func TestGateCatchesSeededRegressions(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/fake\n\ngo 1.22\n",
		"internal/core/bad.go": `package core

import "math/rand"

func Order(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Draw() int { return rand.Int() }
`,
	})
	diags := runGate(t, root)
	var passes []string
	for _, d := range diags {
		passes = append(passes, d.Analyzer)
	}
	joined := strings.Join(passes, ",")
	if !strings.Contains(joined, "norandtime") {
		t.Errorf("seeded math/rand import not caught; findings: %v", diags)
	}
	if !strings.Contains(joined, "detmaprange") {
		t.Errorf("seeded map range not caught; findings: %v", diags)
	}
}

// TestGateCleanTree checks that an idiomatic tree passes with no findings.
func TestGateCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/fake\n\ngo 1.22\n",
		"internal/core/good.go": `package core

import "sort"

func Order(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//radiolint:ignore detmaprange keys are sorted before return
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
`,
	})
	if diags := runGate(t, root); len(diags) != 0 {
		t.Fatalf("clean tree flagged: %v", diags)
	}
}

// seededV2Tree builds a module that trips each of the four v2 passes
// exactly where expected: an allocation in a hotpath function, an
// unmirrored fault knob, an unreset scratch field, and a goroutine in the
// simulator core.
func seededV2Tree(t *testing.T) string {
	t.Helper()
	return writeTree(t, map[string]string{
		"go.mod": "module example.com/fake\n\ngo 1.22\n",
		"internal/radio/engine.go": `package radio

//radiolint:mirror
type Plan struct {
	Loss float64
}

//radiolint:hotpath
func Step(p *Plan) []int {
	go spin()
	return make([]int, 8)
}

func spin() {}

//radiolint:scratch-owner
type runner struct {
	hits []int
	seen map[int]bool
}

func (r *runner) rebuild() {
	//radiolint:scratch-rebuild
	r.hits = nil
	_ = r.seen
}

func use(p *Plan) float64 { return p.Loss }
`,
		"internal/radio/reference.go": `package radio

func RunReference(p *Plan) float64 { return 0 }
`,
	})
}

// TestV2PassesSeededRegressions asserts every new pass fires on its
// seeded defect through the registered battery.
func TestV2PassesSeededRegressions(t *testing.T) {
	diags := runGate(t, seededV2Tree(t))
	got := map[string]bool{}
	for _, d := range diags {
		got[d.Analyzer] = true
	}
	for _, want := range []string{"hotalloc", "mirrorref", "scratchreset", "nogoroutine"} {
		if !got[want] {
			t.Errorf("seeded %s defect not caught; findings: %v", want, diags)
		}
	}
}

func TestExitCodeCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":            "module example.com/fake\n\ngo 1.22\n",
		"internal/ok/ok.go": "package ok\n\nfunc Two() int { return 2 }\n",
	})
	code, stdout, stderr := runCLI(t, root+"/...")
	if code != 0 {
		t.Fatalf("clean tree: exit %d, stderr %q", code, stderr)
	}
	if stdout != "" {
		t.Errorf("clean tree printed findings: %q", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	code, stdout, stderr := runCLI(t, seededV2Tree(t)+"/...")
	if code != 1 {
		t.Fatalf("tree with findings: exit %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stdout, "[hotalloc]") {
		t.Errorf("findings output missing hotalloc line: %q", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", stderr)
	}
}

func TestExitCodeLoadError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":              "module example.com/fake\n\ngo 1.22\n",
		"internal/bad/bad.go": "package bad\n\nfunc {\n",
	})
	code, _, stderr := runCLI(t, root+"/...")
	if code != 2 {
		t.Fatalf("unparseable tree: exit %d, want 2 (stderr %q)", code, stderr)
	}
	if stderr == "" {
		t.Error("load error produced no stderr message")
	}
}

func TestExitCodeNoModule(t *testing.T) {
	code, _, stderr := runCLI(t, filepath.Join(t.TempDir(), "nope")+"/...")
	if code != 2 {
		t.Fatalf("missing go.mod: exit %d, want 2 (stderr %q)", code, stderr)
	}
}

func TestExitCodeBadFlag(t *testing.T) {
	if code, _, _ := runCLI(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestListIncludesV2Passes(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{"hotalloc", "mirrorref", "scratchreset", "nogoroutine", "norandtime"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", seededV2Tree(t)+"/...")
	if code != 1 {
		t.Fatalf("-json with findings: exit %d, want 1", code)
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if len(report.Findings) == 0 {
		t.Fatal("JSON report has no findings")
	}
	first := report.Findings[0]
	if first.File == "" || first.Line == 0 || first.Analyzer == "" || first.Message == "" {
		t.Errorf("JSON finding missing fields: %+v", first)
	}
	if strings.Contains(first.File, "\\") || filepath.IsAbs(first.File) {
		t.Errorf("JSON file path not module-relative slash form: %q", first.File)
	}
}

func TestAnnotationsOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-annotations", seededV2Tree(t)+"/...")
	if code != 1 {
		t.Fatalf("-annotations with findings: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "::error file=internal/radio/engine.go,line=") {
		t.Errorf("missing ::error annotation line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "title=radiolint/hotalloc::") {
		t.Errorf("annotation missing analyzer title:\n%s", stdout)
	}
}

func TestAnnotationEscaping(t *testing.T) {
	d := analysis.Diagnostic{Analyzer: "x", Message: "50% bad\nnext, line: here"}
	d.Pos.Filename = "a,b.go"
	d.Pos.Line, d.Pos.Column = 3, 7
	got := annotation(d)
	want := "::error file=a%2Cb.go,line=3,col=7,title=radiolint/x::50%25 bad%0Anext, line: here"
	if got != want {
		t.Errorf("annotation escaping:\n got %q\nwant %q", got, want)
	}
}

// TestBaselineRoundTrip exercises the full ledger lifecycle: write the
// baseline from a dirty tree, rerun clean against it, then make it stale
// and check the warning without failing the gate.
func TestBaselineRoundTrip(t *testing.T) {
	root := seededV2Tree(t)

	code, _, stderr := runCLI(t, "-write-baseline", root+"/...")
	if code != 0 {
		t.Fatalf("-write-baseline: exit %d, stderr %q", code, stderr)
	}
	path := filepath.Join(root, "lint", "baseline.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if b.Version != baselineVersion || len(b.Findings) == 0 {
		t.Fatalf("baseline content wrong: %+v", b)
	}

	code, stdout, stderr := runCLI(t, root+"/...")
	if code != 0 {
		t.Fatalf("fully baselined tree: exit %d\nstdout %q\nstderr %q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined findings still printed: %q", stdout)
	}
	if !strings.Contains(stderr, "muted by the baseline") {
		t.Errorf("stderr missing muted note: %q", stderr)
	}

	// A new defect must still fail even with the baseline in place.
	extra := filepath.Join(root, "internal", "radio", "extra.go")
	src := "package radio\n\n//radiolint:hotpath\nfunc Fresh() []byte { return make([]byte, 4) }\n"
	if err := os.WriteFile(extra, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, root+"/...")
	if code != 1 {
		t.Fatalf("new finding on baselined tree: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "extra.go") {
		t.Errorf("new finding not printed: %q", stdout)
	}

	// Fix every defect: the baseline is now entirely stale, which warns
	// but does not fail.
	for _, f := range []string{"engine.go", "reference.go", "extra.go"} {
		if err := os.Remove(filepath.Join(root, "internal", "radio", f)); err != nil {
			t.Fatal(err)
		}
	}
	ok := filepath.Join(root, "internal", "radio", "ok.go")
	if err := os.WriteFile(ok, []byte("package radio\n\nfunc Quiet() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, root+"/...")
	if code != 0 {
		t.Fatalf("clean tree with stale baseline: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline") {
		t.Errorf("stderr missing stale warning: %q", stderr)
	}
}

func TestBaselineCorruptIsInternalError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":             "module example.com/fake\n\ngo 1.22\n",
		"internal/ok/ok.go":  "package ok\n\nfunc Two() int { return 2 }\n",
		"lint/baseline.json": "{not json",
	})
	code, _, stderr := runCLI(t, root+"/...")
	if code != 2 {
		t.Fatalf("corrupt baseline: exit %d, want 2 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "baseline") {
		t.Errorf("stderr does not mention the baseline: %q", stderr)
	}
}

func TestBaselineDisabled(t *testing.T) {
	root := seededV2Tree(t)
	code, _, _ := runCLI(t, "-write-baseline", root+"/...")
	if code != 0 {
		t.Fatal("write-baseline failed")
	}
	// With the ledger disabled the same findings fail again.
	code, _, _ = runCLI(t, "-baseline=", root+"/...")
	if code != 1 {
		t.Fatalf("-baseline= should ignore the ledger: exit %d, want 1", code)
	}
}
