package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocradio/internal/analysis"
)

// writeTree materializes a throwaway module so the test can seed the exact
// regressions the gate exists to stop.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runGate(t *testing.T, root string) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := analysis.Load(root, "")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestGateCatchesSeededRegressions seeds a math/rand import and a map range
// into an internal/core package and asserts the full analyzer battery
// fails, which is the acceptance bar for the whole gate.
func TestGateCatchesSeededRegressions(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/fake\n\ngo 1.22\n",
		"internal/core/bad.go": `package core

import "math/rand"

func Order(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Draw() int { return rand.Int() }
`,
	})
	diags := runGate(t, root)
	var passes []string
	for _, d := range diags {
		passes = append(passes, d.Analyzer)
	}
	joined := strings.Join(passes, ",")
	if !strings.Contains(joined, "norandtime") {
		t.Errorf("seeded math/rand import not caught; findings: %v", diags)
	}
	if !strings.Contains(joined, "detmaprange") {
		t.Errorf("seeded map range not caught; findings: %v", diags)
	}
}

// TestGateCleanTree checks that an idiomatic tree passes with no findings.
func TestGateCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/fake\n\ngo 1.22\n",
		"internal/core/good.go": `package core

import "sort"

func Order(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//radiolint:ignore detmaprange keys are sorted before return
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
`,
	})
	if diags := runGate(t, root); len(diags) != 0 {
		t.Fatalf("clean tree flagged: %v", diags)
	}
}
