// Command radiolint is the repository's static-analysis gate. It walks the
// module, type-checks every non-test package, and runs the determinism and
// simulator-contract passes from internal/analysis:
//
//	norandtime   no math/rand or wall clock in internal packages
//	detmaprange  no order-dependent map iteration in determinism-critical packages
//	seedplumb    no hidden seed forks or package-level rng state
//	nopanic      no panic in library code paths
//
// Usage:
//
//	go run ./cmd/radiolint ./...
//
// The argument names the tree to analyze: "./..." (or a directory) analyzes
// the module containing it. Diagnostics are printed as file:line:col:
// [pass] message; the exit status is 1 when anything was found, 2 on a
// loading or internal failure, and 0 on a clean tree. Findings are
// suppressed per-line with //radiolint:ignore <pass> <reason> (see
// CONTRIBUTING.md, "Determinism rules & static analysis").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"adhocradio/internal/analysis"
	"adhocradio/internal/analysis/detmaprange"
	"adhocradio/internal/analysis/nopanic"
	"adhocradio/internal/analysis/norandtime"
	"adhocradio/internal/analysis/seedplumb"
)

var analyzers = []*analysis.Analyzer{
	detmaprange.Analyzer,
	nopanic.Analyzer,
	norandtime.Analyzer,
	seedplumb.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the registered passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: radiolint [-list] [./... | dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = strings.TrimSuffix(flag.Arg(0), "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	}
	moduleRoot, err := findModuleRoot(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "radiolint:", err)
		os.Exit(2)
	}

	pkgs, err := analysis.Load(moduleRoot, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "radiolint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "radiolint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(relativize(moduleRoot, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "radiolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relativize shortens diagnostic paths to be module-relative for readability.
func relativize(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
