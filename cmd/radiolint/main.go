// Command radiolint is the repository's static-analysis gate. It walks the
// module, type-checks every non-test package, and runs the determinism and
// simulator-contract passes from internal/analysis:
//
//	norandtime    no math/rand or wall clock in internal packages
//	detmaprange   no order-dependent map iteration in determinism-critical packages
//	seedplumb     no hidden seed forks or package-level rng state
//	nopanic       no panic in library code paths
//	hotalloc      no allocation constructs in //radiolint:hotpath functions
//	mirrorref     fault knobs read by the engine are mirrored in RunReference*
//	scratchreset  poison-rebuild resets every scratch field on a scratch owner
//	nogoroutine   no goroutines or channels in the sequential simulator core
//
// Usage:
//
//	go run ./cmd/radiolint ./...
//
// The argument names the tree to analyze: "./..." (or a directory) analyzes
// the module containing it. Diagnostics are printed as file:line:col:
// [pass] message; the exit status is 1 when anything was found, 2 on a
// loading or internal failure, and 0 on a clean tree. Findings are
// suppressed per-line with //radiolint:ignore <pass> <reason> (see
// CONTRIBUTING.md, "Determinism rules & static analysis"), or carried in
// the committed baseline (lint/baseline.json, regenerated with
// -write-baseline / `make lint-baseline`).
//
// With -json the findings are emitted as a single JSON object; with
// -annotations (the default when GITHUB_ACTIONS=true) each finding is
// also printed as a ::error workflow command so CI surfaces it inline on
// the pull request.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"adhocradio/internal/analysis"
	"adhocradio/internal/analysis/detmaprange"
	"adhocradio/internal/analysis/hotalloc"
	"adhocradio/internal/analysis/mirrorref"
	"adhocradio/internal/analysis/nogoroutine"
	"adhocradio/internal/analysis/nopanic"
	"adhocradio/internal/analysis/norandtime"
	"adhocradio/internal/analysis/scratchreset"
	"adhocradio/internal/analysis/seedplumb"
)

var analyzers = []*analysis.Analyzer{
	detmaprange.Analyzer,
	hotalloc.Analyzer,
	mirrorref.Analyzer,
	nogoroutine.Analyzer,
	nopanic.Analyzer,
	norandtime.Analyzer,
	scratchreset.Analyzer,
	seedplumb.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the shape emitted by -json: the unbaselined findings plus
// the bookkeeping CI needs to judge baseline health.
type jsonReport struct {
	Findings  []jsonFinding `json:"findings"`
	Baselined int           `json:"baselined"`
	Stale     int           `json:"stale"`
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is main with the process edges (args, streams, exit code) made
// injectable for tests. Exit codes: 0 clean or fully baselined, 1 fresh
// findings, 2 load/internal error.
func run(argv []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("radiolint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the registered passes and exit")
	jsonOut := flags.Bool("json", false, "emit findings as a JSON object instead of text")
	annotations := flags.Bool("annotations", os.Getenv("GITHUB_ACTIONS") == "true",
		"emit GitHub Actions ::error workflow commands (default true under GITHUB_ACTIONS)")
	baselinePath := flags.String("baseline", "lint/baseline.json",
		"known-findings ledger, relative to the module root; empty disables")
	writeBase := flags.Bool("write-baseline", false,
		"rewrite the baseline from the current findings and exit")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: radiolint [flags] [./... | dir]\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := "."
	if flags.NArg() > 0 {
		root = strings.TrimSuffix(flags.Arg(0), "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	}
	moduleRoot, err := findModuleRoot(root)
	if err != nil {
		fmt.Fprintln(stderr, "radiolint:", err)
		return 2
	}

	pkgs, err := analysis.Load(moduleRoot, "")
	if err != nil {
		fmt.Fprintln(stderr, "radiolint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "radiolint:", err)
		return 2
	}
	for i := range diags {
		diags[i].Pos.Filename = relativize(moduleRoot, diags[i].Pos.Filename)
	}

	if *writeBase {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "radiolint: -write-baseline needs a -baseline path")
			return 2
		}
		path := resolveBaseline(moduleRoot, *baselinePath)
		if err := writeBaseline(path, diags); err != nil {
			fmt.Fprintln(stderr, "radiolint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "radiolint: wrote %d finding(s) to %s\n", len(diags), path)
		return 0
	}

	fresh, muted, stale := diags, 0, 0
	if *baselinePath != "" {
		base, err := loadBaseline(resolveBaseline(moduleRoot, *baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "radiolint:", err)
			return 2
		}
		fresh, muted, stale = base.subtract(diags)
	}

	if *jsonOut {
		report := jsonReport{Findings: []jsonFinding{}, Baselined: muted, Stale: stale}
		for _, d := range fresh {
			report.Findings = append(report.Findings, jsonFinding{
				File:     filepath.ToSlash(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			fmt.Fprintln(stderr, "radiolint:", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d.String())
			if *annotations {
				fmt.Fprintln(stdout, annotation(d))
			}
		}
	}

	if stale > 0 {
		fmt.Fprintf(stderr, "radiolint: %d stale baseline entr%s; regenerate with make lint-baseline\n",
			stale, plural(stale, "y", "ies"))
	}
	if muted > 0 {
		fmt.Fprintf(stderr, "radiolint: %d finding(s) muted by the baseline\n", muted)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(stderr, "radiolint: %d finding(s)\n", len(fresh))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// annotation renders a finding as a GitHub Actions workflow command, which
// the runner turns into an inline PR annotation.
func annotation(d analysis.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=radiolint/%s::%s",
		escapeProperty(filepath.ToSlash(d.Pos.Filename)), d.Pos.Line, d.Pos.Column,
		escapeProperty(d.Analyzer), escapeData(d.Message))
}

// escapeData applies the workflow-command escaping for message bodies.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty applies the stricter escaping for command properties.
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// resolveBaseline anchors a relative baseline path at the module root so
// the gate behaves the same from any working directory.
func resolveBaseline(moduleRoot, path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(moduleRoot, filepath.FromSlash(path))
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relativize shortens diagnostic paths to be module-relative for readability.
func relativize(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}
