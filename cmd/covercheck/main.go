// Command covercheck enforces per-package statement-coverage floors on a Go
// coverprofile. It is the stdlib-only gate behind CI's coverage job (the
// repository takes no external dependencies): `go test -coverprofile` emits
// the profile, covercheck aggregates it per package and fails the build when
// a named package falls under its floor.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	go run ./cmd/covercheck -profile cover.out adhocradio/internal/obs=85
//
// Each positional argument is <package-path>=<min-percent>. A requirement
// covers the named import path and everything under it, so
// "adhocradio/internal/experiment=70" includes the pool subpackage. A
// requirement that matches nothing in the profile is an error, not a pass —
// otherwise a typo would silently disable the gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
}

// pkgCover accumulates statement counts for one package.
type pkgCover struct {
	total   int64 // statements in the package
	covered int64 // statements hit at least once
}

func (p pkgCover) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

// requirement is one parsed pkg=minpct argument.
type requirement struct {
	pkg string
	min float64
}

func parseRequirement(arg string) (requirement, error) {
	pkg, pct, ok := strings.Cut(arg, "=")
	if !ok || pkg == "" {
		return requirement{}, fmt.Errorf("requirement %q is not <package>=<min-percent>", arg)
	}
	min, err := strconv.ParseFloat(pct, 64)
	if err != nil || min < 0 || min > 100 {
		return requirement{}, fmt.Errorf("requirement %q: %q is not a percentage in [0, 100]", arg, pct)
	}
	return requirement{pkg: strings.TrimSuffix(pkg, "/"), min: min}, nil
}

// parseProfile reads a coverprofile and aggregates statement coverage per
// package (the directory of each file). Duplicate blocks — merged profiles
// repeat them — are deduplicated by block position, ORing their hit state,
// so a block counts once however many runs touched it.
func parseProfile(profilePath string) (map[string]pkgCover, error) {
	f, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type block struct {
		stmts int64
		hit   bool
	}
	blocks := map[string]block{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		// file.go:12.34,15.2 numStatements hitCount
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed coverage line %q", profilePath, line, text)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count %q", profilePath, line, fields[1])
		}
		hits, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count %q", profilePath, line, fields[2])
		}
		b := blocks[fields[0]]
		b.stmts = stmts
		b.hit = b.hit || hits > 0
		blocks[fields[0]] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%s: no coverage blocks found (is this really a coverprofile?)", profilePath)
	}
	pkgs := map[string]pkgCover{}
	for key, b := range blocks {
		file, _, ok := strings.Cut(key, ":")
		if !ok {
			continue
		}
		pkg := path.Dir(file)
		pc := pkgs[pkg]
		pc.total += b.stmts
		if b.hit {
			pc.covered += b.stmts
		}
		pkgs[pkg] = pc
	}
	return pkgs, nil
}

// coverageFor aggregates every profiled package at or under the required
// import path. The bool reports whether anything matched.
func coverageFor(pkgs map[string]pkgCover, req string) (pkgCover, bool) {
	var agg pkgCover
	found := false
	for pkg, pc := range pkgs {
		if pkg == req || strings.HasPrefix(pkg, req+"/") {
			agg.total += pc.total
			agg.covered += pc.covered
			found = true
		}
	}
	return agg, found
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("covercheck", flag.ContinueOnError)
	profile := fs.String("profile", "cover.out", "coverprofile to check")
	list := fs.Bool("list", false, "also print every profiled package's coverage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no requirements given; usage: covercheck [-profile cover.out] <package>=<min-percent> ...")
	}
	reqs := make([]requirement, 0, fs.NArg())
	for _, arg := range fs.Args() {
		r, err := parseRequirement(arg)
		if err != nil {
			return err
		}
		reqs = append(reqs, r)
	}
	pkgs, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	if *list {
		names := make([]string, 0, len(pkgs))
		for pkg := range pkgs {
			names = append(names, pkg)
		}
		sort.Strings(names)
		for _, pkg := range names {
			fmt.Fprintf(stdout, "%-56s %6.1f%% (%d/%d statements)\n",
				pkg, pkgs[pkg].percent(), pkgs[pkg].covered, pkgs[pkg].total)
		}
	}
	var failures []string
	for _, r := range reqs {
		pc, found := coverageFor(pkgs, r.pkg)
		if !found {
			return fmt.Errorf("requirement %s=%.1f matches no package in %s (typo, or the package was not tested with -coverprofile)", r.pkg, r.min, *profile)
		}
		status := "ok"
		if pc.percent() < r.min {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.1f%% < %.1f%%", r.pkg, pc.percent(), r.min))
		}
		fmt.Fprintf(stdout, "%-56s %6.1f%% (floor %.1f%%) %s\n", r.pkg, pc.percent(), r.min, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("coverage below floor: %s", strings.Join(failures, "; "))
	}
	return nil
}
