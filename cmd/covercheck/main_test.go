package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProfile(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const sampleProfile = `mode: set
adhocradio/internal/obs/counters.go:10.2,14.3 4 1
adhocradio/internal/obs/counters.go:16.2,18.3 2 0
adhocradio/internal/obs/hist.go:5.2,9.3 6 1
adhocradio/internal/experiment/pool/pool.go:20.2,25.3 8 1
adhocradio/internal/experiment/runner.go:7.2,9.3 4 0
`

func TestParseProfile(t *testing.T) {
	pkgs, err := parseProfile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	obs := pkgs["adhocradio/internal/obs"]
	if obs.total != 12 || obs.covered != 10 {
		t.Fatalf("obs coverage = %+v, want 10/12", obs)
	}
	pool := pkgs["adhocradio/internal/experiment/pool"]
	if pool.total != 8 || pool.covered != 8 {
		t.Fatalf("pool coverage = %+v, want 8/8", pool)
	}
	if got := obs.percent(); got < 83.3 || got > 83.4 {
		t.Fatalf("obs percent = %v", got)
	}
}

func TestParseProfileDeduplicatesMergedBlocks(t *testing.T) {
	// The same block from two merged runs: once missed, once hit. It must
	// count a single time, as covered.
	pkgs, err := parseProfile(writeProfile(t, `mode: count
p/x.go:1.1,2.2 5 0
p/x.go:1.1,2.2 5 3
`))
	if err != nil {
		t.Fatal(err)
	}
	if pc := pkgs["p"]; pc.total != 5 || pc.covered != 5 {
		t.Fatalf("merged block coverage = %+v, want 5/5", pc)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := parseProfile(writeProfile(t, "mode: set\n")); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := parseProfile(writeProfile(t, "mode: set\nnot a coverage line\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := parseProfile(filepath.Join(t.TempDir(), "nope.out")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseRequirement(t *testing.T) {
	r, err := parseRequirement("adhocradio/internal/obs=85")
	if err != nil || r.pkg != "adhocradio/internal/obs" || r.min != 85 {
		t.Fatalf("parseRequirement = %+v, %v", r, err)
	}
	for _, bad := range []string{"nopct", "=50", "pkg=", "pkg=abc", "pkg=150", "pkg=-1"} {
		if _, err := parseRequirement(bad); err == nil {
			t.Fatalf("requirement %q accepted", bad)
		}
	}
}

func TestCoverageForAggregatesSubpackages(t *testing.T) {
	pkgs, err := parseProfile(writeProfile(t, sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	agg, found := coverageFor(pkgs, "adhocradio/internal/experiment")
	if !found || agg.total != 12 || agg.covered != 8 {
		t.Fatalf("experiment aggregate = %+v found=%v, want 8/12", agg, found)
	}
	if _, found := coverageFor(pkgs, "adhocradio/internal/experimentX"); found {
		t.Fatal("prefix match must respect path boundaries")
	}
}

func TestRunGate(t *testing.T) {
	p := writeProfile(t, sampleProfile)
	// obs is at 10/12 ≈ 83.3%: a floor of 80 passes, 85 fails.
	if err := run([]string{"-profile", p, "adhocradio/internal/obs=80"}, os.Stdout); err != nil {
		t.Fatalf("passing floor failed: %v", err)
	}
	err := run([]string{"-profile", p, "adhocradio/internal/obs=85"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("failing floor: err = %v", err)
	}
	// A requirement matching nothing is an error, not a silent pass.
	err = run([]string{"-profile", p, "adhocradio/internal/nosuch=10"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "matches no package") {
		t.Fatalf("unmatched requirement: err = %v", err)
	}
	if err := run([]string{"-profile", p}, os.Stdout); err == nil {
		t.Fatal("no requirements accepted")
	}
}
