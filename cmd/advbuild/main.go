// Command advbuild runs the Theorem 2 adversary against a chosen
// deterministic algorithm, verifies the construction against a real
// simulation (the executable Lemma 9), and dumps the resulting network's
// structure.
//
// Usage:
//
//	advbuild -proto ss -n 1024 -d 64
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocradio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "advbuild:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto  = flag.String("proto", "ss", "victim protocol: rr|ss|inter")
		n      = flag.Int("n", 1024, "largest label (n+1 nodes)")
		d      = flag.Int("d", 64, "radius (even)")
		force  = flag.Bool("force", true, "build outside the asymptotic validity window")
		layers = flag.Bool("layers", false, "dump every constructed layer")
		dot    = flag.String("dot", "", "write the network as Graphviz DOT to this file")
		save   = flag.String("save", "", "write the network as an edge list to this file")
	)
	flag.Parse()

	var p adhocradio.DeterministicProtocol
	switch *proto {
	case "rr":
		p = adhocradio.NewRoundRobin()
	case "ss":
		p = adhocradio.NewSelectAndSend()
	case "inter":
		ip, ok := adhocradio.NewInterleaved(adhocradio.NewRoundRobin(), adhocradio.NewSelectAndSend()).(adhocradio.DeterministicProtocol)
		if !ok {
			return fmt.Errorf("interleaved protocol lost determinism")
		}
		p = ip
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}

	c, err := adhocradio.BuildAdversarialNetwork(p, adhocradio.AdversaryParams{N: *n, D: *d, Force: *force})
	if err != nil {
		return err
	}
	fmt.Printf("victim: %s\n", p.Name())
	fmt.Print(c.Report())
	if *layers {
		for i, l := range c.Layers {
			fmt.Printf("L_%d: L'=%v L*=%v\n", 2*i+1, l.Prime, l.Star)
		}
		fmt.Printf("L_%d: %d nodes\n", c.D, len(c.LastLayer))
	}

	if *dot != "" {
		if err := writeGraph(*dot, func(f *os.File) error { return c.G.WriteDOT(f, "adversarial") }); err != nil {
			return err
		}
		fmt.Printf("wrote DOT to %s\n", *dot)
	}
	if *save != "" {
		if err := writeGraph(*save, func(f *os.File) error { return c.G.WriteEdgeList(f) }); err != nil {
			return err
		}
		fmt.Printf("wrote edge list to %s\n", *save)
	}

	res, err := adhocradio.VerifyAdversarialNetwork(p, c, 0)
	if err != nil {
		return err
	}
	fmt.Printf("Lemma 9:         verified (real run matches the construction)\n")
	fmt.Printf("real broadcast:  %d steps (>= bound: %v)\n",
		res.BroadcastTime, res.BroadcastTime >= c.LowerBoundSteps())
	return nil
}

// writeGraph creates path and streams a graph encoding into it.
func writeGraph(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
