// Command benchdelta compares two `go test -bench` output files and prints
// an old-vs-new table per benchmark and metric. It is a deliberately small,
// stdlib-only stand-in for benchstat (the repository takes no external
// dependencies): values for repeated runs of the same benchmark (-count=N)
// are averaged, and the delta column is the relative change of the mean.
//
// Usage:
//
//	go run ./cmd/benchdelta old.txt new.txt
//	go run ./cmd/benchdelta -fail-over 10 -metric ns/step old.txt new.txt
//	make bench-compare        # captures and compares for you
//
// By default exit status is 0 even on regressions — the tool reports,
// humans judge; use the committed bench/BENCH_*.json records for the
// authoritative before/after story. With -fail-over P (percent, > 0) the
// tool becomes a CI gate: it exits 1 when any benchmark's mean for a gated
// metric (-metric, comma-separated units, default ns/step) grew by more
// than P percent. All gated units are cost-like — ns/op, ns/step, B/op,
// allocs/op — so "grew" is always "worse".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample accumulates repeated measurements of one benchmark metric.
type sample struct {
	sum float64
	n   int
}

func (s sample) mean() float64 { return s.sum / float64(s.n) }

// metrics maps "BenchmarkName\tunit" to its accumulated sample. Benchmark
// order of first appearance is kept separately so output is stable.
type benchFile struct {
	metrics map[string]sample
	order   []string // benchmark names, first-appearance order
	seen    map[string]bool
}

// parseBench reads `go test -bench` output. Benchmark lines have the shape
//
//	BenchmarkName-8   	     123	   456789 ns/op	  1024 B/op	  3 allocs/op
//
// i.e. a name starting with "Benchmark", an iteration count, then
// value/unit pairs. Everything else (goos/pkg headers, PASS, ok) is
// ignored.
func parseBench(path string) (*benchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	bf := &benchFile{metrics: map[string]sample{}, seen: map[string]bool{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripCount(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count; not a benchmark line
		}
		if !bf.seen[name] {
			bf.seen[name] = true
			bf.order = append(bf.order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			key := name + "\t" + fields[i+1]
			s := bf.metrics[key]
			s.sum += v
			s.n++
			bf.metrics[key] = s
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(bf.order) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found (is this really `go test -bench` output?)", path)
	}
	return bf, nil
}

// stripCount removes the "-<GOMAXPROCS>" suffix go test appends to benchmark
// names — and only it. Trailing digits that belong to the name
// ("BenchmarkRun100-8") and interior dashes ("BenchmarkCSR-dense/n=512-8")
// must survive; a blanket TrimRight over "-0123456789" would eat both.
func stripCount(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// unitOrder fixes the column order within a benchmark; unknown units sort
// after the known ones, alphabetically.
var unitOrder = map[string]int{
	"ns/op":     0,
	"ns/step":   1,
	"B/op":      2,
	"allocs/op": 3,
}

func unitsFor(name string, files ...*benchFile) []string {
	set := map[string]bool{}
	for _, bf := range files {
		for key := range bf.metrics {
			bench, unit, _ := strings.Cut(key, "\t")
			if bench == name {
				set[unit] = true
			}
		}
	}
	units := make([]string, 0, len(set))
	for u := range set {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool {
		oi, iok := unitOrder[units[i]]
		oj, jok := unitOrder[units[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return units[i] < units[j]
		}
	})
	return units
}

func fmtVal(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4gk", v/1e3)
	case v == float64(int64(v)):
		return strconv.FormatInt(int64(v), 10)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit 1 when a gated metric's mean regressed by more than this percent (0 = report only)")
	metric := flag.String("metric", "ns/step", "comma-separated units the -fail-over gate applies to")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdelta [-fail-over PCT] [-metric UNITS] OLD NEW   (two `go test -bench` output files)")
		os.Exit(2)
	}
	old, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	niw, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	writeDelta(w, old, niw)
	w.Flush()
	if *failOver > 0 {
		regs, warnings := regressionsOver(old, niw, gatedUnits(*metric), *failOver)
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "benchdelta: WARNING:", w)
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "benchdelta: REGRESSION:", r)
			}
			os.Exit(1)
		}
	}
}

// gatedUnits parses the -metric flag into a unit set.
func gatedUnits(metric string) map[string]bool {
	units := map[string]bool{}
	for _, u := range strings.Split(metric, ",") {
		if u = strings.TrimSpace(u); u != "" {
			units[u] = true
		}
	}
	return units
}

// regressionsOver returns one description per benchmark metric whose mean
// grew by more than failOver percent between old and new, plus a warning
// per gated metric the gate could NOT judge. Metrics outside the gated unit
// set, and benchmarks present in only one file, are not gated — a renamed
// benchmark should not hard-fail CI, the table already shows it.
//
// A baseline mean of zero (0 B/op, 0 allocs/op) or below makes the relative
// delta +Inf%/NaN%: dividing through would either spuriously fail the gate
// or — worse — let `NaN > failOver` evaluate false and silently PASS an
// arbitrary regression. Such metrics are skipped with an explicit "baseline
// zero" warning instead, as is any non-finite mean on either side, so a
// gate that cannot judge a metric says so rather than pretending it did.
func regressionsOver(old, niw *benchFile, units map[string]bool, failOver float64) (regs, warnings []string) {
	names := append([]string{}, old.order...)
	for _, n := range niw.order {
		if !old.seen[n] {
			names = append(names, n)
		}
	}
	for _, name := range names {
		for _, unit := range unitsFor(name, old, niw) {
			if !units[unit] {
				continue
			}
			key := name + "\t" + unit
			so, haveOld := old.metrics[key]
			sn, haveNew := niw.metrics[key]
			if !haveOld || !haveNew {
				continue
			}
			om, nm := so.mean(), sn.mean()
			short := strings.TrimPrefix(name, "Benchmark")
			if math.IsNaN(om) || math.IsInf(om, 0) || math.IsNaN(nm) || math.IsInf(nm, 0) {
				warnings = append(warnings, fmt.Sprintf(
					"%s %s: non-finite mean (old %v, new %v), cannot gate", short, unit, om, nm))
				continue
			}
			if om <= 0 {
				// Only noteworthy when the metric actually moved: a stable
				// 0 -> 0 (the common 0 allocs/op case) is not a gate gap.
				if nm > om {
					warnings = append(warnings, fmt.Sprintf(
						"%s %s: baseline zero (old %s, new %s), relative gate cannot judge this growth",
						short, unit, fmtVal(om), fmtVal(nm)))
				}
				continue
			}
			pct := 100 * (nm - om) / om
			if pct > failOver {
				regs = append(regs, fmt.Sprintf("%s %s: %s -> %s (%+.1f%% > +%.1f%%)",
					short, unit, fmtVal(om), fmtVal(nm), pct, failOver))
			}
		}
	}
	return regs, warnings
}

// writeDelta renders the old-vs-new table. Both files are known non-empty
// (parseBench rejects files without benchmark lines).
func writeDelta(w io.Writer, old, niw *benchFile) {
	// Union of benchmark names: old-file order first, then new-only ones.
	names := append([]string{}, old.order...)
	for _, n := range niw.order {
		if !old.seen[n] {
			names = append(names, n)
		}
	}

	fmt.Fprintf(w, "%-48s %-10s %12s %12s %10s\n", "benchmark", "unit", "old", "new", "delta")
	for _, name := range names {
		for _, unit := range unitsFor(name, old, niw) {
			key := name + "\t" + unit
			so, haveOld := old.metrics[key]
			sn, haveNew := niw.metrics[key]
			oldCol, newCol, delta := "-", "-", "-"
			if haveOld {
				oldCol = fmtVal(so.mean())
			}
			if haveNew {
				newCol = fmtVal(sn.mean())
			}
			if haveOld && haveNew && so.mean() != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(sn.mean()-so.mean())/so.mean())
			}
			fmt.Fprintf(w, "%-48s %-10s %12s %12s %10s\n",
				strings.TrimPrefix(name, "Benchmark"), unit, oldCol, newCol, delta)
		}
	}
}
