package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStripCount(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BenchmarkRun-8", "BenchmarkRun"},
		{"BenchmarkRun100-8", "BenchmarkRun100"},        // digits in the name survive
		{"BenchmarkRun100", "BenchmarkRun100"},          // no suffix at all
		{"BenchmarkCSR-dense-16", "BenchmarkCSR-dense"}, // interior dash survives
		{"BenchmarkRun/size=100-8", "BenchmarkRun/size=100"},
		{"BenchmarkE5-quick", "BenchmarkE5-quick"}, // non-numeric suffix kept
		{"BenchmarkX-", "BenchmarkX-"},             // trailing dash, no digits
		{"Benchmark-8", "Benchmark"},
	}
	for _, c := range cases {
		if got := stripCount(c.in); got != c.want {
			t.Errorf("stripCount(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantErr string
		// expected "name\tunit" -> mean after a successful parse
		want map[string]float64
	}{
		{
			name:    "plain",
			content: "goos: linux\nBenchmarkRun-8   \t 123\t 456789 ns/op\t 1024 B/op\t 3 allocs/op\nPASS\n",
			want: map[string]float64{
				"BenchmarkRun\tns/op":     456789,
				"BenchmarkRun\tB/op":      1024,
				"BenchmarkRun\tallocs/op": 3,
			},
		},
		{
			name:    "digits-and-dashes-in-names",
			content: "BenchmarkRun100-8 10 11 ns/op\nBenchmarkCSR-dense-8 10 22 ns/op\n",
			want: map[string]float64{
				"BenchmarkRun100\tns/op":    11,
				"BenchmarkCSR-dense\tns/op": 22,
			},
		},
		{
			name:    "ns-per-step-unit",
			content: "BenchmarkSimPath-4 5 99 ns/step\n",
			want:    map[string]float64{"BenchmarkSimPath\tns/step": 99},
		},
		{
			name:    "count-averaging",
			content: "BenchmarkRun-8 10 100 ns/op\nBenchmarkRun-8 10 300 ns/op\n",
			want:    map[string]float64{"BenchmarkRun\tns/op": 200},
		},
		{
			name:    "empty-file",
			content: "",
			wantErr: "no benchmark lines",
		},
		{
			name:    "no-benchmark-lines",
			content: "goos: linux\ngoarch: amd64\nPASS\nok  \tadhocradio\t1.2s\n",
			wantErr: "no benchmark lines",
		},
		{
			name:    "benchmark-prefix-but-not-a-result",
			content: "BenchmarkRun-8 started something else entirely\n",
			wantErr: "no benchmark lines",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bf, err := parseBench(writeTemp(t, c.content))
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			for key, mean := range c.want {
				s, ok := bf.metrics[key]
				if !ok {
					t.Fatalf("metric %q missing (have %v)", key, bf.metrics)
				}
				if s.mean() != mean {
					t.Errorf("metric %q mean = %v, want %v", key, s.mean(), mean)
				}
			}
			if len(bf.metrics) != len(c.want) {
				t.Errorf("parsed %d metrics, want %d: %v", len(bf.metrics), len(c.want), bf.metrics)
			}
		})
	}
}

// TestParseBenchMissingFile: a missing baseline is an explicit error, not an
// empty (and silently "all new") comparison.
func TestParseBenchMissingFile(t *testing.T) {
	if _, err := parseBench(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteDelta(t *testing.T) {
	old, err := parseBench(writeTemp(t, "BenchmarkRun100-8 10 100 ns/op\nBenchmarkOldOnly-8 10 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	niw, err := parseBench(writeTemp(t, "BenchmarkRun100-8 10 150 ns/op\nBenchmarkNewOnly-8 10 7 ns/step\n"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writeDelta(&buf, old, niw)
	out := buf.String()
	for _, want := range []string{"Run100", "+50.0%", "OldOnly", "NewOnly", "ns/step"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Run100-8") || strings.Contains(out, "Run1\t") {
		t.Errorf("benchmark name mangled:\n%s", out)
	}
}

// TestRegressionsOver: the CI gate fires only on gated units, only past the
// threshold, and never on benchmarks present in just one file.
func TestRegressionsOver(t *testing.T) {
	old, err := parseBench(writeTemp(t,
		"BenchmarkHot-8 10 100 ns/step\nBenchmarkCold-8 10 100 ns/op\nBenchmarkGone-8 10 5 ns/step\n"))
	if err != nil {
		t.Fatal(err)
	}
	niw, err := parseBench(writeTemp(t,
		"BenchmarkHot-8 10 125 ns/step\nBenchmarkCold-8 10 500 ns/op\nBenchmarkNew-8 10 7 ns/step\n"))
	if err != nil {
		t.Fatal(err)
	}
	regs, warns := regressionsOver(old, niw, gatedUnits("ns/step"), 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "Hot") || !strings.Contains(regs[0], "+25.0%") {
		t.Fatalf("regs = %v, want exactly the Hot ns/step regression", regs)
	}
	if len(warns) != 0 {
		t.Fatalf("unexpected warnings: %v", warns)
	}
	// Above the threshold: no failure.
	if regs, _ := regressionsOver(old, niw, gatedUnits("ns/step"), 30); len(regs) != 0 {
		t.Fatalf("30%% threshold still fired: %v", regs)
	}
	// Gating ns/op too catches the Cold regression.
	if regs, _ := regressionsOver(old, niw, gatedUnits("ns/step,ns/op"), 10); len(regs) != 2 {
		t.Fatalf("two-unit gate found %v", regs)
	}
}

// TestRegressionsOverDegenerateBaselines: a zero or non-finite baseline must
// neither spuriously fail the gate (+Inf%) nor silently pass it (NaN >
// threshold is false); each such metric is skipped with an explicit
// diagnostic instead. Failing before the fix: the old code's `mean() <= 0`
// skip was silent, and NaN means passed straight through the comparison.
func TestRegressionsOverDegenerateBaselines(t *testing.T) {
	cases := []struct {
		name      string
		old, niw  string
		wantRegs  int
		wantWarns []string // substrings, one per expected warning
	}{
		{
			name:      "zero-baseline-growth-warns",
			old:       "BenchmarkAlloc-8 10 0 B/op\n",
			niw:       "BenchmarkAlloc-8 10 1000 B/op\n",
			wantWarns: []string{"baseline zero"},
		},
		{
			name: "zero-baseline-stable-silent",
			old:  "BenchmarkAlloc-8 10 0 B/op\n",
			niw:  "BenchmarkAlloc-8 10 0 B/op\n",
		},
		{
			name:      "nan-baseline-warns",
			old:       "BenchmarkHot-8 10 NaN ns/step\n",
			niw:       "BenchmarkHot-8 10 100 ns/step\n",
			wantWarns: []string{"non-finite"},
		},
		{
			name:      "nan-new-warns",
			old:       "BenchmarkHot-8 10 100 ns/step\n",
			niw:       "BenchmarkHot-8 10 NaN ns/step\n",
			wantWarns: []string{"non-finite"},
		},
		{
			name:     "finite-regression-still-fires",
			old:      "BenchmarkHot-8 10 100 ns/step\nBenchmarkAlloc-8 10 0 B/op\n",
			niw:      "BenchmarkHot-8 10 200 ns/step\nBenchmarkAlloc-8 10 64 B/op\n",
			wantRegs: 1,
			wantWarns: []string{
				"baseline zero",
			},
		},
	}
	units := gatedUnits("ns/step,B/op")
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			old, err := parseBench(writeTemp(t, c.old))
			if err != nil {
				t.Fatal(err)
			}
			niw, err := parseBench(writeTemp(t, c.niw))
			if err != nil {
				t.Fatal(err)
			}
			regs, warns := regressionsOver(old, niw, units, 10)
			if len(regs) != c.wantRegs {
				t.Errorf("regs = %v, want %d", regs, c.wantRegs)
			}
			if len(warns) != len(c.wantWarns) {
				t.Fatalf("warnings = %v, want %d", warns, len(c.wantWarns))
			}
			for i, want := range c.wantWarns {
				if !strings.Contains(warns[i], want) {
					t.Errorf("warning %d = %q, want mention of %q", i, warns[i], want)
				}
			}
		})
	}
}

// TestGatedUnits: comma-separated unit parsing trims blanks and spaces.
func TestGatedUnits(t *testing.T) {
	u := gatedUnits(" ns/step, ns/op ,,allocs/op")
	if len(u) != 3 || !u["ns/step"] || !u["ns/op"] || !u["allocs/op"] {
		t.Fatalf("gatedUnits = %v", u)
	}
}
