// Command seqdump builds a Lemma 1 universal sequence and reports its
// structure: the base period, the per-exponent occurrence counts, and the
// verified recurrence windows (conditions U1 and U2).
//
// Usage:
//
//	seqdump -r 1048576 -d 524288          # strict, inside the lemma window
//	seqdump -r 4096 -d 512 -relaxed       # laptop-scale, clamped levels
//	seqdump -r 4096 -d 512 -relaxed -dump # print the period itself
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocradio/internal/sequences"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seqdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		r       = flag.Int("r", 1<<20, "label bound (power of two)")
		d       = flag.Int("d", 1<<19, "assumed radius (power of two, <= r)")
		relaxed = flag.Bool("relaxed", false, "clamp out-of-window tree levels (BuildRelaxed)")
		dump    = flag.Bool("dump", false, "print the full base period")
	)
	flag.Parse()

	build := sequences.Build
	if *relaxed {
		build = sequences.BuildRelaxed
	}
	u, err := build(*r, *d)
	if err != nil {
		return err
	}

	fmt.Printf("universal sequence for r=%d, D=%d\n", u.R(), u.D())
	fmt.Printf("strict construction: %v\n", u.Strict())
	fmt.Printf("period length:       %d (Lemma 1 bound: < %d)\n", u.Period(), u.TotalBound())
	fmt.Printf("U1/U2 boundary J1:   %d\n", u.J1())

	if err := u.Verify(); err != nil {
		fmt.Printf("verification:        FAILED: %v\n", err)
	} else {
		fmt.Printf("verification:        U1 and U2 hold over the infinite concatenation\n")
	}

	// Occurrence counts and guaranteed windows per exponent.
	counts := map[int]int{}
	maxJ := 0
	for i := 1; i <= u.Period(); i++ {
		j := u.ExponentAt(i)
		counts[j]++
		if j > maxJ {
			maxJ = j
		}
	}
	fmt.Println("\nexponent  probability  occurrences  guaranteed window")
	for j := 0; j <= maxJ; j++ {
		c, ok := counts[j]
		if !ok {
			continue
		}
		w := u.GuaranteedWindow(j)
		fmt.Printf("%8d  1/2^%-7d %11d  every %d stages\n", j, j, c, w)
	}

	if *dump {
		fmt.Println("\nbase period (exponents):")
		for i := 1; i <= u.Period(); i++ {
			if (i-1)%32 == 0 && i > 1 {
				fmt.Println()
			}
			fmt.Printf("%3d ", u.ExponentAt(i))
		}
		fmt.Println()
	}
	return nil
}
