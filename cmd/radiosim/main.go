// Command radiosim runs a single broadcast simulation and reports what
// happened, optionally tracing every step.
//
// Usage:
//
//	radiosim -topo layered -n 1024 -d 64 -proto kp -seed 7 -v
//
// Topologies: path, star, clique, grid, layered (random layered), complete
// (complete layered), gnp, tree, disk, starchain.
// Protocols: kp (optimal randomized), bgi (Decay), rr (round-robin),
// ss (Select-and-Send), cl (Complete-Layered), inter (rr+ss interleaved).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"adhocradio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiosim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topo     = flag.String("topo", "layered", "topology: path|star|clique|grid|layered|complete|gnp|tree|disk|starchain")
		n        = flag.Int("n", 256, "number of nodes")
		d        = flag.Int("d", 16, "radius (layered/complete/starchain)")
		p        = flag.Float64("p", 0.3, "edge density (layered/gnp)")
		proto    = flag.String("proto", "kp", "protocol: kp|bgi|rr|ss|cl|inter")
		seed     = flag.Uint64("seed", 1, "random seed (topology and protocol)")
		maxStep  = flag.Int("maxsteps", 0, "step budget (0 = default)")
		verbose  = flag.Bool("v", false, "trace every step with transmissions")
		timeline = flag.Bool("timeline", false, "print the informed-fraction timeline and per-layer delays")
		energy   = flag.Bool("energy", false, "print per-node energy (transmission) statistics")
		heatmap  = flag.Bool("heatmap", false, "print the layer/time heatmap")
	)
	flag.Parse()

	g, err := buildTopology(*topo, *n, *d, *p, *seed)
	if err != nil {
		return err
	}
	protocol, err := pickProtocol(*proto)
	if err != nil {
		return err
	}

	fmt.Printf("network:  %s\n", g.Stats())
	fmt.Printf("protocol: %s\n", protocol.Name())

	opt := adhocradio.Options{MaxSteps: *maxStep}
	collector := adhocradio.NewCollector()
	hook := collector.Hook()
	opt.Trace = func(step int, tx []int, rx []adhocradio.Message) {
		hook(step, tx, rx)
		if *verbose && len(tx) > 0 {
			fmt.Printf("step %5d: tx=%v rx=%d\n", step, tx, len(rx))
		}
	}
	res, err := adhocradio.Broadcast(g, protocol, adhocradio.Config{Seed: *seed}, opt)
	if errors.Is(err, adhocradio.ErrBudgetExhausted) {
		// The partial result is still meaningful: report how far the
		// broadcast got before failing the run.
		informed := 0
		for _, at := range res.InformedAt {
			if at >= 0 {
				informed++
			}
		}
		fmt.Printf("step budget exhausted: %d/%d nodes informed after %d steps (raise -maxsteps)\n",
			informed, g.N(), res.StepsSimulated)
		return err
	}
	if err != nil {
		return err
	}
	fmt.Printf("broadcast time:  %d steps\n", res.BroadcastTime)
	fmt.Printf("transmissions:   %d\n", res.Transmissions)
	fmt.Printf("receptions:      %d\n", res.Receptions)
	fmt.Printf("collisions:      %d\n", res.Collisions)
	if r, err := g.Radius(); err == nil && r > 0 {
		fmt.Printf("steps per layer: %.1f\n", float64(res.BroadcastTime)/float64(r))
	}
	if *timeline {
		progress, err := adhocradio.AnalyzeProgress(g, res)
		if err != nil {
			return err
		}
		fmt.Println(progress.Timeline(60))
		if layer, delay := progress.SlowestLayer(); layer >= 0 {
			fmt.Printf("slowest layer:   %d (%d steps to cross)\n", layer, delay)
		}
	}
	if *energy {
		e := collector.Energy()
		fmt.Printf("energy: %d transmissions over %d active nodes (mean %.1f, max %d at node %d)\n",
			e.Total, e.Nodes, e.Mean, e.Max, e.MaxNode)
		fmt.Printf("fairness (Jain): %.3f\n", collector.JainFairness())
		fmt.Printf("top transmitters: %v\n", collector.TopTransmitters(5))
	}
	if *heatmap {
		progress, err := adhocradio.AnalyzeProgress(g, res)
		if err != nil {
			return err
		}
		layers, err := g.Layers()
		if err != nil {
			return err
		}
		fmt.Print(adhocradio.LayerHeatmap(progress, layers, res.InformedAt, 60))
	}
	return nil
}

// buildTopology maps the flags onto a TopologySpec — the same canonical
// description radiosd caches compiled graphs by, so the CLI and the daemon
// build byte-identical networks for the same parameters.
func buildTopology(topo string, n, d int, p float64, seed uint64) (*adhocradio.Graph, error) {
	spec := adhocradio.TopologySpec{Kind: topo, N: n, D: d, P: p, Seed: seed}
	if topo == "grid" {
		side := int(math.Sqrt(float64(n)))
		spec = adhocradio.TopologySpec{Kind: "grid", Rows: side, Cols: side}
	}
	g, err := spec.Build()
	if errors.Is(err, adhocradio.ErrInvalidTopologySpec) {
		return nil, fmt.Errorf("bad -topo/-n/-d/-p combination (kinds: %s): %w",
			strings.Join(adhocradio.TopologyKinds(), "|"), err)
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

func pickProtocol(name string) (adhocradio.Protocol, error) {
	switch name {
	case "kp":
		return adhocradio.NewOptimalRandomized(), nil
	case "kp-paper":
		return adhocradio.NewOptimalRandomizedWithParams(adhocradio.RandomizedParams{
			StageFactor: 4660, FallbackFactor: 32}), nil
	case "bgi":
		return adhocradio.NewDecay(), nil
	case "rr":
		return adhocradio.NewRoundRobin(), nil
	case "ss":
		return adhocradio.NewSelectAndSend(), nil
	case "cl":
		return adhocradio.NewCompleteLayered(), nil
	case "inter":
		return adhocradio.NewInterleaved(adhocradio.NewRoundRobin(), adhocradio.NewSelectAndSend()), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}
