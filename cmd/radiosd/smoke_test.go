package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"context"

	"adhocradio/internal/graph"
	"adhocradio/internal/service"
)

// TestMain turns the test binary into a radiosd child process when
// re-executed with RADIOSD_CHILD=1 — the helper-process pattern, so the
// smoke test below can deliver a real SIGTERM to a real daemon and assert a
// clean drain, instead of faking cancellation in-process.
func TestMain(m *testing.M) {
	if os.Getenv("RADIOSD_CHILD") == "1" {
		os.Exit(childMain())
	}
	os.Exit(m.Run())
}

func childMain() int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	o := options{
		addr:       "127.0.0.1:0",
		workers:    4,
		queueCap:   16,
		cacheCap:   8,
		maxTimeout: 30 * time.Second,
		drainGrace: 2 * time.Minute,
	}
	if err := runWith(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radiosd:", err)
		return 1
	}
	return 0
}

// TestServiceSmoke is the end-to-end gate `make service-smoke` runs (under
// -race): boot a real radiosd process, hammer it with concurrent clients
// mixing cached and uncached topologies, assert every response is
// deterministic (identical request → byte-identical body), scrape /metrics,
// submit an async experiment, SIGTERM mid-everything, and require a clean
// drain: exit 0, zero failed, zero rejected, zero active jobs.
func TestServiceSmoke(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal delivery")
	}
	if testing.Short() {
		t.Skip("spawns a child daemon process")
	}

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "RADIOSD_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the listen line to learn the port; keep draining stdout so
	// the child never blocks, capturing it for the drain-report assertions.
	addrCh := make(chan string, 1)
	var outMu sync.Mutex
	var childOut strings.Builder
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			outMu.Lock()
			childOut.WriteString(line)
			childOut.WriteByte('\n')
			outMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "radiosd: listening on http://"); ok {
				addrCh <- strings.Fields(rest)[0]
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(time.Minute):
		t.Fatal("timed out waiting for the child's listen line")
	}

	// The client mix: three distinct topologies × repeated seeds, so the
	// compiled-graph cache sees both cold misses and heavy hit traffic.
	requests := []service.SimulateRequest{
		{Topology: topoSpec("gnp", 96, 0.08, 11), Protocol: "kp", Seed: 5},
		{Topology: topoSpec("path", 64, 0, 0), Protocol: "ss", Seed: 0},
		{Topology: topoSpec("gnp", 80, 0.1, 3), Protocol: "bgi", Seed: 9},
	}
	const clients = 8
	const perClient = 6
	type outcome struct {
		req  int
		body []byte
		code int
	}
	outcomes := make(chan outcome, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ri := (c + i) % len(requests)
				var buf bytes.Buffer
				if err := json.NewEncoder(&buf).Encode(requests[ri]); err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(base+"/v1/simulate", "application/json", &buf)
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				outcomes <- outcome{ri, body, resp.StatusCode}
			}
		}(c)
	}
	wg.Wait()
	close(outcomes)

	// Determinism across every client and cache state: all bodies for one
	// request are byte-identical.
	canonical := make(map[int][]byte)
	total := 0
	for o := range outcomes {
		total++
		if o.code != http.StatusOK {
			t.Fatalf("request %d answered %d: %s", o.req, o.code, o.body)
		}
		if prev, ok := canonical[o.req]; !ok {
			canonical[o.req] = o.body
		} else if !bytes.Equal(prev, o.body) {
			t.Fatalf("nondeterministic response for request %d:\n%s\nvs\n%s", o.req, prev, o.body)
		}
	}
	if total != clients*perClient {
		t.Fatalf("got %d responses, want %d", total, clients*perClient)
	}

	// Metrics reflect the traffic: every job completed, cache hits
	// dominate (3 misses, the rest hits).
	metrics := httpGetBody(t, base+"/metrics")
	for _, want := range []string{
		"radiosd_jobs_completed_total 48",
		"radiosd_jobs_failed_total 0",
		"radiosd_jobs_rejected_total 0",
		"radiosd_cache_misses_total 3",
		"radiosd_cache_hits_total 45",
		"radiosd_draining 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if hz := httpGetBody(t, base+"/healthz"); !strings.Contains(hz, `"ok"`) {
		t.Fatalf("healthz = %s", hz)
	}

	// Accept an async experiment, then SIGTERM immediately: the drain must
	// finish it before the process exits.
	resp, err := http.Post(base+"/v1/experiments/E9", "application/json",
		strings.NewReader(`{"seed":1,"quick":true,"trials":1}`))
	if err != nil {
		t.Fatal(err)
	}
	accepted, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("experiment answered %d: %s", resp.StatusCode, accepted)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		outMu.Lock()
		defer outMu.Unlock()
		t.Fatalf("child exited dirty: %v\n%s", err, childOut.String())
	}

	outMu.Lock()
	out := childOut.String()
	outMu.Unlock()
	drained := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "radiosd: drained:") {
			drained = line
		}
	}
	if drained == "" {
		t.Fatalf("no drain report in child output:\n%s", out)
	}
	for _, want := range []string{"completed=49", "failed=0", "rejected=0", "active=0"} {
		if !strings.Contains(drained, want) {
			t.Fatalf("drain report %q missing %q", drained, want)
		}
	}
}

func topoSpec(kind string, n int, p float64, seed uint64) graph.Spec {
	return graph.Spec{Kind: kind, N: n, P: p, Seed: seed}
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
