// Command radiosd is the long-running simulation service: the adhocradio
// engine behind a small HTTP/JSON API, for driving parameter sweeps from
// notebooks or sharing one warm simulation host between users.
//
//	radiosd -addr :8080 -workers 4
//
// Endpoints:
//
//	POST /v1/simulate            run one broadcast simulation (synchronous)
//	POST /v1/experiments/{id}    start a registered experiment (async, 202)
//	GET  /v1/jobs/{id}           job status and result
//	GET  /healthz                liveness ("ok", "draining")
//	GET  /metrics                Prometheus text format
//
// Repeated requests for the same topology spec share one compiled graph via
// an LRU cache; responses are deterministic functions of the request, so a
// cache hit can never change a result. A full job queue answers 503 with
// Retry-After (backpressure, not unbounded buffering). On SIGINT/SIGTERM
// the daemon stops accepting, finishes every accepted job, prints a final
// drain report with the observability snapshot, and exits 0 only if no job
// was left behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adhocradio/internal/service"
)

type options struct {
	addr       string
	workers    int
	queueCap   int
	cacheCap   int
	maxTimeout time.Duration
	drainGrace time.Duration
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	if err := runWith(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radiosd:", err)
		os.Exit(1)
	}
}

func parseFlags(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("radiosd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var o options
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&o.workers, "workers", 2, "simulation worker goroutines")
	fs.IntVar(&o.queueCap, "queue", 16, "job queue capacity (full queue answers 503)")
	fs.IntVar(&o.cacheCap, "cache", 32, "compiled-graph cache entries")
	fs.DurationVar(&o.maxTimeout, "max-timeout", 30*time.Second, "per-request deadline ceiling")
	fs.DurationVar(&o.drainGrace, "drain-grace", 2*time.Minute, "graceful shutdown budget for in-flight HTTP requests")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	return o, nil
}

// runWith serves until ctx is cancelled, then drains gracefully. All
// diagnostics go to out so tests can drive a daemon in-process or as a
// child and assert on the drain report.
func runWith(ctx context.Context, o options, out io.Writer) error {
	svc := service.New(service.Config{
		Workers:    o.workers,
		QueueCap:   o.queueCap,
		CacheCap:   o.cacheCap,
		MaxTimeout: o.maxTimeout,
	})
	svc.Start()
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		svc.Drain()
		return err
	}
	fmt.Fprintf(out, "radiosd: listening on http://%s (workers=%d queue=%d cache=%d)\n",
		ln.Addr(), o.workers, o.queueCap, o.cacheCap)
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		svc.Drain()
		return err
	case <-ctx.Done():
	}

	// Graceful drain, in dependency order: first let in-flight HTTP
	// requests finish (synchronous simulate handlers wait for their jobs),
	// then let the workers empty the queue of accepted async jobs.
	fmt.Fprintln(out, "radiosd: shutdown requested; draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drainGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		svc.Drain()
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		svc.Drain()
		return err
	}
	rep := svc.Drain()
	fmt.Fprintf(out, "radiosd: drained: completed=%d failed=%d rejected=%d active=%d cache_hits=%d cache_misses=%d\n",
		rep.Completed, rep.Failed, rep.Rejected, rep.Active, rep.CacheHits, rep.CacheMiss)
	fmt.Fprintf(out, "radiosd: engine counters: steps=%d transmissions=%d receptions=%d collisions=%d\n",
		rep.Counters.Steps, rep.Counters.Transmissions, rep.Counters.Receptions, rep.Counters.Collisions)
	if rep.Active != 0 {
		return fmt.Errorf("drain left %d accepted jobs unfinished", rep.Active)
	}
	return nil
}
