package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"adhocradio/internal/experiment/benchjson"
	"adhocradio/internal/obs"
)

// writeShardPair writes two complete shard documents (one experiment, three
// points split by parity) plus the unsharded reference, returning the three
// paths.
func writeShardPair(t *testing.T) (s1, s2, ref string) {
	t.Helper()
	dir := t.TempDir()
	base := benchjson.Experiment{
		ID:      "E1",
		Title:   "demo",
		Columns: []string{"n", "t"},
	}
	mk := func(id string, idx, cnt int, e benchjson.Experiment) string {
		r := &benchjson.Run{
			Schema:      benchjson.SchemaVersion,
			ID:          id,
			Seed:        7,
			Quick:       true,
			ShardIndex:  idx,
			ShardCount:  cnt,
			Experiments: []benchjson.Experiment{e},
		}
		path := filepath.Join(dir, benchjson.Filename(id))
		if err := benchjson.WriteFileAtomic(path, r); err != nil {
			t.Fatal(err)
		}
		return path
	}

	e1 := base
	e1.Rows = [][]string{{"p0", "1"}, {"p2", "1"}}
	e1.Points = []benchjson.PointSpan{{Index: 0, Rows: 1}, {Index: 2, Rows: 1}}
	e1.Counters = &obs.Counters{Steps: 10}
	s1 = mk("camp_shard1of2", 1, 2, e1)

	e2 := base
	e2.Rows = [][]string{{"p1", "1"}}
	e2.Points = []benchjson.PointSpan{{Index: 1, Rows: 1}}
	e2.Counters = &obs.Counters{Steps: 5}
	s2 = mk("camp_shard2of2", 2, 2, e2)

	eu := base
	eu.Rows = [][]string{{"p0", "1"}, {"p1", "1"}, {"p2", "1"}}
	eu.Counters = &obs.Counters{Steps: 15}
	ref = mk("camp", 0, 0, eu)
	return s1, s2, ref
}

func TestMergeToFileAndVerify(t *testing.T) {
	s1, s2, ref := writeShardPair(t)
	out := filepath.Join(t.TempDir(), "merged.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", out, "-against", ref, s1, s2}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "byte-identical") {
		t.Fatalf("missing verification confirmation:\n%s", stdout.String())
	}
	merged, err := benchjson.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ID != "camp" || len(merged.Experiments) != 1 {
		t.Fatalf("merged doc: %+v", merged)
	}
	if got := merged.Experiments[0].Rows; len(got) != 3 || got[1][0] != "p1" {
		t.Fatalf("rows out of point order: %v", got)
	}
	if merged.Experiments[0].Counters.Steps != 15 {
		t.Fatalf("counters not summed: %+v", merged.Experiments[0].Counters)
	}
}

func TestMergeToStdout(t *testing.T) {
	s1, s2, _ := writeShardPair(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{s1, s2}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if _, err := benchjson.Decode(&stdout); err != nil {
		t.Fatalf("stdout is not a valid document: %v", err)
	}
}

// TestVerifyDetectsDivergence: -against against a reference with different
// payload exits 1 and names the first diverging line.
func TestVerifyDetectsDivergence(t *testing.T) {
	s1, s2, _ := writeShardPair(t)
	// Use shard 1 itself as a bogus "reference": rows differ.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-against", s1, s1, s2}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "differ") {
		t.Fatalf("no divergence diagnostic:\n%s", stderr.String())
	}
}

func TestRefusesIncompleteOrMismatched(t *testing.T) {
	s1, s2, _ := writeShardPair(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing-shard", []string{s1}, "have 1 of 2"},
		{"duplicate-shard", []string{s1, s1}, "appears twice"},
		{"unreadable-input", []string{filepath.Join(t.TempDir(), "nope.json"), s2}, "no such file"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 1 {
				t.Fatalf("exit %d, want 1", code)
			}
			if !strings.Contains(stderr.String(), c.want) {
				t.Fatalf("stderr %q, want mention of %q", stderr.String(), c.want)
			}
		})
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown-flag exit %d, want 2", code)
	}
}

func TestExplicitRunID(t *testing.T) {
	s1, s2, _ := writeShardPair(t)
	out := filepath.Join(t.TempDir(), "m.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", out, "-runid", "custom", s1, s2}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	merged, err := benchjson.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ID != "custom" {
		t.Fatalf("id = %q", merged.ID)
	}
}
