// Command benchmerge combines the partial BENCH_*.json documents written
// by sharded or resumed radiobench campaigns into one complete schema-v2
// document that is canonically byte-identical to an uninterrupted,
// unsharded run of the same workload.
//
// Usage:
//
//	benchmerge -o merged.json BENCH_x_shard1of2.json BENCH_x_shard2of2.json
//	benchmerge -against BENCH_x.json BENCH_x_shard*.json   # verify bit-identity
//	benchmerge -runid x ...          # name the merged run explicitly
//	benchmerge -force ...            # waive the environment-manifest check
//
// Inputs must form one complete campaign: every shard 1..k exactly once,
// none interrupted (resume those first), all agreeing on seed and workload
// shape — mismatches are refused, because merging them would fabricate a
// run nobody executed. Rows are re-interleaved in measurement-point order
// from each experiment's point-span provenance; engine counters are summed
// (integer addition commutes, so totals match the unsharded run exactly)
// and per-trial histograms merge into one trial-stats block.
//
// With -against REF the merged document's canonical projection (see
// benchjson.Canonical) is byte-compared to REF's; a mismatch prints the
// first divergence and exits 1 — the CI campaign-smoke gate.
//
// Exit status: 0 on success, 1 on merge or comparison failure, 2 on usage
// errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"adhocradio/internal/experiment/benchjson"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchmerge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the merged document to this file (atomic; default: stdout)")
	runID := fs.String("runid", "", "run id of the merged document (default: derived by stripping the _shard<i>of<k> suffix)")
	against := fs.String("against", "", "compare the merged document's canonical projection byte-for-byte against this reference document")
	force := fs.Bool("force", false, "waive the environment-manifest equality check (seed/workload checks always apply)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchmerge [-o OUT] [-runid ID] [-against REF] [-force] BENCH_shard1.json ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	runs := make([]*benchjson.Run, 0, fs.NArg())
	for _, path := range fs.Args() {
		r, err := benchjson.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "benchmerge:", err)
			return 1
		}
		runs = append(runs, r)
	}
	merged, err := benchjson.Merge(runs, benchjson.MergeOptions{ID: *runID, Force: *force})
	if err != nil {
		fmt.Fprintln(stderr, "benchmerge:", err)
		return 1
	}

	if *out != "" {
		if err := benchjson.WriteFileAtomic(*out, merged); err != nil {
			fmt.Fprintln(stderr, "benchmerge:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d experiments, %d inputs)\n", *out, len(merged.Experiments), len(runs))
	} else if err := benchjson.Encode(stdout, merged); err != nil {
		fmt.Fprintln(stderr, "benchmerge:", err)
		return 1
	}

	if *against != "" {
		ref, err := benchjson.ReadFile(*against)
		if err != nil {
			fmt.Fprintln(stderr, "benchmerge:", err)
			return 1
		}
		if err := diffCanonical(merged, ref); err != nil {
			fmt.Fprintf(stderr, "benchmerge: %s: %v\n", *against, err)
			return 1
		}
		fmt.Fprintf(stdout, "canonical documents are byte-identical (%s)\n", *against)
	}
	return 0
}

// diffCanonical byte-compares the canonical encodings of a and b,
// reporting the first diverging line so a CI failure is diagnosable from
// the log alone.
func diffCanonical(a, b *benchjson.Run) error {
	var ab, bb bytes.Buffer
	if err := benchjson.Encode(&ab, a.Canonical()); err != nil {
		return err
	}
	if err := benchjson.Encode(&bb, b.Canonical()); err != nil {
		return err
	}
	if bytes.Equal(ab.Bytes(), bb.Bytes()) {
		return nil
	}
	al, bl := bytes.Split(ab.Bytes(), []byte("\n")), bytes.Split(bb.Bytes(), []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Errorf("canonical documents differ at line %d:\n  merged:    %s\n  reference: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Errorf("canonical documents differ in length (%d vs %d lines)", len(al), len(bl))
}
