// Command radiobench regenerates the reproduction experiments E1–E17 of
// DESIGN.md and prints their tables (optionally also as CSV files and as a
// machine-readable BENCH_<id>.json record).
//
// Usage:
//
//	radiobench                 # run everything at full scale, all cores
//	radiobench -only E4,E6     # a subset
//	radiobench -quick          # reduced sizes (seconds instead of minutes)
//	radiobench -parallel 1     # sequential (bit-identical to any -parallel)
//	radiobench -csv out/       # additionally write one CSV per table
//	radiobench -json out/      # additionally write out/BENCH_<runid>.json
//	radiobench -verify         # assert the paper's qualitative claims
//	radiobench -cpuprofile cpu.pprof        # capture a CPU profile
//	radiobench -memprofile mem.pprof        # heap profile at exit
//	radiobench -goroutineprofile grt.pprof  # goroutine dump at exit
//	radiobench -json out/ -ckpt             # checkpoint each point; resumable
//	radiobench -json out/ -shard 1/2        # run half the points (see benchmerge)
//	radiobench -json out/ -resume quick_seed1_shard1of2   # pick up after a crash
//
// The experiment engine derives every random stream from (seed, point/trial
// index), so the tables — and the deterministic portion of the JSON — are
// bit-identical for every -parallel value; workers only change wall time.
// The JSON record embeds a run manifest (toolchain, host shape, VCS
// revision, effective flags) and, per experiment, the aggregated engine
// counters plus per-trial wall-time statistics; benchjson.Canonical keeps
// the counters (deterministic) and strips everything timing- or
// environment-shaped.
//
// SIGINT cancels the run between measurement points: completed tables are
// still written, and the JSON record is emitted with "interrupted": true.
//
// Campaign mode (-shard, -resume, -ckpt; requires -json) makes runs
// crash-safe and distributable: every completed measurement point is
// appended to <runid>.ckpt — an fsync'd, self-checksummed JSON-line file
// rewritten atomically — before the next point starts, -resume replays the
// checkpointed points without re-simulation, and -shard i/k runs only the
// points with index ≡ i-1 (mod k). Because every random stream derives from
// (seed, point/trial index), the union of shard outputs merged by
// cmd/benchmerge — and a run killed mid-campaign then resumed — is
// canonically byte-identical to one uninterrupted unsharded run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"adhocradio"
	"adhocradio/internal/experiment"
	"adhocradio/internal/experiment/benchjson"
	"adhocradio/internal/experiment/campaign"
	"adhocradio/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiobench:", err)
		os.Exit(1)
	}
}

// options carries the resolved flag values; run parses them from the
// command line, tests drive runWith directly.
type options struct {
	only             string
	quick            bool
	trials           int
	seed             uint64
	parallel         int
	csvDir           string
	jsonDir          string
	runID            string
	verify           bool
	cpuProfile       string
	memProfile       string
	goroutineProfile string
	shard            string
	resume           string
	ckpt             bool
	// afterPoint, when non-nil, runs after each measurement point is
	// durably checkpointed (campaign mode only) — the hook the SIGINT
	// end-to-end test hangs off.
	afterPoint func(exp string, point int)
	// crashAfter > 0 simulates a crash (os.Exit without unwinding) after
	// that many freshly committed points; set from RADIOBENCH_CRASH_AFTER
	// so `make campaign-smoke` can kill a run at a deterministic spot.
	crashAfter int
}

// campaignMode reports whether any campaign feature (sharding, resuming,
// or plain checkpointing) is requested.
func (o options) campaignMode() bool {
	return o.shard != "" || o.resume != "" || o.ckpt
}

// flagMap renders the resolved options for the run manifest.
func (o options) flagMap() map[string]string {
	m := map[string]string{
		"quick":    strconv.FormatBool(o.quick),
		"seed":     strconv.FormatUint(o.seed, 10),
		"trials":   strconv.Itoa(o.trials),
		"parallel": strconv.Itoa(o.parallel),
		"verify":   strconv.FormatBool(o.verify),
	}
	if o.only != "" {
		m["only"] = o.only
	}
	if o.runID != "" {
		m["runid"] = o.runID
	}
	if o.shard != "" {
		m["shard"] = o.shard
	}
	if o.resume != "" {
		m["resume"] = o.resume
	}
	if o.ckpt {
		m["ckpt"] = "true"
	}
	return m
}

func run() error {
	var o options
	flag.StringVar(&o.only, "only", "", "comma-separated experiment ids (default: all)")
	flag.BoolVar(&o.quick, "quick", false, "reduced problem sizes")
	flag.IntVar(&o.trials, "trials", 0, "trials per randomized point (0 = per-experiment default)")
	flag.Uint64Var(&o.seed, "seed", 1, "master seed")
	flag.IntVar(&o.parallel, "parallel", 0, "worker goroutines for independent points/trials (0 = all cores, 1 = sequential; output is identical either way)")
	flag.StringVar(&o.csvDir, "csv", "", "directory to write per-table CSV files (created if missing)")
	flag.StringVar(&o.jsonDir, "json", "", "directory to write the BENCH_<runid>.json record (created if missing)")
	flag.StringVar(&o.runID, "runid", "", "run identifier for the JSON file name (default: <quick|full>_seed<seed>)")
	flag.BoolVar(&o.verify, "verify", false, "assert the paper's qualitative claims on each table (scale-sensitive checks are skipped under -quick)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&o.goroutineProfile, "goroutineprofile", "", "write a goroutine profile to this file at exit")
	flag.StringVar(&o.shard, "shard", "", "run only shard i of k measurement points, syntax i/k (requires -json; shard outputs merge with cmd/benchmerge)")
	flag.StringVar(&o.resume, "resume", "", "resume the campaign with this run id from its <runid>.ckpt checkpoint (requires -json)")
	flag.BoolVar(&o.ckpt, "ckpt", false, "checkpoint every completed measurement point so the run is resumable (-shard and -resume imply this)")
	flag.Parse()
	if v := os.Getenv("RADIOBENCH_CRASH_AFTER"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return fmt.Errorf("RADIOBENCH_CRASH_AFTER=%q: want a positive integer", v)
		}
		o.crashAfter = n
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return runWith(ctx, o, os.Stdout)
}

// runWith executes the experiment sweep. A cancelled ctx (SIGINT in normal
// operation) stops the run between measurement points: completed tables are
// still rendered and written, the JSON record carries "interrupted": true,
// and the returned error is non-nil so the process exits non-zero. Profiles
// are flushed before any exit path so an interrupted or shape-failed run
// still yields usable captures.
func runWith(ctx context.Context, o options, stdout io.Writer) error {
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if o.memProfile != "" || o.goroutineProfile != "" {
		defer func() {
			if o.memProfile != "" {
				runtime.GC() // settle the heap so the profile reflects live data
				if err := writeProfile("heap", o.memProfile); err != nil {
					fmt.Fprintln(os.Stderr, "radiobench:", err)
				}
			}
			if o.goroutineProfile != "" {
				if err := writeProfile("goroutine", o.goroutineProfile); err != nil {
					fmt.Fprintln(os.Stderr, "radiobench:", err)
				}
			}
		}()
	}

	want := map[string]bool{}
	if o.only != "" {
		// Validate eagerly: a typo'd experiment ID used to be silently
		// skipped, turning "-only E42" into an empty (and green) run.
		for _, id := range strings.Split(o.only, ",") {
			id = strings.TrimSpace(id)
			if _, err := experiment.ByID(id); errors.Is(err, experiment.ErrUnknownExperiment) {
				return fmt.Errorf("-only: %w", err)
			}
			want[id] = true
		}
	}
	workers := o.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := adhocradio.ExperimentConfig{Seed: o.seed, Quick: o.quick, Trials: o.trials, Parallel: workers}

	for _, dir := range []string{o.csvDir, o.jsonDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}

	shard := campaign.Single()
	if o.shard != "" {
		var err error
		if shard, err = campaign.ParseShard(o.shard); err != nil {
			return err
		}
	}
	id := o.runID
	if id == "" {
		mode := "full"
		if o.quick {
			mode = "quick"
		}
		id = fmt.Sprintf("%s_seed%d", mode, o.seed)
	}
	if o.resume != "" {
		if o.runID != "" && o.runID != o.resume {
			return fmt.Errorf("-runid %s conflicts with -resume %s", o.runID, o.resume)
		}
		id = o.resume
	} else if shard.Count > 1 {
		id += shard.Suffix()
	}

	var camp *campaign.State
	if o.campaignMode() {
		if o.jsonDir == "" {
			return fmt.Errorf("campaign mode (-shard/-resume/-ckpt) needs -json DIR to hold the checkpoint and record")
		}
		if o.verify && shard.Count > 1 {
			return fmt.Errorf("-verify needs complete tables; run it against the merged document, not a shard")
		}
		ckptPath := filepath.Join(o.jsonDir, id+".ckpt")
		hdr := campaign.Header{Seed: o.seed, Quick: o.quick, Trials: o.trials, Only: o.only}
		var err error
		if o.resume != "" {
			if camp, err = campaign.Resume(ckptPath, id, hdr); err != nil {
				return err
			}
			if o.shard != "" && camp.Shard != shard {
				return fmt.Errorf("-shard %s conflicts with the checkpoint's shard %s", shard, camp.Shard)
			}
			shard = camp.Shard
			fmt.Fprintf(stdout, "resuming %s: %d measurement point(s) already checkpointed\n\n", id, camp.Checkpointed())
		} else if camp, err = campaign.Create(ckptPath, id, shard, hdr); err != nil {
			return err
		}
		camp.AfterPoint = o.afterPoint
		if o.crashAfter > 0 {
			user := camp.AfterPoint
			committed := 0
			camp.AfterPoint = func(exp string, point int) {
				if user != nil {
					user(exp, point)
				}
				if committed++; committed == o.crashAfter {
					// Simulated SIGKILL for make campaign-smoke: exit without
					// unwinding, leaving only the fsync'd checkpoint behind.
					fmt.Fprintf(os.Stderr, "radiobench: RADIOBENCH_CRASH_AFTER=%d: simulating a crash after %s point %d\n",
						o.crashAfter, exp, point)
					os.Exit(3)
				}
			}
		}
		cfg.Campaign = camp
	}

	record := &benchjson.Run{
		Schema:   benchjson.SchemaVersion,
		ID:       id,
		Seed:     o.seed,
		Quick:    o.quick,
		Trials:   o.trials,
		Parallel: o.parallel,
		Workers:  workers,
		Manifest: benchjson.NewManifest(o.flagMap()),
	}
	if shard.Count > 1 {
		record.ShardIndex, record.ShardCount = shard.Index, shard.Count
	}
	record.Experiments = []benchjson.Experiment{}

	var (
		failures    []string
		interrupted bool
	)
	totalStart := time.Now()
	totalCPU := cpuTime()
	obs.Default.Take() // start the per-experiment counter windows clean
	for _, e := range adhocradio.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		cpu0 := cpuTime()
		tab, err := e.Run(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tab.Render(stdout); err != nil {
			return err
		}
		je := benchjson.FromTable(tab)
		je.Timing = &benchjson.Timing{
			WallMS: time.Since(start).Milliseconds(),
			CPUMS:  (cpuTime() - cpu0).Milliseconds(),
		}
		// Drain the observability recorder: everything accumulated since the
		// previous drain belongs to this experiment (the sweep is sequential;
		// only trials inside one experiment run concurrently).
		counters, trialHist := obs.Default.Take()
		if !counters.IsZero() {
			je.Counters = &counters
		}
		je.TrialStats = benchjson.TrialStatsFrom(trialHist)
		if camp != nil {
			// Campaign provenance: which measurement point produced which
			// rows (what benchmerge interleaves on), and the raw trial
			// histogram so shard histograms merge into one TrialStats.
			for _, sp := range camp.Spans(e.ID) {
				je.Points = append(je.Points, benchjson.PointSpan{Index: sp.Point, Rows: sp.Rows})
			}
			if trialHist.Count > 0 {
				h := trialHist
				je.TrialHist = &h
			}
		}
		if o.verify {
			je.ShapeCheck = checkShape(e.ID, tab, o.quick)
			switch {
			case je.ShapeCheck == "pass":
				fmt.Fprintf(stdout, "shape check: the paper's claim holds on this table\n")
			case strings.HasPrefix(je.ShapeCheck, "fail"):
				fmt.Fprintf(stdout, "shape check: FAILED: %s\n", strings.TrimPrefix(je.ShapeCheck, "fail: "))
				failures = append(failures, e.ID)
			case je.ShapeCheck != "":
				fmt.Fprintf(stdout, "shape check: %s\n", je.ShapeCheck)
			}
		}
		fmt.Fprintf(stdout, "(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if o.csvDir != "" {
			if err := writeCSV(filepath.Join(o.csvDir, e.ID+".csv"), tab); err != nil {
				return err
			}
		}
		record.Experiments = append(record.Experiments, je)
	}
	record.Interrupted = interrupted
	record.Timing = &benchjson.Timing{
		WallMS: time.Since(totalStart).Milliseconds(),
		CPUMS:  (cpuTime() - totalCPU).Milliseconds(),
	}

	if o.jsonDir != "" {
		path := filepath.Join(o.jsonDir, benchjson.Filename(id))
		if err := benchjson.WriteFileAtomic(path, record); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d experiments)\n", path, len(record.Experiments))
	}
	if interrupted {
		return fmt.Errorf("interrupted: %d experiment(s) completed before cancellation", len(record.Experiments))
	}
	if len(failures) > 0 {
		return fmt.Errorf("qualitative-claim regression: shape checks failed for %s", strings.Join(failures, ", "))
	}
	return nil
}

// checkShape runs the experiment's qualitative-claim check and reports
// "pass", "fail: <reason>", or a skip marker for checks whose claims only
// hold at full scale.
func checkShape(id string, tab *experiment.Table, quick bool) string {
	check, ok := experiment.ShapeChecks()[id]
	if !ok {
		return ""
	}
	if quick && !experiment.QuickSafe(id) {
		return "skipped: scale-sensitive claim, quick sizes not meaningful"
	}
	if err := check(tab); err != nil {
		return "fail: " + err.Error()
	}
	return "pass"
}

// writeCSV writes one table, returning (not panicking on) path errors.
func writeCSV(path string, tab *experiment.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing csv: %w", err)
	}
	if err := tab.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("writing csv %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing csv %s: %w", path, err)
	}
	return nil
}

// writeProfile dumps the named runtime/pprof profile to path.
func writeProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("writing %s profile: unknown profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing %s profile: %w", name, err)
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("writing %s profile %s: %w", name, path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s profile %s: %w", name, path, err)
	}
	return nil
}
