// Command radiobench regenerates the reproduction experiments E1–E14 of
// DESIGN.md and prints their tables (optionally also as CSV files).
//
// Usage:
//
//	radiobench                 # run everything at full scale
//	radiobench -only E4,E6     # a subset
//	radiobench -quick          # reduced sizes (seconds instead of minutes)
//	radiobench -csv out/       # additionally write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"adhocradio"
	"adhocradio/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiobench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only   = flag.String("only", "", "comma-separated experiment ids (default: all)")
		quick  = flag.Bool("quick", false, "reduced problem sizes")
		trials = flag.Int("trials", 0, "trials per randomized point (0 = per-experiment default)")
		seed   = flag.Uint64("seed", 1, "master seed")
		csvDir = flag.String("csv", "", "directory to write per-table CSV files")
		verify = flag.Bool("verify", false, "assert the paper's qualitative claims on each table (full scale only)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	cfg := adhocradio.ExperimentConfig{Seed: *seed, Quick: *quick, Trials: *trials}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range adhocradio.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		if *verify {
			if check, ok := experiment.ShapeChecks()[e.ID]; ok {
				if err := check(tab); err != nil {
					return fmt.Errorf("shape check failed: %w", err)
				}
				fmt.Printf("shape check: the paper's claim holds on this table\n")
			}
		}
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, e.ID+".csv"))
			if err != nil {
				return err
			}
			if err := tab.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
