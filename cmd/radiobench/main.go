// Command radiobench regenerates the reproduction experiments E1–E17 of
// DESIGN.md and prints their tables (optionally also as CSV files and as a
// machine-readable BENCH_<id>.json record).
//
// Usage:
//
//	radiobench                 # run everything at full scale, all cores
//	radiobench -only E4,E6     # a subset
//	radiobench -quick          # reduced sizes (seconds instead of minutes)
//	radiobench -parallel 1     # sequential (bit-identical to any -parallel)
//	radiobench -csv out/       # additionally write one CSV per table
//	radiobench -json out/      # additionally write out/BENCH_<runid>.json
//	radiobench -verify         # assert the paper's qualitative claims
//
// The experiment engine derives every random stream from (seed, point/trial
// index), so the tables — and the deterministic portion of the JSON — are
// bit-identical for every -parallel value; workers only change wall time.
//
// SIGINT cancels the run between measurement points: completed tables are
// still written, and the JSON record is emitted with "interrupted": true.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"adhocradio"
	"adhocradio/internal/experiment"
	"adhocradio/internal/experiment/benchjson"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "radiobench:", err)
		os.Exit(1)
	}
}

// options carries the resolved flag values; run parses them from the
// command line, tests drive runWith directly.
type options struct {
	only     string
	quick    bool
	trials   int
	seed     uint64
	parallel int
	csvDir   string
	jsonDir  string
	runID    string
	verify   bool
}

func run() error {
	var o options
	flag.StringVar(&o.only, "only", "", "comma-separated experiment ids (default: all)")
	flag.BoolVar(&o.quick, "quick", false, "reduced problem sizes")
	flag.IntVar(&o.trials, "trials", 0, "trials per randomized point (0 = per-experiment default)")
	flag.Uint64Var(&o.seed, "seed", 1, "master seed")
	flag.IntVar(&o.parallel, "parallel", 0, "worker goroutines for independent points/trials (0 = all cores, 1 = sequential; output is identical either way)")
	flag.StringVar(&o.csvDir, "csv", "", "directory to write per-table CSV files (created if missing)")
	flag.StringVar(&o.jsonDir, "json", "", "directory to write the BENCH_<runid>.json record (created if missing)")
	flag.StringVar(&o.runID, "runid", "", "run identifier for the JSON file name (default: <quick|full>_seed<seed>)")
	flag.BoolVar(&o.verify, "verify", false, "assert the paper's qualitative claims on each table (scale-sensitive checks are skipped under -quick)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return runWith(ctx, o, os.Stdout)
}

// runWith executes the experiment sweep. A cancelled ctx (SIGINT in normal
// operation) stops the run between measurement points: completed tables are
// still rendered and written, the JSON record carries "interrupted": true,
// and the returned error is non-nil so the process exits non-zero.
func runWith(ctx context.Context, o options, stdout io.Writer) error {
	want := map[string]bool{}
	if o.only != "" {
		for _, id := range strings.Split(o.only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	workers := o.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := adhocradio.ExperimentConfig{Seed: o.seed, Quick: o.quick, Trials: o.trials, Parallel: workers}

	for _, dir := range []string{o.csvDir, o.jsonDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}

	id := o.runID
	if id == "" {
		mode := "full"
		if o.quick {
			mode = "quick"
		}
		id = fmt.Sprintf("%s_seed%d", mode, o.seed)
	}
	record := &benchjson.Run{
		Schema:     benchjson.SchemaVersion,
		ID:         id,
		Seed:       o.seed,
		Quick:      o.quick,
		Trials:     o.trials,
		Parallel:   o.parallel,
		Workers:    workers,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	record.Experiments = []benchjson.Experiment{}

	var (
		failures    []string
		interrupted bool
	)
	totalStart := time.Now()
	totalCPU := cpuTime()
	for _, e := range adhocradio.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		cpu0 := cpuTime()
		tab, err := e.Run(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tab.Render(stdout); err != nil {
			return err
		}
		je := benchjson.FromTable(tab)
		je.Timing = &benchjson.Timing{
			WallMS: time.Since(start).Milliseconds(),
			CPUMS:  (cpuTime() - cpu0).Milliseconds(),
		}
		if o.verify {
			je.ShapeCheck = checkShape(e.ID, tab, o.quick)
			switch {
			case je.ShapeCheck == "pass":
				fmt.Fprintf(stdout, "shape check: the paper's claim holds on this table\n")
			case strings.HasPrefix(je.ShapeCheck, "fail"):
				fmt.Fprintf(stdout, "shape check: FAILED: %s\n", strings.TrimPrefix(je.ShapeCheck, "fail: "))
				failures = append(failures, e.ID)
			case je.ShapeCheck != "":
				fmt.Fprintf(stdout, "shape check: %s\n", je.ShapeCheck)
			}
		}
		fmt.Fprintf(stdout, "(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if o.csvDir != "" {
			if err := writeCSV(filepath.Join(o.csvDir, e.ID+".csv"), tab); err != nil {
				return err
			}
		}
		record.Experiments = append(record.Experiments, je)
	}
	record.Interrupted = interrupted
	record.Timing = &benchjson.Timing{
		WallMS: time.Since(totalStart).Milliseconds(),
		CPUMS:  (cpuTime() - totalCPU).Milliseconds(),
	}

	if o.jsonDir != "" {
		path := filepath.Join(o.jsonDir, benchjson.Filename(id))
		if err := writeJSON(path, record); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d experiments)\n", path, len(record.Experiments))
	}
	if interrupted {
		return fmt.Errorf("interrupted: %d experiment(s) completed before cancellation", len(record.Experiments))
	}
	if len(failures) > 0 {
		return fmt.Errorf("qualitative-claim regression: shape checks failed for %s", strings.Join(failures, ", "))
	}
	return nil
}

// checkShape runs the experiment's qualitative-claim check and reports
// "pass", "fail: <reason>", or a skip marker for checks whose claims only
// hold at full scale.
func checkShape(id string, tab *experiment.Table, quick bool) string {
	check, ok := experiment.ShapeChecks()[id]
	if !ok {
		return ""
	}
	if quick && !experiment.QuickSafe(id) {
		return "skipped: scale-sensitive claim, quick sizes not meaningful"
	}
	if err := check(tab); err != nil {
		return "fail: " + err.Error()
	}
	return "pass"
}

// writeCSV writes one table, returning (not panicking on) path errors.
func writeCSV(path string, tab *experiment.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing csv: %w", err)
	}
	if err := tab.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("writing csv %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing csv %s: %w", path, err)
	}
	return nil
}

// writeJSON writes the bench record via a temp file + rename so a crash or
// a second SIGINT cannot leave a truncated BENCH_*.json behind.
func writeJSON(path string, record *benchjson.Run) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*.json")
	if err != nil {
		return fmt.Errorf("writing json: %w", err)
	}
	if err := benchjson.Encode(tmp, record); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("writing json %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("writing json %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("writing json %s: %w", path, err)
	}
	return nil
}
