package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocradio/internal/experiment/benchjson"
)

// TestRunWithCancelledContext drives the SIGINT path directly: a cancelled
// context must produce a non-nil error (so main exits non-zero), and the
// partial BENCH_*.json must still be written, schema-valid, and flagged
// interrupted.
func TestRunWithCancelledContext(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := runWith(ctx, options{only: "E5", quick: true, jsonDir: dir, runID: "sigint"}, &out)
	if err == nil {
		t.Fatal("cancelled run returned nil error (process would exit 0)")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want an interruption error", err)
	}

	path := filepath.Join(dir, benchjson.Filename("sigint"))
	f, ferr := os.Open(path)
	if ferr != nil {
		t.Fatalf("partial record not written: %v", ferr)
	}
	defer f.Close()
	rec, derr := benchjson.Decode(f)
	if derr != nil {
		t.Fatalf("partial record not schema-valid: %v", derr)
	}
	if !rec.Interrupted {
		t.Fatal("partial record not flagged interrupted")
	}
	if rec.Schema != benchjson.SchemaVersion {
		t.Fatalf("partial record schema %d, want %d", rec.Schema, benchjson.SchemaVersion)
	}
	if rec.Experiments == nil {
		t.Fatal("experiments field absent (null) in partial record")
	}
}

// TestRunWithCompletes is the happy-path counterpart: one quick experiment
// runs to completion, the record is written, and it is not interrupted.
func TestRunWithCompletes(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := runWith(context.Background(), options{only: "E5", quick: true, seed: 1, jsonDir: dir, runID: "ok"}, &out)
	if err != nil {
		t.Fatalf("runWith: %v", err)
	}
	f, ferr := os.Open(filepath.Join(dir, benchjson.Filename("ok")))
	if ferr != nil {
		t.Fatal(ferr)
	}
	defer f.Close()
	rec, derr := benchjson.Decode(f)
	if derr != nil {
		t.Fatal(derr)
	}
	if rec.Interrupted || len(rec.Experiments) != 1 || rec.Experiments[0].ID != "E5" {
		t.Fatalf("unexpected record: %+v", rec)
	}
	if !strings.Contains(out.String(), "E5") {
		t.Fatal("rendered output missing the experiment table")
	}
}
