package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocradio/internal/experiment/benchjson"
)

// TestRunWithCancelledContext drives the SIGINT path directly: a cancelled
// context must produce a non-nil error (so main exits non-zero), and the
// partial BENCH_*.json must still be written, schema-valid, and flagged
// interrupted.
func TestRunWithCancelledContext(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := runWith(ctx, options{only: "E5", quick: true, jsonDir: dir, runID: "sigint"}, &out)
	if err == nil {
		t.Fatal("cancelled run returned nil error (process would exit 0)")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want an interruption error", err)
	}

	path := filepath.Join(dir, benchjson.Filename("sigint"))
	f, ferr := os.Open(path)
	if ferr != nil {
		t.Fatalf("partial record not written: %v", ferr)
	}
	defer f.Close()
	rec, derr := benchjson.Decode(f)
	if derr != nil {
		t.Fatalf("partial record not schema-valid: %v", derr)
	}
	if !rec.Interrupted {
		t.Fatal("partial record not flagged interrupted")
	}
	if rec.Schema != benchjson.SchemaVersion {
		t.Fatalf("partial record schema %d, want %d", rec.Schema, benchjson.SchemaVersion)
	}
	if rec.Experiments == nil {
		t.Fatal("experiments field absent (null) in partial record")
	}
}

// TestRunWithCompletes is the happy-path counterpart: two quick experiments
// run to completion, the record is written with manifest, per-experiment
// counters, and (for the pooled-trial experiment) trial statistics, and it
// is not interrupted. E2 exercises meanTime's metered trials; E5 runs its
// simulations outside the metered helpers, so it carries counters but no
// trial stats.
func TestRunWithCompletes(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := runWith(context.Background(), options{only: "E2,E5", quick: true, seed: 1, jsonDir: dir, runID: "ok"}, &out)
	if err != nil {
		t.Fatalf("runWith: %v", err)
	}
	f, ferr := os.Open(filepath.Join(dir, benchjson.Filename("ok")))
	if ferr != nil {
		t.Fatal(ferr)
	}
	defer f.Close()
	rec, derr := benchjson.Decode(f)
	if derr != nil {
		t.Fatal(derr)
	}
	if rec.Interrupted || len(rec.Experiments) != 2 ||
		rec.Experiments[0].ID != "E2" || rec.Experiments[1].ID != "E5" {
		t.Fatalf("unexpected record: %+v", rec)
	}
	if !strings.Contains(out.String(), "E5") {
		t.Fatal("rendered output missing the experiment table")
	}
	if rec.Manifest == nil || rec.Manifest.GoVersion == "" || rec.Manifest.Flags["seed"] != "1" {
		t.Fatalf("record missing the run manifest: %+v", rec.Manifest)
	}
	for _, e := range rec.Experiments {
		if e.Counters == nil || e.Counters.Steps == 0 || e.Counters.Transmissions == 0 {
			t.Fatalf("%s: record missing aggregated engine counters: %+v", e.ID, e.Counters)
		}
		if e.Counters.FaultEvents() != 0 {
			t.Fatalf("%s: fault counters fired on a fault-free experiment: %+v", e.ID, e.Counters)
		}
	}
	if ts := rec.Experiments[0].TrialStats; ts == nil || ts.Trials == 0 || ts.MeanNS <= 0 {
		t.Fatalf("E2: record missing trial stats: %+v", ts)
	}
}

// TestRunWithProfiles: the three profile flags produce non-empty files even
// though the run is tiny.
func TestRunWithProfiles(t *testing.T) {
	dir := t.TempDir()
	o := options{
		only: "E5", quick: true, seed: 1,
		cpuProfile:       filepath.Join(dir, "cpu.pprof"),
		memProfile:       filepath.Join(dir, "mem.pprof"),
		goroutineProfile: filepath.Join(dir, "grt.pprof"),
	}
	var out bytes.Buffer
	if err := runWith(context.Background(), o, &out); err != nil {
		t.Fatalf("runWith: %v", err)
	}
	// The CPU profile is flushed by runWith's deferred StopCPUProfile, so it
	// is complete by the time runWith returns.
	for _, p := range []string{o.cpuProfile, o.memProfile, o.goroutineProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestWriteProfileUnknownName: a bogus profile name is an error, not a
// panic.
func TestWriteProfileUnknownName(t *testing.T) {
	if err := writeProfile("no-such-profile", filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestFlagMap: the manifest flag rendering covers every determinism-relevant
// option and omits empty optionals.
func TestFlagMap(t *testing.T) {
	m := options{quick: true, seed: 7, trials: 3, parallel: 2, verify: true}.flagMap()
	for k, want := range map[string]string{
		"quick": "true", "seed": "7", "trials": "3", "parallel": "2", "verify": "true",
	} {
		if m[k] != want {
			t.Fatalf("flagMap[%q] = %q, want %q", k, m[k], want)
		}
	}
	if _, ok := m["only"]; ok {
		t.Fatal("empty -only rendered")
	}
	if got := (options{only: "E1,E2", runID: "x"}).flagMap(); got["only"] != "E1,E2" || got["runid"] != "x" {
		t.Fatalf("optional flags lost: %+v", got)
	}
}
