package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocradio/internal/experiment/benchjson"
)

// campaignOpts is the fixed tiny workload every campaign test runs; E2
// exercises metered pooled trials (counters + trial stats), E5 a
// multi-point table.
func campaignOpts(jsonDir, runID string) options {
	return options{only: "E2,E5", quick: true, seed: 3, parallel: 2, jsonDir: jsonDir, runID: runID}
}

func readRun(t *testing.T, path string) *benchjson.Run {
	t.Helper()
	r, err := benchjson.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func canonicalBytes(t *testing.T, r *benchjson.Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := benchjson.Encode(&buf, r.Canonical()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignBitIdentity is the tentpole's acceptance test: for a fixed
// seed, (a) one unsharded run, (b) a 2-shard campaign merged, and (c) a run
// killed mid-campaign then resumed must be byte-for-byte identical on the
// canonical JSON — including the aggregated engine counters.
func TestCampaignBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite four times")
	}
	// (a) The unsharded reference.
	dirU := t.TempDir()
	if err := runWith(context.Background(), campaignOpts(dirU, "bi"), io.Discard); err != nil {
		t.Fatal(err)
	}
	want := canonicalBytes(t, readRun(t, filepath.Join(dirU, benchjson.Filename("bi"))))

	// (b) Two shards, merged in point order.
	dirS := t.TempDir()
	for _, sh := range []string{"1/2", "2/2"} {
		o := campaignOpts(dirS, "bi")
		o.shard = sh
		if err := runWith(context.Background(), o, io.Discard); err != nil {
			t.Fatalf("shard %s: %v", sh, err)
		}
	}
	s1 := readRun(t, filepath.Join(dirS, benchjson.Filename("bi_shard1of2")))
	s2 := readRun(t, filepath.Join(dirS, benchjson.Filename("bi_shard2of2")))
	merged, err := benchjson.Merge([]*benchjson.Run{s1, s2}, benchjson.MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if merged.ID != "bi" {
		t.Fatalf("merged id = %q", merged.ID)
	}
	if got := canonicalBytes(t, merged); !bytes.Equal(got, want) {
		t.Fatalf("merged shards differ from the unsharded run:\n%s\nvs\n%s", got, want)
	}

	// (c) Kill after two committed points (ctx cancellation inside the
	// post-commit hook — the same cut a SIGINT or crash produces, since the
	// checkpoint is already durable), then resume to completion.
	dirK := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := campaignOpts(dirK, "bi")
	o.ckpt = true
	points := 0
	o.afterPoint = func(string, int) {
		if points++; points == 2 {
			cancel()
		}
	}
	err = runWith(ctx, o, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("killed run err = %v, want interrupted", err)
	}
	partial := readRun(t, filepath.Join(dirK, benchjson.Filename("bi")))
	if !partial.Interrupted {
		t.Fatal("partial record not flagged interrupted")
	}

	ro := campaignOpts(dirK, "")
	ro.resume = "bi"
	var out bytes.Buffer
	if err := runWith(context.Background(), ro, &out); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(out.String(), "2 measurement point(s) already checkpointed") {
		t.Fatalf("resume did not replay from the checkpoint:\n%s", out.String())
	}
	resumed := readRun(t, filepath.Join(dirK, benchjson.Filename("bi")))
	if resumed.Interrupted {
		t.Fatal("resumed record still flagged interrupted")
	}
	if got := canonicalBytes(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("killed-then-resumed run differs from the uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

// TestCampaignFlagValidation: the campaign flag combinations that cannot
// work are refused with a diagnostic instead of producing a broken run.
func TestCampaignFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		o    options
		want string
	}{
		{"shard-needs-json", options{quick: true, shard: "1/2"}, "needs -json"},
		{"ckpt-needs-json", options{quick: true, ckpt: true}, "needs -json"},
		{"resume-needs-json", options{quick: true, resume: "x"}, "needs -json"},
		{"bad-shard-syntax", options{quick: true, jsonDir: dir, shard: "7"}, "want i/k"},
		{"shard-out-of-range", options{quick: true, jsonDir: dir, shard: "3/2"}, "1 <= i <= k"},
		{"verify-on-shard", options{quick: true, jsonDir: dir, shard: "1/2", verify: true}, "merged document"},
		{"runid-resume-conflict", options{quick: true, jsonDir: dir, runID: "a", resume: "b"}, "conflicts"},
		{"resume-missing-ckpt", options{quick: true, jsonDir: dir, resume: "ghost"}, "resume"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := runWith(context.Background(), c.o, io.Discard)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

// TestCampaignResumeRefusesForeignWorkload: a checkpoint taken under one
// seed must not resume under another — that would splice two different
// runs into one document.
func TestCampaignResumeRefusesForeignWorkload(t *testing.T) {
	dir := t.TempDir()
	o := campaignOpts(dir, "w")
	o.only = "E5"
	o.ckpt = true
	if err := runWith(context.Background(), o, io.Discard); err != nil {
		t.Fatal(err)
	}
	bad := o
	bad.runID = ""
	bad.resume = "w"
	bad.seed = 99
	err := runWith(context.Background(), bad, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "workload mismatch") {
		t.Fatalf("err = %v, want workload mismatch", err)
	}
	// Shard disagreement with the checkpoint is refused too.
	badShard := o
	badShard.runID = ""
	badShard.resume = "w"
	badShard.shard = "1/2"
	err = runWith(context.Background(), badShard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "conflicts with the checkpoint") {
		t.Fatalf("err = %v, want shard conflict", err)
	}
}

// TestCampaignShardRecordCarriesProvenance: shard documents embed the
// shard identity and per-experiment point spans benchmerge needs.
func TestCampaignShardRecordCarriesProvenance(t *testing.T) {
	dir := t.TempDir()
	o := campaignOpts(dir, "p")
	o.only = "E5"
	o.shard = "1/2"
	if err := runWith(context.Background(), o, io.Discard); err != nil {
		t.Fatal(err)
	}
	rec := readRun(t, filepath.Join(dir, benchjson.Filename("p_shard1of2")))
	if rec.ShardIndex != 1 || rec.ShardCount != 2 {
		t.Fatalf("shard identity = %d/%d", rec.ShardIndex, rec.ShardCount)
	}
	e := rec.Experiments[0]
	if len(e.Points) == 0 {
		t.Fatal("shard document missing point spans")
	}
	rows := 0
	for _, sp := range e.Points {
		if sp.Index%2 != 0 {
			t.Fatalf("shard 1/2 claims point %d", sp.Index)
		}
		rows += sp.Rows
	}
	if rows != len(e.Rows) {
		t.Fatalf("spans cover %d of %d rows", rows, len(e.Rows))
	}
	if _, err := os.Stat(filepath.Join(dir, "p_shard1of2.ckpt")); err != nil {
		t.Fatalf("shard checkpoint missing: %v", err)
	}
}
