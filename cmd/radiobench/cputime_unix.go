//go:build unix

package main

import (
	"syscall"
	"time"
)

// cpuTime returns the process's cumulative CPU time (user + system), the
// denominator of the engine's parallel efficiency: wall time shrinks with
// workers while CPU time should stay roughly flat.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	toDur := func(tv syscall.Timeval) time.Duration {
		return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
	}
	return toDur(ru.Utime) + toDur(ru.Stime)
}
