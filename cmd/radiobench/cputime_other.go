//go:build !unix

package main

import "time"

// cpuTime is unavailable on this platform; the JSON record reports 0 and
// omits the cpu_ms field.
func cpuTime() time.Duration { return 0 }
