package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"adhocradio/internal/experiment/benchjson"
	"adhocradio/internal/experiment/campaign"
)

// TestMain turns the test binary into a radiobench child process when
// re-executed with RADIOBENCH_CHILD=1 — the standard helper-process
// pattern, so the SIGINT test below can deliver a real operating-system
// signal to a real process instead of faking cancellation in-process.
func TestMain(m *testing.M) {
	if os.Getenv("RADIOBENCH_CHILD") == "1" {
		os.Exit(childMain())
	}
	os.Exit(m.Run())
}

// childCkptMarker is printed by the child once two measurement points are
// durably checkpointed; the parent waits for it before signalling.
const childCkptMarker = "CKPT_MARKER_2_POINTS"

// childMain runs the same campaign workload as TestCampaignBitIdentity
// under a signal.NotifyContext, pausing after two committed points until
// the parent's SIGINT arrives (so the cut lands at a deterministic spot).
func childMain() int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	o := campaignOpts(os.Getenv("RADIOBENCH_CHILD_JSON"), "kr")
	o.ckpt = true
	points := 0
	o.afterPoint = func(string, int) {
		if points++; points == 2 {
			fmt.Println(childCkptMarker)
			<-ctx.Done()
		}
	}
	if err := runWith(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radiobench:", err)
		return 1
	}
	return 0
}

// TestSIGINTCampaignEndToEnd sends a real SIGINT to a radiobench child
// process mid-campaign and asserts the whole recovery story: the child
// exits non-zero leaving a valid checkpoint and a schema-valid partial
// JSON flagged interrupted; -resume completes the run; and the final
// document is canonically byte-identical to an uninterrupted run.
func TestSIGINTCampaignEndToEnd(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal delivery")
	}
	if testing.Short() {
		t.Skip("spawns a child process running the quick suite")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"RADIOBENCH_CHILD=1",
		"RADIOBENCH_CHILD_JSON="+dir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the two-points-committed marker, then deliver the signal.
	marker := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), childCkptMarker) {
				marker <- nil
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
		select {
		case marker <- fmt.Errorf("child exited without printing the checkpoint marker"):
		default:
		}
	}()
	select {
	case err := <-marker:
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("timed out waiting for the child's checkpoint marker")
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("interrupted child exited zero")
	}

	// The checkpoint survived the signal and holds exactly the two
	// committed points.
	st, err := campaign.Resume(filepath.Join(dir, "kr.ckpt"), "kr",
		campaign.Header{Seed: 3, Quick: true, Only: "E2,E5"})
	if err != nil {
		t.Fatalf("checkpoint invalid after SIGINT: %v", err)
	}
	if st.Checkpointed() != 2 {
		t.Fatalf("checkpoint holds %d points, want 2", st.Checkpointed())
	}

	// The partial JSON is schema-valid and flagged interrupted.
	partial := readRun(t, filepath.Join(dir, benchjson.Filename("kr")))
	if !partial.Interrupted {
		t.Fatal("partial record not flagged interrupted")
	}

	// Resume to completion in-process.
	ro := campaignOpts(dir, "")
	ro.resume = "kr"
	var out bytes.Buffer
	if err := runWith(context.Background(), ro, &out); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(out.String(), "2 measurement point(s) already checkpointed") {
		t.Fatalf("resume did not replay the checkpoint:\n%s", out.String())
	}
	resumed := readRun(t, filepath.Join(dir, benchjson.Filename("kr")))
	if resumed.Interrupted {
		t.Fatal("resumed record still flagged interrupted")
	}

	// Byte-identity against an uninterrupted run of the same workload and
	// run id (the id is part of the canonical document).
	dirRef := t.TempDir()
	if err := runWith(context.Background(), campaignOpts(dirRef, "kr"), io.Discard); err != nil {
		t.Fatal(err)
	}
	ref := readRun(t, filepath.Join(dirRef, benchjson.Filename("kr")))
	got, want := canonicalBytes(t, resumed), canonicalBytes(t, ref)
	if !bytes.Equal(got, want) {
		t.Fatalf("SIGINT-resumed run differs from the uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}
