// Protocolpicker: the downstream-user scenario. Given what an operator
// knows about a deployment — the scale, a radius estimate, whether
// randomness is acceptable, and which knowledge model holds — pick a
// broadcasting protocol using the paper's results, then sanity-check the
// choice by simulating every candidate on a synthetic network of the
// deployment's shape.
package main

import (
	"fmt"
	"log"
	"sort"

	"adhocradio"
)

// deployment describes what the operator knows.
type deployment struct {
	name           string
	n, d           int
	allowRandom    bool
	knowsNeighbors bool
	spontaneousOK  bool
}

func main() {
	deployments := []deployment{
		{"dense sensor hall (randomized firmware)", 800, 12, true, false, false},
		{"regulatory-deterministic metering mesh", 600, 24, false, false, false},
		{"pre-provisioned rollout (neighbor lists flashed)", 600, 24, false, true, false},
		{"always-on relays (may transmit before joining)", 600, 24, false, false, true},
	}
	for _, dep := range deployments {
		fmt.Printf("=== %s (n=%d, D≈%d) ===\n", dep.name, dep.n, dep.d)
		recommended := recommend(dep)
		fmt.Printf("paper-guided pick: %s\n", recommended.Name())
		benchmark(dep, recommended)
		fmt.Println()
	}
}

// recommend applies the paper's decision surface.
func recommend(dep deployment) adhocradio.Protocol {
	switch {
	case dep.knowsNeighbors:
		// §1.1: linear-time DFS once neighborhoods are known.
		return adhocradio.NewDFSNeighborhood()
	case dep.spontaneousOK:
		// §1.1 / [7]: spontaneous transmissions buy O(n).
		return adhocradio.NewSpontaneousLinear()
	case dep.allowRandom:
		// Theorem 1: optimal randomized broadcast.
		return adhocradio.NewOptimalRandomized()
	default:
		// Deterministic standard model: O(n·min(D, log n)) interleaving
		// (§4.2) dominates both round-robin and Select-and-Send alone.
		return adhocradio.NewInterleaved(adhocradio.NewRoundRobin(), adhocradio.NewSelectAndSend())
	}
}

// benchmark simulates every candidate on a network of the deployment's
// shape and prints the ranking, marking the recommended pick.
func benchmark(dep deployment, pick adhocradio.Protocol) {
	src := adhocradio.NewRand(uint64(dep.n + dep.d))
	g, err := adhocradio.RandomLayered(dep.n, dep.d, 0.25, src)
	if err != nil {
		log.Fatal(err)
	}
	candidates := []adhocradio.Protocol{
		adhocradio.NewOptimalRandomized(),
		adhocradio.NewDecay(),
		adhocradio.NewRoundRobin(),
		adhocradio.NewSelectAndSend(),
		adhocradio.NewInterleaved(adhocradio.NewRoundRobin(), adhocradio.NewSelectAndSend()),
		adhocradio.NewDFSNeighborhood(),
		adhocradio.NewSpontaneousLinear(),
	}
	type row struct {
		name    string
		time    int
		allowed bool
	}
	var rows []row
	for _, p := range candidates {
		res, err := adhocradio.Broadcast(g, p, adhocradio.Config{Seed: 1}, adhocradio.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{p.Name(), res.BroadcastTime, allowed(dep, p)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].time < rows[j].time })
	for _, r := range rows {
		marker := "  "
		if r.name == pick.Name() {
			marker = "=>"
		}
		status := "ok"
		if !r.allowed {
			status = "unavailable in this model"
		}
		fmt.Printf(" %s %-42s %7d steps  (%s)\n", marker, r.name, r.time, status)
	}
}

// allowed reports whether a protocol's requirements fit the deployment.
func allowed(dep deployment, p adhocradio.Protocol) bool {
	switch p.Name() {
	case "dfs-neighborhood":
		return dep.knowsNeighbors
	case "spontaneous-linear":
		return dep.spontaneousOK
	case "kp-optimal", "bgi-decay":
		return dep.allowRandom
	default:
		return true
	}
}
