// Layered: Section 4.3's complete layered networks. The example shows both
// sides of the paper's observation that these networks are the hardest
// instances for randomized broadcasting but NOT for deterministic
// broadcasting:
//
//  1. Algorithm Complete-Layered broadcasts in O(n + D log n), far below
//     the Ω(n log D) bound claimed (incorrectly, as the paper proves) for
//     undirected complete layered networks.
//  2. The generic deterministic Select-and-Send pays Θ(n log n) on the same
//     instances — the specialized algorithm's advantage grows with n.
package main

import (
	"fmt"
	"log"
	"math"

	"adhocradio"
)

func main() {
	fmt.Println("complete layered networks: specialized vs generic deterministic broadcast")
	fmt.Println("n     D    t_CompleteLayered  t_SelectAndSend  n+D·log n  n·log D")

	for _, tc := range []struct{ n, d int }{
		{512, 16}, {1024, 32}, {2048, 64}, {4096, 64},
	} {
		g, err := adhocradio.UniformCompleteLayered(tc.n, tc.d)
		if err != nil {
			log.Fatal(err)
		}
		cl, err := adhocradio.Broadcast(g, adhocradio.NewCompleteLayered(),
			adhocradio.Config{}, adhocradio.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ss, err := adhocradio.Broadcast(g, adhocradio.NewSelectAndSend(),
			adhocradio.Config{}, adhocradio.Options{})
		if err != nil {
			log.Fatal(err)
		}
		nf, df := float64(tc.n), float64(tc.d)
		fmt.Printf("%-5d %-4d %-18d %-16d %-10.0f %-10.0f\n",
			tc.n, tc.d, cl.BroadcastTime, ss.BroadcastTime,
			nf+df*math.Log2(nf), nf*math.Log2(df))
	}

	fmt.Println()
	fmt.Println("and the randomized side: the Kushilevitz–Mansour hard instances")
	g, err := adhocradio.UniformCompleteLayered(2048, 64)
	if err != nil {
		log.Fatal(err)
	}
	kp, err := adhocradio.Broadcast(g, adhocradio.NewOptimalRandomized(),
		adhocradio.Config{Seed: 5}, adhocradio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal randomized on n=2048 D=64 complete layered: %d steps\n", kp.BroadcastTime)
}
