// Stages: a look inside procedure Stage(D, i) of Section 2. The example
// builds the Lemma 1 universal sequence for a laptop-scale (r, D), shows
// the probability ladder and the extra universal step of a few stages, and
// then demonstrates on a wide-fan-in network why that extra step matters:
// fronts with many informed in-neighbors need transmission probabilities
// far below the ladder's floor of ~D/r, and the universal sequence supplies
// each such probability often enough (conditions U1/U2).
package main

import (
	"fmt"
	"log"

	"adhocradio"
)

func main() {
	const r, d = 4096, 32

	seq, err := adhocradio.BuildUniversalSequenceRelaxed(r, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universal sequence for r=%d, D=%d: period %d, strict=%v\n",
		r, d, seq.Period(), seq.Strict())
	if err := seq.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recurrence conditions U1/U2: verified")

	// Print the shape of the first stages: ladder steps then the p_i step.
	fmt.Println("\nStage(D,i) layout (probabilities as 1/2^j):")
	ladderMax := 12 - 5 // log(r/D) = log(4096/32)
	for i := 1; i <= 8; i++ {
		fmt.Printf("  stage %d: ladder j=0..%d, then universal step j=%d\n",
			i, ladderMax, seq.ExponentAt(i))
	}

	// The ablation in action: StarChain fronts of width 192 need
	// probability ~1/192, far below the ladder floor 1/2^7 = 1/128... and
	// below: the universal step supplies 1/256, 1/512, ... periodically.
	g := adhocradio.StarChain(2, 192)
	fmt.Printf("\nworkload: %s\n", g.Stats())

	full := adhocradio.NewOptimalRandomizedWithParams(adhocradio.RandomizedParams{KnownRadius: d})
	ablated := adhocradio.NewOptimalRandomizedWithParams(adhocradio.RandomizedParams{
		KnownRadius: d, DisableUniversalStep: true})

	for _, tc := range []struct {
		name string
		p    adhocradio.Protocol
	}{{"with universal step", full}, {"ablated (ladder only)", ablated}} {
		res, err := adhocradio.Broadcast(g, tc.p, adhocradio.Config{Seed: 11},
			adhocradio.Options{MaxSteps: 300000})
		if err != nil {
			fmt.Printf("%-22s: did not finish within 300000 steps\n", tc.name)
			continue
		}
		fmt.Printf("%-22s: %d steps\n", tc.name, res.BroadcastTime)
	}
}
