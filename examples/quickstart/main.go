// Quickstart: build a random ad hoc network, broadcast with the paper's
// optimal randomized algorithm, and print what happened.
package main

import (
	"fmt"
	"log"

	"adhocradio"
)

func main() {
	// A random layered radio network: 1024 nodes, radius 64, node 0 is the
	// source. Every node knows only its own label and the label bound.
	src := adhocradio.NewRand(42)
	g, err := adhocradio.RandomLayered(1024, 64, 0.3, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", g.Stats())

	// Algorithm Optimal-Randomized-Broadcasting (Kowalski–Pelc, Section 2):
	// expected time O(D log(n/D) + log² n), no topology knowledge needed.
	res, err := adhocradio.Broadcast(g, adhocradio.NewOptimalRandomized(),
		adhocradio.Config{Seed: 7}, adhocradio.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("all %d nodes informed after %d steps\n", g.N(), res.BroadcastTime)
	fmt.Printf("%d transmissions, %d collisions along the way\n",
		res.Transmissions, res.Collisions)

	// Compare with the classic Decay baseline on the same network.
	base, err := adhocradio.Broadcast(g, adhocradio.NewDecay(),
		adhocradio.Config{Seed: 7}, adhocradio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BGI Decay needed %d steps (%.2fx)\n",
		base.BroadcastTime, float64(base.BroadcastTime)/float64(res.BroadcastTime))
}
