// Sensorgrid: the scenario that motivates ad hoc radio broadcasting —
// a field of battery-powered sensors at unknown positions, one of which
// (the gateway) must disseminate a configuration update. Nodes know
// nothing about the topology, not even their neighbors; collisions are
// indistinguishable from silence.
//
// The example deploys unit-disk networks of increasing density, floods the
// update with the paper's optimal randomized algorithm and with BGI Decay,
// and reports broadcast latency and energy (transmission count), the two
// costs sensor deployments care about.
package main

import (
	"fmt"
	"log"
	"math"

	"adhocradio"
)

func main() {
	fmt.Println("ad hoc sensor field: broadcast latency and energy")
	fmt.Println("nodes  range  radius  t_KP  t_BGI  tx_KP  tx_BGI")

	for _, n := range []int{200, 500, 1000} {
		// Communication range ~ 2/sqrt(n) keeps average degree moderate as
		// the field densifies.
		rng := 2 / math.Sqrt(float64(n))
		src := adhocradio.NewRand(uint64(n))
		g := adhocradio.UnitDisk(n, rng, src)
		radius, err := g.Radius()
		if err != nil {
			log.Fatal(err)
		}

		kp, err := adhocradio.Broadcast(g, adhocradio.NewOptimalRandomized(),
			adhocradio.Config{Seed: 1}, adhocradio.Options{})
		if err != nil {
			log.Fatal(err)
		}
		bgi, err := adhocradio.Broadcast(g, adhocradio.NewDecay(),
			adhocradio.Config{Seed: 1}, adhocradio.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %.3f  %6d  %4d  %5d  %5d  %6d\n",
			n, rng, radius, kp.BroadcastTime, bgi.BroadcastTime,
			kp.Transmissions, bgi.Transmissions)
	}

	fmt.Println()
	fmt.Println("deterministic fallback (no randomness available):")
	src := adhocradio.NewRand(99)
	g := adhocradio.UnitDisk(500, 2/math.Sqrt(500), src)
	ss, err := adhocradio.Broadcast(g, adhocradio.NewSelectAndSend(),
		adhocradio.Config{}, adhocradio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("select-and-send: %d steps, %d transmissions\n",
		ss.BroadcastTime, ss.Transmissions)
}
