// Adversary: Section 3's lower-bound machinery as a running program. For a
// chosen deterministic algorithm, the adversary builds — layer by layer,
// using the jamming function and non-selectivity witnesses — a network on
// which that algorithm is provably slow, then replays the algorithm on the
// finished network to confirm that the construction's abstract histories
// match reality (Lemma 9) and that the certified delay holds.
package main

import (
	"fmt"
	"log"

	"adhocradio"
)

func main() {
	const n, d = 1024, 64

	for _, victim := range []adhocradio.DeterministicProtocol{
		adhocradio.NewRoundRobin(),
		adhocradio.NewSelectAndSend(),
	} {
		fmt.Printf("--- adversary vs %s (n=%d, D=%d) ---\n", victim.Name(), n, d)
		c, err := adhocradio.BuildAdversarialNetwork(victim,
			adhocradio.AdversaryParams{N: n, D: d, Force: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("built %s\n", c.G.Stats())
		fmt.Printf("k=%d, lmax=%d jamming steps per stage\n", c.K, c.LMax)
		fmt.Printf("first three hidden layers:\n")
		for i := 0; i < 3 && i < len(c.Layers); i++ {
			fmt.Printf("  L_%d: %d dead-ends (L'), %d forwarders (L*)\n",
				2*i+1, len(c.Layers[i].Prime), len(c.Layers[i].Star))
		}
		fmt.Printf("certified: node %d silent for the first %d steps\n",
			d/2-1, c.LowerBoundSteps())

		res, err := adhocradio.VerifyAdversarialNetwork(victim, c, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replay: Lemma 9 holds; broadcast took %d steps (bound %d)\n\n",
			res.BroadcastTime, c.LowerBoundSteps())
	}

	// The same algorithms on a benign network of identical size, for
	// contrast.
	src := adhocradio.NewRand(3)
	benign, err := adhocradio.RandomLayered(n+1, d, 0.3, src)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []adhocradio.Protocol{adhocradio.NewRoundRobin(), adhocradio.NewSelectAndSend()} {
		res, err := adhocradio.Broadcast(benign, p, adhocradio.Config{}, adhocradio.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benign random layered, %s: %d steps\n", p.Name(), res.BroadcastTime)
	}
}
